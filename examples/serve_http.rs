//! HTTP serving end to end, in one process: boot the `sprint-server`
//! front end on an ephemeral port, replay a bursty arrival stream at
//! it over real sockets, and read the `/metrics` exposition back.
//!
//! ```sh
//! cargo run -p sprint-examples --example serve_http --release
//! ```
//!
//! This is the serving analogue of `serve_trace`: the same
//! `ArrivalSpec` machinery drives the traffic, but requests travel
//! through TCP, HTTP/1.1 keep-alive parsing, per-tenant admission
//! queues and the deterministic batching window before they reach the
//! engine — and the responses coming back are bit-identical to direct
//! in-process `ModelServer` calls.

use sprint_engine::{Engine, SprintConfig};
use sprint_server::{Server, ServerConfig};
use sprint_workloads::{ArrivalSpec, TraceGenerator};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SPRINT HTTP serving demo\n");

    let engine = Engine::builder(SprintConfig::small()).seed(7).build()?;
    let server = Server::start(engine, ServerConfig::default())?;
    let addr = server.local_addr().to_string();
    println!("serving on http://{addr}");

    let mut client =
        minihttp::Client::connect(addr.clone()).with_read_timeout(Some(Duration::from_secs(30)));
    let health = client.get("/health")?;
    println!("GET /health -> {} {}", health.status, health.body_str());

    // A bursty stream: 48 requests at a 25 ms long-run mean gap,
    // arriving in bursts of 6 spread over 2 ms — the worst case for a
    // batching window, and exactly what `ArrivalShape::Burst` models.
    let arrivals = TraceGenerator::new(42)
        .arrivals(&ArrivalSpec::poisson(48, 25_000_000.0, 1).burst(6, 2_000_000.0))?;
    let body = r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#;

    println!(
        "\nreplaying {} bursty arrivals over HTTP...",
        arrivals.len()
    );
    let started = Instant::now();
    let mut served = 0u32;
    let mut shed = 0u32;
    for arrival in &arrivals {
        if let Some(wait) = Duration::from_nanos(arrival.at_ns).checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let response = client.post_json("/v1/serve", body)?;
        match response.status {
            200 => served += 1,
            429 => shed += 1,
            other => println!("unexpected status {other}: {}", response.body_str()),
        }
    }
    let wall = started.elapsed();
    println!(
        "served {served}, shed {shed} in {:.2}s ({:.1} requests/s)",
        wall.as_secs_f64(),
        f64::from(served) / wall.as_secs_f64()
    );

    // The exposition the scrape path sees, trimmed to the headline
    // numbers (full text at GET /metrics).
    println!("\nGET /metrics (excerpt):");
    let metrics = client.get("/metrics")?.body_str();
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("sprint_requests_")
                || l.starts_with("sprint_batches_total")
                || l.starts_with("sprint_qps")
                || l.starts_with("sprint_request_latency_ms"))
    }) {
        println!("  {line}");
    }

    println!("\nshutting down (drains in-flight work)...");
    server.shutdown();
    println!("done.");
    Ok(())
}
