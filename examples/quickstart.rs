//! Quickstart: run one attention head through the full SPRINT pipeline
//! and compare it against the iso-resource baseline.
//!
//! ```sh
//! cargo run -p sprint-examples --example quickstart --release
//! ```

use sprint_core::counting::{simulate_head, ExecutionMode};
use sprint_core::{HeadProfile, SprintConfig, SprintSystem};
use sprint_reram::{NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SPRINT quickstart: BERT-Base-like head on S-SPRINT\n");

    // 1. Synthesize a head with BERT-Base statistics (74.6% pruning,
    //    46% padding, ~85% adjacent-query locality), scaled to s=128
    //    so the functional pipeline runs in a blink.
    let model = ModelConfig::bert_base();
    let spec = model.trace_spec().with_seq_len(128);
    let trace = TraceGenerator::new(2024).generate(&spec)?;
    println!(
        "trace: s={} live={} threshold={:.3} measured overlap={:.1}%",
        trace.seq_len(),
        trace.live_tokens(),
        trace.threshold(),
        trace.stats().mean_adjacent_overlap * 100.0
    );

    // 2. Run the functional system: analog in-memory thresholding at
    //    the paper's 5-bit-equivalent noise, SLD-driven selective
    //    fetch, and 8-bit on-chip recompute.
    let cfg = SprintConfig::small();
    let mut system = SprintSystem::new(cfg.clone(), NoiseModel::default(), 7);
    let out = system.run_head(&trace, &ThresholdSpec::default(), true)?;
    let kept: usize = out.decisions.iter().map(|d| d.kept_count()).sum();
    println!(
        "\nfunctional run: {} queries thresholded in memory, {} scores kept ({:.1}%)",
        out.prune_stats.queries_pruned,
        kept,
        100.0 * kept as f64 / (trace.live_tokens() * trace.live_tokens()) as f64,
    );
    println!(
        "memory controller: fetched {} vectors, reused {} via spatial locality ({:.1}% reuse)",
        out.memory_stats.fetched_vectors,
        out.memory_stats.reused_vectors,
        100.0 * out.memory_stats.reused_vectors as f64
            / (out.memory_stats.reused_vectors + out.memory_stats.fetched_vectors).max(1) as f64
    );

    // 3. Count performance and energy at the paper's full size.
    let profile = HeadProfile::synthetic(
        model.seq_len,
        model.live_tokens(),
        model.keep_rate(),
        model.adjacent_overlap,
        2024,
    );
    let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
    let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
    println!(
        "\ncounting simulator at s={} on {}:",
        model.seq_len, cfg.name
    );
    println!(
        "  baseline: {:>12} cycles  {:>14}  {:>10} bytes moved",
        base.cycles,
        base.energy.total().to_string(),
        base.bytes_from_memory
    );
    println!(
        "  SPRINT:   {:>12} cycles  {:>14}  {:>10} bytes moved",
        sprint.cycles,
        sprint.energy.total().to_string(),
        sprint.bytes_from_memory
    );
    println!(
        "  -> {:.1}x speedup, {:.1}x energy reduction, {:.1}% less data movement",
        sprint.speedup_over(&base),
        sprint.energy_reduction_over(&base),
        sprint.data_movement_reduction_over(&base) * 100.0
    );
    Ok(())
}
