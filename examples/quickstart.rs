//! Quickstart: serve attention heads through the unified SPRINT
//! engine and compare against the iso-resource baseline.
//!
//! ```sh
//! cargo run -p sprint-examples --example quickstart --release
//! ```

use sprint_core::counting::{simulate_head, ExecutionMode as CountingMode};
use sprint_core::{HeadProfile, SprintConfig};
use sprint_engine::{
    DecodeStep, Engine, ExecutionMode, HeadRequest, ModelProfile, ModelRequest, ModelServer,
    SessionRequest,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SPRINT quickstart: BERT-Base-like heads on S-SPRINT\n");

    // 1. Synthesize heads with BERT-Base statistics (74.6% pruning,
    //    46% padding, ~85% adjacent-query locality), scaled to s=128
    //    so the functional pipeline runs in a blink.
    let model = ModelConfig::bert_base();
    let spec = model.trace_spec().with_seq_len(128);
    let heads = TraceGenerator::new(2024).generate_many(&spec, 4)?;
    println!(
        "traces: {} heads, s={} live={} threshold={:.3} measured overlap={:.1}%",
        heads.len(),
        heads[0].seq_len(),
        heads[0].live_tokens(),
        heads[0].threshold(),
        heads[0].stats().mean_adjacent_overlap * 100.0
    );

    // 2. Build the engine once: it owns the pruner crossbars, the
    //    memory controller and all attention scratch, and reuses them
    //    across every head it serves. Defaults are the paper's design
    //    point (5-bit-equivalent analog noise, pure analog
    //    comparison); `mode` picks the functional pipeline.
    let cfg = SprintConfig::small();
    let engine = Engine::builder(cfg.clone())
        .noise(NoiseModel::default())
        .mode(ExecutionMode::Sprint)
        .seed(7)
        .build()?;

    // 3. Serve a single head.
    let out = engine.run_head(&HeadRequest::from_trace(&heads[0]))?;
    let kept: usize = out.decisions.iter().map(|d| d.kept_count()).sum();
    let live = heads[0].live_tokens();
    println!(
        "\nfunctional run: {} queries thresholded in memory, {} scores kept ({:.1}%)",
        out.prune_stats.queries_pruned,
        kept,
        100.0 * kept as f64 / (live * live) as f64,
    );
    println!(
        "memory controller: fetched {} vectors, reused {} via spatial locality ({:.1}% reuse)",
        out.memory_stats.fetched_vectors,
        out.memory_stats.reused_vectors,
        100.0 * out.memory_stats.reused_vectors as f64
            / (out.memory_stats.reused_vectors + out.memory_stats.fetched_vectors).max(1) as f64
    );

    // 4. Serve a batch: the requests fan out across sprint-parallel
    //    workers with deterministic per-head seeds — the same results
    //    at any worker count. Per-request overrides select the Fig. 9
    //    scenario; here the dense baseline runs next to full SPRINT
    //    for the data-movement contrast.
    let requests: Vec<HeadRequest> = heads
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();
    let responses = engine.run_batch(&requests)?;
    let dense = engine.run_head(&requests[0].clone().with_mode(ExecutionMode::Dense))?;
    let sprint_bytes: u64 = responses.iter().map(|r| r.memory_stats.bytes_fetched).sum();
    println!(
        "\nbatch of {}: {} bytes fetched total; dense baseline moves {} bytes for ONE head",
        responses.len(),
        sprint_bytes,
        dense.memory_stats.bytes_fetched,
    );

    // 5. Count performance and energy at the paper's full size.
    let profile = HeadProfile::synthetic(
        model.seq_len,
        model.live_tokens(),
        model.keep_rate(),
        model.adjacent_overlap,
        2024,
    );
    let base = simulate_head(&profile, &cfg, CountingMode::Baseline);
    let sprint = simulate_head(&profile, &cfg, CountingMode::Sprint);
    println!(
        "\ncounting simulator at s={} on {}:",
        model.seq_len, cfg.name
    );
    println!(
        "  baseline: {:>12} cycles  {:>14}  {:>10} bytes moved",
        base.cycles,
        base.energy.total().to_string(),
        base.bytes_from_memory
    );
    println!(
        "  SPRINT:   {:>12} cycles  {:>14}  {:>10} bytes moved",
        sprint.cycles,
        sprint.energy.total().to_string(),
        sprint.bytes_from_memory
    );
    println!(
        "  -> {:.1}x speedup, {:.1}x energy reduction, {:.1}% less data movement",
        sprint.speedup_over(&base),
        sprint.energy_reduction_over(&base),
        sprint.data_movement_reduction_over(&base) * 100.0
    );

    // 6. Serve a model. A ModelServer wraps the engine and takes whole
    //    forward passes: a ModelRequest names layers x heads and
    //    per-layer sequence lengths (ragged is fine), the server
    //    decomposes it into head requests with deterministic
    //    per-(layer, head) seeds, runs them over the engine's worker
    //    pool, and rolls the responses up per layer and per model.
    let server = ModelServer::new(engine);
    let profile = ModelProfile::from_model(&model)
        .with_layers(2)
        .with_heads(2)
        .with_layer_seq_lens(vec![128, 96]);
    let response = server.serve(&ModelRequest::new(profile).with_seed(2024))?;
    println!(
        "\nmodel serving: {} in {:?} mode",
        response.model, response.mode
    );
    for layer in &response.layers {
        println!(
            "  layer {}: s={:<4} {} heads  {:>12} cycles  {:>14}  kept {:.1}%  reuse {:.1}%",
            layer.layer,
            layer.seq_len,
            layer.perf.heads,
            layer.perf.cycles,
            layer.perf.energy.total().to_string(),
            layer.perf.kept_fraction() * 100.0,
            layer.perf.reuse_fraction() * 100.0,
        );
    }
    println!(
        "  total: {} heads  {} cycles  {}  {} bytes moved",
        response.total.heads,
        response.total.cycles,
        response.total.energy.total(),
        response.total.bytes_fetched,
    );

    // 7. Decode a sequence. A DecodeSession keeps the programmed
    //    crossbars, the cached 8-bit K/V images and the memory
    //    controller alive across steps: each generated token appends
    //    one crossbar column and runs one-query SPRINT attention over
    //    the grown history — no per-step reprogramming. Every step is
    //    bit-identical to a fresh full-prefix run_head oracle under an
    //    ideal noise model (tests/tests/decode.rs pins this).
    let engine = server.into_engine();
    let decode_spec = model.trace_spec().with_seq_len(48).with_padding(0.0);
    let stream = TraceGenerator::new(2025).generate(&decode_spec)?;
    let prefill = 32;
    let (pk, pv) = (
        stream.k().prefix_rows(prefill)?,
        stream.v().prefix_rows(prefill)?,
    );
    let mut session = engine.open_session(
        &SessionRequest::new(&pk, &pv, stream.config(), stream.threshold()).with_head_id(0),
    )?;
    for t in prefill..48 {
        session.step(&DecodeStep {
            q: stream.q().row(t),
            k: stream.k().row(t),
            v: stream.v().row(t),
        })?;
    }
    let perf = session.perf();
    println!(
        "\ndecode: {} tokens generated over a {}-token prefill, kept {:.1}% of scores",
        perf.tokens,
        prefill,
        perf.kept_fraction() * 100.0,
    );
    println!(
        "  energy {} recurring + {} program-once; {} recalibration(s)",
        perf.energy.total(),
        perf.program_energy.total(),
        perf.recalibrations,
    );
    Ok(())
}
