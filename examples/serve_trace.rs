//! Trace-driven serving: replay a synthetic arrival stream against a
//! `ModelServer` and report throughput and latency percentiles.
//!
//! ```sh
//! cargo run -p sprint-examples --example serve_trace --release
//! ```
//!
//! The stream is an open-loop Poisson process (`ArrivalSpec`) over two
//! request templates — a BERT-like encoder and a ViT-like tower, both
//! scaled down so the demo finishes in seconds. The `ServeLoop`
//! coalesces every request due at the same instant into one in-flight
//! batch, so under load the mean batch size rises above 1 and
//! throughput holds while latency grows — the classic serving
//! trade-off, visible in the two summaries below.

use sprint_engine::{
    Engine, ExecutionMode, ModelProfile, ModelRequest, ModelServer, ServeLoop, SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ArrivalSpec, ModelConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SPRINT trace-driven serving demo\n");

    let server = ModelServer::new(
        Engine::builder(SprintConfig::medium())
            .noise(NoiseModel::default())
            .mode(ExecutionMode::Sprint)
            .seed(7)
            .build()?,
    );

    // Two request templates of different shapes (arrivals pick one
    // uniformly): a 2-layer BERT-like encoder and a 1-layer ViT-like
    // tower.
    let templates = [
        ModelRequest::new(
            ModelProfile::from_model(&ModelConfig::bert_base())
                .with_layers(2)
                .with_heads(2)
                .with_seq_len(96),
        )
        .with_seed(1),
        ModelRequest::new(
            ModelProfile::from_model(&ModelConfig::vit_base())
                .with_layers(1)
                .with_heads(2)
                .with_seq_len(64),
        )
        .with_seed(2),
    ];
    for (i, t) in templates.iter().enumerate() {
        println!(
            "template {i}: {} — {} layers x {} heads, s = {:?}",
            t.profile().name(),
            t.profile().layers(),
            t.profile().heads(),
            t.profile().layer_seq_lens(),
        );
    }

    // Replay the same 24-request stream at two offered loads: relaxed
    // (mean gap 50 ms — the server idles between arrivals) and heavy
    // (mean gap 1 ms — arrivals pile up and batch).
    for (label, gap_ns) in [("relaxed", 50_000_000.0), ("heavy", 1_000_000.0)] {
        let arrivals =
            TraceGenerator::new(42).arrivals(&ArrivalSpec::poisson(24, gap_ns, templates.len()))?;
        let summary = ServeLoop::new(&server)
            .max_batch(8)
            .run(&arrivals, &templates)?;
        println!(
            "\n[{label} load, mean inter-arrival {:.1} ms]",
            gap_ns / 1e6
        );
        println!("{summary}");
    }

    println!("\ndone: same stream, same results — only the queueing changed.");
    Ok(())
}
