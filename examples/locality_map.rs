//! Spatial-locality visualization: the Fig. 2 pruning map and the
//! Fig. 3 overlap-vs-random comparison, plus a live walk of the SLD
//! engine.
//!
//! ```sh
//! cargo run -p sprint-examples --example locality_map --release
//! ```

use sprint_core::experiments::{fig2, fig3, Scale};
use sprint_memory::SldEngine;
use sprint_workloads::{ModelConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        seq_cap: 512,
        accuracy_seq: 128,
        seed: 0x10c,
    };

    println!("{}", fig2(&scale)?);
    println!();
    println!("{}", fig3(&scale)?);

    // Walk the SLD engine over a real trace to show what the memory
    // controller sees query by query.
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(96);
    let trace = TraceGenerator::new(5).generate(&spec)?;
    let mut sld = SldEngine::new();
    println!("\nSLD engine on the first queries of a BERT-like head:");
    println!(
        "{:>6} {:>6} {:>8} {:>8}",
        "query", "kept", "fetches", "reuses"
    );
    for i in 0..8.min(trace.live_tokens()) {
        let pruned: Vec<bool> = (0..trace.seq_len())
            .map(|j| trace.reference_decisions()[i].is_pruned(j))
            .collect();
        let split = sld.process(&pruned)?;
        println!(
            "{:>6} {:>6} {:>8} {:>8}",
            i,
            trace.reference_decisions()[i].kept_count(),
            split.request_count(),
            split.hit_count()
        );
    }
    println!("\nafter the first query, fetches collapse to the few keys whose");
    println!("relevance just changed — the data reuse SPRINT's SLD engine banks on.");
    Ok(())
}
