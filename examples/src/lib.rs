//! Host crate for the runnable SPRINT examples.
