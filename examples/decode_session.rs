//! Autoregressive decode: generate 64 tokens over a BERT-B-shaped
//! head through a stateful `DecodeSession`, watching the kept fraction
//! and the cumulative energy as the history grows.
//!
//! ```sh
//! cargo run -p sprint-examples --example decode_session --release
//! ```
//!
//! The session programs the prefill into the pruner crossbars once;
//! every generated token then appends one crossbar column and one
//! cached-quantized K/V row, thresholds its query in memory, and
//! recomputes only the surviving scores — no per-step reprogramming.
//! The program-once write energy is reported separately from the
//! recurring step energy so the amortization is visible.

use sprint_attention::Matrix;
use sprint_engine::{DecodeStep, Engine, ExecutionMode, SessionRequest, SprintConfig};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

const PREFILL: usize = 64;
const DECODED: usize = 64;

fn prefix(m: &Matrix, n: usize) -> Result<Matrix, sprint_attention::AttentionError> {
    m.prefix_rows(n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SPRINT decode session: {DECODED} tokens over a BERT-B-shaped head\n");

    // A synthetic BERT-Base-statistics token stream (74.6% pruning,
    // ~85% adjacent-query locality; no padding — decode histories hold
    // only real tokens). The first PREFILL tokens are the prompt.
    let model = ModelConfig::bert_base();
    let spec = model
        .trace_spec()
        .with_seq_len(PREFILL + DECODED)
        .with_padding(0.0);
    let trace = TraceGenerator::new(2026).generate(&spec)?;

    let engine = Engine::builder(SprintConfig::small())
        .noise(NoiseModel::default())
        .mode(ExecutionMode::Sprint)
        .seed(7)
        .build()?;

    let (pk, pv) = (prefix(trace.k(), PREFILL)?, prefix(trace.v(), PREFILL)?);
    let mut session = engine.open_session(
        &SessionRequest::new(&pk, &pv, trace.config(), trace.threshold()).with_head_id(0),
    )?;
    println!(
        "prefill: {PREFILL} tokens (d = {}), threshold {:.3}, mode {:?}\n",
        trace.config().d(),
        trace.threshold(),
        session.mode(),
    );
    println!("  token | history | kept    | step energy | cumulative (step + program)");

    for t in PREFILL..PREFILL + DECODED {
        let out = session.step(&DecodeStep {
            q: trace.q().row(t),
            k: trace.k().row(t),
            v: trace.v().row(t),
        })?;
        let kept = out.decision.kept_count();
        if (t - PREFILL) % 8 == 0 || t + 1 == PREFILL + DECODED {
            let perf = session.perf();
            println!(
                "  {:>5} | {:>7} | {:>5.1}%  | {:>11} | {} + {}",
                t - PREFILL,
                out.position + 1,
                100.0 * kept as f64 / out.decision.len() as f64,
                out.perf.energy.total().to_string(),
                perf.energy.total(),
                perf.program_energy.total(),
            );
        }
    }

    let perf = session.perf();
    println!(
        "\ndecoded {} tokens: kept {:.1}% of scores, {} recalibration(s), {} tokens programmed",
        perf.tokens,
        perf.kept_fraction() * 100.0,
        perf.recalibrations,
        perf.programmed_tokens,
    );
    println!(
        "energy: {} recurring + {} program-once ({:.1}% of total is the amortized write cost)",
        perf.energy.total(),
        perf.program_energy.total(),
        100.0 * perf.program_energy.total().as_pj() / perf.total_energy().total().as_pj(),
    );
    println!(
        "latency: {} cycles total, {:.0} cycles/token mean",
        perf.cycles,
        perf.cycles as f64 / perf.tokens.max(1) as f64,
    );
    println!(
        "memory: {} vectors fetched, {} reused on chip ({:.1}% reuse)",
        perf.fetched_vectors,
        perf.reused_vectors,
        100.0 * perf.reused_vectors as f64
            / (perf.reused_vectors + perf.fetched_vectors).max(1) as f64,
    );
    Ok(())
}
