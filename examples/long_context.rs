//! Long-context study: the Synth-2 (4K sequence) workload of §VII,
//! showing how SPRINT's advantage shifts as the on-chip buffers hold
//! an ever-smaller fraction of the sequence.
//!
//! ```sh
//! cargo run -p sprint-examples --example long_context --release
//! ```

use sprint_core::counting::{simulate_head, ExecutionMode};
use sprint_core::{HeadProfile, SprintConfig};
use sprint_workloads::ModelConfig;

fn main() {
    let model = ModelConfig::synth2();
    println!(
        "Synth-2 futuristic workload: s={}, {}% padding, {}% pruning\n",
        model.seq_len,
        (model.padding_fraction * 100.0) as u32,
        (model.pruning_rate * 100.0) as u32
    );

    println!(
        "{:<10} {:>10} {:>14} {:>10} {:>12} {:>12}",
        "config", "capacity", "cap/sequence", "speedup", "energy red.", "data red."
    );
    for cfg in SprintConfig::all() {
        let profile = HeadProfile::synthetic(
            model.seq_len,
            model.live_tokens(),
            model.keep_rate(),
            model.adjacent_overlap,
            99,
        );
        let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
        let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
        println!(
            "{:<10} {:>7} KB {:>13.1}% {:>9.1}x {:>11.1}x {:>11.1}%",
            cfg.name,
            cfg.onchip_kib,
            100.0 * cfg.kv_capacity_pairs() as f64 / model.seq_len as f64,
            sprint.speedup_over(&base),
            sprint.energy_reduction_over(&base),
            sprint.data_movement_reduction_over(&base) * 100.0,
        );
    }

    println!(
        "\npaper: at 4K sequences even L-SPRINT holds only 12.5% of the \
         sequence, so the larger\nbuffers finally pay off — the reverse \
         of the short-sequence trend (Fig. 12)."
    );

    // Sweep sequence length to show the scaling trend.
    println!("\nEnergy reduction vs sequence length (M-SPRINT):");
    for s in [512usize, 1024, 2048, 4096] {
        let profile = HeadProfile::synthetic(s, s / 2, 0.25, 0.84, 7);
        let cfg = SprintConfig::medium();
        let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
        let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
        println!(
            "  s={:<5} -> {:>6.1}x",
            s,
            sprint.energy_reduction_over(&base)
        );
    }
}
