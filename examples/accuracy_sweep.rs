//! Accuracy studies: the Fig. 5 bit-precision sweep and the Fig. 9
//! four-scenario comparison, on the proxy tasks.
//!
//! ```sh
//! cargo run -p sprint-examples --example accuracy_sweep --release
//! ```

use sprint_core::experiments::{fig5, fig9, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        seq_cap: 512,
        accuracy_seq: 192,
        seed: 0xacc,
    };

    println!("{}", fig5(&scale)?);
    println!();
    println!("{}", fig9(&scale)?);
    println!(
        "\nThese are proxy-task numbers (see DESIGN.md substitutions): the\n\
         shapes — collapse below 3 bits, plateau from 4 bits, recompute\n\
         recovering the no-recompute loss — are the reproduced claims."
    );
    Ok(())
}
