//! Design-space exploration: sweep on-chip capacity and CORELET count
//! beyond the paper's three configurations — the study a downstream
//! adopter would run before taping out their own SPRINT variant.
//!
//! ```sh
//! cargo run -p sprint-examples --example design_space --release
//! ```

use sprint_core::counting::{simulate_head, ExecutionMode};
use sprint_core::{HeadProfile, SprintConfig};
use sprint_workloads::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_large();
    let profile = HeadProfile::synthetic(
        model.seq_len,
        model.live_tokens(),
        model.keep_rate(),
        model.adjacent_overlap,
        0xde51,
    );
    println!(
        "Design-space sweep on {} (s={}, {:.0}% pruning)\n",
        model.name,
        model.seq_len,
        model.pruning_rate * 100.0
    );
    println!(
        "{:>8} {:>9} {:>10} {:>11} {:>12} {:>12}",
        "KB", "CORELETs", "speedup", "energy red.", "J/head (uJ)", "area (mm^2)"
    );
    for kib in [8usize, 16, 32, 64, 128] {
        for corelets in [1usize, 2, 4] {
            let mut cfg = match corelets {
                1 => SprintConfig::small(),
                2 => SprintConfig::medium(),
                _ => SprintConfig::large(),
            };
            cfg.onchip_kib = kib;
            let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
            let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
            println!(
                "{:>8} {:>9} {:>9.1}x {:>10.1}x {:>12.2} {:>12.2}",
                kib,
                corelets,
                sprint.speedup_over(&base),
                sprint.energy_reduction_over(&base),
                sprint.energy.total().as_uj(),
                cfg.area().total_mm2(),
            );
        }
    }
    println!(
        "\nthe energy-optimal point sits where the K/V buffers just cover the\n\
         kept working set — beyond that, extra SRAM burns area for nothing\n\
         (the paper's S/M/L trend, Fig. 12), while starved buffers pay\n\
         refetch energy (the Synth exception)."
    );
}
