//! Fault injection and graceful degradation: run the same head under
//! a growing ReRAM fault rate and every recovery policy, watching the
//! escalation ladder pick a different rung each time.
//!
//! ```sh
//! cargo run -p sprint-examples --example fault_injection --release
//! ```
//!
//! Three demonstrations:
//!
//! 1. a transient-upset rate sweep under the default `Demote` policy —
//!    light damage is repaired within the retry budget, heavy damage
//!    exhausts it and falls back to the exact dense pipeline, and
//!    nothing ever errors;
//! 2. one unrepairable substrate (every bitline dead) under each
//!    policy rung, showing Monitor/Retry serve degraded, Remap runs
//!    out of spares and demotes, Demote recomputes exactly, and Fail
//!    surfaces the first faulty site;
//! 3. the determinism pin: the faulted batch is bit-identical at 1 and
//!    4 workers.

use sprint_engine::{Engine, ExecutionMode, FaultPolicy, HeadRequest, SprintConfig};
use sprint_reram::{FaultModel, NoiseModel};
use sprint_workloads::{ModelConfig, TraceGenerator};

fn engine(model: Option<FaultModel>, policy: FaultPolicy, workers: usize) -> Engine {
    let mut builder = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .mode(ExecutionMode::Sprint)
        .seed(42)
        .worker_slots(workers)
        .fault_policy(policy);
    if let Some(m) = model {
        builder = builder.fault_model(m);
    }
    builder.build().expect("engine config is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(96);
    let trace = TraceGenerator::new(11).generate(&spec)?;
    let request = HeadRequest::from_trace(&trace);

    println!("1. transient-upset rate sweep under the default Demote policy");
    println!("   rate   cells  columns  retries  remapped  demoted");
    for rate in [0.0, 0.005, 0.02, 0.1, 0.5] {
        let model = FaultModel::new(0xfa17).with_transient_rate(rate)?;
        let response = engine(Some(model), FaultPolicy::default(), 1).run_head(&request)?;
        let f = response.faults;
        println!(
            "   {rate:<5}  {:>5}  {:>7}  {:>7}  {:>8}  {:>7}",
            f.faults_detected, f.faulty_columns, f.retries, f.remapped_columns, f.demoted
        );
    }

    println!("\n2. every policy rung against dead bitlines (unrepairable)");
    let dead = FaultModel::new(3).with_line_rates(1.0, 0.0)?;
    let rungs = [
        ("Monitor", FaultPolicy::Monitor),
        ("Retry", FaultPolicy::Retry { max_attempts: 2 }),
        (
            "Remap",
            FaultPolicy::Remap {
                max_attempts: 2,
                spare_columns: 8,
            },
        ),
        ("Demote", FaultPolicy::Demote { max_attempts: 2 }),
        ("Fail", FaultPolicy::Fail { max_attempts: 2 }),
    ];
    for (name, policy) in rungs {
        match engine(Some(dead), policy, 1).run_head(&request) {
            Ok(response) => {
                let f = response.faults;
                println!(
                    "   {name:<8} served (degraded: {}, demoted: {}, {} cells, {} retries)",
                    f.degraded(),
                    f.demoted,
                    f.faults_detected,
                    f.retries
                );
            }
            Err(err) => println!("   {name:<8} error: {err}"),
        }
    }

    println!("\n3. faulted results are worker-invariant");
    let model = FaultModel::uniform(0.05, 0x5eed)?;
    let traces = TraceGenerator::new(23).generate_many(&spec, 8)?;
    let requests: Vec<HeadRequest> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();
    let solo = engine(Some(model), FaultPolicy::default(), 1).run_batch(&requests)?;
    let four = engine(Some(model), FaultPolicy::default(), 4).run_batch(&requests)?;
    assert_eq!(solo, four, "fault handling must not depend on scheduling");
    let detected: u64 = solo.iter().map(|r| r.faults.faults_detected).sum();
    println!("   8 faulted heads, {detected} cells detected: 1 worker == 4 workers, bit for bit");

    Ok(())
}
