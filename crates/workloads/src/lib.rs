//! Workload zoo and synthetic trace generation for the SPRINT
//! reproduction.
//!
//! The paper evaluates six fine-tuned transformer models plus two
//! synthetic long-sequence models (§VII). This crate provides:
//!
//! * [`ModelConfig`] — the eight studied workloads with the paper's
//!   sequence lengths, pruning rates, padding ratios and baseline
//!   accuracies;
//! * [`overlap`] — the exact Eq. (1) hypergeometric expectation of
//!   random adjacent-query overlap (the "Random" bars of Fig. 3);
//! * [`TraceGenerator`] — a synthetic Q/K/V generator calibrated to a
//!   target pruning rate and adjacent-query spatial locality, standing
//!   in for the fine-tuned checkpoints and datasets the paper uses
//!   (see DESIGN.md "Substitutions");
//! * [`ProxyTask`] — the accuracy-proxy task used by the Fig. 5 / Fig. 9
//!   studies;
//! * [`ArrivalSpec`] — synthetic Poisson request-arrival streams that
//!   feed the trace-driven serving loop (`sprint_engine::ServeLoop`).
//!
//! # Example
//!
//! ```
//! use sprint_workloads::{ModelConfig, TraceGenerator};
//!
//! let model = ModelConfig::bert_base();
//! // Scale the sequence down for a quick demonstration:
//! let spec = model.trace_spec().with_seq_len(64);
//! let trace = TraceGenerator::new(42).generate(&spec).unwrap();
//! let masks = trace.reference_decisions();
//! assert_eq!(masks.len(), 64);
//! ```

#![warn(missing_docs)]

pub mod overlap;

mod models;
mod stats;
mod task;
mod trace;

pub use models::{Dataset, ModelConfig, ModelKind};
pub use task::{ProxyTask, TaskScore};
pub use trace::{
    Arrival, ArrivalShape, ArrivalSpec, ChurnEvent, ChurnSpec, HeadTrace, TraceGenerator, TraceSpec,
};
