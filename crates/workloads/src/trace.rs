//! Synthetic attention-head traces with calibrated pruning statistics.
//!
//! Stands in for the fine-tuned checkpoints and datasets of §VII (see
//! DESIGN.md "Substitutions"). The generator synthesizes Q/K/V whose
//! score structure reproduces the three statistics every architectural
//! result depends on:
//!
//! 1. the learned **pruning rate** (74.6 % for BERT-B, ...),
//! 2. the **zero-padding** fraction (the gray region of Fig. 2), and
//! 3. the **adjacent-query spatial locality** of kept keys (Fig. 3's
//!    2–3×-above-random overlap).
//!
//! The mechanism mirrors why real attention shows locality: a few keys
//! are *globally salient* (every query attends to them — articles,
//! separators, CLS), and the rest of a query's attention follows a
//! *topic* that drifts slowly across adjacent tokens. Keys are built
//! with a per-key salience weight toward a shared direction `u`;
//! queries blend `u` with a slowly drifting unit vector, so adjacent
//! queries rank keys similarly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sprint_attention::{
    calibrate_threshold, pruning_stats, AttentionConfig, AttentionError, Matrix, PaddingMask,
    PruneDecision, PruningStats,
};

use crate::stats::{dot, normal, unit_vec};

/// Specification of one synthetic head trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Total sequence length including padding.
    pub seq_len: usize,
    /// Per-head embedding size.
    pub head_dim: usize,
    /// Target fraction of live keys pruned per live query.
    pub prune_rate: f64,
    /// Fraction of the sequence that is zero padding.
    pub padding_fraction: f64,
    /// Target mean adjacent-query kept-set overlap (Fig. 3).
    pub target_overlap: f64,
}

impl TraceSpec {
    /// Returns the spec with a different sequence length (used to scale
    /// experiments down while keeping the model's statistics).
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Returns the spec with a different target pruning rate.
    #[must_use]
    pub fn with_prune_rate(mut self, rate: f64) -> Self {
        self.prune_rate = rate;
        self
    }

    /// Returns the spec with a different target adjacent overlap.
    #[must_use]
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        self.target_overlap = overlap;
        self
    }

    /// Returns the spec with a different padding fraction.
    #[must_use]
    pub fn with_padding(mut self, fraction: f64) -> Self {
        self.padding_fraction = fraction;
        self
    }

    /// Number of live (non-padded) tokens.
    pub fn live_tokens(&self) -> usize {
        let live = (self.seq_len as f64 * (1.0 - self.padding_fraction)).round() as usize;
        live.clamp(1, self.seq_len)
    }

    fn validate(&self) -> Result<(), AttentionError> {
        if self.seq_len == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "seq_len",
                value: 0,
            });
        }
        if self.head_dim == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "head_dim",
                value: 0,
            });
        }
        if !(0.0..1.0).contains(&self.prune_rate) {
            return Err(AttentionError::InvalidQuantization(format!(
                "prune rate {} outside [0, 1)",
                self.prune_rate
            )));
        }
        if !(0.0..1.0).contains(&self.padding_fraction) {
            return Err(AttentionError::InvalidQuantization(format!(
                "padding fraction {} outside [0, 1)",
                self.padding_fraction
            )));
        }
        if !(0.0..=1.0).contains(&self.target_overlap) {
            return Err(AttentionError::InvalidQuantization(format!(
                "target overlap {} outside [0, 1]",
                self.target_overlap
            )));
        }
        Ok(())
    }
}

impl Default for TraceSpec {
    /// A BERT-Base-like head: s = 384, d = 64, 74.6 % pruning,
    /// 46 % padding, 85 % adjacent overlap.
    fn default() -> Self {
        TraceSpec {
            seq_len: 384,
            head_dim: 64,
            prune_rate: 0.746,
            padding_fraction: 0.46,
            target_overlap: 0.85,
        }
    }
}

/// One synthetic attention head: Q/K/V matrices, padding mask, the
/// calibrated learned threshold, and the digital-reference pruning
/// decisions with their statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadTrace {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    padding: PaddingMask,
    threshold: f32,
    config: AttentionConfig,
    decisions: Vec<PruneDecision>,
    stats: PruningStats,
}

impl HeadTrace {
    /// Query matrix, `s × d` (padded rows are zero).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Key matrix, `s × d` (padded rows are zero).
    pub fn k(&self) -> &Matrix {
        &self.k
    }

    /// Value matrix, `s × d` (padded rows are zero).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// The padding mask.
    pub fn padding(&self) -> PaddingMask {
        self.padding
    }

    /// The calibrated learned pruning threshold (Eq. 3's `Th`).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The head configuration (embedding size and score scale).
    pub fn config(&self) -> AttentionConfig {
        self.config
    }

    /// Total sequence length including padding.
    pub fn seq_len(&self) -> usize {
        self.k.rows()
    }

    /// Number of live queries/keys.
    pub fn live_tokens(&self) -> usize {
        self.padding.live()
    }

    /// The digital-reference pruning decisions, one per query (padded
    /// queries are fully pruned; padded keys are pruned everywhere).
    pub fn reference_decisions(&self) -> &[PruneDecision] {
        &self.decisions
    }

    /// Pruning statistics measured over the live queries.
    pub fn stats(&self) -> PruningStats {
        self.stats
    }

    /// Raw (unpruned, unpadded-masked) score row for query `i` against
    /// every key, in full precision.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn score_row(&self, i: usize) -> Vec<f32> {
        let scale = self.config.scale();
        (0..self.k.rows())
            .map(|j| {
                scale
                    * self
                        .q
                        .row(i)
                        .iter()
                        .zip(self.k.row(j))
                        .map(|(a, b)| a * b)
                        .sum::<f32>()
            })
            .collect()
    }
}

/// Deterministic generator of [`HeadTrace`]s.
///
/// Each call to [`TraceGenerator::generate`] consumes fresh randomness
/// from the generator's stream, so consecutive calls give independent
/// heads while the whole sequence stays reproducible from the seed.
///
/// # Example
///
/// ```
/// use sprint_workloads::{TraceGenerator, TraceSpec};
///
/// let spec = TraceSpec::default().with_seq_len(96);
/// let a = TraceGenerator::new(1).generate(&spec).unwrap();
/// let b = TraceGenerator::new(1).generate(&spec).unwrap();
/// assert_eq!(a.threshold(), b.threshold(), "same seed, same trace");
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    rng: StdRng,
}

/// Adjacent-query drift correlation of the topic random walk. Fixed;
/// the salience blend λ is the calibrated knob. 0.82 puts the
/// topic-only overlap floor near 0.63, below every studied model's
/// observed overlap, so the λ search can always reach its target.
const DRIFT_RHO: f64 = 0.82;
/// Score-structure coefficient: the salience term contributes up to
/// `9λ·γ` and the topic term is `N(0, (9(1−λ))²)`, so scores span
/// roughly ±15 — the peaky post-softmax distributions of trained
/// transformers, where the pruned tail carries a few percent of the
/// probability mass (which is what makes runtime pruning
/// accuracy-neutral, §II-A).
const SCORE_COEFF: f64 = 9.0;
/// Calibration sequence length for the λ search.
const CALIBRATION_LEN: usize = 192;

impl TraceGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one head trace matching `spec`.
    ///
    /// The salience blend is first calibrated on a reduced-size
    /// instance so the measured adjacent overlap lands near
    /// `spec.target_overlap`, then the full-size trace is synthesized
    /// and its threshold calibrated to `spec.prune_rate`.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec fails validation.
    pub fn generate(&mut self, spec: &TraceSpec) -> Result<HeadTrace, AttentionError> {
        spec.validate()?;
        let cal_seed = self.rng.gen::<u64>();
        let lambda = calibrate_lambda(spec, cal_seed);
        let build_seed = self.rng.gen::<u64>();
        build_trace(spec, lambda, build_seed)
    }

    /// Generates `n` independent head traces for the same spec, fanned
    /// out across cores.
    ///
    /// Per-trace randomness (the calibration seed and the build seed)
    /// is drawn from the generator's stream *in sequential order* before
    /// the fan-out, so the result is element-for-element identical to
    /// `n` sequential [`TraceGenerator::generate`] calls — and the
    /// generator's stream position afterwards is the same too.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-index) generation error.
    pub fn generate_many(
        &mut self,
        spec: &TraceSpec,
        n: usize,
    ) -> Result<Vec<HeadTrace>, AttentionError> {
        spec.validate()?;
        let seeds: Vec<(u64, u64)> = (0..n)
            .map(|_| (self.rng.gen::<u64>(), self.rng.gen::<u64>()))
            .collect();
        sprint_parallel::par_try_map(&seeds, |&(cal_seed, build_seed)| {
            let lambda = calibrate_lambda(spec, cal_seed);
            build_trace(spec, lambda, build_seed)
        })
    }
}

/// The temporal shape of a synthetic arrival stream — how requests
/// cluster in time at a fixed long-run mean rate.
///
/// Every shape preserves [`ArrivalSpec::mean_interarrival_ns`] as the
/// long-run mean gap; only the clustering changes. The serving stress
/// harness (`sprint-server`'s `stress_test`) replays all three to
/// exercise admission control under steady, bursty and ramping load.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ArrivalShape {
    /// Memoryless (Poisson) arrivals: exponential inter-arrival gaps,
    /// the standard model for independent user traffic.
    #[default]
    Poisson,
    /// On/off burst traffic: arrivals come in bursts of `size`
    /// requests scattered uniformly over a `spread_ns` window, with
    /// burst *starts* following a Poisson process whose mean gap is
    /// `size × mean_interarrival_ns` — so the long-run rate matches
    /// the Poisson shape while the instantaneous rate spikes.
    Burst {
        /// Arrivals per burst (≥ 1). The final burst truncates at the
        /// stream's total `count`.
        size: usize,
        /// Window (ns of virtual time) each burst's arrivals scatter
        /// over, uniformly. Zero means fully simultaneous arrivals.
        spread_ns: f64,
    },
    /// Linearly ramping load: arrival `i`'s expected gap is
    /// `mean_interarrival_ns` scaled by the interpolation of
    /// `start_factor → end_factor` across the stream (gaps stay
    /// exponential around that moving mean). `start_factor > 1.0 >
    /// end_factor` ramps the offered rate *up* — the warm-up-then-slam
    /// profile capacity tests use.
    Ramp {
        /// Gap multiplier at the first arrival (> 0, finite).
        start_factor: f64,
        /// Gap multiplier at the last arrival (> 0, finite).
        end_factor: f64,
    },
}

/// Specification of a synthetic request-arrival stream for the
/// trace-driven serving loop (`sprint_engine::ServeLoop`) and the
/// HTTP stress harness.
///
/// The [`ArrivalShape`] controls clustering (steady Poisson, bursts,
/// or a linear ramp) at the same long-run mean rate. Each arrival
/// picks one of `templates` request templates uniformly, so a
/// mixed-model stream needs no extra machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Number of arrivals to draw.
    pub count: usize,
    /// Long-run mean inter-arrival gap in nanoseconds of virtual time.
    pub mean_interarrival_ns: f64,
    /// Number of request templates arrivals choose from (uniformly).
    pub templates: usize,
    /// How arrivals cluster in time (default: Poisson).
    pub shape: ArrivalShape,
}

impl ArrivalSpec {
    /// A memoryless (Poisson) stream — the default shape.
    pub fn poisson(count: usize, mean_interarrival_ns: f64, templates: usize) -> Self {
        ArrivalSpec {
            count,
            mean_interarrival_ns,
            templates,
            shape: ArrivalShape::Poisson,
        }
    }

    /// Returns the spec reshaped to bursts of `size` arrivals spread
    /// over `spread_ns` (see [`ArrivalShape::Burst`]).
    #[must_use]
    pub fn burst(mut self, size: usize, spread_ns: f64) -> Self {
        self.shape = ArrivalShape::Burst { size, spread_ns };
        self
    }

    /// Returns the spec reshaped to a linear gap ramp from
    /// `start_factor` to `end_factor` (see [`ArrivalShape::Ramp`]).
    #[must_use]
    pub fn ramp(mut self, start_factor: f64, end_factor: f64) -> Self {
        self.shape = ArrivalShape::Ramp {
            start_factor,
            end_factor,
        };
        self
    }

    fn validate(&self) -> Result<(), AttentionError> {
        if self.mean_interarrival_ns <= 0.0 || !self.mean_interarrival_ns.is_finite() {
            return Err(AttentionError::InvalidQuantization(format!(
                "mean inter-arrival {} must be positive and finite",
                self.mean_interarrival_ns
            )));
        }
        if self.templates == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "templates",
                value: 0,
            });
        }
        match self.shape {
            ArrivalShape::Poisson => {}
            ArrivalShape::Burst { size, spread_ns } => {
                if size == 0 {
                    return Err(AttentionError::InvalidDimension {
                        name: "burst size",
                        value: 0,
                    });
                }
                if spread_ns < 0.0 || !spread_ns.is_finite() {
                    return Err(AttentionError::InvalidQuantization(format!(
                        "burst spread {spread_ns} must be non-negative and finite"
                    )));
                }
            }
            ArrivalShape::Ramp {
                start_factor,
                end_factor,
            } => {
                for (name, f) in [("start", start_factor), ("end", end_factor)] {
                    if f <= 0.0 || !f.is_finite() {
                        return Err(AttentionError::InvalidQuantization(format!(
                            "ramp {name} factor {f} must be positive and finite"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One request arrival of a synthetic traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time in nanoseconds of virtual time (non-decreasing
    /// within a generated stream).
    pub at_ns: u64,
    /// Which request template this arrival asks for
    /// (`0..spec.templates`).
    pub template: usize,
}

impl TraceGenerator {
    /// Draws one arrival stream from the generator's randomness.
    ///
    /// The stream is sorted by arrival time and fully determined by
    /// the generator seed, stream position, and spec — the same seed
    /// always replays the same traffic, for every [`ArrivalShape`].
    ///
    /// # Errors
    ///
    /// Returns an error when the spec fails validation.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_workloads::{ArrivalSpec, TraceGenerator};
    ///
    /// let spec = ArrivalSpec::poisson(16, 1_000_000.0, 2);
    /// let stream = TraceGenerator::new(3).arrivals(&spec).unwrap();
    /// assert_eq!(stream.len(), 16);
    /// assert!(stream.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    /// // The same spec reshaped into bursts of 8 over a 10 µs window:
    /// let bursty = TraceGenerator::new(3).arrivals(&spec.burst(8, 10_000.0)).unwrap();
    /// assert_eq!(bursty.len(), 16);
    /// ```
    pub fn arrivals(&mut self, spec: &ArrivalSpec) -> Result<Vec<Arrival>, AttentionError> {
        spec.validate()?;
        fn exp_gap(rng: &mut StdRng, mean: f64) -> f64 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -mean * u.ln()
        }
        let mut out = Vec::with_capacity(spec.count);
        match spec.shape {
            ArrivalShape::Poisson => {
                let mut t = 0.0f64;
                for _ in 0..spec.count {
                    t += exp_gap(&mut self.rng, spec.mean_interarrival_ns);
                    out.push(Arrival {
                        at_ns: t as u64,
                        template: self.rng.gen_range(0..spec.templates),
                    });
                }
            }
            ArrivalShape::Burst { size, spread_ns } => {
                // Burst starts are Poisson at 1/size the arrival rate,
                // so `size` arrivals per burst keep the long-run mean.
                let mut burst_start = 0.0f64;
                let mut emitted = 0usize;
                while emitted < spec.count {
                    burst_start += exp_gap(&mut self.rng, size as f64 * spec.mean_interarrival_ns);
                    for _ in 0..size.min(spec.count - emitted) {
                        let offset = if spread_ns > 0.0 {
                            self.rng.gen_range(0.0..spread_ns)
                        } else {
                            0.0
                        };
                        out.push(Arrival {
                            at_ns: (burst_start + offset) as u64,
                            template: self.rng.gen_range(0..spec.templates),
                        });
                        emitted += 1;
                    }
                }
                // Bursts may overlap when the spread exceeds the burst
                // gap; a stable sort restores the time order without
                // perturbing same-instant draws.
                out.sort_by_key(|a| a.at_ns);
            }
            ArrivalShape::Ramp {
                start_factor,
                end_factor,
            } => {
                let mut t = 0.0f64;
                let denom = spec.count.saturating_sub(1).max(1) as f64;
                for i in 0..spec.count {
                    let factor = start_factor + (end_factor - start_factor) * (i as f64 / denom);
                    t += exp_gap(&mut self.rng, spec.mean_interarrival_ns * factor);
                    out.push(Arrival {
                        at_ns: t as u64,
                        template: self.rng.gen_range(0..spec.templates),
                    });
                }
            }
        }
        Ok(out)
    }
}

/// One event of a session-churn schedule: the open/step/evict
/// interleaving the paged-KV serving layers are exercised under.
/// Sessions open implicitly at their first `Step` and close when their
/// last one is served; an evicted session rehydrates transparently at
/// its next `Step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Decode one token on session `session`.
    Step {
        /// Session index in `0..spec.sessions`.
        session: usize,
    },
    /// Drop session `session`'s KV pages back to the pool (its token
    /// history survives outside the engine).
    Evict {
        /// Session index in `0..spec.sessions`.
        session: usize,
    },
}

impl ChurnEvent {
    /// The session the event addresses.
    pub fn session(&self) -> usize {
        match *self {
            ChurnEvent::Step { session } | ChurnEvent::Evict { session } => session,
        }
    }
}

/// Shape of a session-churn schedule
/// ([`TraceGenerator::churn_schedule`]): `sessions` concurrent decode
/// streams of `steps_per_session` tokens each, randomly interleaved,
/// with evictions injected at `evict_fraction` per served step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Concurrent decode sessions.
    pub sessions: usize,
    /// Tokens each session decodes.
    pub steps_per_session: usize,
    /// Probability that an eviction of a random still-live session is
    /// injected after each served step (`0.0..=1.0`).
    pub evict_fraction: f64,
}

impl ChurnSpec {
    /// Builds a churn shape.
    pub fn new(sessions: usize, steps_per_session: usize, evict_fraction: f64) -> Self {
        ChurnSpec {
            sessions,
            steps_per_session,
            evict_fraction,
        }
    }

    fn validate(&self) -> Result<(), AttentionError> {
        if self.sessions == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "sessions",
                value: 0,
            });
        }
        if self.steps_per_session == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "steps per session",
                value: 0,
            });
        }
        if !(0.0..=1.0).contains(&self.evict_fraction) || !self.evict_fraction.is_finite() {
            return Err(AttentionError::InvalidQuantization(format!(
                "evict fraction {} must lie in [0, 1]",
                self.evict_fraction
            )));
        }
        Ok(())
    }
}

impl TraceGenerator {
    /// Draws one random open/step/evict interleaving from the
    /// generator's randomness: every session serves exactly
    /// `steps_per_session` steps in order, the interleaving across
    /// sessions is uniform over the live set, and each served step
    /// injects — with probability `evict_fraction` — an eviction of a
    /// random session that still has steps left. Fully determined by
    /// the generator seed and spec; sweeping seeds sweeps
    /// interleavings.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec fails validation.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_workloads::{ChurnEvent, ChurnSpec, TraceGenerator};
    ///
    /// let spec = ChurnSpec::new(4, 8, 0.25);
    /// let schedule = TraceGenerator::new(7).churn_schedule(&spec).unwrap();
    /// let steps = schedule
    ///     .iter()
    ///     .filter(|e| matches!(e, ChurnEvent::Step { .. }))
    ///     .count();
    /// assert_eq!(steps, 4 * 8);
    /// let same = TraceGenerator::new(7).churn_schedule(&spec).unwrap();
    /// assert_eq!(schedule, same, "same seed, same interleaving");
    /// ```
    pub fn churn_schedule(&mut self, spec: &ChurnSpec) -> Result<Vec<ChurnEvent>, AttentionError> {
        spec.validate()?;
        let mut remaining = vec![spec.steps_per_session; spec.sessions];
        let mut live: Vec<usize> = (0..spec.sessions).collect();
        let mut out = Vec::with_capacity(spec.sessions * spec.steps_per_session);
        while !live.is_empty() {
            let pick = self.rng.gen_range(0..live.len());
            let session = live[pick];
            out.push(ChurnEvent::Step { session });
            remaining[session] -= 1;
            if remaining[session] == 0 {
                live.swap_remove(pick);
            }
            if !live.is_empty() && spec.evict_fraction > 0.0 {
                let roll: f64 = self.rng.gen_range(0.0..1.0);
                if roll < spec.evict_fraction {
                    let victim = live[self.rng.gen_range(0..live.len())];
                    out.push(ChurnEvent::Evict { session: victim });
                }
            }
        }
        Ok(out)
    }
}

/// Binary-searches the salience blend λ so that the measured
/// adjacent overlap on a calibration-size instance matches the
/// target. Overlap is monotone in λ: more salience weight means
/// more of the kept set is the static popular-key set.
fn calibrate_lambda(spec: &TraceSpec, seed: u64) -> f64 {
    let cal_live = spec.live_tokens().min(CALIBRATION_LEN);
    let cal_spec = TraceSpec {
        seq_len: cal_live,
        padding_fraction: 0.0,
        ..*spec
    };
    let (mut lo, mut hi) = (0.02f64, 0.97f64);
    for _ in 0..9 {
        let mid = 0.5 * (lo + hi);
        let trace = match build_trace(&cal_spec, mid, seed) {
            Ok(t) => t,
            Err(_) => return 0.5,
        };
        if trace.stats().mean_adjacent_overlap < spec.target_overlap {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Synthesizes the actual matrices for a given salience blend.
fn build_trace(spec: &TraceSpec, lambda: f64, seed: u64) -> Result<HeadTrace, AttentionError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = spec.seq_len;
    let d = spec.head_dim;
    let live = spec.live_tokens();
    let config = AttentionConfig::new(d);
    let padding = PaddingMask::new(s, live)?;

    // Shared salience direction.
    let u = unit_vec(&mut rng, d);

    // Keys: salient cluster + topical remainder.
    let mut k = Matrix::zeros(s, d)?;
    for j in 0..live {
        let gamma: f64 = if rng.gen_bool(0.3) {
            rng.gen_range(0.55..0.9)
        } else {
            rng.gen_range(0.0..0.25)
        };
        let xi = unit_vec(&mut rng, d);
        let mag = 1.0 + 0.05 * normal(&mut rng);
        let ortho = (1.0 - gamma * gamma).sqrt();
        let row = k.row_mut(j);
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = ((gamma * u[c] + ortho * xi[c]) * mag) as f32;
        }
    }

    // Queries: slow topic drift blended with the salience direction.
    // With score = (1/√d)·q·k and k ≈ γu + √(1−γ²)ξ, the coefficients
    // below give score ≈ SCORE_COEFF·(λγ + (1−λ)·z) where z ~ N(0,1)
    // is the topic affinity: salient keys score high for everyone,
    // topical keys for the queries whose drift vector aligns.
    let mut q = Matrix::zeros(s, d)?;
    let mut w = unit_vec(&mut rng, d);
    let alpha = SCORE_COEFF * lambda * (d as f64).sqrt();
    let beta = SCORE_COEFF * (1.0 - lambda) * d as f64;
    for i in 0..live {
        if i > 0 {
            let g = unit_vec(&mut rng, d);
            let mut next: Vec<f64> = w
                .iter()
                .zip(&g)
                .map(|(wi, gi)| DRIFT_RHO * wi + (1.0 - DRIFT_RHO * DRIFT_RHO).sqrt() * gi)
                .collect();
            crate::stats::normalize(&mut next);
            w = next;
        }
        let row = q.row_mut(i);
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = (alpha * u[c] + beta * w[c]) as f32;
        }
    }

    // Values: independent content per key.
    let mut v = Matrix::zeros(s, d)?;
    for j in 0..live {
        let row = v.row_mut(j);
        for slot in row.iter_mut() {
            *slot = (0.5 * normal(&mut rng)) as f32;
        }
    }

    // Live-score matrix for threshold calibration.
    let mut live_scores = Matrix::zeros(live, live)?;
    for i in 0..live {
        for j in 0..live {
            let score = config.scale()
                * q.row(i)
                    .iter()
                    .zip(k.row(j))
                    .map(|(a, b)| a * b)
                    .sum::<f32>();
            live_scores.set(i, j, score);
        }
    }
    let threshold = calibrate_threshold(&live_scores, spec.prune_rate)?;

    // Digital-reference decisions over the full sequence.
    let mut decisions = Vec::with_capacity(s);
    for i in 0..s {
        if i >= live {
            decisions.push(PruneDecision::new(vec![true; s]));
            continue;
        }
        let mut pruned = vec![true; s];
        for (j, flag) in pruned.iter_mut().enumerate().take(live) {
            *flag = live_scores.get(i, j) < threshold;
        }
        // Threshold pruning is relative to the row's own score scale:
        // the argmax key always survives (softmax over zero keys is
        // undefined), so force-keep it even when the globally
        // calibrated threshold would drop the whole row.
        let argmax = (0..live)
            .max_by(|&a, &b| live_scores.get(i, a).total_cmp(&live_scores.get(i, b)))
            .expect("live > 0 for live rows");
        pruned[argmax] = false;
        decisions.push(PruneDecision::new(pruned));
    }
    let stats = pruning_stats(&decisions[..live]);

    let _ = dot(&u, &w); // keep helper linked for doc purposes
    Ok(HeadTrace {
        q,
        k,
        v,
        padding,
        threshold,
        config,
        decisions,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> TraceSpec {
        TraceSpec {
            seq_len: 128,
            head_dim: 32,
            prune_rate: 0.75,
            padding_fraction: 0.25,
            target_overlap: 0.85,
        }
    }

    #[test]
    fn spec_validation_rejects_bad_values() {
        let base = quick_spec();
        assert!(TraceSpec { seq_len: 0, ..base }.validate().is_err());
        assert!(TraceSpec {
            head_dim: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(TraceSpec {
            prune_rate: 1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(TraceSpec {
            padding_fraction: 1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(TraceSpec {
            target_overlap: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn builder_methods_override_fields() {
        let s = TraceSpec::default()
            .with_seq_len(100)
            .with_prune_rate(0.5)
            .with_overlap(0.7)
            .with_padding(0.1);
        assert_eq!(s.seq_len, 100);
        assert_eq!(s.prune_rate, 0.5);
        assert_eq!(s.target_overlap, 0.7);
        assert_eq!(s.padding_fraction, 0.1);
        assert_eq!(s.live_tokens(), 90);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = quick_spec();
        let a = TraceGenerator::new(9).generate(&spec).unwrap();
        let b = TraceGenerator::new(9).generate(&spec).unwrap();
        assert_eq!(a.q(), b.q());
        assert_eq!(a.threshold(), b.threshold());
        let c = TraceGenerator::new(10).generate(&spec).unwrap();
        assert_ne!(a.q(), c.q(), "different seeds differ");
    }

    #[test]
    fn padded_rows_are_zero_and_fully_pruned() {
        let spec = quick_spec();
        let t = TraceGenerator::new(1).generate(&spec).unwrap();
        let live = t.live_tokens();
        assert_eq!(live, 96);
        for i in live..t.seq_len() {
            assert!(t.q().row(i).iter().all(|&x| x == 0.0));
            assert!(t.k().row(i).iter().all(|&x| x == 0.0));
            assert_eq!(t.reference_decisions()[i].kept_count(), 0);
        }
        // Live queries never keep a padded key.
        for i in 0..live {
            for j in live..t.seq_len() {
                assert!(t.reference_decisions()[i].is_pruned(j));
            }
        }
    }

    #[test]
    fn pruning_rate_matches_target() {
        let spec = quick_spec();
        let t = TraceGenerator::new(2).generate(&spec).unwrap();
        let live = t.live_tokens();
        // Among live queries, the fraction of *live* keys pruned should
        // be near the target.
        let mut pruned = 0usize;
        let mut total = 0usize;
        for i in 0..live {
            let d = &t.reference_decisions()[i];
            for j in 0..live {
                total += 1;
                if d.is_pruned(j) {
                    pruned += 1;
                }
            }
        }
        let rate = pruned as f64 / total as f64;
        assert!(
            (rate - spec.prune_rate).abs() < 0.02,
            "rate={rate} target={}",
            spec.prune_rate
        );
    }

    #[test]
    fn adjacent_overlap_approaches_target() {
        let spec = quick_spec();
        let t = TraceGenerator::new(3).generate(&spec).unwrap();
        let overlap = t.stats().mean_adjacent_overlap;
        assert!(
            (overlap - spec.target_overlap).abs() < 0.12,
            "overlap={overlap} target={}",
            spec.target_overlap
        );
    }

    #[test]
    fn overlap_tracks_different_targets() {
        // The calibration must separate a low-locality ViT-like trace
        // from a high-locality BERT-like trace.
        let lo_spec = quick_spec().with_overlap(0.68).with_padding(0.0);
        let hi_spec = quick_spec().with_overlap(0.9).with_padding(0.0);
        let lo = TraceGenerator::new(4).generate(&lo_spec).unwrap();
        let hi = TraceGenerator::new(4).generate(&hi_spec).unwrap();
        assert!(
            hi.stats().mean_adjacent_overlap > lo.stats().mean_adjacent_overlap + 0.08,
            "hi={} lo={}",
            hi.stats().mean_adjacent_overlap,
            lo.stats().mean_adjacent_overlap
        );
    }

    #[test]
    fn overlap_exceeds_random_expectation() {
        // The central claim of Fig. 3: observed locality is well above
        // the hypergeometric expectation (= keep rate).
        let spec = quick_spec();
        let t = TraceGenerator::new(5).generate(&spec).unwrap();
        let random = 1.0 - spec.prune_rate;
        assert!(
            t.stats().mean_adjacent_overlap > 2.0 * random,
            "observed={} random={random}",
            t.stats().mean_adjacent_overlap
        );
    }

    #[test]
    fn score_row_matches_reference_decisions() {
        let spec = quick_spec();
        let t = TraceGenerator::new(6).generate(&spec).unwrap();
        let live = t.live_tokens();
        for i in (0..live).step_by(17) {
            let row = t.score_row(i);
            let d = &t.reference_decisions()[i];
            // The row's argmax key is force-kept regardless of the
            // global threshold (softmax needs at least one key), so it
            // is exempt from the pure-threshold relation.
            let argmax = (0..live)
                .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                .unwrap();
            assert!(d.is_kept(argmax), "argmax of query {i} must be kept");
            for (j, &rv) in row.iter().enumerate().take(live) {
                if j == argmax {
                    continue;
                }
                assert_eq!(d.is_pruned(j), rv < t.threshold(), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn arrival_streams_are_sorted_deterministic_and_calibrated() {
        let spec = ArrivalSpec::poisson(512, 50_000.0, 3);
        let a = TraceGenerator::new(11).arrivals(&spec).unwrap();
        let b = TraceGenerator::new(11).arrivals(&spec).unwrap();
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.iter().all(|x| x.template < 3));
        // Mean gap within 20% of the spec over 512 draws.
        let span = a.last().unwrap().at_ns as f64;
        let mean = span / spec.count as f64;
        assert!(
            (mean - spec.mean_interarrival_ns).abs() < 0.2 * spec.mean_interarrival_ns,
            "measured mean gap {mean}"
        );
        let c = TraceGenerator::new(12).arrivals(&spec).unwrap();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn arrival_spec_validation_rejects_bad_values() {
        let base = ArrivalSpec::poisson(4, 1000.0, 1);
        assert!(TraceGenerator::new(0).arrivals(&base).is_ok());
        assert!(TraceGenerator::new(0)
            .arrivals(&ArrivalSpec {
                mean_interarrival_ns: 0.0,
                ..base
            })
            .is_err());
        assert!(TraceGenerator::new(0)
            .arrivals(&ArrivalSpec {
                templates: 0,
                ..base
            })
            .is_err());
        assert!(TraceGenerator::new(0)
            .arrivals(&base.burst(0, 100.0))
            .is_err());
        assert!(TraceGenerator::new(0)
            .arrivals(&base.burst(4, -1.0))
            .is_err());
        assert!(TraceGenerator::new(0)
            .arrivals(&base.ramp(0.0, 1.0))
            .is_err());
        assert!(TraceGenerator::new(0)
            .arrivals(&base.ramp(1.0, f64::INFINITY))
            .is_err());
    }

    #[test]
    fn burst_arrivals_cluster_but_keep_long_run_rate() {
        let spec = ArrivalSpec::poisson(512, 50_000.0, 2).burst(8, 5_000.0);
        let a = TraceGenerator::new(31).arrivals(&spec).unwrap();
        let b = TraceGenerator::new(31).arrivals(&spec).unwrap();
        assert_eq!(a, b, "same seed, same burst stream");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(a.len(), 512);
        // Long-run rate matches the Poisson spec within 25%.
        let span = a.last().unwrap().at_ns as f64;
        let mean = span / spec.count as f64;
        assert!(
            (mean - spec.mean_interarrival_ns).abs() < 0.25 * spec.mean_interarrival_ns,
            "measured mean gap {mean}"
        );
        // Clustering: the median gap is far below the mean gap, because
        // most consecutive pairs land inside a burst's narrow spread.
        let mut gaps: Vec<u64> = a.windows(2).map(|w| w[1].at_ns - w[0].at_ns).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!(
            median < 0.2 * spec.mean_interarrival_ns,
            "median gap {median} should sit inside a burst spread"
        );
    }

    #[test]
    fn burst_final_burst_truncates_at_count() {
        // 10 arrivals in bursts of 8: one full burst plus a 2-wide tail.
        let spec = ArrivalSpec::poisson(10, 1_000.0, 1).burst(8, 100.0);
        let a = TraceGenerator::new(5).arrivals(&spec).unwrap();
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn ramp_arrivals_speed_up_when_end_factor_shrinks() {
        // Gap multiplier ramps 4.0 -> 0.25: the back half of the stream
        // must be denser (smaller gaps) than the front half.
        let spec = ArrivalSpec::poisson(400, 10_000.0, 1).ramp(4.0, 0.25);
        let a = TraceGenerator::new(17).arrivals(&spec).unwrap();
        let b = TraceGenerator::new(17).arrivals(&spec).unwrap();
        assert_eq!(a, b, "same seed, same ramp stream");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1].at_ns - w[0].at_ns).collect();
        let half = gaps.len() / 2;
        let front: f64 = gaps[..half].iter().sum::<u64>() as f64 / half as f64;
        let back: f64 = gaps[half..].iter().sum::<u64>() as f64 / (gaps.len() - half) as f64;
        assert!(
            back < 0.5 * front,
            "ramp should compress gaps: front mean {front}, back mean {back}"
        );
    }

    #[test]
    fn churn_schedule_serves_every_session_exactly_and_deterministically() {
        let spec = ChurnSpec::new(6, 17, 0.3);
        let a = TraceGenerator::new(11).churn_schedule(&spec).unwrap();
        let b = TraceGenerator::new(11).churn_schedule(&spec).unwrap();
        assert_eq!(a, b, "same seed, same interleaving");
        let mut steps = vec![0usize; spec.sessions];
        let mut evictions = 0usize;
        for event in &a {
            match *event {
                ChurnEvent::Step { session } => {
                    assert!(session < spec.sessions);
                    steps[session] += 1;
                }
                ChurnEvent::Evict { session } => {
                    assert!(
                        steps[session] < spec.steps_per_session,
                        "evicted session {session} had already finished"
                    );
                    evictions += 1;
                }
            }
        }
        assert!(steps.iter().all(|&s| s == spec.steps_per_session));
        assert!(
            evictions > 0,
            "evict fraction 0.3 over 102 steps fired never"
        );
        // A different seed gives a different interleaving.
        let c = TraceGenerator::new(12).churn_schedule(&spec).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn churn_schedule_with_zero_evict_fraction_is_pure_steps() {
        let spec = ChurnSpec::new(3, 5, 0.0);
        let events = TraceGenerator::new(2).churn_schedule(&spec).unwrap();
        assert_eq!(events.len(), 15);
        assert!(events.iter().all(|e| matches!(e, ChurnEvent::Step { .. })));
    }

    #[test]
    fn churn_spec_validation_rejects_degenerate_shapes() {
        assert!(TraceGenerator::new(0)
            .churn_schedule(&ChurnSpec::new(0, 4, 0.1))
            .is_err());
        assert!(TraceGenerator::new(0)
            .churn_schedule(&ChurnSpec::new(4, 0, 0.1))
            .is_err());
        assert!(TraceGenerator::new(0)
            .churn_schedule(&ChurnSpec::new(4, 4, -0.1))
            .is_err());
        assert!(TraceGenerator::new(0)
            .churn_schedule(&ChurnSpec::new(4, 4, 1.5))
            .is_err());
        assert!(TraceGenerator::new(0)
            .churn_schedule(&ChurnSpec::new(4, 4, f64::NAN))
            .is_err());
    }

    #[test]
    fn generate_many_yields_independent_heads() {
        let spec = quick_spec();
        let traces = TraceGenerator::new(7).generate_many(&spec, 3).unwrap();
        assert_eq!(traces.len(), 3);
        assert_ne!(traces[0].q(), traces[1].q());
        assert_ne!(traces[1].q(), traces[2].q());
    }

    #[test]
    fn generate_many_matches_sequential_generation() {
        let spec = quick_spec();
        let batched = TraceGenerator::new(21).generate_many(&spec, 3).unwrap();
        let mut gen = TraceGenerator::new(21);
        for (i, expected) in batched.iter().enumerate() {
            let sequential = gen.generate(&spec).unwrap();
            assert_eq!(expected, &sequential, "trace {i} diverges");
        }
        // The generator's stream position advances identically, too.
        let mut after_batch = TraceGenerator::new(21);
        let _ = after_batch.generate_many(&spec, 3).unwrap();
        assert_eq!(
            after_batch.generate(&spec).unwrap(),
            gen.generate(&spec).unwrap(),
            "stream position after batch matches sequential"
        );
    }
}
