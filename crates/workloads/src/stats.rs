//! Small deterministic sampling helpers (normal deviates, unit vectors).

use rand::Rng;

/// Draws one standard-normal deviate via the Box-Muller transform.
///
/// The offline dependency set has no `rand_distr`, so the two-line
/// transform lives here.
pub(crate) fn normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills a vector with i.i.d. standard-normal deviates.
pub(crate) fn normal_vec<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| normal(rng)).collect()
}

/// Returns a uniformly random unit vector of dimension `n`.
pub(crate) fn unit_vec<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    loop {
        let v = normal_vec(rng, n);
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

/// Normalizes `v` in place to unit length; leaves an all-zero vector
/// untouched.
pub(crate) fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let v = unit_vec(&mut rng, 64);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_vectors_are_roughly_isotropic() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = unit_vec(&mut rng, 64);
        let b = unit_vec(&mut rng, 64);
        // Random high-dimensional unit vectors are nearly orthogonal.
        assert!(dot(&a, &b).abs() < 0.5);
    }

    #[test]
    fn normalize_handles_zero_vector() {
        let mut v = vec![0.0; 4];
        normalize(&mut v);
        assert_eq!(v, vec![0.0; 4]);
        let mut w = vec![3.0, 4.0];
        normalize(&mut w);
        assert!((w[0] - 0.6).abs() < 1e-12);
    }
}
