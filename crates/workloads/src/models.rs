//! The eight studied workloads (§VII "Benchmarks").

use serde::{Deserialize, Serialize};

use crate::trace::TraceSpec;

/// The transformer models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// BERT-Base on SQuAD.
    BertBase,
    /// BERT-Large on SQuAD.
    BertLarge,
    /// ALBERT-X-Large on SQuAD.
    AlbertXl,
    /// ALBERT-XX-Large on SQuAD.
    AlbertXxl,
    /// ViT-Base on CIFAR-10.
    VitBase,
    /// GPT-2-Large on WikiText-2.
    Gpt2Large,
    /// Synthetic futuristic model, 2K sequence.
    Synth1,
    /// Synthetic futuristic model, 4K sequence.
    Synth2,
}

/// The dataset each model is fine-tuned and evaluated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Stanford Question Answering Dataset.
    Squad,
    /// CIFAR-10 image classification.
    Cifar10,
    /// WikiText-2 language modelling.
    WikiText2,
    /// GLUE/CoLA (used in the Fig. 2 illustration and MRPC-style
    /// accuracy studies).
    Glue,
    /// Synthetic long-sequence data.
    Synthetic,
}

/// Configuration of one studied workload, with the constants the paper
/// reports in §VII: default sequence length, embedding size (d = 64
/// for every model), learned pruning rate, zero-padding ratio and the
/// baseline task accuracy of Fig. 9.
///
/// # Example
///
/// ```
/// use sprint_workloads::ModelConfig;
///
/// let m = ModelConfig::gpt2_large();
/// assert_eq!(m.seq_len, 1024);
/// assert!((m.pruning_rate - 0.739).abs() < 1e-9);
/// assert!(m.is_generative());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which model this is.
    pub kind: ModelKind,
    /// Display name used in reports ("BERT-B", ...).
    pub name: &'static str,
    /// Evaluation dataset.
    pub dataset: Dataset,
    /// Default sequence length (197 CIFAR-10 / 384 SQuAD /
    /// 1024 WikiText-2 / 2048 / 4096 synthetic).
    pub seq_len: usize,
    /// Per-head embedding size; 64 for all studied models.
    pub head_dim: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Attention layers.
    pub layers: usize,
    /// Learned runtime pruning rate (fraction of scores pruned among
    /// live tokens).
    pub pruning_rate: f64,
    /// Mean fraction of the sequence that is zero padding
    /// (0.46 for SQuAD models, 0 for ViT/GPT-2, 0.5 synthetic).
    pub padding_fraction: f64,
    /// Mean adjacent-query kept-set overlap observed on the real
    /// dataset (Fig. 3, "Dataset" bars).
    pub adjacent_overlap: f64,
    /// Baseline (software-only) task accuracy, or perplexity for
    /// generative models (Fig. 9).
    pub baseline_metric: f64,
}

impl ModelConfig {
    /// BERT-Base / SQuAD: s = 384, 74.6 % pruning, 46 % padding.
    pub fn bert_base() -> Self {
        ModelConfig {
            kind: ModelKind::BertBase,
            name: "BERT-B",
            dataset: Dataset::Squad,
            seq_len: 384,
            head_dim: 64,
            heads: 12,
            layers: 12,
            pruning_rate: 0.746,
            padding_fraction: 0.46,
            adjacent_overlap: 0.8556,
            baseline_metric: 0.80198,
        }
    }

    /// BERT-Large / SQuAD: s = 384, 75.5 % pruning.
    pub fn bert_large() -> Self {
        ModelConfig {
            kind: ModelKind::BertLarge,
            name: "BERT-L",
            dataset: Dataset::Squad,
            seq_len: 384,
            head_dim: 64,
            heads: 16,
            layers: 24,
            pruning_rate: 0.755,
            padding_fraction: 0.46,
            adjacent_overlap: 0.85,
            baseline_metric: 0.8351,
        }
    }

    /// ALBERT-X-Large / SQuAD: s = 384, 65.1 % pruning.
    pub fn albert_xl() -> Self {
        ModelConfig {
            kind: ModelKind::AlbertXl,
            name: "ALBERT-XL",
            dataset: Dataset::Squad,
            seq_len: 384,
            head_dim: 64,
            heads: 16,
            layers: 24,
            pruning_rate: 0.651,
            padding_fraction: 0.46,
            adjacent_overlap: 0.84,
            baseline_metric: 0.857142857,
        }
    }

    /// ALBERT-XX-Large / SQuAD: s = 384, 73.1 % pruning.
    pub fn albert_xxl() -> Self {
        ModelConfig {
            kind: ModelKind::AlbertXxl,
            name: "ALBERT-XXL",
            dataset: Dataset::Squad,
            seq_len: 384,
            head_dim: 64,
            heads: 64,
            layers: 12,
            pruning_rate: 0.731,
            padding_fraction: 0.46,
            adjacent_overlap: 0.8756,
            baseline_metric: 0.873509934,
        }
    }

    /// ViT-Base / CIFAR-10: s = 197, 64.4 % pruning, no padding.
    pub fn vit_base() -> Self {
        ModelConfig {
            kind: ModelKind::VitBase,
            name: "ViT-B",
            dataset: Dataset::Cifar10,
            seq_len: 197,
            head_dim: 64,
            heads: 12,
            layers: 12,
            pruning_rate: 0.644,
            padding_fraction: 0.0,
            adjacent_overlap: 0.739,
            baseline_metric: 0.9873,
        }
    }

    /// GPT-2-Large / WikiText-2: s = 1024, 73.9 % pruning.
    /// The baseline metric is perplexity (17.55; lower is better).
    ///
    /// GPT-2 is autoregressive: the causal mask blanks the upper
    /// triangle of every attention map, which SPRINT's 2-D sequence
    /// reduction skips exactly like a padded region. The profile
    /// models this with an equivalent masked fraction of `1 − 1/√2`
    /// (the live square with the same area as the causal triangle).
    /// Its adjacent-query overlap is the highest of the studied
    /// models — the paper reports only ~2.1 % of the sequence fetched
    /// between adjacent queries.
    pub fn gpt2_large() -> Self {
        ModelConfig {
            kind: ModelKind::Gpt2Large,
            name: "GPT-2-L",
            dataset: Dataset::WikiText2,
            seq_len: 1024,
            head_dim: 64,
            heads: 20,
            layers: 36,
            pruning_rate: 0.739,
            padding_fraction: 0.29,
            adjacent_overlap: 0.92,
            baseline_metric: 17.55,
        }
    }

    /// Synthetic 2K-sequence futuristic model: 75 % pruning,
    /// 50 % padding (§VII).
    pub fn synth1() -> Self {
        ModelConfig {
            kind: ModelKind::Synth1,
            name: "Synth-1",
            dataset: Dataset::Synthetic,
            seq_len: 2048,
            head_dim: 64,
            heads: 16,
            layers: 24,
            pruning_rate: 0.75,
            padding_fraction: 0.5,
            adjacent_overlap: 0.84,
            baseline_metric: 0.85,
        }
    }

    /// Synthetic 4K-sequence futuristic model: 75 % pruning,
    /// 50 % padding (§VII).
    pub fn synth2() -> Self {
        ModelConfig {
            kind: ModelKind::Synth2,
            name: "Synth-2",
            dataset: Dataset::Synthetic,
            seq_len: 4096,
            head_dim: 64,
            heads: 16,
            layers: 24,
            pruning_rate: 0.75,
            padding_fraction: 0.5,
            adjacent_overlap: 0.84,
            baseline_metric: 0.85,
        }
    }

    /// All eight studied workloads, in the order the paper's figures
    /// list them.
    pub fn all() -> Vec<ModelConfig> {
        vec![
            ModelConfig::bert_base(),
            ModelConfig::bert_large(),
            ModelConfig::albert_xl(),
            ModelConfig::albert_xxl(),
            ModelConfig::vit_base(),
            ModelConfig::gpt2_large(),
            ModelConfig::synth1(),
            ModelConfig::synth2(),
        ]
    }

    /// The six real (non-synthetic) models of the accuracy study.
    pub fn real_models() -> Vec<ModelConfig> {
        ModelConfig::all()
            .into_iter()
            .filter(|m| m.dataset != Dataset::Synthetic)
            .collect()
    }

    /// Whether the baseline metric is a perplexity (lower is better)
    /// rather than an accuracy.
    pub fn is_generative(&self) -> bool {
        matches!(self.kind, ModelKind::Gpt2Large)
    }

    /// Mean number of live (non-padded) tokens per input.
    pub fn live_tokens(&self) -> usize {
        let live = (self.seq_len as f64 * (1.0 - self.padding_fraction)).round() as usize;
        live.clamp(1, self.seq_len)
    }

    /// Fraction of live keys kept per query (1 − pruning rate).
    pub fn keep_rate(&self) -> f64 {
        1.0 - self.pruning_rate
    }

    /// A [`TraceSpec`] that generates synthetic heads matching this
    /// model's statistics.
    pub fn trace_spec(&self) -> TraceSpec {
        TraceSpec {
            seq_len: self.seq_len,
            head_dim: self.head_dim,
            prune_rate: self.pruning_rate,
            padding_fraction: self.padding_fraction,
            target_overlap: self.adjacent_overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_eight_workloads_in_paper_order() {
        let all = ModelConfig::all();
        assert_eq!(all.len(), 8);
        let names: Vec<&str> = all.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "BERT-B",
                "BERT-L",
                "ALBERT-XL",
                "ALBERT-XXL",
                "ViT-B",
                "GPT-2-L",
                "Synth-1",
                "Synth-2"
            ]
        );
    }

    #[test]
    fn sequence_lengths_match_section_seven() {
        let by_name: Vec<(usize, &str)> = ModelConfig::all()
            .iter()
            .map(|m| (m.seq_len, m.name))
            .collect();
        assert!(by_name.contains(&(197, "ViT-B")));
        assert!(by_name.contains(&(384, "BERT-B")));
        assert!(by_name.contains(&(1024, "GPT-2-L")));
        assert!(by_name.contains(&(2048, "Synth-1")));
        assert!(by_name.contains(&(4096, "Synth-2")));
    }

    #[test]
    fn pruning_rates_match_section_seven() {
        let rates: Vec<f64> = ModelConfig::all().iter().map(|m| m.pruning_rate).collect();
        assert_eq!(
            rates,
            vec![0.746, 0.755, 0.651, 0.731, 0.644, 0.739, 0.75, 0.75]
        );
    }

    #[test]
    fn every_model_uses_embedding_64() {
        assert!(ModelConfig::all().iter().all(|m| m.head_dim == 64));
    }

    #[test]
    fn padding_fractions_match_paper() {
        let vit = ModelConfig::vit_base();
        assert_eq!(vit.padding_fraction, 0.0, "ViT has no padded area");
        let gpt = ModelConfig::gpt2_large();
        assert!(
            (gpt.padding_fraction - 0.29).abs() < 1e-9,
            "causal-mask equivalent"
        );
        let bert = ModelConfig::bert_base();
        assert!((bert.padding_fraction - 0.46).abs() < 1e-9, "46% for SQuAD");
        assert_eq!(ModelConfig::synth2().padding_fraction, 0.5);
    }

    #[test]
    fn live_tokens_reflect_padding() {
        let bert = ModelConfig::bert_base();
        assert_eq!(bert.live_tokens(), (384.0 * 0.54f64).round() as usize);
        let vit = ModelConfig::vit_base();
        assert_eq!(vit.live_tokens(), 197);
    }

    #[test]
    fn only_gpt2_is_generative() {
        let gen: Vec<&str> = ModelConfig::all()
            .iter()
            .filter(|m| m.is_generative())
            .map(|m| m.name)
            .collect();
        assert_eq!(gen, vec!["GPT-2-L"]);
    }

    #[test]
    fn real_models_excludes_synthetic() {
        let real = ModelConfig::real_models();
        assert_eq!(real.len(), 6);
        assert!(real.iter().all(|m| m.dataset != Dataset::Synthetic));
    }

    #[test]
    fn trace_spec_inherits_model_statistics() {
        let m = ModelConfig::bert_base();
        let spec = m.trace_spec();
        assert_eq!(spec.seq_len, m.seq_len);
        assert_eq!(spec.prune_rate, m.pruning_rate);
        assert_eq!(spec.padding_fraction, m.padding_fraction);
    }
}
