//! The theoretical expectation of adjacent-query overlap (Eq. 1).
//!
//! For two independent random subsets of `M` unpruned keys out of a
//! sequence of `S`, the number of overlapping elements `L` follows the
//! hypergeometric distribution
//!
//! ```text
//! P(L) = C(M, L) · C(S − M, M − L) / C(S, M)
//! E(L) = Σ L · P(L)
//! ```
//!
//! Fig. 3 compares this expectation against the 2–3× larger overlap
//! observed on real datasets, which is the headroom the SLD engine
//! exploits.

/// Natural log of `n!` via the log-gamma function (Stirling series).
// The table stores ln(n!) to full printed precision; entry 2 is ln 2
// by mathematical coincidence, not a use of the constant.
#[allow(clippy::approx_constant, clippy::excessive_precision)]
fn ln_factorial(n: u64) -> f64 {
    // Exact for small n, Stirling with correction terms beyond.
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693147180559945,
        1.791759469228055,
        3.178053830347946,
        4.787491742782046,
        6.579251212010101,
        8.525161361065415,
        10.604602902745251,
        12.801827480081469,
        15.104412573075516,
        17.502307845873887,
        19.987214495661885,
        22.552163853123425,
        25.191221182738683,
        27.899271383840894,
        30.671860106080675,
        33.505073450136891,
        36.395445208033053,
        39.339884187199495,
        42.335616460753485,
    ];
    if n <= 20 {
        return TABLE[n as usize];
    }
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (zero combinations).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Hypergeometric probability `P(L = l)` of Eq. (1): the chance that
/// two independent random `m`-subsets of `s` elements share exactly
/// `l` elements.
///
/// # Panics
///
/// Panics if `m > s`.
pub fn overlap_pmf(s: u64, m: u64, l: u64) -> f64 {
    assert!(m <= s, "cannot keep more than the sequence length");
    if l > m || m - l > s - m {
        return 0.0;
    }
    let ln_p = ln_binomial(m, l) + ln_binomial(s - m, m - l) - ln_binomial(s, m);
    ln_p.exp()
}

/// Expected overlap count `E(L)` of Eq. (1).
///
/// Computed by the explicit sum of the paper's equation; equals the
/// closed form `m² / s` of the hypergeometric mean.
///
/// # Panics
///
/// Panics if `m > s`.
///
/// # Example
///
/// ```
/// use sprint_workloads::overlap::expected_overlap;
///
/// // 96 kept keys out of 384: a random adjacent query shares 24.
/// let e = expected_overlap(384, 96);
/// assert!((e - 24.0).abs() < 1e-6);
/// ```
pub fn expected_overlap(s: u64, m: u64) -> f64 {
    assert!(m <= s, "cannot keep more than the sequence length");
    (1..=m).map(|l| l as f64 * overlap_pmf(s, m, l)).sum()
}

/// Expected overlap as a fraction of the kept count `m` — the
/// percentage plotted by the "Random" bars in Fig. 3. Equal to the
/// keep rate `m / s`.
///
/// Returns 0.0 when `m == 0`.
///
/// # Panics
///
/// Panics if `m > s`.
pub fn expected_overlap_fraction(s: u64, m: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    expected_overlap(s, m) / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_factorial_matches_exact_values() {
        // 25! = 1.5511210043 x 10^25
        let exact = 25.0f64 * 0.0 + 1.551_121_004_333_098_6e25_f64.ln();
        assert!((ln_factorial(25) - exact).abs() < 1e-9);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn binomial_small_cases() {
        assert!((ln_binomial(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_binomial(10, 5).exp() - 252.0).abs() < 1e-6);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for (s, m) in [(10u64, 3u64), (50, 20), (384, 96), (197, 70)] {
            let total: f64 = (0..=m).map(|l| overlap_pmf(s, m, l)).sum();
            assert!((total - 1.0).abs() < 1e-9, "s={s} m={m} total={total}");
        }
    }

    #[test]
    fn expectation_matches_closed_form() {
        for (s, m) in [
            (10u64, 3u64),
            (128, 32),
            (384, 96),
            (1024, 267),
            (4096, 1024),
        ] {
            let e = expected_overlap(s, m);
            let closed = (m * m) as f64 / s as f64;
            assert!(
                (e - closed).abs() / closed < 1e-6,
                "s={s} m={m} e={e} closed={closed}"
            );
        }
    }

    #[test]
    fn fraction_equals_keep_rate() {
        // Fig. 3's "Random" bars sit at the keep rate: e.g. BERT-B keeps
        // ~25% of keys, so random overlap is ~25%.
        let f = expected_overlap_fraction(384, 96);
        assert!((f - 0.25).abs() < 1e-6);
        assert_eq!(expected_overlap_fraction(100, 0), 0.0);
    }

    #[test]
    fn paper_scale_random_overlaps_are_far_below_observed() {
        // Observed dataset overlaps are 74-88% (Fig. 3); the random
        // expectation for every studied model is under 40%.
        for (s, keep) in [(384u64, 0.254f64), (197, 0.356), (1024, 0.261)] {
            let m = (s as f64 * keep).round() as u64;
            let random = expected_overlap_fraction(s, m);
            assert!(random < 0.40, "s={s} random={random}");
        }
    }

    #[test]
    fn degenerate_full_keep_overlaps_fully() {
        assert!((expected_overlap_fraction(64, 64) - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_pmf_is_distribution(s in 1u64..200, keep in 0.0f64..1.0) {
            let m = ((s as f64) * keep) as u64;
            let total: f64 = (0..=m).map(|l| overlap_pmf(s, m, l)).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_expectation_equals_m2_over_s(s in 1u64..300, keep in 0.0f64..1.0) {
            let m = ((s as f64) * keep) as u64;
            let e = expected_overlap(s, m);
            let closed = (m * m) as f64 / s as f64;
            prop_assert!((e - closed).abs() < 1e-6 + closed * 1e-6);
        }
    }
}
