//! The accuracy-proxy task for the Fig. 5 / Fig. 9 studies.
//!
//! The paper reports absolute task accuracies of fine-tuned models.
//! Without the checkpoints, what can be reproduced faithfully is the
//! *mechanism* of accuracy loss: approximate in-memory thresholding
//! occasionally mis-prunes a borderline key, which changes a query's
//! attended mixture and can flip the downstream decision; on-chip
//! recompute restores the surviving scores so only the missing keys
//! matter. The proxy task makes that mechanism measurable:
//!
//! * a fixed random classifier head projects each live query's
//!   attention output onto a small class space (trained heads decide
//!   from pooled attention outputs; a small class count gives the
//!   decision margins trained classifiers have);
//! * each query's *label* is the head's decision on the full-precision
//!   dense output, with a per-model label noise that pins the baseline
//!   at the paper's absolute accuracy;
//! * a variant's accuracy is the fraction of live queries whose
//!   decision hits the label;
//! * for generative models the metric is a pseudo-perplexity pinned to
//!   the paper's baseline perplexity and scaled by the measured
//!   cross-entropy gap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sprint_attention::{softmax_exact, AttentionError, Matrix};

use crate::HeadTrace;

/// Classes in the proxy classifier head.
const NUM_CLASSES: usize = 8;

/// Pooling half-window: each decision pools the attention outputs of
/// `2·POOL_HALF + 1` neighbouring queries before the head, the way
/// trained task heads decide from pooled features rather than a single
/// token's vector. Pooling averages out incidental per-token
/// perturbations while preserving systematic ones (a mis-pruned key
/// stays mis-pruned for the adjacent queries that share it).
const POOL_HALF: usize = 4;

/// The evaluation outcome of one variant on a [`ProxyTask`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskScore {
    /// Task accuracy in `[0, 1]` (classification proxy).
    pub accuracy: f64,
    /// Pseudo-perplexity (generative proxy; lower is better).
    pub perplexity: f64,
    /// Fraction of live queries whose prediction matched the
    /// full-precision dense prediction (before label noise).
    pub agreement: f64,
}

/// A fixed labelled task derived from one head trace.
///
/// # Example
///
/// ```
/// use sprint_workloads::{ModelConfig, ProxyTask, TraceGenerator};
///
/// let model = ModelConfig::vit_base();
/// let spec = model.trace_spec().with_seq_len(48);
/// let trace = TraceGenerator::new(5).generate(&spec).unwrap();
/// let task = ProxyTask::new(&trace, &model, 7).unwrap();
/// // The unmodified dense output scores the pinned baseline.
/// let dense = trace_dense_output(&trace);
/// let score = task.evaluate(&dense).unwrap();
/// assert!((score.accuracy - task.baseline_accuracy()).abs() < 0.12);
///
/// fn trace_dense_output(trace: &sprint_workloads::HeadTrace) -> sprint_attention::Matrix {
///     let (out, _) = sprint_attention::pruned_attention(
///         trace.q(), trace.k(), trace.v(), &trace.config(),
///         f32::MIN, Some(&trace.padding()),
///     ).unwrap();
///     out.output
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyTask {
    /// Classifier head: `NUM_CLASSES × d`, row-major.
    head: Vec<f64>,
    /// Mean pooled dense feature, subtracted before the head: a
    /// trained classifier is discriminative around the feature mean,
    /// so the shared component (every query attends the same globally
    /// salient keys) carries no decision information.
    mu: Vec<f64>,
    dims: usize,
    labels: Vec<usize>,
    dense_predictions: Vec<usize>,
    dense_ce: f64,
    live: usize,
    baseline_accuracy: f64,
    baseline_perplexity: f64,
}

/// Mean of the output rows in the pooling window around query `i`,
/// clipped to the live region.
fn pooled_row(outputs: &Matrix, i: usize, live: usize) -> Vec<f64> {
    let lo = i.saturating_sub(POOL_HALF);
    let hi = (i + POOL_HALF).min(live.saturating_sub(1));
    let mut acc = vec![0.0f64; outputs.cols()];
    for r in lo..=hi {
        for (a, &x) in acc.iter_mut().zip(outputs.row(r)) {
            *a += x as f64;
        }
    }
    let n = (hi - lo + 1) as f64;
    for a in &mut acc {
        *a /= n;
    }
    acc
}

impl ProxyTask {
    /// Builds the task from a trace and its model's baseline metric.
    ///
    /// Labels derive from the classifier head applied to the
    /// full-precision dense attention output (padding masked), plus
    /// seeded label noise sized so the dense model scores the paper's
    /// baseline accuracy.
    ///
    /// # Errors
    ///
    /// Propagates attention shape errors.
    pub fn new(
        trace: &HeadTrace,
        model: &crate::ModelConfig,
        seed: u64,
    ) -> Result<Self, AttentionError> {
        let (dense, _) = sprint_attention::pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            f32::MIN,
            Some(&trace.padding()),
        )?;
        let live = trace.live_tokens();
        let dims = trace.v().cols();
        let mut rng = StdRng::seed_from_u64(seed);

        // Fixed random classifier head (±1/√d entries).
        let scale = 1.0 / (dims as f64).sqrt();
        let head: Vec<f64> = (0..NUM_CLASSES * dims)
            .map(|_| if rng.gen_bool(0.5) { scale } else { -scale })
            .collect();

        // Feature mean of the dense model over live queries.
        let mut mu = vec![0.0f64; dims];
        for i in 0..live {
            for (m, x) in mu.iter_mut().zip(pooled_row(&dense.output, i, live)) {
                *m += x;
            }
        }
        for m in &mut mu {
            *m /= live.max(1) as f64;
        }

        let logits_of = |row: &[f64]| -> Vec<f64> {
            (0..NUM_CLASSES)
                .map(|c| {
                    head[c * dims..(c + 1) * dims]
                        .iter()
                        .zip(row.iter().zip(&mu))
                        .map(|(h, (&x, &m))| h * (x - m))
                        .sum()
                })
                .collect()
        };
        let argmax = |logits: &[f64]| -> usize {
            logits
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };

        let dense_predictions: Vec<usize> = (0..live)
            .map(|i| argmax(&logits_of(&pooled_row(&dense.output, i, live))))
            .collect();
        let _ = &logits_of;

        // Pin the baseline: flip labels with probability eps so that
        // P(dense correct) = (1-eps) + eps/classes = baseline accuracy.
        let base_acc = if model.is_generative() {
            1.0
        } else {
            model.baseline_metric
        };
        let c = NUM_CLASSES as f64;
        let eps = ((1.0 - base_acc) * c / (c - 1.0)).clamp(0.0, 1.0);
        let labels: Vec<usize> = dense_predictions
            .iter()
            .map(|&p| {
                if rng.gen_bool(eps) {
                    rng.gen_range(0..NUM_CLASSES)
                } else {
                    p
                }
            })
            .collect();

        let mut task = ProxyTask {
            head,
            mu,
            dims,
            labels,
            dense_predictions,
            dense_ce: 0.0,
            live,
            baseline_accuracy: base_acc,
            baseline_perplexity: 1.0,
        };
        task.dense_ce = task.mean_cross_entropy(&dense.output);
        task.baseline_perplexity = if model.is_generative() {
            model.baseline_metric
        } else {
            task.dense_ce.exp()
        };
        Ok(task)
    }

    /// Classifier logits for one pooled, mean-centred feature row.
    fn logits(&self, row: &[f64]) -> Vec<f32> {
        (0..NUM_CLASSES)
            .map(|c| {
                self.head[c * self.dims..(c + 1) * self.dims]
                    .iter()
                    .zip(row.iter().zip(&self.mu))
                    .map(|(h, (&x, &m))| (h * (x - m)) as f32)
                    .sum()
            })
            .collect()
    }

    fn predict(&self, outputs: &Matrix, i: usize) -> usize {
        let logits = self.logits(&pooled_row(outputs, i, self.live));
        logits
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Mean cross-entropy of the head's class distribution against the
    /// labels.
    fn mean_cross_entropy(&self, outputs: &Matrix) -> f64 {
        let mut ce = 0.0f64;
        for (i, &label) in self.labels.iter().enumerate().take(self.live) {
            let probs = softmax_exact(&self.logits(&pooled_row(outputs, i, self.live)));
            let p = probs.get(label).copied().unwrap_or(0.0).max(1e-9) as f64;
            ce -= p.ln();
        }
        ce / self.live.max(1) as f64
    }

    /// The accuracy the unmodified dense model is pinned to (expected
    /// value; individual seeds fluctuate by the usual sampling error).
    pub fn baseline_accuracy(&self) -> f64 {
        let c = NUM_CLASSES as f64;
        let eps = ((1.0 - self.baseline_accuracy) * c / (c - 1.0)).clamp(0.0, 1.0);
        (1.0 - eps) + eps / c
    }

    /// The perplexity the dense model is pinned to.
    pub fn baseline_perplexity(&self) -> f64 {
        self.baseline_perplexity
    }

    /// Number of live queries scored.
    pub fn live_queries(&self) -> usize {
        self.live
    }

    /// Scores a variant's attention output matrix (`s × d`).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] if the output has too
    /// few rows or a different embedding width.
    pub fn evaluate(&self, output: &Matrix) -> Result<TaskScore, AttentionError> {
        if output.rows() < self.live || output.cols() != self.dims {
            return Err(AttentionError::ShapeMismatch {
                op: "proxy task evaluate",
                left: output.shape(),
                right: (self.live, self.dims),
            });
        }
        let mut correct = 0usize;
        let mut agree = 0usize;
        for i in 0..self.live {
            let pred = self.predict(output, i);
            if pred == self.labels[i] {
                correct += 1;
            }
            if pred == self.dense_predictions[i] {
                agree += 1;
            }
        }
        let ce = self.mean_cross_entropy(output);
        // Pin the baseline perplexity and scale by the measured CE gap.
        let perplexity = self.baseline_perplexity * (ce - self.dense_ce).exp();
        Ok(TaskScore {
            accuracy: correct as f64 / self.live as f64,
            perplexity,
            agreement: agree as f64 / self.live as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, TraceGenerator};

    fn trace_and_task(model: &ModelConfig, seq: usize) -> (crate::HeadTrace, ProxyTask) {
        let spec = model.trace_spec().with_seq_len(seq);
        let trace = TraceGenerator::new(11).generate(&spec).unwrap();
        let task = ProxyTask::new(&trace, model, 13).unwrap();
        (trace, task)
    }

    fn dense_output(trace: &crate::HeadTrace) -> Matrix {
        sprint_attention::pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            f32::MIN,
            Some(&trace.padding()),
        )
        .unwrap()
        .0
        .output
    }

    #[test]
    fn dense_model_scores_near_pinned_baseline() {
        let model = ModelConfig::bert_base();
        let (trace, task) = trace_and_task(&model, 128);
        let score = task.evaluate(&dense_output(&trace)).unwrap();
        assert!(
            (score.accuracy - task.baseline_accuracy()).abs() < 0.1,
            "accuracy={} pinned={}",
            score.accuracy,
            task.baseline_accuracy()
        );
        assert_eq!(score.agreement, 1.0, "dense agrees with itself");
    }

    #[test]
    fn dense_model_has_baseline_perplexity() {
        let model = ModelConfig::gpt2_large();
        let (trace, task) = trace_and_task(&model, 96);
        let score = task.evaluate(&dense_output(&trace)).unwrap();
        assert!(
            (score.perplexity - model.baseline_metric).abs() < 1e-6,
            "perplexity={} baseline={}",
            score.perplexity,
            model.baseline_metric
        );
    }

    #[test]
    fn runtime_pruning_barely_moves_the_proxy() {
        // The peaky score structure must make learned-threshold pruning
        // nearly decision-neutral, as in the paper (≈0.2% drop). The
        // proxy is a statistical instrument, so assert the property
        // over a small seed grid rather than one draw: the mean
        // agreement must stay high and no single trace may collapse.
        let model = ModelConfig::bert_base();
        let mut agreements = Vec::new();
        for seed in 11u64..=15 {
            let spec = model.trace_spec().with_seq_len(128);
            let trace = TraceGenerator::new(seed).generate(&spec).unwrap();
            let task = ProxyTask::new(&trace, &model, 13).unwrap();
            let (pruned, _) = sprint_attention::pruned_attention(
                trace.q(),
                trace.k(),
                trace.v(),
                &trace.config(),
                trace.threshold(),
                Some(&trace.padding()),
            )
            .unwrap();
            let score = task.evaluate(&pruned.output).unwrap();
            assert!(
                score.agreement > 0.65,
                "seed {seed}: pruned agreement {} collapsed",
                score.agreement
            );
            agreements.push(score.agreement);
        }
        let mean = agreements.iter().sum::<f64>() / agreements.len() as f64;
        assert!(
            mean > 0.8,
            "mean pruned agreement {mean} too low across {agreements:?}"
        );
    }

    #[test]
    fn corrupted_output_scores_worse() {
        let model = ModelConfig::bert_base();
        let (trace, task) = trace_and_task(&model, 128);
        let dense = dense_output(&trace);
        let clean = task.evaluate(&dense).unwrap();
        // Zero out the outputs: predictions collapse to one class.
        let corrupted = dense.map(|_| 0.0);
        let bad = task.evaluate(&corrupted).unwrap();
        assert!(bad.accuracy < clean.accuracy);
        assert!(bad.agreement < 0.6);
    }

    #[test]
    fn slightly_perturbed_output_scores_similarly() {
        let model = ModelConfig::vit_base();
        let (trace, task) = trace_and_task(&model, 96);
        let dense = dense_output(&trace);
        let clean = task.evaluate(&dense).unwrap();
        let perturbed = dense.map(|x| x * 1.01);
        let near = task.evaluate(&perturbed).unwrap();
        // Pure scaling never changes an argmax.
        assert_eq!(clean.accuracy, near.accuracy);
    }

    #[test]
    fn evaluate_validates_shape() {
        let model = ModelConfig::vit_base();
        let (_, task) = trace_and_task(&model, 64);
        let wrong = Matrix::zeros(8, 8).unwrap();
        assert!(task.evaluate(&wrong).is_err());
    }

    #[test]
    fn labels_are_deterministic_per_seed() {
        let model = ModelConfig::bert_base();
        let spec = model.trace_spec().with_seq_len(96);
        let trace = TraceGenerator::new(21).generate(&spec).unwrap();
        let a = ProxyTask::new(&trace, &model, 5).unwrap();
        let b = ProxyTask::new(&trace, &model, 5).unwrap();
        assert_eq!(a, b);
        let c = ProxyTask::new(&trace, &model, 6).unwrap();
        assert!(a.labels != c.labels || a.dense_predictions == c.dense_predictions);
    }
}
