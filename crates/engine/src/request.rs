//! The request/response pair of the serving API.

use serde::{Deserialize, Serialize};

use sprint_attention::{AttentionConfig, Matrix, PaddingMask, PruneDecision};
use sprint_memory::MemoryStats;
use sprint_reram::{PruneHardwareStats, ThresholdSpec};
use sprint_workloads::HeadTrace;

use crate::{ExecutionMode, FaultReport};

/// One attention head to execute: borrowed Q/K/V, the head
/// configuration, the learned pruning threshold, and optional
/// per-request overrides of the engine defaults.
///
/// Requests borrow their matrices — building one allocates nothing, so
/// a serving loop can stamp them out per incoming head. The usual
/// entry point is [`HeadRequest::from_trace`]; cross-shaped heads
/// (`s_q != s_k`, e.g. decode steps against a longer key cache) use
/// [`HeadRequest::new`] without padding.
///
/// # Example
///
/// ```
/// use sprint_engine::{ExecutionMode, HeadRequest};
/// use sprint_workloads::{ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelConfig::bert_base().trace_spec().with_seq_len(48);
/// let trace = TraceGenerator::new(1).generate(&spec)?;
/// let req = HeadRequest::from_trace(&trace)
///     .with_head_id(7)
///     .with_mode(ExecutionMode::Dense);
/// assert_eq!(req.head_id(), Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeadRequest<'a> {
    q: &'a Matrix,
    k: &'a Matrix,
    v: &'a Matrix,
    config: AttentionConfig,
    padding: Option<PaddingMask>,
    threshold: f32,
    head_id: Option<u64>,
    mode: Option<ExecutionMode>,
    threshold_spec: Option<ThresholdSpec>,
}

impl<'a> HeadRequest<'a> {
    /// Builds a request from raw matrices, without padding.
    ///
    /// `threshold` is the learned pruning threshold (Eq. 3's `Th`) in
    /// real score units.
    pub fn new(
        q: &'a Matrix,
        k: &'a Matrix,
        v: &'a Matrix,
        config: AttentionConfig,
        threshold: f32,
    ) -> Self {
        HeadRequest {
            q,
            k,
            v,
            config,
            padding: None,
            threshold,
            head_id: None,
            mode: None,
            threshold_spec: None,
        }
    }

    /// Builds a request from a synthesized [`HeadTrace`] — matrices,
    /// head configuration, padding mask and calibrated threshold all
    /// come from the trace.
    pub fn from_trace(trace: &'a HeadTrace) -> Self {
        HeadRequest {
            q: trace.q(),
            k: trace.k(),
            v: trace.v(),
            config: trace.config(),
            padding: Some(trace.padding()),
            threshold: trace.threshold(),
            head_id: None,
            mode: None,
            threshold_spec: None,
        }
    }

    /// Sets the prefix padding mask over the key sequence. Only valid
    /// for self-shaped heads (`s_q == s_k`); the engine rejects padded
    /// cross-shaped requests.
    #[must_use]
    pub fn with_padding(mut self, padding: PaddingMask) -> Self {
        self.padding = Some(padding);
        self
    }

    /// Tags the request with a stable head identity used for
    /// deterministic per-head seed derivation (see
    /// [`crate::derive_head_seed`]). Untagged requests fall back to
    /// their batch position.
    #[must_use]
    pub fn with_head_id(mut self, head_id: u64) -> Self {
        self.head_id = Some(head_id);
        self
    }

    /// Overrides the engine's default [`ExecutionMode`] for this
    /// request.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Overrides the engine's default [`ThresholdSpec`] (analog
    /// comparator configuration) for this request.
    #[must_use]
    pub fn with_threshold_spec(mut self, spec: ThresholdSpec) -> Self {
        self.threshold_spec = Some(spec);
        self
    }

    /// Query matrix (`s_q × d`).
    pub fn q(&self) -> &'a Matrix {
        self.q
    }

    /// Key matrix (`s_k × d`).
    pub fn k(&self) -> &'a Matrix {
        self.k
    }

    /// Value matrix (`s_k × d_v`).
    pub fn v(&self) -> &'a Matrix {
        self.v
    }

    /// Head configuration (embedding size and score scale).
    pub fn config(&self) -> AttentionConfig {
        self.config
    }

    /// The prefix padding mask, if any.
    pub fn padding(&self) -> Option<PaddingMask> {
        self.padding
    }

    /// The learned pruning threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The stable head identity, if tagged.
    pub fn head_id(&self) -> Option<u64> {
        self.head_id
    }

    /// The per-request mode override, if any.
    pub fn mode_override(&self) -> Option<ExecutionMode> {
        self.mode
    }

    /// The per-request threshold-spec override, if any.
    pub fn threshold_spec_override(&self) -> Option<ThresholdSpec> {
        self.threshold_spec
    }
}

/// The outcome of one head execution.
///
/// Field-compatible with the pre-engine `SystemOutput` (which is now
/// an alias of this type).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadResponse {
    /// Final attention values (`s_q × d_v`).
    pub output: Matrix,
    /// The pruning decisions actually applied, one per query. Padded
    /// queries share a single all-pruned decision (storage-shared
    /// clones; see [`PruneDecision`]).
    pub decisions: Vec<PruneDecision>,
    /// ReRAM-side operation counters (zero for the digital
    /// [`ExecutionMode::Dense`] / [`ExecutionMode::Oracle`] modes).
    pub prune_stats: PruneHardwareStats,
    /// Memory-controller statistics (fetches, reuse, commands).
    pub memory_stats: MemoryStats,
    /// Fault-handling outcome (all-zero unless the engine has a
    /// [`sprint_reram::FaultModel`] attached and the scrub found
    /// faults; see [`crate::FaultPolicy`]).
    pub faults: FaultReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_stack() {
        let m = Matrix::zeros(2, 4).unwrap();
        let req = HeadRequest::new(&m, &m, &m, AttentionConfig::new(4), 0.5)
            .with_head_id(3)
            .with_mode(ExecutionMode::Oracle)
            .with_threshold_spec(ThresholdSpec::quantized(4))
            .with_padding(PaddingMask::new(2, 1).unwrap());
        assert_eq!(req.head_id(), Some(3));
        assert_eq!(req.mode_override(), Some(ExecutionMode::Oracle));
        assert_eq!(
            req.threshold_spec_override(),
            Some(ThresholdSpec::quantized(4))
        );
        assert_eq!(req.padding().unwrap().live(), 1);
        assert_eq!(req.threshold(), 0.5);
    }
}
