//! `sprint-engine` — the unified session/serving API of the SPRINT
//! reproduction.
//!
//! The paper's headline claim is *synergy*: in-ReRAM MSB pruning
//! (§III), DRAM-side access scheduling (§V) and on-chip 8-bit
//! recomputation (§VI) operating as one pipeline. This crate is that
//! pipeline's front door — one [`Engine`], built once per hardware
//! configuration via [`Engine::builder`], that owns every piece of
//! reusable substrate state and executes a stream of attention heads
//! through it:
//!
//! * [`Engine::run_head`] — one [`HeadRequest`] in, one
//!   [`HeadResponse`] out, with the pruner crossbars reprogrammed in
//!   place, the memory controller cold-reset, and all attention
//!   scratch pooled — steady-state execution rebuilds none of the
//!   substrate;
//! * [`Engine::run_batch`] — the same over a request slice, fanned out
//!   across [`sprint_parallel`] workers with deterministic,
//!   thread-count-independent per-head seeding ([`derive_head_seed`]);
//! * [`ModelServer`] — model-level serving: a [`ModelRequest`]
//!   (layers × heads, per-layer sequence lengths, shared base seed)
//!   decomposed into head requests, scheduled over the engine's worker
//!   pool, and aggregated into per-layer / whole-model
//!   [`ModelResponse`] roll-ups; [`ServeLoop`] drives it from a
//!   synthetic arrival stream and reports throughput and latency
//!   percentiles;
//! * [`DecodeSession`] — autoregressive decode: a stateful session
//!   over programmed crossbars, an append-only KV cache and per-step
//!   scratch, serving one-query SPRINT attention per generated token
//!   without reprogramming ([`Engine::open_session`]); [`DecodeLoop`]
//!   interleaves many concurrent sessions over [`sprint_parallel`]
//!   with the same bit-identical-across-worker-counts seeding
//!   contract as `run_batch`;
//! * [`FaultPolicy`] / [`FaultReport`] — fault-tolerant serving over a
//!   faulty substrate: an engine built with a
//!   [`sprint_reram::FaultModel`] scrubs each head's programmed
//!   crossbars, repairs what write-verified retries can fix, and
//!   degrades gracefully (spare-column remap, or demotion to the exact
//!   digital pipeline) — every request completes, with the outcome
//!   accounted on its response;
//! * [`ExecutionMode`] — the four functional pipelines of Fig. 9
//!   (`Dense` baseline, `Oracle` runtime pruning, `NoRecompute`,
//!   full `Sprint`), replacing the pre-engine `recompute: bool` flag;
//! * [`SprintError`] — the one error type of the API, with `From`
//!   impls for every substrate error enum;
//! * [`SprintConfig`] — the S/M/L hardware configurations of Table I
//!   (moved here from `sprint-core`, which re-exports it);
//! * [`mod@reference`] — the frozen pre-engine pipeline, kept as the
//!   oracle that the engine's state reuse is proven bit-identical
//!   against.
//!
//! # Example
//!
//! ```
//! use sprint_engine::{Engine, ExecutionMode, HeadRequest, SprintConfig};
//! use sprint_workloads::{ModelConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize two BERT-like heads and serve them as one batch.
//! let spec = ModelConfig::bert_base().trace_spec().with_seq_len(64);
//! let mut generator = TraceGenerator::new(7);
//! let heads = generator.generate_many(&spec, 2)?;
//!
//! let engine = Engine::builder(SprintConfig::medium())
//!     .mode(ExecutionMode::Sprint)
//!     .seed(42)
//!     .build()?;
//! let requests: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
//! let responses = engine.run_batch(&requests)?;
//! assert_eq!(responses.len(), 2);
//! assert!(responses[0].memory_stats.reused_vectors > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// The repository's `ARCHITECTURE.md`, embedded verbatim so its
/// determinism/seeding-contract code block compiles and runs as a
/// doctest of this crate (`cargo test --doc`) — the contract prose
/// cannot rot away from the implementation.
#[doc = include_str!("../../../ARCHITECTURE.md")]
mod architecture_contract {}

mod config;
mod decode;
mod engine;
mod error;
mod fault;
mod mode;
mod model;
pub mod reference;
mod request;
mod serve;

pub use config::SprintConfig;
pub use decode::{
    DecodeSession, DecodeStep, EvictedSession, SessionPerf, SessionRequest, StepPerf, StepResponse,
};
pub use engine::{derive_head_seed, BatchReport, Engine, EngineBuilder};
pub use error::{SprintError, SystemError};
pub use fault::{FaultPolicy, FaultReport};
pub use mode::ExecutionMode;
pub use model::{HeadPlan, LayerReport, ModelProfile, ModelRequest, ModelResponse, PerfRollup};
pub use request::{HeadRequest, HeadResponse};
pub use serve::{
    DecodeLoop, DecodeReport, DecodeTask, ModelServer, ServeLoop, ServeStats, ServeSummary,
    SessionReport,
};
pub use sprint_attention::{active_tier, avx2_available, SimdTier};
