//! Autoregressive decode sessions: incremental sparse attention with
//! cached substrate state.
//!
//! The engine's [`crate::Engine::run_head`] rebuilds (reprograms) the
//! analog substrate for every request — the right shape for
//! encoder-style workloads where each head is independent. Generative
//! decode is different: each new token issues **one** query against a
//! growing key/value history, and the crossbar's programmed K matrix,
//! the quantized K/V images and the memory-controller state are all
//! reusable across steps. A [`DecodeSession`] holds exactly that
//! state:
//!
//! * the programmed [`InMemoryPruner`] crossbars, grown in place via
//!   [`InMemoryPruner::extend`] (one appended column per token;
//!   full reprogram only on the rare quantizer recalibration);
//! * the append-only [`KvCache`] with incrementally maintained 8-bit
//!   K/V codes for the on-chip recompute stage;
//! * the per-step scratch ([`Workspace`], staging row, controller).
//!
//! **Oracle equivalence.** Under an ideal (noise-free) analog model,
//! every [`DecodeSession::step`] is bit-identical to a fresh
//! full-prefix [`crate::Engine::run_head`] over the same one-row query
//! and grown history, in all four [`ExecutionMode`]s —
//! `tests/tests/decode.rs` pins this step by step. Under a noisy
//! model the incremental path consumes its RNG streams in a different
//! order than a fresh build, so equivalence is distributional.

use sprint_attention::{
    pruned_attention_decode_cached_with, quantized_attention_decode_with, softmax_inplace_tier,
    AttentionConfig, KvCache, Matrix, PruneDecision, Workspace,
};
use sprint_energy::{Category, EnergyBreakdown};
use sprint_memory::{MemoryController, MemoryStats};
use sprint_reram::{FaultModel, InMemoryPruner, NoiseModel, PruneHardwareStats, ThresholdSpec};

use crate::engine::derive_head_seed;
use crate::fault::resolve_faults;
use crate::model::{onchip_op_counts, per_query_compute_cycles, THRESHOLD_ISSUE_CYCLES};
use crate::{Engine, ExecutionMode, FaultPolicy, SprintConfig, SprintError};

/// The prefill of a decode session: the key/value history accumulated
/// before generation starts, plus the head configuration and the
/// engine-default overrides the session should run under.
///
/// Like [`crate::HeadRequest`], a `SessionRequest` borrows its
/// matrices; opening the session clones them into the session's
/// [`KvCache`].
#[derive(Debug, Clone)]
pub struct SessionRequest<'a> {
    k: &'a Matrix,
    v: &'a Matrix,
    config: AttentionConfig,
    threshold: f32,
    head_id: Option<u64>,
    mode: Option<ExecutionMode>,
    threshold_spec: Option<ThresholdSpec>,
}

impl<'a> SessionRequest<'a> {
    /// Builds a session request from the prefill K/V history (at least
    /// one token), the head configuration, and the learned pruning
    /// threshold in real score units.
    pub fn new(k: &'a Matrix, v: &'a Matrix, config: AttentionConfig, threshold: f32) -> Self {
        SessionRequest {
            k,
            v,
            config,
            threshold,
            head_id: None,
            mode: None,
            threshold_spec: None,
        }
    }

    /// Tags the session with a stable identity for deterministic seed
    /// derivation ([`crate::derive_head_seed`]), exactly as
    /// [`crate::HeadRequest::with_head_id`] does for heads. Untagged
    /// sessions use id 0.
    #[must_use]
    pub fn with_head_id(mut self, head_id: u64) -> Self {
        self.head_id = Some(head_id);
        self
    }

    /// Overrides the engine's default [`ExecutionMode`] for every step
    /// of this session.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Overrides the engine's default comparator [`ThresholdSpec`] for
    /// every step of this session.
    #[must_use]
    pub fn with_threshold_spec(mut self, spec: ThresholdSpec) -> Self {
        self.threshold_spec = Some(spec);
        self
    }
}

/// One decode step: the new token's query, key and value rows.
///
/// The key/value rows join the session history *before* the query
/// attends, so the token sees itself — standard autoregressive
/// self-attention.
#[derive(Debug, Clone, Copy)]
pub struct DecodeStep<'a> {
    /// The new token's query row (`d` values).
    pub q: &'a [f32],
    /// The new token's key row (`d` values), appended to the history.
    pub k: &'a [f32],
    /// The new token's value row (`d_v` values), appended to the
    /// history.
    pub v: &'a [f32],
}

/// Per-step execution accounting: the energy/latency *delta* this step
/// added, with the program-once crossbar write cost reported
/// separately from the recurring step cost so amortization is visible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepPerf {
    /// Recurring step energy (pruning, fetch, recompute, softmax, AV)
    /// by Table II category.
    pub energy: EnergyBreakdown,
    /// One-time programming energy charged this step: the K/V rows
    /// written to ReRAM (the whole prefill on the first step, one
    /// token afterwards, the full history again on a recalibration).
    pub program_energy: EnergyBreakdown,
    /// Step latency in cycles (worst-CORELET compute vs. memory
    /// stream, with the analog handshake floor).
    pub cycles: u64,
    /// Tokens whose K/V were written to the substrate this step.
    pub programmed_tokens: u64,
    /// Whether this step forced a full requantize + reprogram (a new
    /// token widened a quantizer's calibrated range).
    pub recalibrated: bool,
    /// ReRAM cell faults this step's scrub detected (zero without a
    /// fault model on the engine).
    pub faults_detected: u64,
    /// Write-verify reprogram retries spent repairing this step.
    pub fault_retries: u64,
    /// Whether this step demoted the session to the exact digital
    /// pipeline (the session stays demoted for all later steps).
    pub demoted: bool,
}

/// The outcome of one [`DecodeSession::step`] — the decode-shaped
/// sibling of [`crate::HeadResponse`], for a single query over the
/// current history.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    /// The token's position in the history (0-based; equals the
    /// history length before this step).
    pub position: usize,
    /// The attention output row (`d_v` values).
    pub output: Vec<f32>,
    /// The pruning decision over the full history (length
    /// `position + 1`).
    pub decision: PruneDecision,
    /// ReRAM-side operation counters for *this step only* (the delta
    /// over the session's long-lived pruner; zero in digital modes).
    pub prune_stats: PruneHardwareStats,
    /// Memory-controller statistics for this step.
    pub memory_stats: MemoryStats,
    /// Per-step energy/latency accounting.
    pub perf: StepPerf,
}

/// Cumulative session accounting: the sum of every step's [`StepPerf`]
/// plus pruning totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SessionPerf {
    /// Decode steps served.
    pub tokens: u64,
    /// Summed recurring step energy.
    pub energy: EnergyBreakdown,
    /// Summed one-time programming energy (kept separate so the
    /// amortized write cost never hides in the step trend).
    pub program_energy: EnergyBreakdown,
    /// Summed step latency in cycles.
    pub cycles: u64,
    /// Total tokens written to the substrate (≥ history length;
    /// recalibrations rewrite the prefix).
    pub programmed_tokens: u64,
    /// Full requantize + reprogram events.
    pub recalibrations: u64,
    /// Scores surviving pruning, summed over steps.
    pub kept_scores: u64,
    /// Query × history-key pairs considered, summed over steps.
    pub score_pairs: u64,
    /// K/V vectors fetched from main memory.
    pub fetched_vectors: u64,
    /// K/V vectors reused on chip.
    pub reused_vectors: u64,
    /// Bytes moved over the memory channels.
    pub bytes_fetched: u64,
    /// ReRAM cell faults detected across all steps.
    pub faults_detected: u64,
    /// Write-verify reprogram retries spent repairing across all steps.
    pub fault_retries: u64,
    /// Whether the session demoted to the exact digital pipeline.
    pub demoted: bool,
    /// Times this session's KV pages were dropped back to the pool
    /// ([`DecodeSession::evict`]).
    pub evictions: u64,
    /// Times the session was rebuilt from its replayed history
    /// ([`Engine::resume_session`]).
    pub rehydrations: u64,
    /// History tokens replayed across all rehydrations.
    pub rehydrated_tokens: u64,
    /// Crossbar reprogramming energy paid at rehydration (kept apart
    /// from step-attributed `program_energy` so every step's perf stays
    /// bit-identical to a never-evicted twin's).
    pub rehydration_energy: EnergyBreakdown,
}

impl SessionPerf {
    /// Fraction of considered scores that survived pruning.
    pub fn kept_fraction(&self) -> f64 {
        self.kept_scores as f64 / self.score_pairs.max(1) as f64
    }

    /// Total energy including the program-once share.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.energy + self.program_energy
    }

    fn record(&mut self, response: &StepResponse) {
        self.tokens += 1;
        self.energy += response.perf.energy;
        self.program_energy += response.perf.program_energy;
        self.cycles += response.perf.cycles;
        self.programmed_tokens += response.perf.programmed_tokens;
        self.recalibrations += u64::from(response.perf.recalibrated);
        self.kept_scores += response.decision.kept_count() as u64;
        self.score_pairs += response.decision.len() as u64;
        self.fetched_vectors += response.memory_stats.fetched_vectors;
        self.reused_vectors += response.memory_stats.reused_vectors;
        self.bytes_fetched += response.memory_stats.bytes_fetched;
        self.faults_detected += response.perf.faults_detected;
        self.fault_retries += response.perf.fault_retries;
        self.demoted |= response.perf.demoted;
    }
}

/// A stateful autoregressive decode session over the SPRINT substrate.
///
/// Opened with [`Engine::open_session`]; each [`DecodeSession::step`]
/// appends one token to the KV history and runs one-query SPRINT
/// attention against it — LZC-style in-memory thresholding over the
/// grown crossbars, selective fetch through the session's memory
/// controller, and on-chip recompute of the surviving scores — without
/// reprogramming or reallocating any substrate the previous steps
/// already built.
///
/// # Example
///
/// ```
/// use sprint_engine::{DecodeStep, Engine, SessionRequest, SprintConfig};
/// use sprint_reram::NoiseModel;
/// use sprint_workloads::{ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelConfig::bert_base().trace_spec().with_seq_len(32).with_padding(0.0);
/// let trace = TraceGenerator::new(3).generate(&spec)?;
/// let engine = Engine::builder(SprintConfig::small())
///     .noise(NoiseModel::ideal())
///     .seed(1)
///     .build()?;
/// // Prefill with the first 24 tokens, then decode the rest.
/// let (k, v) = (trace.k(), trace.v());
/// let prefill = |m: &sprint_attention::Matrix| {
///     sprint_attention::Matrix::from_vec(24, m.cols(), m.as_slice()[..24 * m.cols()].to_vec())
/// };
/// let (pk, pv) = (prefill(k)?, prefill(v)?);
/// let mut session = engine.open_session(
///     &SessionRequest::new(&pk, &pv, trace.config(), trace.threshold()).with_head_id(7),
/// )?;
/// for t in 24..32 {
///     let out = session.step(&DecodeStep { q: trace.q().row(t), k: k.row(t), v: v.row(t) })?;
///     assert_eq!(out.position, t);
///     assert_eq!(out.decision.len(), t + 1);
/// }
/// assert_eq!(session.history_len(), 32);
/// assert!(session.perf().kept_fraction() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeSession {
    config: SprintConfig,
    noise: NoiseModel,
    spec: ThresholdSpec,
    mode: ExecutionMode,
    seed: u64,
    attn: AttentionConfig,
    threshold: f32,
    memory_accounting: bool,
    kv: KvCache,
    pruner: Option<InMemoryPruner>,
    controller: Option<MemoryController>,
    ws: Workspace,
    /// Persistent 1×d staging for the step query.
    q_step: Option<Matrix>,
    perf: SessionPerf,
    fault_model: Option<FaultModel>,
    fault_policy: FaultPolicy,
    /// Sticky: once a step demotes the session, every later step runs
    /// the exact digital pipeline.
    demoted: bool,
}

/// A decode session with its pages dropped back to the pool: the
/// configuration, seed, accounting and lifecycle flags survive, the KV
/// cache, crossbars, controller and scratch do not.
///
/// Deliberately, **no quantizer state survives eviction** — no running
/// `max_abs`, no [`sprint_attention::QuantParams`], no programmed
/// codes. [`Engine::resume_session`] rebuilds all of it from the
/// replayed token history, exactly as a fresh prefill would, so the
/// per-column running maxima are recomputed from the rows themselves
/// rather than restored from a pre-eviction high-water mark (the
/// running max over the same rows is the same max — which is what
/// keeps a rehydrated session bit-identical to a never-evicted twin
/// even when a recalibration straddles the eviction).
///
/// The caller retains the token history (the serving layers keep the
/// per-session trace seed and token count; the engine keeps nothing).
#[derive(Debug)]
pub struct EvictedSession {
    config: SprintConfig,
    noise: NoiseModel,
    spec: ThresholdSpec,
    mode: ExecutionMode,
    seed: u64,
    attn: AttentionConfig,
    threshold: f32,
    memory_accounting: bool,
    had_pruner: bool,
    history_len: usize,
    d: usize,
    d_v: usize,
    perf: SessionPerf,
    fault_model: Option<FaultModel>,
    fault_policy: FaultPolicy,
    demoted: bool,
}

impl EvictedSession {
    /// Tokens the session held when evicted — the number of history
    /// rows [`Engine::resume_session`] expects back.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The mode the session ran (and will resume) under.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Cumulative accounting, carried across the eviction.
    pub fn perf(&self) -> &SessionPerf {
        &self.perf
    }
}

impl Engine {
    /// A fresh per-session workspace dispatching on the engine's SIMD
    /// kernel tier (sessions inherit the tier of the engine that opens
    /// or resumes them, exactly like worker scratches).
    fn session_workspace(&self) -> Workspace {
        let mut ws = Workspace::new();
        ws.set_simd_tier(self.simd_tier());
        ws
    }

    /// Opens a stateful [`DecodeSession`] seeded and configured from
    /// this engine's defaults (with the request's overrides), starting
    /// from the request's prefill history.
    ///
    /// The session owns its substrate (crossbars, controller,
    /// workspace) independently of the engine's worker slots, so any
    /// number of sessions decode concurrently without contending for
    /// engine scratch. The session seed is
    /// [`derive_head_seed`]`(engine_seed, head_id.unwrap_or(0))` —
    /// the same contract as [`Engine::run_head`] — which is what makes
    /// each step comparable to a fresh full-prefix `run_head` oracle
    /// carrying the same head id.
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for an empty or shape-mismatched
    /// prefill; substrate errors otherwise.
    pub fn open_session(&self, request: &SessionRequest<'_>) -> Result<DecodeSession, SprintError> {
        if request.k.rows() != request.v.rows() {
            return Err(SprintError::Request(format!(
                "prefill key sequence {} does not match value sequence {}",
                request.k.rows(),
                request.v.rows()
            )));
        }
        Ok(DecodeSession {
            config: self.config().clone(),
            noise: self.noise(),
            spec: request.threshold_spec.unwrap_or(self.threshold_spec()),
            mode: request.mode.unwrap_or(self.mode()),
            seed: derive_head_seed(self.seed(), request.head_id.unwrap_or(0)),
            attn: request.config,
            threshold: request.threshold,
            memory_accounting: self.memory_accounting_enabled(),
            kv: KvCache::new_in(self.kv_pool(), request.k, request.v)?,
            pruner: None,
            controller: None,
            ws: self.session_workspace(),
            q_step: None,
            perf: SessionPerf::default(),
            fault_model: self.fault_model(),
            fault_policy: self.fault_policy(),
            demoted: false,
        })
    }

    /// Rebuilds an evicted session from its replayed token history
    /// (`k`/`v` must hold exactly the rows the session had when
    /// evicted — the serving layers re-synthesize them from the
    /// retained trace seed).
    ///
    /// The KV cache is requantized and, for analog sessions that had
    /// programmed crossbars, the pruner is reprogrammed from scratch —
    /// all derived from the rows themselves, never from cached
    /// pre-eviction state (see [`EvictedSession`]). The reprogram cost
    /// lands in [`SessionPerf::rehydration_energy`], so every
    /// subsequent step's [`StepPerf`] stays bit-identical to a
    /// never-evicted twin's. The stub is borrowed: on error (e.g. the
    /// pool is still [`SprintError::is_pool_exhausted`]) it remains
    /// valid and the resume can be retried after more eviction.
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] when the history disagrees with the
    /// evicted geometry; pool exhaustion or substrate errors otherwise.
    pub fn resume_session(
        &self,
        stub: &EvictedSession,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<DecodeSession, SprintError> {
        if k.rows() != stub.history_len || v.rows() != stub.history_len {
            return Err(SprintError::Request(format!(
                "rehydration history holds {}/{} rows, evicted session had {}",
                k.rows(),
                v.rows(),
                stub.history_len
            )));
        }
        if k.cols() != stub.d || v.cols() != stub.d_v {
            return Err(SprintError::Request(format!(
                "rehydration embedding {}x{} does not match evicted session {}x{}",
                k.cols(),
                v.cols(),
                stub.d,
                stub.d_v
            )));
        }
        let kv = KvCache::new_in(self.kv_pool(), k, v)?;
        let mut perf = stub.perf;
        perf.rehydrations += 1;
        perf.rehydrated_tokens += stub.history_len as u64;
        let mut demoted = stub.demoted;
        let analog = matches!(
            stub.mode,
            ExecutionMode::Sprint | ExecutionMode::NoRecompute
        ) && !demoted;
        let mut pruner = None;
        if stub.had_pruner && analog {
            // Reprogram the crossbars from the replayed history with a
            // placeholder query: `calibrate_query` runs at the top of
            // every analog step and recomputes all query-side state,
            // so the placeholder never reaches a step's outcome.
            let q0 = Matrix::zeros(1, stub.d)?;
            let mut p = InMemoryPruner::new(&q0, k, stub.attn.scale(), stub.noise, stub.seed)?;
            perf.rehydration_energy.charge(
                Category::ReramWrite,
                stub.config
                    .energies
                    .reram_write_bits(stub.history_len as u64 * 2 * (stub.d * 8) as u64),
            );
            if let Some(model) = stub.fault_model {
                // A rebuild is a fresh program epoch: stamp the model
                // and scrub everything, as the first step would.
                p.set_fault_model(Some(model));
                let map = p.scrub()?;
                let resolved = resolve_faults(&mut p, stub.fault_policy, map)?;
                perf.faults_detected += resolved.faults_detected;
                perf.fault_retries += resolved.retries;
                if resolved.demoted {
                    demoted = true;
                    perf.demoted = true;
                }
            }
            pruner = Some(p);
        }
        Ok(DecodeSession {
            config: stub.config.clone(),
            noise: stub.noise,
            spec: stub.spec,
            mode: stub.mode,
            seed: stub.seed,
            attn: stub.attn,
            threshold: stub.threshold,
            memory_accounting: stub.memory_accounting,
            kv,
            pruner,
            controller: None,
            ws: self.session_workspace(),
            q_step: None,
            perf,
            fault_model: stub.fault_model,
            fault_policy: stub.fault_policy,
            demoted,
        })
    }
}

impl DecodeSession {
    /// Tokens currently in the KV history (prefill + decoded).
    pub fn history_len(&self) -> usize {
        self.kv.len()
    }

    /// The mode every step of this session runs under.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Cumulative session accounting.
    pub fn perf(&self) -> &SessionPerf {
        &self.perf
    }

    /// Pages this session's KV cache currently holds.
    pub fn kv_pages(&self) -> usize {
        self.kv.pages()
    }

    /// Evicts the session: every KV page returns to the pool, the
    /// crossbars, controller and scratch are dropped, and a small
    /// [`EvictedSession`] stub survives with the configuration, seed
    /// and accounting needed for [`Engine::resume_session`] to rebuild
    /// the session — bit-identically — from the replayed history.
    pub fn evict(mut self) -> EvictedSession {
        self.perf.evictions += 1;
        EvictedSession {
            history_len: self.kv.len(),
            d: self.kv.embed_dim(),
            d_v: self.kv.value_dim(),
            had_pruner: self.pruner.is_some(),
            config: self.config,
            noise: self.noise,
            spec: self.spec,
            mode: self.mode,
            seed: self.seed,
            attn: self.attn,
            threshold: self.threshold,
            memory_accounting: self.memory_accounting,
            perf: self.perf,
            fault_model: self.fault_model,
            fault_policy: self.fault_policy,
            demoted: self.demoted,
        }
        // The partially-moved `self` drops here: the KvCache releases
        // its pages, the pruner/controller/workspace free their state.
    }

    /// Serves one decode step: appends the token's K/V to the history,
    /// thresholds its query against the grown crossbars (analog modes)
    /// or the digital score row (Dense/Oracle), drives the kept set
    /// through the memory controller, and recomputes the surviving
    /// scores on the cached 8-bit datapath.
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for mis-sized rows; substrate errors
    /// otherwise.
    pub fn step(&mut self, step: &DecodeStep<'_>) -> Result<StepResponse, SprintError> {
        let d = self.kv.embed_dim();
        let d_v = self.kv.value_dim();
        if step.q.len() != d || step.k.len() != d {
            return Err(SprintError::Request(format!(
                "step q/k rows hold {}/{} values, history embedding is {d}",
                step.q.len(),
                step.k.len()
            )));
        }
        if step.v.len() != d_v {
            return Err(SprintError::Request(format!(
                "step v row holds {} values, history value width is {d_v}",
                step.v.len()
            )));
        }
        let position = self.kv.len();
        let kv_delta = self.kv.push(step.k, step.v)?;
        let s = self.kv.len();

        // Stage the query as a 1×d matrix (persistent buffer).
        let q1 = match &mut self.q_step {
            Some(m) => {
                m.row_mut(0).copy_from_slice(step.q);
                &*m
            }
            None => {
                self.q_step = Some(Matrix::from_vec(1, d, step.q.to_vec())?);
                self.q_step.as_ref().expect("just set")
            }
        };

        let mut perf = StepPerf::default();
        let analog = matches!(
            self.mode,
            ExecutionMode::Sprint | ExecutionMode::NoRecompute
        ) && !self.demoted;
        if analog {
            // Grow (or first-build) the programmed crossbars.
            let needs_full_scale = self.spec.score_bits.is_some();
            let (first_build, reprogrammed) = match self.pruner.as_mut() {
                Some(p) => {
                    // The new key row comes straight from page storage;
                    // the O(s·d) gather is only paid on the rare
                    // recalibrating reprogram.
                    let kv = &self.kv;
                    let reprogrammed = p.extend_row(kv.k_row(s - 1), || kv.gather_k())?;
                    p.calibrate_query(q1, needs_full_scale)?;
                    perf.recalibrated |= reprogrammed;
                    perf.programmed_tokens += if reprogrammed { s as u64 } else { 1 };
                    (false, reprogrammed)
                }
                None => {
                    // First step: program the whole history once
                    // (the prefill's program-once cost).
                    perf.programmed_tokens += s as u64;
                    self.pruner = Some(InMemoryPruner::new(
                        q1,
                        &self.kv.gather_k(),
                        self.attn.scale(),
                        self.noise,
                        self.seed,
                    )?);
                    (true, false)
                }
            };
            // K/V quantizer recalibration also rewrites the stored
            // images.
            if (kv_delta.requantized_k || kv_delta.requantized_v) && !perf.recalibrated {
                perf.recalibrated = true;
                perf.programmed_tokens = perf.programmed_tokens.max(s as u64);
            }
            if let Some(model) = self.fault_model {
                let pruner = self.pruner.as_mut().expect("pruner installed above");
                let fresh_stamp = pruner.fault_model().is_none();
                if fresh_stamp {
                    // Stamping clears the remap set, so only stamp
                    // tiles that have never seen the model.
                    pruner.set_fault_model(Some(model));
                }
                // A reprogram re-rolls every cell's transient state; a
                // plain append only programs the new column, so the
                // standing fault picture refreshes incrementally.
                let map = if fresh_stamp || first_build || reprogrammed {
                    pruner.scrub()?
                } else {
                    pruner.scrub_key(s - 1)?
                };
                let resolved = resolve_faults(pruner, self.fault_policy, map)?;
                perf.faults_detected = resolved.faults_detected;
                perf.fault_retries = resolved.retries;
                if resolved.demoted {
                    // Graceful degradation: this step and every later
                    // one run the exact digital pipeline.
                    self.demoted = true;
                    perf.demoted = true;
                }
            }
        }
        let (output, decision, prune_stats) = if analog && !self.demoted {
            let pruner = self.pruner.as_mut().expect("pruner installed above");
            let before = pruner.stats();
            let outcome = pruner.prune_query(step.q, self.threshold, &self.spec)?;
            let delta = pruner.stats().delta_since(&before);
            let decision = outcome.decision;
            let output = if self.mode == ExecutionMode::Sprint {
                quantized_attention_decode_with(
                    q1,
                    &self.kv,
                    &self.attn,
                    Some(&decision),
                    &mut self.ws,
                )?
            } else {
                // No recompute: softmax directly over the
                // approximate analog scores of the kept keys.
                let tier = self.ws.simd_tier();
                let prow = self.ws.prob_row(s);
                for (j, slot) in prow.iter_mut().enumerate() {
                    *slot = if decision.is_kept(j) {
                        outcome.approx_scores[j]
                    } else {
                        f32::NEG_INFINITY
                    };
                }
                softmax_inplace_tier(prow, tier);
                let mut out = vec![0.0f32; d_v];
                for (j, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        for (o, &vx) in out.iter_mut().zip(self.kv.v_row(j)) {
                            *o += p * vx;
                        }
                    }
                }
                out
            };
            (output, decision, delta)
        } else {
            // Dense / Oracle — or an analog session that faults have
            // demoted. Recalibrations of the cached K/V images are
            // free here (nothing further is programmed), so the
            // programming perf fields stay zero.
            let threshold = if self.mode == ExecutionMode::Dense || self.demoted {
                f32::MIN
            } else {
                self.threshold
            };
            let (output, decision) = pruned_attention_decode_cached_with(
                q1,
                &self.kv,
                &self.attn,
                threshold,
                &mut self.ws,
            )?;
            (output, decision, PruneHardwareStats::default())
        };

        // Selective fetch through the session's controller (statistics
        // only, exactly as in the engine's head pipeline).
        let mut memory_stats = MemoryStats::default();
        if self.memory_accounting {
            if self.controller.is_none() {
                self.controller = Some(MemoryController::new(
                    self.config.memory_geometry(),
                    self.config.timing,
                )?);
            }
            let controller = self.controller.as_mut().expect("controller installed");
            controller.reset_cold();
            controller.process_query(decision.as_slice())?;
            memory_stats = controller.stats();
        }

        self.count_step(&mut perf, &decision, &prune_stats, &memory_stats);
        let response = StepResponse {
            position,
            output,
            decision,
            prune_stats,
            memory_stats,
            perf,
        };
        self.perf.record(&response);
        Ok(response)
    }

    /// Fills in the step's energy and latency deltas, mirroring the
    /// Table II counting of [`crate::PerfRollup::from_response`] for a
    /// single live query over `s` history keys. The crossbar write
    /// cost of `perf.programmed_tokens` tokens lands in
    /// `program_energy` (K and V rows, `2·d` bytes per token), kept
    /// apart from the recurring step energy.
    fn count_step(
        &self,
        perf: &mut StepPerf,
        decision: &PruneDecision,
        prune_stats: &PruneHardwareStats,
        memory_stats: &MemoryStats,
    ) {
        let u = &self.config.energies;
        let d = self.kv.embed_dim();
        let s = decision.len();
        let kept = decision.kept_count() as u64;
        let d_bits = (d * 8) as u64;
        let cpt = d.div_ceil(self.config.head_dim.max(1)) as u64;

        perf.program_energy.charge(
            Category::ReramWrite,
            u.reram_write_bits(perf.programmed_tokens * 2 * d_bits),
        );

        let mut energy = EnergyBreakdown::new();
        energy.charge(
            Category::ReramRead,
            u.reram_read_bits(memory_stats.bytes_fetched * 8 + d_bits),
        );
        if prune_stats.queries_pruned > 0 {
            let copyq_bits = d as u64 * 4;
            let readp_bits = s as u64 / 8;
            energy.charge(
                Category::InReramPruning,
                u.in_memory_computation * prune_stats.in_memory_ops
                    + u.analog_comparator * prune_stats.comparator_firings as f64
                    + u.reram_read_bits(copyq_bits + readp_bits),
            );
        }
        // One query's counts: `s` dense pairs, `kept` survivors (the
        // shared Fig. 9 stage table in `model.rs`).
        let (qk_dots, vpu_dots, softmax_ops) = onchip_op_counts(self.mode, s as u64, kept);
        energy.charge(Category::QkPu, u.qk_pu_dot_product * (qk_dots * cpt));
        energy.charge(Category::VPu, u.qk_pu_dot_product * (vpu_dots * cpt));
        energy.charge(Category::Softmax, u.softmax * softmax_ops);
        energy.charge(
            Category::OnChipRead,
            u.buffer_access_bits((qk_dots + vpu_dots) * d_bits),
        );
        energy.charge(
            Category::OnChipWrite,
            u.buffer_access_bits(memory_stats.fetched_vectors * d_bits),
        );
        perf.energy = energy;

        // Latency: worst CORELET under token interleaving vs. the
        // memory stream, with the analog handshake floor.
        let corelets = self.config.corelets.max(1);
        let mut per_corelet = vec![0u64; corelets];
        for (j, &pruned) in decision.as_slice().iter().enumerate() {
            if !pruned {
                per_corelet[j % corelets] += 1;
            }
        }
        let worst = per_corelet.iter().copied().max().unwrap_or(0);
        let compute = per_query_compute_cycles(self.mode, s, worst, corelets, cpt);
        let mem =
            (memory_stats.fetched_vectors as f64 * self.config.cycles_per_pair()).ceil() as u64;
        let floor = if self.mode.uses_in_memory_pruning() {
            THRESHOLD_ISSUE_CYCLES
        } else {
            0
        };
        perf.cycles = compute.max(mem).max(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeadRequest;
    use sprint_workloads::{ModelConfig, TraceGenerator};

    fn trace(seq: usize, seed: u64) -> sprint_workloads::HeadTrace {
        let spec = ModelConfig::bert_base()
            .trace_spec()
            .with_seq_len(seq)
            .with_padding(0.0);
        TraceGenerator::new(seed).generate(&spec).unwrap()
    }

    fn prefix(m: &Matrix, n: usize) -> Matrix {
        m.prefix_rows(n).unwrap()
    }

    fn engine(mode: ExecutionMode) -> Engine {
        Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .mode(mode)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn session_steps_are_well_formed_and_accounted() {
        let t = trace(40, 5);
        for mode in ExecutionMode::ALL {
            let e = engine(mode);
            let (pk, pv) = (prefix(t.k(), 24), prefix(t.v(), 24));
            let mut session = e
                .open_session(&SessionRequest::new(&pk, &pv, t.config(), t.threshold()))
                .unwrap();
            assert_eq!(session.mode(), mode);
            for step in 24..40 {
                let out = session
                    .step(&DecodeStep {
                        q: t.q().row(step),
                        k: t.k().row(step),
                        v: t.v().row(step),
                    })
                    .unwrap();
                assert_eq!(out.position, step, "{mode:?}");
                assert_eq!(out.decision.len(), step + 1);
                assert_eq!(out.output.len(), t.v().cols());
                assert!(out.perf.cycles > 0);
                assert!(out.memory_stats.queries == 1);
                if mode.uses_in_memory_pruning() {
                    assert_eq!(out.prune_stats.queries_pruned, 1);
                    assert!(out.perf.programmed_tokens >= 1);
                } else {
                    assert_eq!(out.prune_stats, PruneHardwareStats::default());
                    assert_eq!(out.perf.programmed_tokens, 0);
                }
            }
            assert_eq!(session.history_len(), 40);
            let perf = session.perf();
            assert_eq!(perf.tokens, 16);
            assert!(perf.energy.total().as_pj() > 0.0);
            if mode.uses_in_memory_pruning() {
                // Prefill programmed once (24 tokens at step 0) plus
                // one token per later step, modulo recalibrations.
                assert!(perf.programmed_tokens >= 39);
                assert!(perf.program_energy.total().as_pj() > 0.0);
            }
            if mode != ExecutionMode::Dense {
                assert!(perf.kept_fraction() < 1.0);
            }
        }
    }

    #[test]
    fn session_inherits_engine_defaults_and_overrides() {
        let t = trace(16, 7);
        let e = engine(ExecutionMode::Sprint);
        let (pk, pv) = (prefix(t.k(), 8), prefix(t.v(), 8));
        let base = SessionRequest::new(&pk, &pv, t.config(), t.threshold());
        assert_eq!(e.open_session(&base).unwrap().mode(), ExecutionMode::Sprint);
        let s = e
            .open_session(&base.clone().with_mode(ExecutionMode::Oracle))
            .unwrap();
        assert_eq!(s.mode(), ExecutionMode::Oracle);
    }

    #[test]
    fn mis_sized_steps_and_prefills_are_rejected() {
        let t = trace(16, 9);
        let e = engine(ExecutionMode::Sprint);
        let (pk, pv) = (prefix(t.k(), 8), prefix(t.v(), 7));
        assert!(matches!(
            e.open_session(&SessionRequest::new(&pk, &pv, t.config(), 0.0)),
            Err(SprintError::Request(_))
        ));
        let pv = prefix(t.v(), 8);
        let mut session = e
            .open_session(&SessionRequest::new(&pk, &pv, t.config(), 0.0))
            .unwrap();
        let short = vec![0.0f32; 3];
        let ok_q = t.q().row(8);
        assert!(session
            .step(&DecodeStep {
                q: &short,
                k: t.k().row(8),
                v: t.v().row(8)
            })
            .is_err());
        assert!(session
            .step(&DecodeStep {
                q: ok_q,
                k: t.k().row(8),
                v: &short
            })
            .is_err());
        // A well-formed step still works afterwards.
        assert!(session
            .step(&DecodeStep {
                q: ok_q,
                k: t.k().row(8),
                v: t.v().row(8)
            })
            .is_ok());
    }

    #[test]
    fn session_step_matches_fresh_head_oracle_spot_check() {
        // The full four-mode sweep lives in tests/tests/decode.rs;
        // this in-crate spot check keeps the contract close to the
        // implementation.
        let t = trace(32, 13);
        let e = engine(ExecutionMode::Sprint);
        let (pk, pv) = (prefix(t.k(), 20), prefix(t.v(), 20));
        let mut session = e
            .open_session(&SessionRequest::new(&pk, &pv, t.config(), t.threshold()).with_head_id(3))
            .unwrap();
        for step in 20..32 {
            let out = session
                .step(&DecodeStep {
                    q: t.q().row(step),
                    k: t.k().row(step),
                    v: t.v().row(step),
                })
                .unwrap();
            let hist_k = prefix(t.k(), step + 1);
            let hist_v = prefix(t.v(), step + 1);
            let q1 = prefix(t.q(), 1); // placeholder shape, replaced below
            let mut q_row = q1;
            q_row.row_mut(0).copy_from_slice(t.q().row(step));
            let oracle = e
                .run_head(
                    &HeadRequest::new(&q_row, &hist_k, &hist_v, t.config(), t.threshold())
                        .with_head_id(3),
                )
                .unwrap();
            assert_eq!(out.output.as_slice(), oracle.output.row(0), "step {step}");
            assert_eq!(out.decision, oracle.decisions[0]);
            assert_eq!(out.prune_stats, oracle.prune_stats);
            assert_eq!(out.memory_stats, oracle.memory_stats);
        }
    }
}
