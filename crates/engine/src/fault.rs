//! Fault-recovery policy and degradation accounting for the engine.
//!
//! The substrate layer (`sprint-reram`) detects hard ReRAM faults —
//! [`sprint_reram::FaultModel`] injects them, scrub passes locate them,
//! write-verified reprogramming repairs the repairable ones. What to do
//! about the *residual* faults (stuck cells that no retry can fix) is a
//! serving-layer decision, and [`FaultPolicy`] names the options the
//! engine supports, in increasing order of intervention:
//!
//! 1. **Monitor** — count faults, serve the degraded analog result;
//! 2. **Retry** — repair with bounded write-verify retries, then serve
//!    with whatever remains;
//! 3. **Remap** — after repair, route residual faulty key columns to
//!    verified spare columns (their thresholding scores come from the
//!    digital shadow, modeling fault-free spares);
//! 4. **Demote** — after repair, fall back to the exact on-chip
//!    digital pipeline for the whole head (the `Dense` datapath), so
//!    the request completes with full accuracy at dense cost;
//! 5. **Fail** — after repair, surface the first residual fault as
//!    [`crate::SprintError::Reram`] with structured cell coordinates.
//!
//! Every policy except `Fail` guarantees the request **completes
//! without an error**: degradation is visible only in the
//! [`FaultReport`] attached to the response. Recovery is deterministic
//! — fault maps derive from crossbar identity (the construction seed),
//! never from scheduling — so responses stay bit-identical across
//! worker counts even with faults injected.

use serde::{Deserialize, Serialize};

use sprint_reram::{FaultMap, InMemoryPruner, ReramError};

use crate::SprintError;

/// What the engine does about residual ReRAM faults found by the
/// post-program scrub of a head's crossbars (see the module docs for
/// the escalation ladder).
///
/// The default is `Demote { max_attempts: 3 }`: bounded repair, then
/// graceful degradation to the exact digital pipeline — every request
/// completes, accuracy is never silently lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// Detect and count faults; serve the degraded analog result as-is
    /// (no repair, no fallback). The accuracy-vs-fault-rate sweeps run
    /// under this policy so the raw degradation stays measurable.
    Monitor,
    /// Repair faulty columns with up to `max_attempts` write-verify
    /// reprogram attempts each, then serve with whatever remains.
    Retry {
        /// Write-verify attempts per faulty column (≥ 1).
        max_attempts: u32,
    },
    /// Repair, then route residual faulty key columns to verified
    /// spare columns: their thresholding scores are substituted from
    /// the digital shadow. Falls back to demotion when more columns
    /// are faulty than spares exist.
    Remap {
        /// Write-verify attempts per faulty column (≥ 1).
        max_attempts: u32,
        /// Spare columns available per head's crossbar set.
        spare_columns: usize,
    },
    /// Repair, then demote the head to the exact on-chip digital
    /// pipeline (the `Dense` datapath) if any fault remains.
    Demote {
        /// Write-verify attempts per faulty column (≥ 1).
        max_attempts: u32,
    },
    /// Repair, then fail the request with
    /// [`sprint_reram::ReramError::ProgramFault`] carrying the first
    /// residual fault's cell coordinates.
    Fail {
        /// Write-verify attempts per faulty column (≥ 1).
        max_attempts: u32,
    },
}

impl Default for FaultPolicy {
    /// Bounded repair (3 attempts), then graceful degradation to the
    /// exact digital pipeline.
    fn default() -> Self {
        FaultPolicy::Demote { max_attempts: 3 }
    }
}

/// Per-head fault-handling outcome, attached to every
/// [`crate::HeadResponse`]. All-zero (the [`Default`]) when the engine
/// has no fault model or the scrub came back clean, so fault-free
/// responses compare equal to pre-fault-support ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Faulty cells the scrub detected (before repair).
    pub faults_detected: u64,
    /// Distinct key columns those cells live in.
    pub faulty_columns: u64,
    /// Write-verify reprogram retries spent repairing (beyond each
    /// column's first attempt).
    pub retries: u64,
    /// Exponential-backoff ticks consumed by those retries.
    pub backoff_ticks: u64,
    /// Key columns routed to spare columns after repair.
    pub remapped_columns: u64,
    /// Whether the head was demoted to the exact digital pipeline.
    pub demoted: bool,
    /// Set when residual faults were served as-is under
    /// `Monitor`/`Retry` (degraded analog scores reached the softmax).
    residual_faults: bool,
}

impl FaultReport {
    /// Whether this head served a degraded or fallback result (any
    /// fault survived to influence execution). Detection plus a fully
    /// successful repair does **not** count as degraded.
    pub fn degraded(&self) -> bool {
        self.demoted || self.remapped_columns > 0 || self.residual_faults
    }
}

/// Runs the policy ladder over a scrubbed fault map: repair (except
/// under `Monitor`), then resolve the residual per the policy. Returns
/// the filled report; `report.demoted` tells the caller to fall back
/// to the digital pipeline. `Fail` surfaces the first residual fault
/// as an error.
pub(crate) fn resolve_faults(
    pruner: &mut InMemoryPruner,
    policy: FaultPolicy,
    map: FaultMap,
) -> Result<FaultReport, SprintError> {
    let mut report = FaultReport {
        faults_detected: map.cell_count() as u64,
        faulty_columns: map.faulty_keys().len() as u64,
        ..FaultReport::default()
    };
    if map.is_clean() {
        return Ok(report);
    }
    let residual = match policy {
        FaultPolicy::Monitor => map,
        FaultPolicy::Retry { max_attempts }
        | FaultPolicy::Remap { max_attempts, .. }
        | FaultPolicy::Demote { max_attempts }
        | FaultPolicy::Fail { max_attempts } => {
            let outcome = pruner.repair(&map, max_attempts.max(1))?;
            report.retries = outcome.retries;
            report.backoff_ticks = outcome.backoff_ticks;
            outcome.remaining
        }
    };
    if residual.is_clean() {
        return Ok(report);
    }
    match policy {
        FaultPolicy::Monitor | FaultPolicy::Retry { .. } => {
            report.residual_faults = true;
        }
        FaultPolicy::Remap { spare_columns, .. } => {
            // Union with columns already remapped (a decode session
            // accumulates them across steps); a fresh head starts from
            // an empty set.
            let mut keys = pruner.remapped_keys();
            for j in residual.faulty_keys() {
                if !keys.contains(&j) {
                    keys.push(j);
                }
            }
            if keys.len() <= spare_columns {
                keys.sort_unstable();
                pruner.set_remapped(&keys)?;
                report.remapped_columns = keys.len() as u64;
            } else {
                report.demoted = true;
            }
        }
        FaultPolicy::Demote { .. } => report.demoted = true,
        FaultPolicy::Fail { .. } => {
            let site = residual.first_site().expect("residual map is not clean");
            return Err(SprintError::Reram(ReramError::ProgramFault {
                crossbar: site.crossbar,
                row: site.row,
                col: site.col,
            }));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_bounded_repair_then_demote() {
        assert_eq!(
            FaultPolicy::default(),
            FaultPolicy::Demote { max_attempts: 3 }
        );
    }

    #[test]
    fn default_report_is_clean_and_not_degraded() {
        let r = FaultReport::default();
        assert_eq!(r.faults_detected, 0);
        assert!(!r.degraded());
    }

    #[test]
    fn degraded_tracks_any_surviving_fault() {
        let mut r = FaultReport {
            retries: 4, // repaired: not degraded
            ..FaultReport::default()
        };
        assert!(!r.degraded());
        r.remapped_columns = 1;
        assert!(r.degraded());
        let demoted = FaultReport {
            demoted: true,
            ..FaultReport::default()
        };
        assert!(demoted.degraded());
    }
}
