//! Model-level requests and responses for [`crate::ModelServer`].
//!
//! The paper's evaluation (§VII, Figs. 10–12) is *model*-level: energy
//! and latency are reported per workload (BERT-L, GPT-2, ViT at their
//! SQuAD/GLUE/WikiText sequence lengths), not per head. The types here
//! describe one full forward pass — a [`ModelProfile`] naming the
//! layers × heads grid and per-layer sequence lengths — and the
//! roll-ups the server aggregates head responses into: per-layer
//! [`LayerReport`]s and a whole-model [`PerfRollup`] of energy,
//! latency, data movement and (optionally) proxy-task accuracy.

use serde::{Deserialize, Serialize};

use sprint_energy::{Category, EnergyBreakdown};
use sprint_reram::ThresholdSpec;
use sprint_workloads::{ModelConfig, TaskScore, TraceSpec};

use crate::{derive_head_seed, ExecutionMode, HeadResponse, SprintConfig, SprintError};

/// Salt mixed into the base seed for trace synthesis (distinct from
/// the pruner-seed stream, so traces and analog noise are independent).
/// Shared with the decode loop so decode traces ride the same stream
/// discipline.
pub(crate) const TRACE_SALT: u64 = 0x7ace;
/// Salt mixed into the base seed for proxy-task construction.
const TASK_SALT: u64 = 0x7a51;

/// Command-bus occupancy of the thresholding handshake per query
/// (mirrors the counting simulator's floor; the handshake overlaps the
/// previous query's compute, so only bus occupancy can bound it).
/// Shared with the per-step decode accounting.
pub(crate) const THRESHOLD_ISSUE_CYCLES: u64 = 4;

/// The (QK-PU, V-PU, softmax) operation counts of a pipeline stage
/// under `mode`: `dense` where the stage runs over everything, `kept`
/// where it touches only survivors (the Fig. 9 pipelines). The single
/// source of truth shared by the per-head roll-up
/// ([`PerfRollup::from_response`], which passes head totals) and the
/// per-step decode accounting (which passes one query's counts) — when
/// touching it, the profile-driven simulator in `sprint-core::counting`
/// must stay in step too.
pub(crate) fn onchip_op_counts(mode: ExecutionMode, dense: u64, kept: u64) -> (u64, u64, u64) {
    match mode {
        // Full dense QK; Dense keeps everything downstream too.
        ExecutionMode::Dense => (dense, dense, dense),
        ExecutionMode::Oracle => (dense, kept, kept),
        // Recompute touches only the survivors.
        ExecutionMode::Sprint => (kept, kept, kept),
        // Approximate scores skip the QK-PU entirely.
        ExecutionMode::NoRecompute => (0, kept, kept),
    }
}

/// One query's compute cycles under token interleaving: `n` live keys,
/// `worst` the worst-CORELET kept count, `cpt` cycles per tile.
/// Shared by [`PerfRollup::from_response`] and the decode-step
/// accounting for the same reason as [`onchip_op_counts`].
pub(crate) fn per_query_compute_cycles(
    mode: ExecutionMode,
    n: usize,
    worst: u64,
    corelets: usize,
    cpt: u64,
) -> u64 {
    match mode {
        ExecutionMode::Dense => 3 * (n.div_ceil(corelets) as u64) * cpt,
        ExecutionMode::Oracle => (n.div_ceil(corelets) as u64 + 2 * worst) * cpt,
        ExecutionMode::Sprint => 3 * worst * cpt,
        ExecutionMode::NoRecompute => 2 * worst * cpt,
    }
}

/// The layers × heads shape of one served model.
///
/// A profile names the grid the server decomposes a forward pass into:
/// `layer_seq_lens.len()` layers of `heads` attention heads each, every
/// head synthesized from the same pruning/padding/locality statistics.
/// Per-layer sequence lengths may be ragged (encoder stacks that
/// shorten the sequence, staged decoding, mixed-resolution vision
/// towers).
///
/// # Example
///
/// ```
/// use sprint_engine::ModelProfile;
/// use sprint_workloads::ModelConfig;
///
/// // Two BERT-like layers of 2 heads, scaled down for a quick run.
/// let profile = ModelProfile::from_model(&ModelConfig::bert_base())
///     .with_layers(2)
///     .with_heads(2)
///     .with_seq_len(48);
/// assert_eq!(profile.layers(), 2);
/// assert_eq!(profile.head_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    name: String,
    head_dim: usize,
    heads: usize,
    layer_seq_lens: Vec<usize>,
    prune_rate: f64,
    padding_fraction: f64,
    target_overlap: f64,
    source: Option<ModelConfig>,
}

impl ModelProfile {
    /// Builds the profile of one studied workload: `model.layers`
    /// layers × `model.heads` heads at the model's default sequence
    /// length and statistics. The source model is retained, which is
    /// what lets [`crate::ModelRequest::with_accuracy`] pin the proxy
    /// task to the paper's baseline metric.
    pub fn from_model(model: &ModelConfig) -> Self {
        ModelProfile {
            name: model.name.to_string(),
            head_dim: model.head_dim,
            heads: model.heads.max(1),
            layer_seq_lens: vec![model.seq_len; model.layers.max(1)],
            prune_rate: model.pruning_rate,
            padding_fraction: model.padding_fraction,
            target_overlap: model.adjacent_overlap,
            source: Some(model.clone()),
        }
    }

    /// Builds a free-form profile (no source model, so accuracy
    /// evaluation is unavailable; everything else works).
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for an empty layer list, zero heads,
    /// zero head dimension, or a zero sequence length.
    pub fn custom(
        name: impl Into<String>,
        head_dim: usize,
        heads: usize,
        layer_seq_lens: Vec<usize>,
        prune_rate: f64,
        padding_fraction: f64,
        target_overlap: f64,
    ) -> Result<Self, SprintError> {
        let profile = ModelProfile {
            name: name.into(),
            head_dim,
            heads,
            layer_seq_lens,
            prune_rate,
            padding_fraction,
            target_overlap,
            source: None,
        };
        profile.validate()?;
        Ok(profile)
    }

    /// Shape validation, shared by [`ModelProfile::custom`] and the
    /// server (the `with_*` builders defer it, so a profile mangled
    /// after construction still fails with a request-level error).
    pub(crate) fn validate(&self) -> Result<(), SprintError> {
        if self.layer_seq_lens.is_empty() || self.heads == 0 || self.head_dim == 0 {
            return Err(SprintError::Request(format!(
                "model profile '{}' is degenerate: {} layers x {} heads, d = {}",
                self.name,
                self.layer_seq_lens.len(),
                self.heads,
                self.head_dim
            )));
        }
        if let Some(&s) = self.layer_seq_lens.iter().find(|&&s| s == 0) {
            return Err(SprintError::Request(format!(
                "model profile '{}' has a zero-length layer (s = {s})",
                self.name
            )));
        }
        Ok(())
    }

    /// Returns the profile with every layer at `seq_len`.
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        for s in &mut self.layer_seq_lens {
            *s = seq_len;
        }
        self
    }

    /// Returns the profile with explicit (possibly ragged) per-layer
    /// sequence lengths; the layer count becomes `seq_lens.len()`.
    /// Shape validation happens when the profile is served.
    #[must_use]
    pub fn with_layer_seq_lens(mut self, seq_lens: Vec<usize>) -> Self {
        self.layer_seq_lens = seq_lens;
        self
    }

    /// Returns the profile truncated or extended (repeating the last
    /// layer's sequence length) to `layers` layers.
    #[must_use]
    pub fn with_layers(mut self, layers: usize) -> Self {
        let last = self.layer_seq_lens.last().copied().unwrap_or(0);
        self.layer_seq_lens.resize(layers, last);
        self
    }

    /// Returns the profile with `heads` attention heads per layer.
    #[must_use]
    pub fn with_heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Display name of the profiled model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attention layers.
    pub fn layers(&self) -> usize {
        self.layer_seq_lens.len()
    }

    /// Attention heads per layer.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Total heads in one forward pass (`layers × heads`).
    pub fn head_count(&self) -> usize {
        self.layer_seq_lens.len() * self.heads
    }

    /// Per-head embedding size.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Per-layer sequence lengths, one entry per layer.
    pub fn layer_seq_lens(&self) -> &[usize] {
        &self.layer_seq_lens
    }

    /// The studied workload this profile came from, when built with
    /// [`ModelProfile::from_model`].
    pub fn source(&self) -> Option<&ModelConfig> {
        self.source.as_ref()
    }

    /// The [`TraceSpec`] every head of `layer` is synthesized from.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_spec(&self, layer: usize) -> TraceSpec {
        TraceSpec {
            seq_len: self.layer_seq_lens[layer],
            head_dim: self.head_dim,
            prune_rate: self.prune_rate,
            padding_fraction: self.padding_fraction,
            target_overlap: self.target_overlap,
        }
    }
}

/// One full forward pass to serve: a [`ModelProfile`] plus the shared
/// base seed and the per-request overrides of the server's engine
/// defaults.
///
/// # Example
///
/// ```
/// use sprint_engine::{ExecutionMode, ModelProfile, ModelRequest};
/// use sprint_workloads::ModelConfig;
///
/// let profile = ModelProfile::from_model(&ModelConfig::vit_base())
///     .with_layers(1)
///     .with_heads(2)
///     .with_seq_len(32);
/// let request = ModelRequest::new(profile)
///     .with_seed(9)
///     .with_mode(ExecutionMode::Oracle);
/// assert_eq!(request.head_plan().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRequest {
    profile: ModelProfile,
    base_seed: u64,
    mode: Option<ExecutionMode>,
    threshold_spec: Option<ThresholdSpec>,
    accuracy: bool,
}

impl ModelRequest {
    /// Builds a request for one forward pass of `profile` (base seed 0,
    /// engine-default mode and comparator, accuracy evaluation off).
    pub fn new(profile: ModelProfile) -> Self {
        ModelRequest {
            profile,
            base_seed: 0,
            mode: None,
            threshold_spec: None,
            accuracy: false,
        }
    }

    /// Sets the shared base seed all per-(layer, head) seeds derive
    /// from (see [`ModelRequest::head_plan`]).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the engine's default [`ExecutionMode`] for every head
    /// of this pass.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Overrides the engine's default comparator [`ThresholdSpec`] for
    /// every head of this pass.
    #[must_use]
    pub fn with_threshold_spec(mut self, spec: ThresholdSpec) -> Self {
        self.threshold_spec = Some(spec);
        self
    }

    /// Enables proxy-task accuracy roll-ups. Requires a profile built
    /// with [`ModelProfile::from_model`] (the task pins the paper's
    /// baseline metric); roughly doubles the per-head cost (each task
    /// runs a dense reference pass).
    #[must_use]
    pub fn with_accuracy(mut self, on: bool) -> Self {
        self.accuracy = on;
        self
    }

    /// The served profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The shared base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The pass-wide mode override, if any.
    pub fn mode_override(&self) -> Option<ExecutionMode> {
        self.mode
    }

    /// The pass-wide comparator override, if any.
    pub fn threshold_spec_override(&self) -> Option<ThresholdSpec> {
        self.threshold_spec
    }

    /// Whether accuracy roll-ups were requested.
    pub fn wants_accuracy(&self) -> bool {
        self.accuracy
    }

    /// The deterministic decomposition of this request into per-head
    /// work, in (layer, head) order.
    ///
    /// Every seed is a pure function of the base seed and the head's
    /// grid position (`id = layer·heads + head` mixed through
    /// [`derive_head_seed`]), so the plan — and therefore every trace,
    /// pruner seed and proxy task downstream — is bit-identical no
    /// matter how many workers execute it or what else the server is
    /// doing. This is the contract the serving equivalence tests pin.
    pub fn head_plan(&self) -> Vec<HeadPlan> {
        let mut plan = Vec::with_capacity(self.profile.head_count());
        for layer in 0..self.profile.layers() {
            let spec = self.profile.layer_spec(layer);
            for head in 0..self.profile.heads() {
                let id = (layer * self.profile.heads() + head) as u64;
                plan.push(HeadPlan {
                    layer,
                    head,
                    head_id: derive_head_seed(self.base_seed, id),
                    trace_seed: derive_head_seed(self.base_seed ^ TRACE_SALT, id),
                    task_seed: derive_head_seed(self.base_seed ^ TASK_SALT, id),
                    spec,
                });
            }
        }
        plan
    }
}

/// One head's slot in a [`ModelRequest::head_plan`]: grid position,
/// derived seeds, and the trace spec to synthesize it from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadPlan {
    /// Layer index within the model.
    pub layer: usize,
    /// Head index within the layer.
    pub head: usize,
    /// Stable head identity passed to
    /// [`crate::HeadRequest::with_head_id`] (pins the pruner seed).
    pub head_id: u64,
    /// Seed of the [`sprint_workloads::TraceGenerator`] that
    /// synthesizes this head's Q/K/V.
    pub trace_seed: u64,
    /// Seed of the head's proxy task (when accuracy is requested).
    pub task_seed: u64,
    /// The synthesis spec (the profile's statistics at this layer's
    /// sequence length).
    pub spec: TraceSpec,
}

/// Aggregated execution metrics of a set of heads: counted energy and
/// latency (Table II unit energies over the *actually executed*
/// pruning decisions), memory-controller data movement, pruning
/// totals, and optional proxy-task accuracy means.
///
/// Roll-ups add: a layer's rollup is the [`PerfRollup::merge`] of its
/// heads, the model total the merge of its layers. The property tests
/// pin `serve() == Σ run_head()` through this type.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfRollup {
    /// Heads aggregated.
    pub heads: u64,
    /// Counted latency in cycles (heads execute back-to-back on one
    /// accelerator, so cycles add across heads and layers).
    pub cycles: u64,
    /// Counted energy by category (Table II units).
    pub energy: EnergyBreakdown,
    /// K/V vectors fetched from main memory (zero when the engine was
    /// built with memory accounting off).
    pub fetched_vectors: u64,
    /// K/V vectors reused on chip via spatial locality.
    pub reused_vectors: u64,
    /// Bytes moved over the memory channels.
    pub bytes_fetched: u64,
    /// Queries thresholded in ReRAM (zero in the digital modes).
    pub queries_pruned: u64,
    /// Scores surviving pruning, summed over live queries.
    pub kept_scores: u64,
    /// Live query × live key pairs (the kept-fraction denominator).
    pub live_pairs: u64,
    /// ReRAM cell faults detected by post-program scrubs (zero without
    /// an attached [`sprint_reram::FaultModel`]).
    pub faults_detected: u64,
    /// Write-verify reprogram retries spent repairing faulty columns.
    pub fault_retries: u64,
    /// Faulty key columns routed to spare columns after repair.
    pub remapped_columns: u64,
    /// Heads demoted to the exact digital pipeline by the engine's
    /// [`crate::FaultPolicy`].
    pub heads_demoted: u64,
    accuracy_sum: f64,
    perplexity_sum: f64,
    agreement_sum: f64,
    scored_heads: u64,
}

impl PerfRollup {
    /// Counts one executed head into a fresh rollup.
    ///
    /// Energy and latency follow the paper's counting methodology
    /// (operation counts × Table II unit energies), but the counts are
    /// grounded in the head's *actual* outputs: kept sets come from
    /// `response.decisions`, data movement from the memory controller,
    /// analog operation counts from the pruner. The category split
    /// matches Fig. 13 (`sprint_energy::Category`).
    ///
    /// `live` is the head's live-token count and `seq_len` its full
    /// padded length; `mode` must be the mode the head actually ran
    /// under.
    ///
    /// This is the execution-grounded sibling of the profile-driven
    /// counting simulator in `sprint-core::counting` (which predicts
    /// from synthetic kept-set profiles and owns the figure drivers).
    /// They share the Table II methodology by design — when touching
    /// unit charges or the latency model, keep both in step.
    pub fn from_response(
        mode: ExecutionMode,
        config: &SprintConfig,
        head_dim: usize,
        seq_len: usize,
        live: usize,
        response: &HeadResponse,
    ) -> PerfRollup {
        let u = &config.energies;
        let d_bits = (head_dim * 8) as u64;
        let cpt = head_dim.div_ceil(config.head_dim.max(1)) as u64;
        let cpp = config.cycles_per_pair();
        let corelets = config.corelets.max(1);

        let live_q = live.min(response.decisions.len());
        let kept_scores: u64 = response.decisions[..live_q]
            .iter()
            .map(|d| d.kept_count() as u64)
            .sum();

        let mut energy = EnergyBreakdown::new();
        // Embeddings written to ReRAM once per head (Q, K, V).
        energy.charge(
            Category::ReramWrite,
            u.reram_write_bits(3 * seq_len as u64 * d_bits),
        );
        // Data movement: what the controller actually fetched, plus
        // the streamed query vectors.
        let read_bits = response.memory_stats.bytes_fetched * 8 + live as u64 * d_bits;
        energy.charge(Category::ReramRead, u.reram_read_bits(read_bits));
        // In-ReRAM pruning: the pruner's own operation counters plus
        // the CopyQ/ReadP command payloads (analog modes only; the
        // counters are zero otherwise).
        let p = &response.prune_stats;
        if p.queries_pruned > 0 {
            let copyq_bits = live as u64 * (head_dim as u64 * 4);
            let readp_bits = (live * live) as u64 / 8;
            energy.charge(
                Category::InReramPruning,
                u.in_memory_computation * p.in_memory_ops
                    + u.analog_comparator * p.comparator_firings as f64
                    + u.reram_read_bits(copyq_bits + readp_bits),
            );
        }
        // On-chip compute: which units run depends on the pipeline
        // (head totals: live×live dense pairs vs. summed kept scores).
        let (qk_dots, vpu_dots, softmax_ops) =
            onchip_op_counts(mode, (live * live) as u64, kept_scores);
        energy.charge(Category::QkPu, u.qk_pu_dot_product * (qk_dots * cpt));
        energy.charge(Category::VPu, u.qk_pu_dot_product * (vpu_dots * cpt));
        energy.charge(Category::Softmax, u.softmax * softmax_ops);
        energy.charge(
            Category::OnChipRead,
            u.buffer_access_bits((qk_dots + vpu_dots) * d_bits),
        );
        energy.charge(
            Category::OnChipWrite,
            u.buffer_access_bits(response.memory_stats.fetched_vectors * d_bits),
        );

        // Latency: per-query worst-CORELET compute under token
        // interleaving, overlapped with the (query-averaged) memory
        // stream; analog modes never drop below the handshake's bus
        // occupancy.
        let mean_fetch = if live_q > 0 {
            response
                .memory_stats
                .fetched_vectors
                .div_ceil(live_q as u64)
        } else {
            0
        };
        let mem = (mean_fetch as f64 * cpp).ceil() as u64;
        let mut cycles = 0u64;
        let mut per_corelet = vec![0u64; corelets];
        for d in response.decisions[..live_q].iter() {
            per_corelet.fill(0);
            for (j, &pruned) in d.as_slice().iter().enumerate() {
                if !pruned {
                    per_corelet[j % corelets] += 1;
                }
            }
            let worst = per_corelet.iter().copied().max().unwrap_or(0);
            let compute = per_query_compute_cycles(mode, live, worst, corelets, cpt);
            let floor = if mode.uses_in_memory_pruning() {
                THRESHOLD_ISSUE_CYCLES
            } else {
                0
            };
            cycles += compute.max(mem).max(floor);
        }

        PerfRollup {
            heads: 1,
            cycles,
            energy,
            fetched_vectors: response.memory_stats.fetched_vectors,
            reused_vectors: response.memory_stats.reused_vectors,
            bytes_fetched: response.memory_stats.bytes_fetched,
            queries_pruned: p.queries_pruned,
            kept_scores,
            live_pairs: (live_q * live) as u64,
            faults_detected: response.faults.faults_detected,
            fault_retries: response.faults.retries,
            remapped_columns: response.faults.remapped_columns,
            heads_demoted: u64::from(response.faults.demoted),
            accuracy_sum: 0.0,
            perplexity_sum: 0.0,
            agreement_sum: 0.0,
            scored_heads: 0,
        }
    }

    /// Adds one head's proxy-task score to the accuracy means.
    pub fn record_score(&mut self, score: TaskScore) {
        self.accuracy_sum += score.accuracy;
        self.perplexity_sum += score.perplexity;
        self.agreement_sum += score.agreement;
        self.scored_heads += 1;
    }

    /// Accumulates another rollup into this one.
    pub fn merge(&mut self, other: &PerfRollup) {
        self.heads += other.heads;
        self.cycles += other.cycles;
        self.energy += other.energy;
        self.fetched_vectors += other.fetched_vectors;
        self.reused_vectors += other.reused_vectors;
        self.bytes_fetched += other.bytes_fetched;
        self.queries_pruned += other.queries_pruned;
        self.kept_scores += other.kept_scores;
        self.live_pairs += other.live_pairs;
        self.faults_detected += other.faults_detected;
        self.fault_retries += other.fault_retries;
        self.remapped_columns += other.remapped_columns;
        self.heads_demoted += other.heads_demoted;
        self.accuracy_sum += other.accuracy_sum;
        self.perplexity_sum += other.perplexity_sum;
        self.agreement_sum += other.agreement_sum;
        self.scored_heads += other.scored_heads;
    }

    /// Fraction of live scores that survived pruning.
    pub fn kept_fraction(&self) -> f64 {
        self.kept_scores as f64 / self.live_pairs.max(1) as f64
    }

    /// Fraction of on-chip K/V traffic served by reuse rather than
    /// fresh fetches.
    pub fn reuse_fraction(&self) -> f64 {
        self.reused_vectors as f64 / (self.reused_vectors + self.fetched_vectors).max(1) as f64
    }

    /// Mean proxy-task score over the scored heads, or `None` when
    /// accuracy evaluation was off.
    pub fn accuracy(&self) -> Option<TaskScore> {
        if self.scored_heads == 0 {
            return None;
        }
        let n = self.scored_heads as f64;
        Some(TaskScore {
            accuracy: self.accuracy_sum / n,
            perplexity: self.perplexity_sum / n,
            agreement: self.agreement_sum / n,
        })
    }
}

/// The roll-up of one layer of a served pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer index within the model.
    pub layer: usize,
    /// The layer's sequence length.
    pub seq_len: usize,
    /// Aggregated metrics of the layer's heads.
    pub perf: PerfRollup,
}

/// The aggregated outcome of one [`ModelRequest`]: per-layer reports
/// plus the whole-model [`PerfRollup`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelResponse {
    /// The served model's display name.
    pub model: String,
    /// The mode every head of the pass executed under.
    pub mode: ExecutionMode,
    /// One report per layer, in layer order.
    pub layers: Vec<LayerReport>,
    /// Whole-model roll-up (the merge of all layer reports).
    pub total: PerfRollup,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> ModelProfile {
        ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(2)
            .with_heads(3)
            .with_seq_len(32)
    }

    #[test]
    fn profile_builders_shape_the_grid() {
        let p = tiny_profile();
        assert_eq!(p.layers(), 2);
        assert_eq!(p.heads(), 3);
        assert_eq!(p.head_count(), 6);
        assert_eq!(p.layer_seq_lens(), &[32, 32]);
        let ragged = p.clone().with_layer_seq_lens(vec![32, 24, 16]);
        assert_eq!(ragged.layers(), 3);
        assert_eq!(ragged.layer_spec(1).seq_len, 24);
        assert_eq!(ragged.layer_spec(2).seq_len, 16);
        // Extending repeats the last layer's length.
        assert_eq!(
            ragged.with_layers(5).layer_seq_lens(),
            &[32, 24, 16, 16, 16]
        );
        assert!(p.source().is_some());
    }

    #[test]
    fn custom_profiles_validate() {
        assert!(ModelProfile::custom("ok", 16, 2, vec![32], 0.5, 0.0, 0.8).is_ok());
        assert!(ModelProfile::custom("no-layers", 16, 2, vec![], 0.5, 0.0, 0.8).is_err());
        assert!(ModelProfile::custom("no-heads", 16, 0, vec![32], 0.5, 0.0, 0.8).is_err());
        assert!(ModelProfile::custom("zero-seq", 16, 2, vec![32, 0], 0.5, 0.0, 0.8).is_err());
        assert!(ModelProfile::custom("zero-d", 0, 2, vec![32], 0.5, 0.0, 0.8).is_err());
    }

    #[test]
    fn head_plan_is_deterministic_and_position_keyed() {
        let req = ModelRequest::new(tiny_profile()).with_seed(5);
        let a = req.head_plan();
        let b = req.head_plan();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        // Every head gets distinct seeds, and seeds differ from the
        // trace/task streams.
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.layer, i / 3);
            assert_eq!(p.head, i % 3);
            assert_ne!(p.head_id, p.trace_seed);
            assert_ne!(p.trace_seed, p.task_seed);
            for q in &a[..i] {
                assert_ne!(p.head_id, q.head_id);
                assert_ne!(p.trace_seed, q.trace_seed);
            }
        }
        // A different base seed moves every derived seed.
        let other = ModelRequest::new(tiny_profile()).with_seed(6).head_plan();
        assert!(a
            .iter()
            .zip(&other)
            .all(|(x, y)| x.head_id != y.head_id && x.trace_seed != y.trace_seed));
    }

    #[test]
    fn rollup_merge_adds_and_scores_average() {
        let mut a = PerfRollup {
            heads: 1,
            cycles: 10,
            kept_scores: 5,
            live_pairs: 10,
            fetched_vectors: 3,
            reused_vectors: 1,
            ..PerfRollup::default()
        };
        a.record_score(TaskScore {
            accuracy: 0.8,
            perplexity: 10.0,
            agreement: 0.9,
        });
        let mut b = a;
        b.record_score(TaskScore {
            accuracy: 0.6,
            perplexity: 20.0,
            agreement: 0.7,
        });
        a.merge(&b);
        assert_eq!(a.heads, 2);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.kept_scores, 10);
        assert!((a.kept_fraction() - 0.5).abs() < 1e-12);
        assert!((a.reuse_fraction() - 0.25).abs() < 1e-12);
        let score = a.accuracy().unwrap();
        assert!((score.accuracy - (0.8 + 0.8 + 0.6) / 3.0).abs() < 1e-12);
        assert_eq!(PerfRollup::default().accuracy(), None);
    }
}
