//! The reusable serving engine over pruning, memory and recompute.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};
use std::time::Instant;

use sprint_attention::{
    pruned_attention_with, quantized_attention_with, softmax_inplace_tier, Matrix, PagePool,
    PruneDecision, SimdTier, Workspace, DEFAULT_PAGE_BYTES,
};
use sprint_memory::MemoryController;
use sprint_reram::{FaultModel, InMemoryPruner, NoiseModel, ThresholdSpec};

use crate::fault::resolve_faults;
use crate::{
    ExecutionMode, FaultPolicy, FaultReport, HeadRequest, HeadResponse, SprintConfig, SprintError,
};

/// Derives the per-head pruner seed from the engine's base seed and a
/// stable head identity (splitmix64-style mixing).
///
/// [`Engine::run_batch`] seeds head `i` with
/// `derive_head_seed(engine_seed, head_id.unwrap_or(i))`, so results
/// depend only on the batch contents and positions — never on the
/// worker count or scheduling order.
pub fn derive_head_seed(base_seed: u64, head_id: u64) -> u64 {
    let mut z = base_seed ^ head_id.wrapping_add(1).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-worker execution accounting for one batch fan-out
/// ([`Engine::run_batch_report`]).
///
/// `wall_ns` is the whole fan-out's wall-clock span; `workers` holds
/// one [`sprint_parallel::WorkerStats`] per worker that ran a chunk.
/// On a time-shared host the per-worker `busy_ns` counters (thread
/// CPU time on Linux) stay meaningful even when wall-clock cannot
/// improve: an even `busy_ns` spread across workers shows the batch
/// was distributed, and [`BatchReport::critical_path_ns`] is the
/// wall-clock the same distribution would take with one free core per
/// worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Wall-clock nanoseconds for the whole fan-out.
    pub wall_ns: u128,
    /// Per-worker counters, indexed by worker (chunk) number.
    pub workers: Vec<sprint_parallel::WorkerStats>,
}

impl BatchReport {
    /// The parallel critical path: the busiest worker's `busy_ns`.
    /// This is the batch's ideal wall-clock on a host with one free
    /// core per worker, so `critical_path_ns(4 workers)` shrinking
    /// toward a quarter of `critical_path_ns(1 worker)` demonstrates
    /// scaling independent of how loaded the measuring machine is.
    pub fn critical_path_ns(&self) -> u128 {
        self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0)
    }

    /// Total `busy_ns` across every worker (the work done; the
    /// parallel overhead is this minus the single-worker busy time).
    pub fn total_busy_ns(&self) -> u128 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }
}

/// Rejects batches where two requests resolve to the same effective
/// head id (`head_id.unwrap_or(position)`) and would therefore
/// silently share a pruner seed — correlated noise draws masquerading
/// as independent heads. Reports the first colliding pair.
fn reject_duplicate_head_ids(requests: &[HeadRequest]) -> Result<(), SprintError> {
    let mut seen: HashMap<u64, usize> = HashMap::with_capacity(requests.len());
    for (i, request) in requests.iter().enumerate() {
        let id = request.head_id().unwrap_or(i as u64);
        if let Some(first) = seen.insert(id, i) {
            return Err(SprintError::Request(format!(
                "requests {first} and {i} share effective head id {id} \
                 (head_id, or batch position when untagged) and would \
                 silently receive identical pruner seeds; tag them with \
                 distinct head ids"
            )));
        }
    }
    Ok(())
}

/// Locks a scratch slot, recovering from a poisoned mutex: a panic in
/// one worker must not take down unrelated callers, so the scratch is
/// reset to its freshly-built state (every field rebuilds lazily on
/// next use) and the poison flag is cleared. The engine's kernel tier
/// is re-applied to the fresh workspace — recovery must not silently
/// change which tier a pipeline runs.
fn lock_scratch(slot: &Mutex<HeadScratch>, tier: SimdTier) -> MutexGuard<'_, HeadScratch> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            *guard = HeadScratch::default();
            guard.ws.set_simd_tier(tier);
            slot.clear_poison();
            guard
        }
    }
}

/// Builder for [`Engine`] (see [`Engine::builder`]).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: SprintConfig,
    noise: NoiseModel,
    threshold_spec: ThresholdSpec,
    mode: ExecutionMode,
    seed: u64,
    worker_slots: usize,
    memory_accounting: bool,
    fault_model: Option<FaultModel>,
    fault_policy: FaultPolicy,
    kv_pool: Option<PagePool>,
    simd_tier: Option<SimdTier>,
}

impl EngineBuilder {
    /// Sets the analog noise model (default: the paper's
    /// 5-bit-equivalent [`NoiseModel::default`]).
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the analog comparator configuration (default:
    /// [`ThresholdSpec::default`] — pure analog comparison, no margin).
    #[must_use]
    pub fn threshold_spec(mut self, spec: ThresholdSpec) -> Self {
        self.threshold_spec = spec;
        self
    }

    /// Sets the default [`ExecutionMode`] (default:
    /// [`ExecutionMode::Sprint`]); individual requests may override it.
    #[must_use]
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the base seed for per-head seed derivation (default: 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of concurrent worker scratch slots (default:
    /// [`sprint_parallel::max_threads`]). [`Engine::run_batch`] never
    /// uses more workers than slots.
    #[must_use]
    pub fn worker_slots(mut self, slots: usize) -> Self {
        self.worker_slots = slots.max(1);
        self
    }

    /// Enables or disables memory-controller accounting (default:
    /// on). The controller only produces statistics — attention
    /// outputs and pruning decisions never depend on it — so callers
    /// that discard [`crate::HeadResponse::memory_stats`] (e.g. pure
    /// accuracy sweeps) can turn it off to skip the per-query DRAM
    /// timing simulation; `memory_stats` then stays zeroed.
    #[must_use]
    pub fn memory_accounting(mut self, on: bool) -> Self {
        self.memory_accounting = on;
        self
    }

    /// Attaches a hard-fault model (default: none). With a model
    /// attached, every analog head's crossbars are stamped with it,
    /// scrubbed after programming, and recovered per the engine's
    /// [`FaultPolicy`]; the outcome lands in
    /// [`crate::HeadResponse::faults`]. Fault state is a pure function
    /// of crossbar identity (the per-head construction seed), so
    /// results stay bit-identical across worker counts.
    #[must_use]
    pub fn fault_model(mut self, fault: FaultModel) -> Self {
        self.fault_model = Some(fault);
        self
    }

    /// Sets the recovery policy applied when a scrub finds faults
    /// (default: [`FaultPolicy::default`] — bounded repair, then
    /// demotion to the exact digital pipeline). Ignored without a
    /// fault model.
    #[must_use]
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Forces the SIMD kernel tier every workspace owned by this
    /// engine (worker scratches and decode sessions) dispatches on
    /// (default: [`sprint_attention::active_tier`] — the fastest tier
    /// the host supports, or the `SPRINT_SIMD` environment override).
    /// Requests are sanitized to host support, so forcing
    /// [`SimdTier::Avx2`] on a non-AVX2 host runs scalar rather than
    /// faulting. The differential test harness pins forced-`scalar`
    /// and forced-`avx2` engines against each other with this knob.
    #[must_use]
    pub fn simd_tier(mut self, tier: SimdTier) -> Self {
        self.simd_tier = Some(tier);
        self
    }

    /// Sets the shared KV page pool every decode session opened on
    /// this engine draws from (default: an unbounded private pool with
    /// [`DEFAULT_PAGE_BYTES`] pages). A bounded pool turns session
    /// opens and steps into capacity-checked allocations that fail
    /// with a retryable pool-exhausted error — the signal the serving
    /// layers use to evict cold sessions.
    #[must_use]
    pub fn kv_pool(mut self, pool: PagePool) -> Self {
        self.kv_pool = Some(pool);
        self
    }

    /// Builds the engine, validating the hardware configuration
    /// eagerly (the memory controller for scratch slot 0 is
    /// constructed up front so configuration errors surface here, not
    /// on the first request).
    ///
    /// # Errors
    ///
    /// Propagates memory geometry/timing validation errors.
    pub fn build(self) -> Result<Engine, SprintError> {
        let tier = sprint_attention::sanitize_tier(
            self.simd_tier.unwrap_or_else(sprint_attention::active_tier),
        );
        let mut scratches: Vec<Mutex<HeadScratch>> = (0..self.worker_slots)
            .map(|_| {
                let mut scratch = HeadScratch::default();
                scratch.ws.set_simd_tier(tier);
                Mutex::new(scratch)
            })
            .collect();
        scratches[0].get_mut().expect("fresh mutex").controller = Some(MemoryController::new(
            self.config.memory_geometry(),
            self.config.timing,
        )?);
        Ok(Engine {
            config: self.config,
            noise: self.noise,
            threshold_spec: self.threshold_spec,
            mode: self.mode,
            seed: self.seed,
            scratches,
            memory_accounting: self.memory_accounting,
            fault_model: self.fault_model,
            fault_policy: self.fault_policy,
            kv_pool: self
                .kv_pool
                .unwrap_or_else(|| PagePool::unbounded(DEFAULT_PAGE_BYTES)),
            simd_tier: tier,
            next_slot: AtomicUsize::new(0),
        })
    }
}

/// Live-region staging buffers kept per worker scratch. Two per head
/// (Q and K); anything beyond that is transient and returned to the
/// allocator so a long serving run cannot accumulate buffers.
const MAT_POOL_CAP: usize = 4;

/// Per-worker reusable substrate state. Everything heavy a head needs
/// — pruner crossbars, the memory controller, attention workspace,
/// approximate-score rows, live-region staging buffers, the shared
/// all-pruned padded-row decision — lives here and is recycled across
/// heads, so steady-state execution re-allocates none of it.
#[derive(Debug, Default)]
struct HeadScratch {
    ws: Workspace,
    pruner: Option<InMemoryPruner>,
    controller: Option<MemoryController>,
    /// Backing buffers for the live-region Q/K submatrices.
    mat_pool: Vec<Vec<f32>>,
    /// Approximate in-memory score rows, one per live query.
    approx: Vec<Vec<f32>>,
    /// Cached all-pruned decision shared by every padded query.
    all_pruned: Option<PruneDecision>,
}

impl HeadScratch {
    /// The shared all-pruned decision of length `len` (one allocation
    /// per length change; every padded row clones the same storage).
    fn all_pruned(&mut self, len: usize) -> PruneDecision {
        match &self.all_pruned {
            Some(d) if d.len() == len => d.clone(),
            _ => {
                let d = PruneDecision::new(vec![true; len]);
                self.all_pruned = Some(d.clone());
                d
            }
        }
    }

    /// A matrix holding the first `rows` rows of `src`, backed by a
    /// pooled buffer.
    fn live_submatrix(&mut self, src: &Matrix, rows: usize) -> Result<Matrix, SprintError> {
        let cols = src.cols();
        let mut buf = self.mat_pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&src.as_slice()[..rows * cols]);
        Ok(Matrix::from_vec(rows, cols, buf)?)
    }

    /// Returns a matrix's backing buffer to the pool (bounded: excess
    /// buffers are dropped rather than hoarded across a serving run).
    fn recycle(&mut self, m: Matrix) {
        if self.mat_pool.len() < MAT_POOL_CAP {
            self.mat_pool.push(m.into_vec());
        }
    }
}

/// The unified SPRINT serving engine.
///
/// One engine owns every reusable piece of substrate state — ReRAM
/// pruner crossbars, the extended memory controller, attention
/// [`Workspace`]s and output-buffer pools, per-head decision scratch —
/// and exposes the whole pipeline behind two calls:
/// [`Engine::run_head`] for a single head and [`Engine::run_batch`]
/// for a fan-out over [`sprint_parallel`] workers. Steady-state head
/// execution reuses the engine's buffers instead of rebuilding the
/// substrate per call, and results are bit-identical to the
/// build-everything-fresh reference path
/// ([`crate::reference::run_head_frozen`]) regardless of how many
/// heads ran before or how many workers execute a batch.
///
/// # Example
///
/// ```
/// use sprint_engine::{Engine, ExecutionMode, HeadRequest, SprintConfig};
/// use sprint_reram::NoiseModel;
/// use sprint_workloads::{ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelConfig::vit_base().trace_spec().with_seq_len(48);
/// let trace = TraceGenerator::new(3).generate(&spec)?;
/// let engine = Engine::builder(SprintConfig::small())
///     .noise(NoiseModel::ideal())
///     .mode(ExecutionMode::Sprint)
///     .seed(1)
///     .build()?;
/// let out = engine.run_head(&HeadRequest::from_trace(&trace))?;
/// assert_eq!(out.output.rows(), 48);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Engine {
    config: SprintConfig,
    noise: NoiseModel,
    threshold_spec: ThresholdSpec,
    mode: ExecutionMode,
    seed: u64,
    scratches: Vec<Mutex<HeadScratch>>,
    memory_accounting: bool,
    fault_model: Option<FaultModel>,
    fault_policy: FaultPolicy,
    kv_pool: PagePool,
    /// The sanitized SIMD kernel tier every workspace this engine owns
    /// dispatches on (see [`EngineBuilder::simd_tier`]).
    simd_tier: SimdTier,
    /// Rotates overflow callers (more concurrent `run_head`s than
    /// slots) across blocking locks — see [`Engine::with_scratch`].
    next_slot: AtomicUsize,
}

impl Engine {
    /// Starts building an engine for the given hardware configuration,
    /// with the paper's defaults for everything else (5-bit-equivalent
    /// noise, analog comparison, [`ExecutionMode::Sprint`], seed 0).
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_engine::{Engine, ExecutionMode, SprintConfig};
    /// use sprint_reram::NoiseModel;
    ///
    /// # fn main() -> Result<(), sprint_engine::SprintError> {
    /// let engine = Engine::builder(SprintConfig::medium())
    ///     .noise(NoiseModel::ideal())
    ///     .mode(ExecutionMode::Oracle)
    ///     .seed(42)
    ///     .worker_slots(2)
    ///     .build()?;
    /// assert_eq!(engine.mode(), ExecutionMode::Oracle);
    /// assert_eq!(engine.worker_slots(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder(config: SprintConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            noise: NoiseModel::default(),
            threshold_spec: ThresholdSpec::default(),
            mode: ExecutionMode::Sprint,
            seed: 0,
            worker_slots: sprint_parallel::max_threads(),
            memory_accounting: true,
            fault_model: None,
            fault_policy: FaultPolicy::default(),
            kv_pool: None,
            simd_tier: None,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SprintConfig {
        &self.config
    }

    /// The analog noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The default analog comparator configuration.
    pub fn threshold_spec(&self) -> ThresholdSpec {
        self.threshold_spec
    }

    /// The default execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The base seed for per-head seed derivation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The attached hard-fault model, if any.
    pub fn fault_model(&self) -> Option<FaultModel> {
        self.fault_model
    }

    /// The fault-recovery policy (meaningful only with a fault model).
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// The shared KV page pool decode sessions draw from (see
    /// [`EngineBuilder::kv_pool`]).
    pub fn kv_pool(&self) -> &PagePool {
        &self.kv_pool
    }

    /// Number of worker scratch slots (the concurrency cap of
    /// [`Engine::run_batch`]).
    pub fn worker_slots(&self) -> usize {
        self.scratches.len()
    }

    /// The sanitized SIMD kernel tier this engine's workspaces
    /// dispatch on (see [`EngineBuilder::simd_tier`]).
    pub fn simd_tier(&self) -> SimdTier {
        self.simd_tier
    }

    /// Whether memory-controller accounting is enabled (decode
    /// sessions inherit this; see
    /// [`EngineBuilder::memory_accounting`]).
    pub(crate) fn memory_accounting_enabled(&self) -> bool {
        self.memory_accounting
    }

    /// Runs one head with the engine defaults (and the request's
    /// overrides). The pruner seed is derived from the engine seed and
    /// the request's head id (batch position 0 when untagged), so
    /// `run_head(&r)` equals `run_batch(&[r])[0]`.
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for malformed requests; substrate
    /// errors otherwise.
    pub fn run_head(&self, request: &HeadRequest) -> Result<HeadResponse, SprintError> {
        self.run_head_seeded(
            request,
            derive_head_seed(self.seed, request.head_id().unwrap_or(0)),
        )
    }

    /// [`Engine::run_head`] with an explicit raw pruner seed (no
    /// derivation). This is the oracle-compatibility entry: the legacy
    /// `SprintSystem::run_head` shim and the equivalence tests use it
    /// to reproduce pre-engine outputs bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_head`].
    pub fn run_head_seeded(
        &self,
        request: &HeadRequest,
        seed: u64,
    ) -> Result<HeadResponse, SprintError> {
        self.with_scratch(|scratch| self.run_on_scratch(scratch, request, seed))
    }

    /// Runs a batch of heads, fanned out across up to
    /// [`Engine::worker_slots`] [`sprint_parallel`] workers
    /// (`SPRINT_THREADS` caps them too, via
    /// [`sprint_parallel::max_threads`]).
    ///
    /// Results are returned in request order and are bit-identical
    /// across worker counts: head `i` is seeded with
    /// [`derive_head_seed`]`(engine_seed, head_id.unwrap_or(i))` and
    /// every worker's scratch produces fresh-state-identical results.
    /// On failure the reported error is that of the lowest-indexed
    /// failing request.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_engine::{Engine, HeadRequest, SprintConfig};
    /// use sprint_workloads::{ModelConfig, TraceGenerator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let spec = ModelConfig::bert_base().trace_spec().with_seq_len(48);
    /// let heads = TraceGenerator::new(1).generate_many(&spec, 3)?;
    /// let engine = Engine::builder(SprintConfig::small()).seed(5).build()?;
    /// let requests: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
    /// let responses = engine.run_batch(&requests)?;
    /// assert_eq!(responses.len(), 3);
    /// // Untagged requests are seeded by batch position, so position
    /// // 0 matches a solo run_head (which uses id 0); to make every
    /// // response solo-reproducible, tag requests with_head_id.
    /// assert_eq!(responses[0], engine.run_head(&requests[0])?);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// The first (by request index) error produced;
    /// [`SprintError::Request`] when two requests share an effective
    /// head id (`head_id.unwrap_or(position)`), which would silently
    /// give them identical pruner seeds.
    pub fn run_batch(&self, requests: &[HeadRequest]) -> Result<Vec<HeadResponse>, SprintError> {
        self.run_batch_threads(sprint_parallel::max_threads(), requests)
    }

    /// [`Engine::run_batch`] with an explicit worker-count cap (the
    /// thread-independence tests sweep this; production code should
    /// prefer `run_batch`).
    ///
    /// `threads` is clamped to `1..=worker_slots`, so zero runs
    /// single-threaded rather than panicking.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_batch`].
    pub fn run_batch_threads(
        &self,
        threads: usize,
        requests: &[HeadRequest],
    ) -> Result<Vec<HeadResponse>, SprintError> {
        Ok(self.run_batch_report(threads, requests)?.0)
    }

    /// [`Engine::run_batch_threads`] with per-worker execution
    /// accounting: returns the responses together with a
    /// [`BatchReport`] holding the fan-out's wall-clock span and each
    /// worker's item/busy-time counters. The scaling benches and the
    /// worker-distribution tests ride on this; `run_batch` is this
    /// minus the report.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_batch`].
    #[allow(clippy::type_complexity)]
    pub fn run_batch_report(
        &self,
        threads: usize,
        requests: &[HeadRequest],
    ) -> Result<(Vec<HeadResponse>, BatchReport), SprintError> {
        reject_duplicate_head_ids(requests)?;
        self.run_batch_sharded(threads, requests)
    }

    /// The sharded batch executor behind every batch entry point.
    ///
    /// Work is distributed by [`sprint_parallel::chunk_ranges`] —
    /// request `i`'s worker is a pure function of `(len, workers)` —
    /// and worker `w` locks scratch slot `w` for each of its items, so
    /// on the batch hot path no two workers ever touch the same
    /// mutex: each shard's crossbars, workspace and memory controller
    /// stay pinned to one thread for the whole batch instead of
    /// ping-ponging through the old try-lock sweep. Seeding is
    /// per-item (`derive_head_seed(seed, head_id.unwrap_or(i))`), so
    /// results stay bit-identical across worker counts.
    ///
    /// This path deliberately skips the duplicate-head-id check:
    /// [`crate::ModelServer`] flattens mode-comparison passes that
    /// *intentionally* reuse head ids against a shared base seed.
    /// Public entry points go through [`Engine::run_batch_report`],
    /// which rejects duplicates first.
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_batch_sharded(
        &self,
        threads: usize,
        requests: &[HeadRequest],
    ) -> Result<(Vec<HeadResponse>, BatchReport), SprintError> {
        let workers = threads.min(self.scratches.len()).max(1);
        let wall = Instant::now();
        let (responses, worker_stats) =
            sprint_parallel::par_chunk_try_map_threads(workers, requests, |worker, i, request| {
                let seed = derive_head_seed(self.seed, request.head_id().unwrap_or(i as u64));
                let mut scratch = lock_scratch(&self.scratches[worker], self.simd_tier);
                self.run_on_scratch(&mut scratch, request, seed)
            })?;
        Ok((
            responses,
            BatchReport {
                wall_ns: wall.elapsed().as_nanos(),
                workers: worker_stats,
            },
        ))
    }

    /// Claims a worker scratch for a single-head call. The sweep
    /// try-locks for a free slot (recovering any poisoned one it
    /// finds); callers beyond the slot count fall back to a blocking
    /// lock on a rotating slot instead of spinning. Batch execution
    /// does not come through here — [`Engine::run_batch_sharded`] pins
    /// each worker to its own slot.
    fn with_scratch<R>(&self, f: impl FnOnce(&mut HeadScratch) -> R) -> R {
        for slot in &self.scratches {
            match slot.try_lock() {
                Ok(mut scratch) => return f(&mut scratch),
                Err(TryLockError::Poisoned(poisoned)) => {
                    let mut scratch = poisoned.into_inner();
                    *scratch = HeadScratch::default();
                    scratch.ws.set_simd_tier(self.simd_tier);
                    slot.clear_poison();
                    return f(&mut scratch);
                }
                Err(TryLockError::WouldBlock) => {}
            }
        }
        let i = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.scratches.len();
        let mut scratch = lock_scratch(&self.scratches[i], self.simd_tier);
        f(&mut scratch)
    }

    /// The mode-dispatched head pipeline over one worker's scratch.
    fn run_on_scratch(
        &self,
        scratch: &mut HeadScratch,
        request: &HeadRequest,
        seed: u64,
    ) -> Result<HeadResponse, SprintError> {
        let (live_q, live_k) = validate_request(request)?;
        let mode = request.mode_override().unwrap_or(self.mode);
        let spec = request
            .threshold_spec_override()
            .unwrap_or(self.threshold_spec);
        match mode {
            ExecutionMode::Sprint | ExecutionMode::NoRecompute => self.run_analog(
                scratch,
                request,
                seed,
                &spec,
                mode == ExecutionMode::Sprint,
                live_q,
                live_k,
            ),
            ExecutionMode::Dense | ExecutionMode::Oracle => {
                let threshold = match mode {
                    ExecutionMode::Dense => f32::MIN,
                    _ => request.threshold(),
                };
                self.run_digital(scratch, request, threshold, live_q, live_k)
            }
        }
    }

    /// The analog pipeline (Sprint / NoRecompute): in-memory
    /// thresholding over the live region, selective fetch through the
    /// memory controller, then either the 8-bit recompute datapath or
    /// the approximate-score softmax.
    #[allow(clippy::too_many_arguments)]
    fn run_analog(
        &self,
        scratch: &mut HeadScratch,
        request: &HeadRequest,
        seed: u64,
        spec: &ThresholdSpec,
        recompute: bool,
        live_q: usize,
        live_k: usize,
    ) -> Result<HeadResponse, SprintError> {
        let (q, k, v) = (request.q(), request.k(), request.v());
        let (s_q, s_k) = (q.rows(), k.rows());
        if live_q == 0 || live_k == 0 {
            // Nothing live: no thresholding, no fetches, zero output.
            return empty_response(scratch, s_q, s_k, v.cols());
        }

        // In-memory pruning over the live region only (the 2-D
        // reduction filters padded rows/columns before memory ever
        // sees them). The pruner crossbars are reprogrammed in place —
        // bit-identical to fresh construction, without the per-head
        // allocations.
        let q_live = scratch.live_submatrix(q, live_q)?;
        let k_live = scratch.live_submatrix(k, live_k)?;
        let scale = request.config().scale();
        match scratch.pruner.as_mut() {
            Some(p) => p.reprogram(&q_live, &k_live, scale, self.noise, seed)?,
            None => {
                scratch.pruner = Some(InMemoryPruner::new(
                    &q_live, &k_live, scale, self.noise, seed,
                )?)
            }
        }
        scratch.recycle(q_live);
        scratch.recycle(k_live);

        // Fault handling: with a model attached, stamp it onto the
        // freshly programmed crossbars, scrub (transposed-read every
        // key against its digital shadow), then run the recovery
        // ladder. Fault state is a pure function of the crossbars'
        // construction seed, so this whole block is deterministic and
        // worker-count independent.
        let mut faults = FaultReport::default();
        if let Some(model) = self.fault_model {
            let pruner = scratch.pruner.as_mut().expect("pruner just installed");
            pruner.set_fault_model(Some(model));
            let map = pruner.scrub()?;
            faults = resolve_faults(pruner, self.fault_policy, map)?;
            if faults.demoted {
                // Graceful degradation: serve the head through the
                // exact on-chip pipeline instead, keeping the analog
                // work already spent (programming, scrub reads, repair
                // writes) visible in the hardware stats.
                let prune_stats = pruner.stats();
                let mut response = self.run_digital(scratch, request, f32::MIN, live_q, live_k)?;
                response.prune_stats = prune_stats;
                response.faults = faults;
                return Ok(response);
            }
        }
        if self.memory_accounting && scratch.controller.is_none() {
            scratch.controller = Some(MemoryController::new(
                self.config.memory_geometry(),
                self.config.timing,
            )?);
        }
        if scratch.approx.len() < live_q {
            scratch.approx.resize_with(live_q, Vec::new);
        }

        let threshold = request.threshold();
        let mut decisions = Vec::with_capacity(s_q);
        let (prune_stats, memory_stats) = {
            let pruner = scratch.pruner.as_mut().expect("pruner just installed");
            let mut controller = scratch
                .controller
                .as_mut()
                .filter(|_| self.memory_accounting);
            if let Some(c) = controller.as_mut() {
                c.reset_cold();
            }
            for i in 0..live_q {
                let outcome = pruner.prune_query(q.row(i), threshold, spec)?;
                // Extend the live-region decision to the full key
                // sequence: padded keys are always pruned.
                let mut pruned = vec![true; s_k];
                for (j, flag) in pruned.iter_mut().enumerate().take(live_k) {
                    *flag = outcome.decision.is_pruned(j);
                }
                if let Some(c) = controller.as_mut() {
                    c.process_query(&pruned[..live_k])?;
                }
                let row = &mut scratch.approx[i];
                row.clear();
                row.resize(s_k, f32::NEG_INFINITY);
                for j in 0..live_k {
                    if !pruned[j] {
                        row[j] = outcome.approx_scores[j];
                    }
                }
                decisions.push(PruneDecision::new(pruned));
            }
            let memory_stats = controller.map(|c| c.stats()).unwrap_or_default();
            (pruner.stats(), memory_stats)
        };
        for _ in live_q..s_q {
            decisions.push(scratch.all_pruned(s_k));
        }

        let output = if recompute {
            // On-chip recompute: full-precision (8-bit datapath) scores
            // for every surviving key.
            let out = quantized_attention_with(
                q,
                k,
                v,
                &request.config(),
                Some(&decisions),
                &mut scratch.ws,
            )?;
            scratch.ws.recycle(out.scores);
            scratch.ws.recycle(out.probs);
            out.output
        } else {
            // No recompute: the approximate in-memory scores drive the
            // softmax and weighted sum directly; the workspace stages
            // each probability row.
            let mut out = Matrix::zeros(s_q, v.cols())?;
            let tier = scratch.ws.simd_tier();
            let prow = scratch.ws.prob_row(s_k);
            for (i, row) in scratch.approx[..live_q].iter().enumerate() {
                prow.copy_from_slice(row);
                softmax_inplace_tier(prow, tier);
                let orow = out.row_mut(i);
                for (j, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        for (o, &vx) in orow.iter_mut().zip(v.row(j)) {
                            *o += p * vx;
                        }
                    }
                }
            }
            out
        };

        Ok(HeadResponse {
            output,
            decisions,
            prune_stats,
            memory_stats,
            faults,
        })
    }

    /// The digital pipeline (Dense / Oracle): full-precision pruned
    /// attention over the live region, with the resulting kept sets
    /// driven through the memory controller for fetch/reuse
    /// accounting (skipped when [`EngineBuilder::memory_accounting`]
    /// is off). `threshold == f32::MIN` reduces to the dense baseline.
    fn run_digital(
        &self,
        scratch: &mut HeadScratch,
        request: &HeadRequest,
        threshold: f32,
        live_q: usize,
        live_k: usize,
    ) -> Result<HeadResponse, SprintError> {
        let (q, k, v) = (request.q(), request.k(), request.v());
        let padding = request.padding();
        let (out, decisions) = pruned_attention_with(
            q,
            k,
            v,
            &request.config(),
            threshold,
            padding.as_ref(),
            &mut scratch.ws,
        )?;
        scratch.ws.recycle(out.scores);
        scratch.ws.recycle(out.probs);

        let mut memory_stats = sprint_memory::MemoryStats::default();
        if self.memory_accounting && live_q > 0 && live_k > 0 {
            if scratch.controller.is_none() {
                scratch.controller = Some(MemoryController::new(
                    self.config.memory_geometry(),
                    self.config.timing,
                )?);
            }
            let controller = scratch.controller.as_mut().expect("controller installed");
            controller.reset_cold();
            for d in decisions.iter().take(live_q) {
                controller.process_query(&d.as_slice()[..live_k])?;
            }
            memory_stats = controller.stats();
        }

        Ok(HeadResponse {
            output: out.output,
            decisions,
            prune_stats: sprint_reram::PruneHardwareStats::default(),
            memory_stats,
            faults: FaultReport::default(),
        })
    }
}

/// A zero response for heads with no live region at all: every
/// decision all-pruned, all-zero output, idle hardware.
fn empty_response(
    scratch: &mut HeadScratch,
    s_q: usize,
    s_k: usize,
    d_v: usize,
) -> Result<HeadResponse, SprintError> {
    let decisions = (0..s_q).map(|_| scratch.all_pruned(s_k)).collect();
    Ok(HeadResponse {
        output: Matrix::zeros(s_q, d_v)?,
        decisions,
        prune_stats: sprint_reram::PruneHardwareStats::default(),
        memory_stats: sprint_memory::MemoryStats::default(),
        faults: FaultReport::default(),
    })
}

/// Shared request validation: shapes, padding coverage, the
/// no-padded-cross-heads rule. Returns `(live_q, live_k)`.
pub(crate) fn validate_request(request: &HeadRequest) -> Result<(usize, usize), SprintError> {
    let (q, k, v) = (request.q(), request.k(), request.v());
    if q.cols() != k.cols() {
        return Err(SprintError::Request(format!(
            "query embedding {} does not match key embedding {}",
            q.cols(),
            k.cols()
        )));
    }
    if k.rows() != v.rows() {
        return Err(SprintError::Request(format!(
            "key sequence {} does not match value sequence {}",
            k.rows(),
            v.rows()
        )));
    }
    match request.padding() {
        None => Ok((q.rows(), k.rows())),
        Some(p) => {
            if p.total() != k.rows() {
                return Err(SprintError::Request(format!(
                    "padding mask covers {} tokens but the key sequence holds {}",
                    p.total(),
                    k.rows()
                )));
            }
            if q.rows() != k.rows() {
                return Err(SprintError::Request(format!(
                    "padded requests must be self-shaped: s_q = {} vs s_k = {}",
                    q.rows(),
                    k.rows()
                )));
            }
            Ok((p.live().min(q.rows()), p.live()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_attention::AttentionConfig;
    use sprint_workloads::{ModelConfig, TraceGenerator};

    fn trace(seq: usize, seed: u64) -> sprint_workloads::HeadTrace {
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
        TraceGenerator::new(seed).generate(&spec).unwrap()
    }

    fn engine(mode: ExecutionMode) -> Engine {
        Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .mode(mode)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn simd_tier_knob_is_sanitized_and_survives_poison_recovery() {
        let default_tier = engine(ExecutionMode::Sprint).simd_tier();
        assert_eq!(default_tier, sprint_attention::active_tier());
        let forced = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .simd_tier(SimdTier::Scalar)
            .build()
            .unwrap();
        assert_eq!(forced.simd_tier(), SimdTier::Scalar);
        for slot in &forced.scratches {
            assert_eq!(slot.lock().unwrap().ws.simd_tier(), SimdTier::Scalar);
        }
        // An Avx2 request only sticks where the host supports it.
        let avx2 = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .simd_tier(SimdTier::Avx2)
            .build()
            .unwrap();
        assert_eq!(
            avx2.simd_tier(),
            sprint_attention::sanitize_tier(SimdTier::Avx2)
        );
        // Poison recovery rebuilds scratches on the engine's tier, not
        // the process default.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = forced.scratches[0].lock().unwrap();
            panic!("worker dies mid-head");
        }));
        let guard = lock_scratch(&forced.scratches[0], forced.simd_tier);
        assert_eq!(guard.ws.simd_tier(), SimdTier::Scalar);
    }

    #[test]
    fn seed_derivation_is_stable_and_spreads() {
        assert_eq!(derive_head_seed(1, 2), derive_head_seed(1, 2));
        assert_ne!(derive_head_seed(1, 2), derive_head_seed(1, 3));
        assert_ne!(derive_head_seed(1, 2), derive_head_seed(2, 2));
    }

    #[test]
    fn run_head_equals_batch_position_zero() {
        let t = trace(64, 5);
        let e = engine(ExecutionMode::Sprint);
        let single = e.run_head(&HeadRequest::from_trace(&t)).unwrap();
        let batch = e.run_batch(&[HeadRequest::from_trace(&t)]).unwrap();
        assert_eq!(single, batch[0]);
    }

    #[test]
    fn head_ids_decouple_seed_from_batch_position() {
        let t = trace(64, 6);
        // With noise, different seeds give different decisions often
        // enough; with the same head id the position must not matter.
        let e_noisy = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::default())
            .seed(3)
            .build()
            .unwrap();
        let alone = e_noisy
            .run_batch(&[HeadRequest::from_trace(&t).with_head_id(42)])
            .unwrap();
        let shifted = e_noisy
            .run_batch(&[
                HeadRequest::from_trace(&t),
                HeadRequest::from_trace(&t).with_head_id(42),
            ])
            .unwrap();
        assert_eq!(alone[0], shifted[1], "head id pins the seed");
    }

    #[test]
    fn all_modes_produce_well_formed_responses() {
        let t = trace(64, 7);
        for mode in ExecutionMode::ALL {
            let e = engine(mode);
            let out = e.run_head(&HeadRequest::from_trace(&t)).unwrap();
            assert_eq!(out.output.rows(), t.seq_len(), "{mode:?}");
            assert_eq!(out.decisions.len(), t.seq_len(), "{mode:?}");
            // Padded queries: all-pruned decisions sharing one
            // allocation, zero output rows.
            for i in t.live_tokens()..t.seq_len() {
                assert_eq!(out.decisions[i].kept_count(), 0, "{mode:?} row {i}");
                assert!(out.output.row(i).iter().all(|&x| x == 0.0));
                assert!(PruneDecision::shares_storage(
                    &out.decisions[t.live_tokens()],
                    &out.decisions[i]
                ));
            }
            if mode.uses_in_memory_pruning() {
                assert_eq!(out.prune_stats.queries_pruned as usize, t.live_tokens());
            } else {
                assert_eq!(out.prune_stats.queries_pruned, 0);
            }
            assert_eq!(out.memory_stats.queries as usize, t.live_tokens());
        }
    }

    #[test]
    fn dense_mode_keeps_every_live_key() {
        let t = trace(48, 8);
        let out = engine(ExecutionMode::Dense)
            .run_head(&HeadRequest::from_trace(&t))
            .unwrap();
        let live = t.live_tokens();
        for d in out.decisions.iter().take(live) {
            assert_eq!(d.kept_count(), live);
        }
        // Oracle prunes strictly more than dense.
        let oracle = engine(ExecutionMode::Oracle)
            .run_head(&HeadRequest::from_trace(&t))
            .unwrap();
        let oracle_kept: usize = oracle.decisions.iter().map(|d| d.kept_count()).sum();
        assert!(oracle_kept < live * live);
    }

    #[test]
    fn cross_shaped_heads_run_unpadded_and_reject_padding() {
        let t = trace(64, 9);
        let live = t.live_tokens();
        // A 1-query decode step against the full key cache.
        let q1 = {
            let mut m = Matrix::zeros(1, t.q().cols()).unwrap();
            m.row_mut(0).copy_from_slice(t.q().row(0));
            m
        };
        let e = engine(ExecutionMode::Sprint);
        let req = HeadRequest::new(&q1, t.k(), t.v(), t.config(), t.threshold());
        let out = e.run_head(&req).unwrap();
        assert_eq!(out.output.rows(), 1);
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.decisions[0].len(), t.seq_len());
        let padded =
            req.with_padding(sprint_attention::PaddingMask::new(t.seq_len(), live).unwrap());
        assert!(matches!(e.run_head(&padded), Err(SprintError::Request(_))));
    }

    #[test]
    fn malformed_requests_are_rejected_up_front() {
        let q = Matrix::zeros(4, 8).unwrap();
        let k = Matrix::zeros(6, 16).unwrap();
        let v = Matrix::zeros(5, 16).unwrap();
        let e = engine(ExecutionMode::Sprint);
        let bad_embed = HeadRequest::new(&q, &k, &v, AttentionConfig::new(8), 0.0);
        assert!(matches!(
            e.run_head(&bad_embed),
            Err(SprintError::Request(_))
        ));
        let k2 = Matrix::zeros(6, 8).unwrap();
        let bad_kv = HeadRequest::new(&q, &k2, &v, AttentionConfig::new(8), 0.0);
        assert!(matches!(e.run_head(&bad_kv), Err(SprintError::Request(_))));
        let bad_mask = HeadRequest::new(&q, &k2, &k2, AttentionConfig::new(8), 0.0)
            .with_padding(sprint_attention::PaddingMask::new(4, 2).unwrap());
        assert!(matches!(
            e.run_head(&bad_mask),
            Err(SprintError::Request(_))
        ));
    }

    #[test]
    fn disabling_memory_accounting_changes_stats_but_not_results() {
        let t = trace(48, 12);
        for mode in ExecutionMode::ALL {
            let with = engine(mode).run_head(&HeadRequest::from_trace(&t)).unwrap();
            let without = Engine::builder(SprintConfig::small())
                .noise(NoiseModel::ideal())
                .mode(mode)
                .seed(11)
                .memory_accounting(false)
                .build()
                .unwrap()
                .run_head(&HeadRequest::from_trace(&t))
                .unwrap();
            assert_eq!(with.output, without.output, "{mode:?}");
            assert_eq!(with.decisions, without.decisions, "{mode:?}");
            assert_eq!(with.prune_stats, without.prune_stats, "{mode:?}");
            assert_eq!(
                without.memory_stats,
                sprint_memory::MemoryStats::default(),
                "{mode:?}"
            );
            assert!(with.memory_stats.queries > 0, "{mode:?}");
        }
    }

    #[test]
    fn scratch_pools_stay_bounded_over_a_long_mixed_run() {
        // Regression: the live-submatrix pool grew by two buffers per
        // head shape forever. Serve many heads of varying sizes and
        // assert every worker scratch stays at the cap.
        let e = engine(ExecutionMode::Sprint);
        for round in 0..12 {
            let t = trace(24 + 8 * (round % 4), 100 + round as u64);
            e.run_head(&HeadRequest::from_trace(&t)).unwrap();
        }
        for slot in &e.scratches {
            let scratch = slot.lock().unwrap();
            assert!(
                scratch.mat_pool.len() <= MAT_POOL_CAP,
                "mat pool grew to {}",
                scratch.mat_pool.len()
            );
        }
    }

    #[test]
    fn duplicate_head_ids_are_rejected() {
        let t = trace(32, 30);
        let e = engine(ExecutionMode::Sprint);
        // Two requests tagged with the same id.
        let err = e.run_batch(&[
            HeadRequest::from_trace(&t).with_head_id(7),
            HeadRequest::from_trace(&t).with_head_id(7),
        ]);
        let msg = match err {
            Err(SprintError::Request(msg)) => msg,
            other => panic!("expected a request error, got {other:?}"),
        };
        assert!(msg.contains("head id 7"), "{msg}");
        assert!(msg.contains("requests 0 and 1"), "{msg}");
        // An explicit id colliding with an untagged request's position:
        // position 1 is effective id 1, same as with_head_id(1).
        let err = e.run_batch(&[
            HeadRequest::from_trace(&t).with_head_id(1),
            HeadRequest::from_trace(&t),
        ]);
        assert!(matches!(err, Err(SprintError::Request(_))));
        // Distinct effective ids still run.
        let ok = e.run_batch(&[
            HeadRequest::from_trace(&t).with_head_id(5),
            HeadRequest::from_trace(&t),
        ]);
        assert_eq!(ok.unwrap().len(), 2);
    }

    #[test]
    fn poisoned_scratch_recovers_instead_of_panicking() {
        let e = engine(ExecutionMode::Sprint);
        // Poison every slot: a worker panics while holding the lock.
        for slot in &e.scratches {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = slot.lock().unwrap();
                panic!("worker dies mid-head");
            }));
            assert!(result.is_err());
            assert!(slot.is_poisoned());
        }
        // Unrelated callers must not inherit the panic: the scratch is
        // reset and the head runs bit-identically to a fresh engine.
        let t = trace(48, 31);
        let recovered = e.run_head(&HeadRequest::from_trace(&t)).unwrap();
        let fresh = engine(ExecutionMode::Sprint)
            .run_head(&HeadRequest::from_trace(&t))
            .unwrap();
        assert_eq!(recovered, fresh);
        assert!(e.scratches.iter().all(|s| !s.is_poisoned()));
        // The blocking-fallback path recovers too.
        for slot in &e.scratches {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = slot.lock().unwrap();
                panic!("again");
            }));
        }
        let guard = lock_scratch(&e.scratches[0], e.simd_tier);
        drop(guard);
        assert!(!e.scratches[0].is_poisoned());
    }

    #[test]
    fn batch_report_accounts_every_request_to_one_worker() {
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(48);
        let heads = TraceGenerator::new(33).generate_many(&spec, 10).unwrap();
        let e = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(11)
            .worker_slots(4)
            .build()
            .unwrap();
        let requests: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
        let (reference, report1) = e.run_batch_report(1, &requests).unwrap();
        assert_eq!(report1.workers.len(), 1);
        assert_eq!(report1.workers[0].items, requests.len());
        for workers in [2usize, 4] {
            let (responses, report) = e.run_batch_report(workers, &requests).unwrap();
            assert_eq!(responses, reference, "bit-identical at {workers} workers");
            assert_eq!(report.workers.len(), workers);
            assert_eq!(
                report.workers.iter().map(|w| w.items).sum::<usize>(),
                requests.len()
            );
            for (w, stats) in report.workers.iter().enumerate() {
                assert_eq!(stats.worker, w);
                assert!(stats.items > 0, "worker {w} ran nothing");
            }
            assert!(report.critical_path_ns() <= report.total_busy_ns());
        }
    }

    #[test]
    fn fully_padded_heads_return_zero_work() {
        let t = trace(32, 10);
        let req = HeadRequest::from_trace(&t)
            .with_padding(sprint_attention::PaddingMask::new(t.seq_len(), 0).unwrap());
        for mode in ExecutionMode::ALL {
            let out = engine(mode).run_head(&req).unwrap();
            assert!(out.output.as_slice().iter().all(|&x| x == 0.0), "{mode:?}");
            assert!(out.decisions.iter().all(|d| d.kept_count() == 0));
            assert_eq!(out.memory_stats.queries, 0);
            assert_eq!(out.prune_stats.queries_pruned, 0);
        }
    }
}
