//! The S/M/L-SPRINT hardware configurations (Table I).

use serde::{Deserialize, Serialize};

use sprint_accelerator::{CoreletConfig, MappingPolicy, PipelineConfig};
use sprint_energy::{AreaModel, Cycles, TimingParams, UnitEnergies};
use sprint_memory::MemoryGeometry;

/// One SPRINT hardware configuration.
///
/// Table I:
///
/// | Module | S / M / L |
/// |---|---|
/// | ReRAM BW | 16 × 64-bit channels @ 1 GHz per CORELET |
/// | ReRAM array | 256×128 standard, 64×128 transposable (4-b MLC) |
/// | On-chip cache | 16 / 32 / 64 KB total K/V buffers (8/16/32 banks) |
/// | QK-PU / V-PU | 1 / 2 / 4 × 1-D 64-way 8×8-b MAC |
/// | Softmax | 1 / 2 / 4 × 12-b in, 8-b out, 2×64 B LUTs, 2 dividers |
/// | Query buffer | 64 / 128 / 256 B |
/// | Index buffer | 0.5 / 1 / 2 KB |
///
/// # Example
///
/// ```
/// use sprint_engine::SprintConfig;
///
/// let m = SprintConfig::medium();
/// assert_eq!(m.corelets, 2);
/// assert_eq!(m.onchip_kib, 32);
/// assert_eq!(m.kv_capacity_pairs(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SprintConfig {
    /// Configuration name ("S-SPRINT", ...).
    pub name: &'static str,
    /// Number of CORELETs.
    pub corelets: usize,
    /// Total on-chip K/V buffer capacity in KiB.
    pub onchip_kib: usize,
    /// K/V buffer banks.
    pub banks: usize,
    /// Query buffer bytes.
    pub query_buffer_bytes: usize,
    /// Unpruned-index buffer bytes.
    pub index_buffer_bytes: usize,
    /// Per-head embedding size (64 in every studied model).
    pub head_dim: usize,
    /// Memory channels **per CORELET** (Table I: 16 × 64-bit).
    pub channels_per_corelet: usize,
    /// Effective payload bytes one channel moves per cycle. 64-bit
    /// channels peak at 8 B/cycle; command gaps, row misses and bank
    /// conflicts derate this (calibrated against the cycle-level
    /// `sprint-memory` model).
    pub channel_bytes_per_cycle: f64,
    /// Memory timing parameters.
    pub timing: TimingParams,
    /// Unit energies (Table II).
    pub energies: UnitEnergies,
}

impl SprintConfig {
    /// S-SPRINT: 1 CORELET, 16 KB.
    pub fn small() -> Self {
        SprintConfig::sized("S-SPRINT", 1, 16, 8, 64, 512)
    }

    /// M-SPRINT: 2 CORELETs, 32 KB.
    pub fn medium() -> Self {
        SprintConfig::sized("M-SPRINT", 2, 32, 16, 128, 1024)
    }

    /// L-SPRINT: 4 CORELETs, 64 KB.
    pub fn large() -> Self {
        SprintConfig::sized("L-SPRINT", 4, 64, 32, 256, 2048)
    }

    /// All three studied configurations, small to large.
    pub fn all() -> Vec<SprintConfig> {
        vec![
            SprintConfig::small(),
            SprintConfig::medium(),
            SprintConfig::large(),
        ]
    }

    fn sized(
        name: &'static str,
        corelets: usize,
        onchip_kib: usize,
        banks: usize,
        query_buffer_bytes: usize,
        index_buffer_bytes: usize,
    ) -> Self {
        SprintConfig {
            name,
            corelets,
            onchip_kib,
            banks,
            query_buffer_bytes,
            index_buffer_bytes,
            head_dim: 64,
            channels_per_corelet: 16,
            channel_bytes_per_cycle: 6.5,
            timing: TimingParams::default(),
            energies: UnitEnergies::default(),
        }
    }

    /// On-chip capacity in key/value vector *pairs*: half the cache
    /// holds keys, half values; one vector is `head_dim` bytes.
    pub fn kv_capacity_pairs(&self) -> usize {
        (self.onchip_kib * 1024) / (2 * self.head_dim)
    }

    /// K/V pairs each CORELET's buffer slice can hold.
    pub fn kv_capacity_per_corelet(&self) -> usize {
        (self.kv_capacity_pairs() / self.corelets).max(1)
    }

    /// Total memory channels across CORELETs.
    pub fn total_channels(&self) -> usize {
        self.channels_per_corelet * self.corelets
    }

    /// Aggregate memory bandwidth in bytes per cycle.
    pub fn memory_bytes_per_cycle(&self) -> f64 {
        self.total_channels() as f64 * self.channel_bytes_per_cycle
    }

    /// Cycles to move one K/V pair (K LSB + V payload plus the MSB
    /// nibbles from the transposable array) over the channels.
    pub fn cycles_per_pair(&self) -> f64 {
        (2 * self.head_dim) as f64 / self.memory_bytes_per_cycle()
    }

    /// The area model matching this configuration.
    pub fn area(&self) -> AreaModel {
        match self.corelets {
            1 => AreaModel::s_sprint(),
            2 => AreaModel::m_sprint(),
            _ => AreaModel::l_sprint(),
        }
    }

    /// The matching `sprint-memory` geometry.
    pub fn memory_geometry(&self) -> MemoryGeometry {
        MemoryGeometry {
            channels: self.total_channels(),
            banks_per_channel: 8,
            vectors_per_row: 32,
            rows_per_bank: 4096,
            bytes_per_fetch: 2 * self.head_dim,
            bursts_per_fetch: (2 * self.head_dim).div_ceil(32),
        }
    }

    /// The matching `sprint-accelerator` pipeline configuration.
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            corelets: self.corelets,
            corelet: CoreletConfig {
                mac_lanes: self.head_dim.max(1),
                dividers: 2,
                kv_capacity: self.kv_capacity_per_corelet(),
                divider_latency: Cycles::new(8),
            },
            policy: MappingPolicy::Interleaved,
            fetch_first_latency: self.timing.thresholding_latency() + self.timing.miss_latency(),
            fetch_per_vector: Cycles::new(self.cycles_per_pair().ceil() as u64),
        }
    }
}

impl std::fmt::Display for SprintConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}:", self.name)?;
        writeln!(f, "  CORELETs               {}", self.corelets)?;
        writeln!(
            f,
            "  ReRAM BW               {}x64-bit channels @ 1 GHz per CORELET",
            self.channels_per_corelet
        )?;
        writeln!(
            f,
            "  On-chip cache          {} KB K/V buffers ({} banks)",
            self.onchip_kib, self.banks
        )?;
        writeln!(
            f,
            "  QK-PU / V-PU           {} EA of 1-D {}-way 8x8-b MAC",
            self.corelets, self.head_dim
        )?;
        writeln!(
            f,
            "  Softmax                {} EA, 12-b in / 8-b out, 2x64B LUTs, 2 dividers",
            self.corelets
        )?;
        writeln!(f, "  Query buffer           {} B", self.query_buffer_bytes)?;
        write!(f, "  Index buffer           {} B", self.index_buffer_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_presets() {
        let s = SprintConfig::small();
        let m = SprintConfig::medium();
        let l = SprintConfig::large();
        assert_eq!((s.corelets, s.onchip_kib, s.banks), (1, 16, 8));
        assert_eq!((m.corelets, m.onchip_kib, m.banks), (2, 32, 16));
        assert_eq!((l.corelets, l.onchip_kib, l.banks), (4, 64, 32));
        assert_eq!(s.query_buffer_bytes, 64);
        assert_eq!(m.query_buffer_bytes, 128);
        assert_eq!(l.query_buffer_bytes, 256);
        assert_eq!(s.index_buffer_bytes, 512);
        assert_eq!(l.index_buffer_bytes, 2048);
    }

    #[test]
    fn capacity_in_pairs_matches_cache_size() {
        // 16 KB / (2 x 64 B) = 128 pairs.
        assert_eq!(SprintConfig::small().kv_capacity_pairs(), 128);
        assert_eq!(SprintConfig::medium().kv_capacity_pairs(), 256);
        assert_eq!(SprintConfig::large().kv_capacity_pairs(), 512);
    }

    #[test]
    fn bandwidth_scales_with_corelets() {
        let s = SprintConfig::small();
        let l = SprintConfig::large();
        assert_eq!(s.total_channels(), 16);
        assert_eq!(l.total_channels(), 64);
        assert!(l.memory_bytes_per_cycle() > s.memory_bytes_per_cycle());
        assert!(l.cycles_per_pair() < s.cycles_per_pair());
    }

    #[test]
    fn derived_configs_are_consistent() {
        for cfg in SprintConfig::all() {
            let pipe = cfg.pipeline_config();
            assert_eq!(pipe.corelets, cfg.corelets);
            assert_eq!(
                pipe.corelet.kv_capacity * cfg.corelets,
                cfg.kv_capacity_pairs()
            );
            let geom = cfg.memory_geometry();
            geom.validate().unwrap();
            assert_eq!(geom.channels, cfg.total_channels());
            pipe.validate().unwrap();
        }
    }

    #[test]
    fn display_mentions_table_one_fields() {
        let text = SprintConfig::small().to_string();
        assert!(text.contains("S-SPRINT"));
        assert!(text.contains("16 KB"));
        assert!(text.contains("64-way"));
        assert!(text.contains("Query buffer"));
    }

    #[test]
    fn area_model_matches_configuration() {
        assert!(
            SprintConfig::small().area().total_mm2() < SprintConfig::large().area().total_mm2()
        );
        let m = SprintConfig::medium().area();
        assert!(
            (m.total_mm2() - 1.9).abs() / 1.9 < 0.05,
            "Table III: 1.9 mm^2"
        );
    }
}
