//! Model-level serving: [`ModelServer`] over the [`Engine`], and the
//! trace-driven [`ServeLoop`].
//!
//! The [`Engine`] serves isolated heads; the evaluation — and any real
//! deployment — is model-shaped. [`ModelServer`] closes that gap: it
//! decomposes a [`ModelRequest`] (layers × heads, per-layer sequence
//! lengths, one shared base seed) into [`crate::HeadRequest`]s,
//! schedules them over the engine's pool of reset-reused worker
//! scratches via [`sprint_parallel`], and aggregates the responses
//! into a [`ModelResponse`] of per-layer and whole-model roll-ups.
//! The decomposition inherits [`Engine::run_batch`]'s determinism
//! guarantee: results are bit-identical across worker counts and equal
//! to a sequential per-head loop over the same
//! [`ModelRequest::head_plan`].
//!
//! [`ServeLoop`] adds traffic on top: a
//! [`sprint_workloads::ArrivalSpec`] stream feeds model requests into
//! the server, due arrivals are batched in flight, and the loop
//! reports throughput and latency percentiles — the repo's first
//! end-to-end serving scenario.

use std::time::Instant;

use sprint_energy::EnergyBreakdown;
use sprint_reram::ThresholdSpec;
use sprint_workloads::{Arrival, HeadTrace, ProxyTask, TaskScore, TraceGenerator, TraceSpec};

use crate::decode::{DecodeStep, SessionRequest};
use crate::engine::{derive_head_seed, BatchReport};
use crate::model::{HeadPlan, LayerReport, ModelRequest, ModelResponse, PerfRollup, TRACE_SALT};
use crate::{Engine, ExecutionMode, HeadRequest, SprintError};

/// Per-stage execution accounting for one [`ModelServer::serve_many`]
/// pass ([`ModelServer::serve_many_report`]).
///
/// The serial stages (`plan_ns`, `score_ns`, `fold_ns`) are wall-clock
/// spans; the two fan-outs (`synth`, `batch`) carry full per-worker
/// [`BatchReport`]s. Together they answer "where did the pass
/// serialize": a large serial stage bounds scaling no matter how many
/// workers run, while an uneven fan-out shows up in the worker
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Wall-clock nanoseconds decomposing passes into head plans
    /// (serial).
    pub plan_ns: u128,
    /// Trace-synthesis fan-out (deduplicated `(seed, spec)` pairs).
    pub synth: BatchReport,
    /// The engine head-batch fan-out.
    pub batch: BatchReport,
    /// Wall-clock nanoseconds scoring accuracy (≈0 when no pass asks
    /// for it; the scoring fan-out is timed as one span).
    pub score_ns: u128,
    /// Wall-clock nanoseconds folding head rollups into per-layer and
    /// per-model reports (serial).
    pub fold_ns: u128,
}

impl ServeStats {
    /// The pass's ideal wall-clock on a host with one free core per
    /// worker: the serial stages plus each fan-out's critical path.
    /// Comparing this across worker counts demonstrates (or refutes)
    /// scaling independent of how loaded the measuring machine is.
    pub fn critical_path_ns(&self) -> u128 {
        self.plan_ns
            + self.synth.critical_path_ns()
            + self.batch.critical_path_ns()
            + self.score_ns
            + self.fold_ns
    }
}

/// Serves whole forward passes over one [`Engine`].
///
/// The server owns nothing beyond the engine: all reusable substrate
/// state (pruner crossbars, memory controllers, attention scratch)
/// lives in the engine's worker slots and is recycled across passes,
/// so a long-running server allocates no per-request substrate.
///
/// # Example
///
/// ```
/// use sprint_engine::{Engine, ModelProfile, ModelRequest, ModelServer, SprintConfig};
/// use sprint_workloads::ModelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = ModelServer::new(Engine::builder(SprintConfig::small()).seed(1).build()?);
/// let profile = ModelProfile::from_model(&ModelConfig::bert_base())
///     .with_layers(2)
///     .with_heads(2)
///     .with_layer_seq_lens(vec![48, 32]); // ragged layers are fine
/// let response = server.serve(&ModelRequest::new(profile).with_seed(7))?;
/// assert_eq!(response.layers.len(), 2);
/// assert_eq!(response.total.heads, 4);
/// assert!(response.total.energy.total().as_pj() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelServer {
    engine: Engine,
}

impl ModelServer {
    /// Wraps an engine. The engine's worker slots are the server's
    /// execution pool; its defaults (mode, noise, comparator, seed)
    /// apply to every pass that does not override them.
    pub fn new(engine: Engine) -> Self {
        ModelServer { engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwraps the server back into its engine.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Serves one forward pass (fanned out across up to
    /// [`Engine::worker_slots`] workers).
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for degenerate profiles or accuracy
    /// requests without a source model; substrate errors otherwise.
    pub fn serve(&self, request: &ModelRequest) -> Result<ModelResponse, SprintError> {
        self.serve_threads(sprint_parallel::max_threads(), request)
    }

    /// [`ModelServer::serve`] with an explicit worker-count cap (the
    /// determinism tests sweep this; production code should prefer
    /// `serve`).
    ///
    /// # Errors
    ///
    /// Same as [`ModelServer::serve`].
    pub fn serve_threads(
        &self,
        threads: usize,
        request: &ModelRequest,
    ) -> Result<ModelResponse, SprintError> {
        let mut responses = self.serve_many_threads(threads, std::slice::from_ref(request))?;
        Ok(responses.remove(0))
    }

    /// Serves several passes as one flattened head batch — the
    /// in-flight batching entry the [`ServeLoop`] uses. Each pass
    /// keeps its own base seed, so the responses equal one
    /// [`ModelServer::serve`] call per request.
    ///
    /// # Errors
    ///
    /// The first failing request's error, in request order.
    pub fn serve_many(&self, requests: &[ModelRequest]) -> Result<Vec<ModelResponse>, SprintError> {
        self.serve_many_threads(sprint_parallel::max_threads(), requests)
    }

    /// [`ModelServer::serve_many`] with an explicit worker-count cap.
    ///
    /// # Errors
    ///
    /// Same as [`ModelServer::serve_many`].
    pub fn serve_many_threads(
        &self,
        threads: usize,
        requests: &[ModelRequest],
    ) -> Result<Vec<ModelResponse>, SprintError> {
        Ok(self.serve_many_report(threads, requests)?.0)
    }

    /// [`ModelServer::serve_many_threads`] with per-stage execution
    /// accounting: returns the responses together with a
    /// [`ServeStats`] locating where the pass spent its time (serial
    /// planning/scoring/folding vs. the synthesis and head-batch
    /// fan-outs, with per-worker counters for both).
    ///
    /// # Errors
    ///
    /// Same as [`ModelServer::serve_many`].
    #[allow(clippy::type_complexity)]
    pub fn serve_many_report(
        &self,
        threads: usize,
        requests: &[ModelRequest],
    ) -> Result<(Vec<ModelResponse>, ServeStats), SprintError> {
        // The explicit count governs every fan-out of the pass, not
        // just the engine batch — a caller asking for one worker gets
        // exactly one thread of synthesis and scoring too. It is NOT
        // clamped to `max_threads()`: an explicit request for N
        // workers must produce N workers (the engine batch still caps
        // at its slot count), otherwise worker sweeps silently
        // serialize on small hosts.
        let workers = threads.max(1);
        // 1. Decompose every pass into its deterministic head plan.
        let plan_started = Instant::now();
        let mut plans: Vec<(usize, HeadPlan)> = Vec::new();
        for (r, request) in requests.iter().enumerate() {
            request.profile().validate()?;
            if request.wants_accuracy() && request.profile().source().is_none() {
                return Err(SprintError::Request(format!(
                    "accuracy requested for '{}' but the profile has no source model",
                    request.profile().name()
                )));
            }
            plans.extend(request.head_plan().into_iter().map(|h| (r, h)));
        }
        let plan_ns = plan_started.elapsed().as_nanos();

        // 2. Synthesize the traces — deduplicated: passes that share a
        // base seed and layer shape (a mode sweep over one model, say)
        // name the same (trace_seed, spec) pairs, and a trace is a
        // pure function of that pair, so each unique pair is built
        // once. The fan-out stays bit-identical to a sequential loop.
        let synth_started = Instant::now();
        let mut trace_keys: Vec<(u64, TraceSpec)> = Vec::new();
        let mut trace_of: Vec<usize> = Vec::with_capacity(plans.len());
        for (_, plan) in &plans {
            let key = (plan.trace_seed, plan.spec);
            let idx = trace_keys
                .iter()
                .position(|k| *k == key)
                .unwrap_or_else(|| {
                    trace_keys.push(key);
                    trace_keys.len() - 1
                });
            trace_of.push(idx);
        }
        let (traces, synth_workers) = sprint_parallel::par_chunk_try_map_threads(
            workers,
            &trace_keys,
            |_, _, (seed, spec)| TraceGenerator::new(*seed).generate(spec),
        )?;
        let synth = BatchReport {
            wall_ns: synth_started.elapsed().as_nanos(),
            workers: synth_workers,
        };

        // 3. Stamp out head requests (borrowing the traces) and run
        // them as one sharded batch: worker `w` stays pinned to the
        // engine's scratch slot `w` for the whole batch. The unchecked
        // path is deliberate — mode sweeps flatten passes that reuse
        // head ids against a shared base seed, which the public
        // `run_batch` rejects as a seed collision.
        let head_requests: Vec<HeadRequest> = plans
            .iter()
            .zip(&trace_of)
            .map(|((r, plan), &t)| {
                let mut head = HeadRequest::from_trace(&traces[t]).with_head_id(plan.head_id);
                if let Some(mode) = requests[*r].mode_override() {
                    head = head.with_mode(mode);
                }
                if let Some(spec) = requests[*r].threshold_spec_override() {
                    head = head.with_threshold_spec(spec);
                }
                head
            })
            .collect();
        let (head_responses, batch) = self.engine.run_batch_sharded(workers, &head_requests)?;

        // 4. Score the passes that asked for accuracy. Tasks are
        // deduplicated like traces (a task is a pure function of its
        // trace, source model and task seed, and its construction runs
        // a dense reference pass — the expensive half); the per-head
        // evaluation still runs per response. Skipped entirely when no
        // pass wants accuracy.
        let score_started = Instant::now();
        let scores: Vec<Option<TaskScore>> = if requests.iter().any(ModelRequest::wants_accuracy) {
            let mut task_keys: Vec<(usize, u64, usize)> = Vec::new(); // (trace, seed, request)
            let mut task_of: Vec<Option<usize>> = Vec::with_capacity(plans.len());
            for ((r, plan), &t) in plans.iter().zip(&trace_of) {
                if !requests[*r].wants_accuracy() {
                    task_of.push(None);
                    continue;
                }
                let idx = task_keys
                    .iter()
                    .position(|&(kt, ks, kr)| {
                        kt == t
                            && ks == plan.task_seed
                            && requests[kr].profile().source() == requests[*r].profile().source()
                    })
                    .unwrap_or_else(|| {
                        task_keys.push((t, plan.task_seed, *r));
                        task_keys.len() - 1
                    });
                task_of.push(Some(idx));
            }
            let tasks =
                sprint_parallel::par_try_map_threads(workers, &task_keys, |&(t, seed, r)| {
                    let model = requests[r].profile().source().expect("checked above");
                    ProxyTask::new(&traces[t], model, seed)
                })?;
            let indices: Vec<usize> = (0..plans.len()).collect();
            sprint_parallel::par_try_map_threads(
                workers,
                &indices,
                |&i| -> Result<_, SprintError> {
                    match task_of[i] {
                        Some(t) => Ok(Some(tasks[t].evaluate(&head_responses[i].output)?)),
                        None => Ok(None),
                    }
                },
            )?
        } else {
            vec![None; plans.len()]
        };
        let score_ns = score_started.elapsed().as_nanos();

        // 5. Fold head rollups into per-layer and per-model reports.
        let fold_started = Instant::now();
        let mut out: Vec<ModelResponse> = requests
            .iter()
            .map(|request| ModelResponse {
                model: request.profile().name().to_string(),
                mode: request.mode_override().unwrap_or(self.engine.mode()),
                layers: request
                    .profile()
                    .layer_seq_lens()
                    .iter()
                    .enumerate()
                    .map(|(layer, &seq_len)| LayerReport {
                        layer,
                        seq_len,
                        perf: PerfRollup::default(),
                    })
                    .collect(),
                total: PerfRollup::default(),
            })
            .collect();
        for (((r, plan), &t), (response, score)) in plans
            .iter()
            .zip(&trace_of)
            .zip(head_responses.iter().zip(&scores))
        {
            let request = &requests[*r];
            let mut rollup = PerfRollup::from_response(
                request.mode_override().unwrap_or(self.engine.mode()),
                self.engine.config(),
                request.profile().head_dim(),
                plan.spec.seq_len,
                traces[t].live_tokens(),
                response,
            );
            if let Some(score) = score {
                rollup.record_score(*score);
            }
            out[*r].layers[plan.layer].perf.merge(&rollup);
        }
        // The model total is *defined* as the merge of the layer
        // reports (not a second per-head fold), so `Σ layers == total`
        // holds exactly — f64 addition groups the same way on both
        // sides.
        for response in &mut out {
            for layer in 0..response.layers.len() {
                let perf = response.layers[layer].perf;
                response.total.merge(&perf);
            }
        }
        let stats = ServeStats {
            plan_ns,
            synth,
            batch,
            score_ns,
            fold_ns: fold_started.elapsed().as_nanos(),
        };
        Ok((out, stats))
    }
}

/// A trace-driven serving loop: synthetic arrivals in, a throughput /
/// latency report out.
///
/// The loop replays an [`Arrival`] stream against a set of
/// [`ModelRequest`] templates on a virtual clock: every arrival due at
/// the current instant joins the next in-flight batch (up to
/// [`ServeLoop::max_batch`]), the batch runs through
/// [`ModelServer::serve_many`] while the wall-clock service time is
/// measured, and the clock advances by that service time. A request's
/// latency is queueing delay plus service — the standard open-loop
/// serving model.
///
/// # Example
///
/// ```
/// use sprint_engine::{Engine, ModelProfile, ModelRequest, ModelServer, ServeLoop, SprintConfig};
/// use sprint_workloads::{ArrivalSpec, ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = ModelServer::new(Engine::builder(SprintConfig::small()).build()?);
/// let template = ModelRequest::new(
///     ModelProfile::from_model(&ModelConfig::vit_base())
///         .with_layers(1)
///         .with_heads(2)
///         .with_seq_len(32),
/// );
/// let arrivals = TraceGenerator::new(9).arrivals(&ArrivalSpec::poisson(4, 200_000.0, 1))?;
/// let summary = ServeLoop::new(&server).run(&arrivals, &[template])?;
/// assert_eq!(summary.served, 4);
/// assert!(summary.throughput_per_s() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeLoop<'a> {
    server: &'a ModelServer,
    max_batch: usize,
}

impl<'a> ServeLoop<'a> {
    /// A loop over `server` with the default in-flight batch cap (8).
    pub fn new(server: &'a ModelServer) -> Self {
        ServeLoop {
            server,
            max_batch: 8,
        }
    }

    /// Caps how many due model requests one batch may coalesce
    /// (clamped to at least 1).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Replays `arrivals` against the request `templates`
    /// (`arrival.template` indexes into the slice).
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for an empty template set or an
    /// out-of-range template index; serving errors otherwise.
    pub fn run(
        &self,
        arrivals: &[Arrival],
        templates: &[ModelRequest],
    ) -> Result<ServeSummary, SprintError> {
        if templates.is_empty() {
            return Err(SprintError::Request(
                "serve loop needs at least one request template".to_string(),
            ));
        }
        if let Some(bad) = arrivals.iter().find(|a| a.template >= templates.len()) {
            return Err(SprintError::Request(format!(
                "arrival template {} out of range ({} templates)",
                bad.template,
                templates.len()
            )));
        }
        let mut order: Vec<&Arrival> = arrivals.iter().collect();
        order.sort_by_key(|a| a.at_ns);

        let mut clock: u128 = 0;
        let mut busy_ns: u128 = 0;
        let mut batches = 0usize;
        let mut heads = 0u64;
        let mut faults_detected = 0u64;
        let mut fault_retries = 0u64;
        let mut remapped_columns = 0u64;
        let mut heads_demoted = 0u64;
        let mut latencies_ns: Vec<u128> = Vec::with_capacity(order.len());
        let mut i = 0usize;
        while i < order.len() {
            // Idle until the next arrival, then coalesce everything due.
            let now = clock.max(order[i].at_ns as u128);
            let mut batch: Vec<&Arrival> = Vec::new();
            while i < order.len() && (order[i].at_ns as u128) <= now && batch.len() < self.max_batch
            {
                batch.push(order[i]);
                i += 1;
            }
            let requests: Vec<ModelRequest> = batch
                .iter()
                .map(|a| templates[a.template].clone())
                .collect();
            let started = Instant::now();
            let responses = self.server.serve_many(&requests)?;
            let service = started.elapsed().as_nanos().max(1);
            busy_ns += service;
            batches += 1;
            clock = now + service;
            for (arrival, response) in batch.iter().zip(&responses) {
                latencies_ns.push(clock - arrival.at_ns as u128);
                heads += response.total.heads;
                faults_detected += response.total.faults_detected;
                fault_retries += response.total.fault_retries;
                remapped_columns += response.total.remapped_columns;
                heads_demoted += response.total.heads_demoted;
            }
        }
        latencies_ns.sort_unstable();
        let pool = self.server.engine().kv_pool();
        Ok(ServeSummary {
            served: order.len(),
            heads,
            batches,
            busy_ns,
            makespan_ns: clock,
            faults_detected,
            fault_retries,
            remapped_columns,
            heads_demoted,
            kv_pages_in_use: pool.pages_in_use(),
            kv_pages_peak: pool.peak_pages(),
            latencies_ns,
        })
    }
}

/// One autoregressive decode task for the [`DecodeLoop`]: synthesize
/// a token stream, prefill a session with its head, and decode the
/// remaining tokens one step at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeTask {
    /// The trace to synthesize the token stream from. `seq_len` is the
    /// *total* token count (prefill + decoded); the padding fraction
    /// is forced to zero — decode histories hold only real tokens.
    pub spec: TraceSpec,
    /// Tokens in the prefill (`1..spec.seq_len`); the rest decode.
    pub prefill: usize,
    /// Per-task [`ExecutionMode`] override.
    pub mode: Option<ExecutionMode>,
    /// Per-task comparator override.
    pub threshold_spec: Option<ThresholdSpec>,
}

/// The deterministic outcome of one decode session run by the
/// [`DecodeLoop`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The task's index in the submitted slice.
    pub session: usize,
    /// Prefill length.
    pub prefill: usize,
    /// Tokens decoded.
    pub tokens: u64,
    /// Fraction of considered scores kept across all steps.
    pub kept_fraction: f64,
    /// Summed recurring step energy.
    pub energy: EnergyBreakdown,
    /// Summed program-once energy (prefill write + appends +
    /// recalibrations).
    pub program_energy: EnergyBreakdown,
    /// Summed step latency in cycles.
    pub cycles: u64,
    /// Full requantize/reprogram events across the session.
    pub recalibrations: u64,
    /// ReRAM cell faults detected by the session's scrubs.
    pub faults_detected: u64,
    /// Write-verify reprogram retries spent repairing mid-session.
    pub fault_retries: u64,
    /// Whether the session demoted to the exact digital pipeline
    /// mid-decode (and stayed there; see [`crate::FaultPolicy`]).
    pub demoted: bool,
    /// The last decoded token's attention output row.
    pub final_output: Vec<f32>,
}

/// The outcome of one [`DecodeLoop::run`]: per-session reports (pure
/// functions of the tasks and the engine seed — bit-identical across
/// worker counts) plus wall-clock throughput.
#[derive(Debug, Clone)]
pub struct DecodeReport {
    /// One report per task, in task order.
    pub sessions: Vec<SessionReport>,
    /// Total tokens decoded across all sessions.
    pub tokens: u64,
    /// ReRAM cell faults detected across all sessions.
    pub faults_detected: u64,
    /// Sessions that demoted to the exact digital pipeline mid-decode.
    pub demoted_sessions: u64,
    /// KV-page eviction events across all sessions (zero for
    /// [`DecodeLoop::run`]; only [`DecodeLoop::run_churn`] evicts).
    pub evictions: u64,
    /// Session rehydrations across all sessions (zero for
    /// [`DecodeLoop::run`]).
    pub rehydrations: u64,
    /// History tokens replayed across all rehydrations.
    pub rehydrated_tokens: u64,
    /// Pages the engine's shared KV pool held when the run finished
    /// (zero once every session closed, unless other sessions share
    /// the pool).
    pub kv_pages_in_use: usize,
    /// The pool's lifetime peak resident page count.
    pub kv_pages_peak: usize,
    /// Wall-clock nanoseconds the run took.
    pub busy_ns: u128,
    /// Per-worker counters from the session fan-out (sessions are
    /// distributed by [`sprint_parallel::chunk_ranges`], so which
    /// worker ran a session is deterministic).
    pub workers: Vec<sprint_parallel::WorkerStats>,
}

impl DecodeReport {
    /// Decoded tokens per wall-clock second.
    pub fn tokens_per_s(&self) -> f64 {
        self.tokens as f64 / (self.busy_ns.max(1) as f64 / 1e9)
    }
}

/// Interleaves many concurrent [`crate::DecodeSession`]s over
/// [`sprint_parallel`] workers.
///
/// Sessions are mutually independent, so the loop fans one worker out
/// per session; session `i` derives its trace seed from
/// `engine_seed ^ TRACE_SALT` and its pruner seed from the engine seed
/// at head id `i` — the same derivation discipline as
/// [`Engine::run_batch`], so reports are **bit-identical across
/// worker counts** and across runs.
///
/// # Example
///
/// ```
/// use sprint_engine::{DecodeLoop, DecodeTask, Engine, SprintConfig};
/// use sprint_reram::NoiseModel;
/// use sprint_workloads::ModelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::builder(SprintConfig::small())
///     .noise(NoiseModel::ideal())
///     .seed(4)
///     .build()?;
/// let task = DecodeTask {
///     spec: ModelConfig::bert_base().trace_spec().with_seq_len(24),
///     prefill: 16,
///     mode: None,
///     threshold_spec: None,
/// };
/// let report = DecodeLoop::new(&engine).run(&[task, task])?;
/// assert_eq!(report.sessions.len(), 2);
/// assert_eq!(report.tokens, 16); // 8 decoded tokens per session
/// // Same engine, same tasks, any worker count: identical reports.
/// let again = DecodeLoop::new(&engine).run_threads(1, &[task, task])?;
/// assert_eq!(report.sessions, again.sessions);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeLoop<'a> {
    engine: &'a Engine,
}

impl<'a> DecodeLoop<'a> {
    /// A loop decoding over `engine`'s defaults and seed.
    pub fn new(engine: &'a Engine) -> Self {
        DecodeLoop { engine }
    }

    /// Runs every task to completion, one session per task, fanned out
    /// across up to [`sprint_parallel::max_threads`] workers.
    ///
    /// # Errors
    ///
    /// [`SprintError::Request`] for a degenerate task (prefill outside
    /// `1..seq_len`); substrate errors otherwise. The first failing
    /// task's error wins, in task order.
    pub fn run(&self, tasks: &[DecodeTask]) -> Result<DecodeReport, SprintError> {
        self.run_threads(sprint_parallel::max_threads(), tasks)
    }

    /// [`DecodeLoop::run`] with an explicit worker-count cap (the
    /// determinism tests sweep this).
    ///
    /// # Errors
    ///
    /// Same as [`DecodeLoop::run`].
    pub fn run_threads(
        &self,
        threads: usize,
        tasks: &[DecodeTask],
    ) -> Result<DecodeReport, SprintError> {
        for (i, task) in tasks.iter().enumerate() {
            if task.prefill == 0 || task.prefill >= task.spec.seq_len {
                return Err(SprintError::Request(format!(
                    "decode task {i}: prefill {} outside 1..{}",
                    task.prefill, task.spec.seq_len
                )));
            }
        }
        // Honor the explicit count (sessions are independent; there is
        // no slot constraint to clamp against) — `run()` already
        // defaults to `max_threads()`.
        let workers = threads.max(1);
        let started = Instant::now();
        let (sessions, worker_stats) =
            sprint_parallel::par_chunk_try_map_threads(workers, tasks, |_, i, task| {
                self.run_one(i, task)
            })?;
        let busy_ns = started.elapsed().as_nanos().max(1);
        Ok(self.finish_report(sessions, (0, 0, 0), busy_ns, worker_stats))
    }

    /// Runs every task under a per-worker **residency cap**: at most
    /// `resident_cap` sessions per worker hold KV pages at once, the
    /// rest sit evicted ([`crate::DecodeSession::evict`]) with only
    /// their stub and retained trace. Each worker serves its sessions
    /// one token per turn, round-robin; a turn on an evicted session
    /// transparently rehydrates it through the ordinary prefill path
    /// ([`Engine::resume_session`]), evicting its own least-recently
    /// used session first when the shared page pool is exhausted.
    ///
    /// Under an ideal noise model and no fault model, the per-session
    /// reports are **bit-identical** to [`DecodeLoop::run`] over the
    /// same tasks — eviction and rehydration are invisible in every
    /// output, decision and step-attributed perf number; only the
    /// churn counters ([`DecodeReport::evictions`],
    /// [`DecodeReport::rehydrations`]) and the separately-booked
    /// [`crate::SessionPerf::rehydration_energy`] differ. The counter
    /// *values* depend on the worker count (chunk boundaries move);
    /// the session reports do not.
    ///
    /// Size a bounded pool for at least `workers × resident_cap`
    /// resident sessions: a worker whose own resident set is empty
    /// cannot free pages held by other workers, so an undersized pool
    /// surfaces as the pool-exhausted error instead of deadlocking.
    ///
    /// # Errors
    ///
    /// Same as [`DecodeLoop::run`], plus the pool-exhausted error
    /// ([`SprintError::is_pool_exhausted`]) when eviction cannot free
    /// enough pages for the next turn.
    pub fn run_churn(
        &self,
        tasks: &[DecodeTask],
        resident_cap: usize,
    ) -> Result<DecodeReport, SprintError> {
        self.run_churn_threads(sprint_parallel::max_threads(), tasks, resident_cap)
    }

    /// [`DecodeLoop::run_churn`] with an explicit worker-count cap.
    ///
    /// # Errors
    ///
    /// Same as [`DecodeLoop::run_churn`].
    pub fn run_churn_threads(
        &self,
        threads: usize,
        tasks: &[DecodeTask],
        resident_cap: usize,
    ) -> Result<DecodeReport, SprintError> {
        for (i, task) in tasks.iter().enumerate() {
            if task.prefill == 0 || task.prefill >= task.spec.seq_len {
                return Err(SprintError::Request(format!(
                    "decode task {i}: prefill {} outside 1..{}",
                    task.prefill, task.spec.seq_len
                )));
            }
        }
        let workers = threads.max(1);
        let cap = resident_cap.max(1);
        let started = Instant::now();
        // One chunk per worker, the same contiguous split `run` uses —
        // the chunk round-robins internally instead of finishing each
        // session before the next.
        let ranges = sprint_parallel::chunk_ranges(tasks.len(), workers);
        let (chunks, worker_stats) =
            sprint_parallel::par_chunk_try_map_threads(workers.max(1), &ranges, |_, _, range| {
                self.churn_chunk(range.clone(), tasks, cap)
            })?;
        let busy_ns = started.elapsed().as_nanos().max(1);
        let mut sessions = Vec::with_capacity(tasks.len());
        let mut totals = (0u64, 0u64, 0u64);
        for (reports, evictions, rehydrations, rehydrated_tokens) in chunks {
            sessions.extend(reports);
            totals.0 += evictions;
            totals.1 += rehydrations;
            totals.2 += rehydrated_tokens;
        }
        Ok(self.finish_report(sessions, totals, busy_ns, worker_stats))
    }

    fn finish_report(
        &self,
        sessions: Vec<SessionReport>,
        (evictions, rehydrations, rehydrated_tokens): (u64, u64, u64),
        busy_ns: u128,
        workers: Vec<sprint_parallel::WorkerStats>,
    ) -> DecodeReport {
        let tokens = sessions.iter().map(|s: &SessionReport| s.tokens).sum();
        let faults_detected = sessions.iter().map(|s| s.faults_detected).sum();
        let demoted_sessions = sessions.iter().filter(|s| s.demoted).count() as u64;
        let pool = self.engine.kv_pool();
        DecodeReport {
            sessions,
            tokens,
            faults_detected,
            demoted_sessions,
            evictions,
            rehydrations,
            rehydrated_tokens,
            kv_pages_in_use: pool.pages_in_use(),
            kv_pages_peak: pool.peak_pages(),
            busy_ns,
            workers,
        }
    }

    /// Synthesizes task `i`'s token stream (the retained history every
    /// rehydration replays from).
    fn synth_trace(&self, i: usize, task: &DecodeTask) -> Result<HeadTrace, SprintError> {
        let mut spec = task.spec;
        spec.padding_fraction = 0.0;
        let trace_seed = derive_head_seed(self.engine.seed() ^ TRACE_SALT, i as u64);
        Ok(TraceGenerator::new(trace_seed).generate(&spec)?)
    }

    /// Opens task `i`'s session from its trace's prefill rows.
    fn open_one(
        &self,
        i: usize,
        task: &DecodeTask,
        trace: &HeadTrace,
    ) -> Result<crate::DecodeSession, SprintError> {
        let prefill_k = trace.k().prefix_rows(task.prefill)?;
        let prefill_v = trace.v().prefix_rows(task.prefill)?;
        let mut request =
            SessionRequest::new(&prefill_k, &prefill_v, trace.config(), trace.threshold())
                .with_head_id(i as u64);
        if let Some(mode) = task.mode {
            request = request.with_mode(mode);
        }
        if let Some(spec) = task.threshold_spec {
            request = request.with_threshold_spec(spec);
        }
        self.engine.open_session(&request)
    }

    /// Folds a finished session into its report.
    fn close_one(
        i: usize,
        prefill: usize,
        session: &crate::DecodeSession,
        final_output: Vec<f32>,
    ) -> SessionReport {
        let perf = *session.perf();
        SessionReport {
            session: i,
            prefill,
            tokens: perf.tokens,
            kept_fraction: perf.kept_fraction(),
            energy: perf.energy,
            program_energy: perf.program_energy,
            cycles: perf.cycles,
            recalibrations: perf.recalibrations,
            faults_detected: perf.faults_detected,
            fault_retries: perf.fault_retries,
            demoted: perf.demoted,
            final_output,
        }
    }

    /// Synthesizes task `i`'s token stream and decodes it end to end.
    fn run_one(&self, i: usize, task: &DecodeTask) -> Result<SessionReport, SprintError> {
        let trace = self.synth_trace(i, task)?;
        let mut session = self.open_one(i, task, &trace)?;
        let mut final_output = Vec::new();
        for t in task.prefill..task.spec.seq_len {
            let response = session.step(&DecodeStep {
                q: trace.q().row(t),
                k: trace.k().row(t),
                v: trace.v().row(t),
            })?;
            final_output = response.output;
        }
        Ok(Self::close_one(i, task.prefill, &session, final_output))
    }

    /// One worker's share of [`DecodeLoop::run_churn`]: round-robin
    /// one-token turns over `range`'s sessions with at most `cap` of
    /// them resident. Returns the chunk's reports (in task order) plus
    /// its `(evictions, rehydrations, rehydrated_tokens)` totals.
    #[allow(clippy::type_complexity)]
    fn churn_chunk(
        &self,
        range: std::ops::Range<usize>,
        tasks: &[DecodeTask],
        cap: usize,
    ) -> Result<(Vec<SessionReport>, u64, u64, u64), SprintError> {
        enum Slot {
            Unopened,
            Live(Box<crate::DecodeSession>),
            Parked(Box<crate::EvictedSession>),
            Done,
        }
        struct ChurnSlot {
            task_index: usize,
            trace: HeadTrace,
            /// Next token to decode (== current history length).
            t: usize,
            final_output: Vec<f32>,
            state: Slot,
        }
        /// Parks the least-recently-used resident session other than
        /// `current`, returning whether anything could be parked.
        fn evict_coldest(slots: &mut [ChurnSlot], lru: &mut Vec<usize>, current: usize) -> bool {
            let Some(pos) = lru.iter().position(|&x| x != current) else {
                return false;
            };
            let victim = lru.remove(pos);
            match std::mem::replace(&mut slots[victim].state, Slot::Unopened) {
                Slot::Live(session) => {
                    slots[victim].state = Slot::Parked(Box::new(session.evict()))
                }
                other => slots[victim].state = other, // unreachable by construction
            }
            true
        }

        let mut slots: Vec<ChurnSlot> = range
            .clone()
            .map(|i| {
                Ok(ChurnSlot {
                    task_index: i,
                    trace: self.synth_trace(i, &tasks[i])?,
                    t: tasks[i].prefill,
                    final_output: Vec::new(),
                    state: Slot::Unopened,
                })
            })
            .collect::<Result<_, SprintError>>()?;
        // Resident slots in recency order: front = coldest.
        let mut lru: Vec<usize> = Vec::new();
        let mut reports: Vec<Option<SessionReport>> = (0..slots.len()).map(|_| None).collect();
        let mut evictions = 0u64;
        let mut rehydrations = 0u64;
        let mut rehydrated_tokens = 0u64;
        let mut remaining = slots.len();
        while remaining > 0 {
            for s in 0..slots.len() {
                if matches!(slots[s].state, Slot::Done) {
                    continue;
                }
                // Make the session resident (open or rehydrate),
                // evicting our own coldest session on pool pressure.
                while !matches!(slots[s].state, Slot::Live(_)) {
                    let i = slots[s].task_index;
                    let attempt = match &slots[s].state {
                        Slot::Unopened => self.open_one(i, &tasks[i], &slots[s].trace),
                        Slot::Parked(stub) => {
                            let k = slots[s].trace.k().prefix_rows(slots[s].t)?;
                            let v = slots[s].trace.v().prefix_rows(slots[s].t)?;
                            self.engine.resume_session(stub, &k, &v)
                        }
                        _ => unreachable!("done and live slots handled above"),
                    };
                    match attempt {
                        Ok(session) => {
                            slots[s].state = Slot::Live(Box::new(session));
                            lru.push(s);
                        }
                        Err(e) if e.is_pool_exhausted() => {
                            if !evict_coldest(&mut slots, &mut lru, s) {
                                return Err(e);
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                // Serve one token (retrying through eviction if the
                // history append needs a page the pool cannot give).
                if let Some(pos) = lru.iter().position(|&x| x == s) {
                    lru.remove(pos);
                    lru.push(s);
                }
                loop {
                    let t = slots[s].t;
                    let ChurnSlot { trace, state, .. } = &mut slots[s];
                    let Slot::Live(session) = state else {
                        unreachable!("made resident above")
                    };
                    match session.step(&DecodeStep {
                        q: trace.q().row(t),
                        k: trace.k().row(t),
                        v: trace.v().row(t),
                    }) {
                        Ok(response) => {
                            slots[s].final_output = response.output;
                            slots[s].t += 1;
                            break;
                        }
                        Err(e) if e.is_pool_exhausted() => {
                            if !evict_coldest(&mut slots, &mut lru, s) {
                                return Err(e);
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                // Finished sessions close immediately, freeing pages.
                let i = slots[s].task_index;
                if slots[s].t == tasks[i].spec.seq_len {
                    if let Some(pos) = lru.iter().position(|&x| x == s) {
                        lru.remove(pos);
                    }
                    let state = std::mem::replace(&mut slots[s].state, Slot::Done);
                    let Slot::Live(session) = state else {
                        unreachable!("just stepped")
                    };
                    let perf = session.perf();
                    evictions += perf.evictions;
                    rehydrations += perf.rehydrations;
                    rehydrated_tokens += perf.rehydrated_tokens;
                    reports[s] = Some(Self::close_one(
                        i,
                        tasks[i].prefill,
                        &session,
                        std::mem::take(&mut slots[s].final_output),
                    ));
                    remaining -= 1;
                    continue;
                }
                // Enforce the residency cap: the coldest sessions park
                // until their next turn.
                while lru.len() > cap {
                    let victim = lru.remove(0);
                    match std::mem::replace(&mut slots[victim].state, Slot::Unopened) {
                        Slot::Live(session) => {
                            slots[victim].state = Slot::Parked(Box::new(session.evict()))
                        }
                        other => slots[victim].state = other,
                    }
                }
            }
        }
        let reports = reports
            .into_iter()
            .map(|r| r.expect("every slot finished"))
            .collect();
        Ok((reports, evictions, rehydrations, rehydrated_tokens))
    }
}

/// The outcome of one [`ServeLoop::run`]: what was served, how fast,
/// and the request-latency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Model requests completed.
    pub served: usize,
    /// Attention heads executed across all requests.
    pub heads: u64,
    /// Batches dispatched (≤ `served`; smaller means coalescing
    /// happened).
    pub batches: usize,
    /// Wall-clock nanoseconds spent serving (the busy time).
    pub busy_ns: u128,
    /// Virtual nanoseconds from the first arrival epoch to the last
    /// completion.
    pub makespan_ns: u128,
    /// ReRAM cell faults detected across all served requests (zero
    /// without a [`sprint_reram::FaultModel`] on the engine).
    pub faults_detected: u64,
    /// Write-verify reprogram retries spent repairing faulty cells
    /// across all served requests (see [`crate::FaultPolicy`]).
    pub fault_retries: u64,
    /// Crossbar columns remapped to spares across all served requests.
    pub remapped_columns: u64,
    /// Heads demoted to the exact digital pipeline across all served
    /// requests (see [`crate::FaultPolicy`]).
    pub heads_demoted: u64,
    /// Pages resident in the engine's shared KV page pool when the run
    /// finished (held by decode sessions sharing the engine; zero for
    /// a pure model-serving deployment).
    pub kv_pages_in_use: usize,
    /// The pool's lifetime peak resident page count.
    pub kv_pages_peak: usize,
    latencies_ns: Vec<u128>,
}

impl ServeSummary {
    /// Request latency (queueing + service) at percentile `pct`
    /// (`0.0..=100.0`); zero when nothing was served.
    ///
    /// This is the **nearest-rank** estimator — the sorted sample at
    /// rank `⌈pct/100 · n⌉` — with **no interpolation** between
    /// samples. Two consequences at small sample counts:
    ///
    /// * any percentile above `100 · (1 − 1/n)` returns the sample
    ///   **maximum** — over fewer than 100 served requests, "p99" is
    ///   simply the slowest request, not a resolved tail estimate
    ///   (see [`ServeSummary::resolves_percentile`]);
    /// * adjacent percentiles collapse onto the same sample, so small
    ///   runs report step-shaped, not smooth, latency curves.
    ///
    /// The [`std::fmt::Display`] rendering states the sample count and
    /// flags a saturated p99 for exactly this reason.
    pub fn latency_ns(&self, pct: f64) -> u128 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = ((pct / 100.0) * self.latencies_ns.len() as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, self.latencies_ns.len()) - 1]
    }

    /// Whether `pct` is resolvable from this many samples — i.e.
    /// whether the nearest-rank estimate can point at anything other
    /// than the maximum. `p` percent needs at least `100 / (100 − p)`
    /// samples (100 for p99, 10 for p90, 2 for p50).
    pub fn resolves_percentile(&self, pct: f64) -> bool {
        let n = self.latencies_ns.len() as f64;
        n * (100.0 - pct.clamp(0.0, 100.0)) >= 100.0
    }

    /// Completed model requests per second of makespan.
    pub fn throughput_per_s(&self) -> f64 {
        self.served as f64 / (self.makespan_ns.max(1) as f64 / 1e9)
    }

    /// Heads executed per second of makespan.
    pub fn head_throughput_per_s(&self) -> f64 {
        self.heads as f64 / (self.makespan_ns.max(1) as f64 / 1e9)
    }

    /// Mean model requests per dispatched batch.
    pub fn mean_batch(&self) -> f64 {
        self.served as f64 / self.batches.max(1) as f64
    }
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {} model requests ({} heads) in {} batches (mean batch {:.2})",
            self.served,
            self.heads,
            self.batches,
            self.mean_batch()
        )?;
        writeln!(
            f,
            "throughput: {:.1} models/s ({:.1} heads/s); busy {:.3} ms of {:.3} ms makespan",
            self.throughput_per_s(),
            self.head_throughput_per_s(),
            self.busy_ns as f64 / 1e6,
            self.makespan_ns as f64 / 1e6,
        )?;
        if self.faults_detected > 0 || self.heads_demoted > 0 {
            writeln!(
                f,
                "faults: {} cells detected, {} retries, {} columns remapped, \
                 {} heads demoted to the exact pipeline",
                self.faults_detected, self.fault_retries, self.remapped_columns, self.heads_demoted,
            )?;
        }
        if self.kv_pages_peak > 0 {
            writeln!(
                f,
                "kv pool: {} pages resident, peak {}",
                self.kv_pages_in_use, self.kv_pages_peak,
            )?;
        }
        write!(
            f,
            "latency (nearest-rank over {} samples): p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms{}",
            self.latencies_ns.len(),
            self.latency_ns(50.0) as f64 / 1e6,
            self.latency_ns(90.0) as f64 / 1e6,
            self.latency_ns(99.0) as f64 / 1e6,
            if self.resolves_percentile(99.0) {
                ""
            } else {
                " [p99 = max: under 100 samples]"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecutionMode, ModelProfile, SprintConfig};
    use sprint_reram::NoiseModel;
    use sprint_workloads::{ArrivalSpec, ModelConfig};

    fn server(slots: usize) -> ModelServer {
        ModelServer::new(
            Engine::builder(SprintConfig::small())
                .noise(NoiseModel::ideal())
                .seed(3)
                .worker_slots(slots)
                .build()
                .unwrap(),
        )
    }

    fn tiny_request() -> ModelRequest {
        ModelRequest::new(
            ModelProfile::from_model(&ModelConfig::bert_base())
                .with_layers(2)
                .with_heads(2)
                .with_layer_seq_lens(vec![40, 24]),
        )
        .with_seed(11)
    }

    #[test]
    fn serve_rolls_layers_into_totals() {
        let response = server(2).serve(&tiny_request()).unwrap();
        assert_eq!(response.model, "BERT-B");
        assert_eq!(response.mode, ExecutionMode::Sprint);
        assert_eq!(response.layers.len(), 2);
        assert_eq!(response.layers[0].seq_len, 40);
        assert_eq!(response.layers[1].seq_len, 24);
        let mut merged = PerfRollup::default();
        for layer in &response.layers {
            assert_eq!(layer.perf.heads, 2);
            assert!(layer.perf.cycles > 0);
            assert!(layer.perf.energy.total().as_pj() > 0.0);
            merged.merge(&layer.perf);
        }
        assert_eq!(merged, response.total);
        assert_eq!(response.total.heads, 4);
        // Sprint prunes: kept fraction strictly inside (0, 1).
        let kept = response.total.kept_fraction();
        assert!(kept > 0.0 && kept < 1.0, "kept fraction {kept}");
        assert!(response.total.queries_pruned > 0);
        assert_eq!(response.total.accuracy(), None, "accuracy off by default");
    }

    #[test]
    fn mode_override_moves_the_energy_ordering() {
        let s = server(2);
        let dense = s
            .serve(&tiny_request().with_mode(ExecutionMode::Dense))
            .unwrap();
        let sprint = s
            .serve(&tiny_request().with_mode(ExecutionMode::Sprint))
            .unwrap();
        assert!(dense.total.energy.total() > sprint.total.energy.total());
        assert!(dense.total.cycles > sprint.total.cycles);
        assert!(dense.total.bytes_fetched > sprint.total.bytes_fetched);
        assert_eq!(dense.total.queries_pruned, 0);
        assert!((dense.total.kept_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_requires_a_source_model() {
        let profile = ModelProfile::custom("free", 32, 1, vec![32], 0.7, 0.2, 0.8).unwrap();
        let err = server(1).serve(&ModelRequest::new(profile).with_accuracy(true));
        assert!(matches!(err, Err(SprintError::Request(_))));
    }

    #[test]
    fn accuracy_rollup_scores_every_head() {
        let response = server(2)
            .serve(
                &tiny_request()
                    .with_mode(ExecutionMode::Dense)
                    .with_accuracy(true),
            )
            .unwrap();
        let score = response.total.accuracy().expect("accuracy requested");
        // Dense output scores near the pinned BERT-B baseline and
        // agrees with itself.
        assert!(score.accuracy > 0.6, "accuracy {}", score.accuracy);
        assert_eq!(score.agreement, 1.0);
        for layer in &response.layers {
            assert!(layer.perf.accuracy().is_some());
        }
    }

    #[test]
    fn zero_head_requests_are_rejected() {
        let profile = ModelProfile::from_model(&ModelConfig::vit_base()).with_layers(0);
        let err = server(1).serve(&ModelRequest::new(profile));
        assert!(matches!(err, Err(SprintError::Request(_))));
    }

    #[test]
    fn serve_many_equals_independent_serves() {
        let s = server(4);
        let a = tiny_request();
        let b = tiny_request()
            .with_seed(29)
            .with_mode(ExecutionMode::Oracle);
        let together = s.serve_many(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(together[0], s.serve(&a).unwrap());
        assert_eq!(together[1], s.serve(&b).unwrap());
    }

    #[test]
    fn serve_loop_reports_traffic() {
        let s = server(2);
        let template = ModelRequest::new(
            ModelProfile::from_model(&ModelConfig::vit_base())
                .with_layers(1)
                .with_heads(2)
                .with_seq_len(32),
        )
        .with_seed(5);
        let arrivals = TraceGenerator::new(17)
            .arrivals(&ArrivalSpec::poisson(6, 50_000.0, 1))
            .unwrap();
        let summary = ServeLoop::new(&s)
            .max_batch(4)
            .run(&arrivals, &[template])
            .unwrap();
        assert_eq!(summary.served, 6);
        assert_eq!(summary.heads, 12);
        assert!(summary.batches <= 6);
        assert!(summary.busy_ns > 0);
        assert!(summary.latency_ns(50.0) <= summary.latency_ns(99.0));
        assert!(summary.throughput_per_s() > 0.0);
        let text = summary.to_string();
        assert!(text.contains("p99"), "display renders percentiles: {text}");
    }

    #[test]
    fn percentiles_saturate_to_max_at_small_sample_counts() {
        let summary = ServeSummary {
            served: 6,
            heads: 0,
            batches: 6,
            busy_ns: 1,
            makespan_ns: 1,
            faults_detected: 0,
            fault_retries: 0,
            remapped_columns: 0,
            heads_demoted: 0,
            kv_pages_in_use: 0,
            kv_pages_peak: 0,
            latencies_ns: vec![10, 20, 30, 40, 50, 60],
        };
        // Nearest-rank: p50 of 6 samples is rank ceil(3) = sample 30.
        assert_eq!(summary.latency_ns(50.0), 30);
        // Anything above 100·(1 − 1/6) ≈ 83.3% collapses to the max.
        assert_eq!(summary.latency_ns(90.0), 60);
        assert_eq!(summary.latency_ns(99.0), 60);
        assert_eq!(summary.latency_ns(100.0), 60);
        assert!(summary.resolves_percentile(50.0));
        assert!(!summary.resolves_percentile(90.0));
        assert!(!summary.resolves_percentile(99.0));
        let text = summary.to_string();
        assert!(text.contains("6 samples"), "{text}");
        assert!(text.contains("p99 = max"), "{text}");
        // 100+ samples resolve p99 and drop the caveat.
        let big = ServeSummary {
            served: 200,
            heads: 0,
            batches: 200,
            busy_ns: 1,
            makespan_ns: 1,
            faults_detected: 0,
            fault_retries: 0,
            remapped_columns: 0,
            heads_demoted: 0,
            kv_pages_in_use: 0,
            kv_pages_peak: 0,
            latencies_ns: (1..=200).collect(),
        };
        assert!(big.resolves_percentile(99.0));
        assert_eq!(big.latency_ns(99.0), 198);
        assert!(!big.to_string().contains("p99 = max"));
    }

    #[test]
    fn display_surfaces_fault_rollups_when_present() {
        let mut summary = ServeSummary {
            served: 1,
            heads: 2,
            batches: 1,
            busy_ns: 1,
            makespan_ns: 1,
            faults_detected: 7,
            fault_retries: 3,
            remapped_columns: 2,
            heads_demoted: 1,
            kv_pages_in_use: 0,
            kv_pages_peak: 0,
            latencies_ns: vec![10],
        };
        let text = summary.to_string();
        assert!(
            text.contains("7 cells detected, 3 retries, 2 columns remapped"),
            "{text}"
        );
        assert!(text.contains("1 heads demoted"), "{text}");
        summary.faults_detected = 0;
        summary.fault_retries = 0;
        summary.remapped_columns = 0;
        summary.heads_demoted = 0;
        assert!(!summary.to_string().contains("faults:"));
    }

    #[test]
    fn decode_loop_reports_ragged_sessions_deterministically() {
        let engine = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(21)
            .build()
            .unwrap();
        let base = ModelConfig::bert_base().trace_spec();
        let tasks = [
            DecodeTask {
                spec: base.with_seq_len(24),
                prefill: 16,
                mode: None,
                threshold_spec: None,
            },
            DecodeTask {
                spec: base.with_seq_len(40),
                prefill: 8,
                mode: Some(ExecutionMode::Oracle),
                threshold_spec: None,
            },
            DecodeTask {
                spec: base.with_seq_len(16),
                prefill: 12,
                mode: Some(ExecutionMode::Dense),
                threshold_spec: None,
            },
        ];
        let loop_ = DecodeLoop::new(&engine);
        let reference = loop_.run_threads(1, &tasks).unwrap();
        assert_eq!(reference.sessions.len(), 3);
        assert_eq!(reference.tokens, 8 + 32 + 4);
        assert!(reference.tokens_per_s() > 0.0);
        assert_eq!(reference.sessions[0].tokens, 8);
        assert!(reference.sessions[0].kept_fraction < 1.0, "sprint prunes");
        assert!(
            (reference.sessions[2].kept_fraction - 1.0).abs() < 1e-12,
            "dense keeps everything"
        );
        for workers in [2usize, 4, 8] {
            let run = loop_.run_threads(workers, &tasks).unwrap();
            assert_eq!(run.sessions, reference.sessions, "workers = {workers}");
        }
    }

    fn churn_tasks() -> [DecodeTask; 3] {
        let base = ModelConfig::bert_base().trace_spec();
        [
            DecodeTask {
                spec: base.with_seq_len(24),
                prefill: 16,
                mode: None,
                threshold_spec: None,
            },
            DecodeTask {
                spec: base.with_seq_len(40),
                prefill: 8,
                mode: Some(ExecutionMode::Oracle),
                threshold_spec: None,
            },
            DecodeTask {
                spec: base.with_seq_len(16),
                prefill: 12,
                mode: Some(ExecutionMode::Dense),
                threshold_spec: None,
            },
        ]
    }

    #[test]
    fn churn_loop_is_bit_identical_to_the_never_evicted_twin() {
        use sprint_attention::PagePool;
        let tasks = churn_tasks();
        let twin_engine = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(21)
            .build()
            .unwrap();
        let twin = DecodeLoop::new(&twin_engine)
            .run_threads(1, &tasks)
            .unwrap();
        assert_eq!(twin.evictions, 0);
        assert_eq!(twin.rehydrations, 0);

        // Small pages (4 tokens each at d = d_v = 64) so sessions span
        // many pages; residency cap 1 forces every round-robin turn to
        // evict and rehydrate.
        let engine = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(21)
            .kv_pool(PagePool::unbounded(4 * 5 * 128))
            .build()
            .unwrap();
        let loop_ = DecodeLoop::new(&engine);
        for workers in [1usize, 2, 4] {
            let churn = loop_.run_churn_threads(workers, &tasks, 1).unwrap();
            assert_eq!(churn.sessions, twin.sessions, "workers = {workers}");
            if workers < tasks.len() {
                // A worker holding one session alone never exceeds the
                // cap, so only shared workers are forced to churn.
                assert!(churn.evictions > 0, "cap 1 over shared workers must churn");
                assert!(churn.rehydrations > 0);
                assert!(churn.rehydrated_tokens > 0);
            }
            assert_eq!(
                churn.kv_pages_in_use, 0,
                "every session closed; pages leaked"
            );
            assert!(churn.kv_pages_peak > 0);
        }
        assert_eq!(engine.kv_pool().pages_in_use(), 0);
    }

    #[test]
    fn churn_loop_serves_more_sessions_than_a_bounded_pool_holds() {
        use sprint_attention::PagePool;
        let tasks = churn_tasks();
        let twin_engine = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(21)
            .build()
            .unwrap();
        let twin = DecodeLoop::new(&twin_engine)
            .run_threads(1, &tasks)
            .unwrap();

        // 12 pages of 4 tokens: the 40-token session alone needs 10,
        // so a cap-2 resident set (up to 16 pages) cannot fit — the
        // pool-exhausted retry path must evict mid-turn.
        let engine = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .seed(21)
            .kv_pool(PagePool::bounded(4 * 5 * 128, 12))
            .build()
            .unwrap();
        let churn = DecodeLoop::new(&engine)
            .run_churn_threads(1, &tasks, 2)
            .unwrap();
        assert_eq!(churn.sessions, twin.sessions);
        assert!(churn.evictions > 0);
        assert!(churn.kv_pages_peak <= 12, "bounded pool never overshoots");
        assert_eq!(engine.kv_pool().pages_in_use(), 0, "no accounting drift");
        assert_eq!(
            engine.kv_pool().free_pages(),
            engine.kv_pool().peak_pages(),
            "every allocated page returned to the free list"
        );
    }

    #[test]
    fn decode_loop_validates_prefill() {
        let engine = Engine::builder(SprintConfig::small()).build().unwrap();
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(8);
        for prefill in [0usize, 8, 9] {
            let task = DecodeTask {
                spec,
                prefill,
                mode: None,
                threshold_spec: None,
            };
            assert!(matches!(
                DecodeLoop::new(&engine).run(&[task]),
                Err(SprintError::Request(_))
            ));
        }
    }

    #[test]
    fn serve_loop_validates_templates() {
        let s = server(1);
        let arrivals = [Arrival {
            at_ns: 0,
            template: 3,
        }];
        assert!(matches!(
            ServeLoop::new(&s).run(&arrivals, &[]),
            Err(SprintError::Request(_))
        ));
        assert!(matches!(
            ServeLoop::new(&s).run(&arrivals, &[tiny_request()]),
            Err(SprintError::Request(_))
        ));
    }
}
