//! The frozen pre-engine pipeline, kept as the equivalence oracle.
//!
//! [`run_head_frozen`] is the seed `SprintSystem::run_head`
//! implementation, line for line: it builds a **fresh** pruner, memory
//! controller and workspace on every call and pays every per-head
//! allocation the engine now amortizes. The equivalence tests prove
//! that [`crate::Engine`] — with its reprogrammed crossbars, cold-reset
//! controller and pooled scratch — produces bit-identical
//! [`HeadResponse`]s, no matter how many heads of whatever shapes ran
//! through it before.
//!
//! The digital modes ([`crate::ExecutionMode::Dense`] /
//! [`crate::ExecutionMode::Oracle`]) reproduce the pre-engine accuracy
//! drivers: a direct `pruned_attention` call with `f32::MIN` or the
//! learned threshold respectively.

use sprint_attention::{
    pruned_attention, quantized_attention, softmax_inplace, Matrix, PruneDecision, Workspace,
};
use sprint_memory::MemoryController;
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};

use crate::{
    engine::validate_request, ExecutionMode, FaultReport, HeadRequest, HeadResponse, SprintConfig,
    SprintError,
};

/// Runs one head through the pre-engine pipeline with every piece of
/// substrate state built from scratch.
///
/// For self-shaped, trace-driven requests in the
/// [`ExecutionMode::Sprint`] / [`ExecutionMode::NoRecompute`] modes
/// this is exactly the seed `SprintSystem::run_head` (the `recompute`
/// flag mapped onto the two modes); the generalizations the engine
/// added — cross-shaped unpadded heads, zero-live heads — are handled
/// by the same rules so the oracle covers the full request space.
///
/// # Errors
///
/// Same conditions as [`crate::Engine::run_head`].
pub fn run_head_frozen(
    request: &HeadRequest,
    config: &SprintConfig,
    noise: NoiseModel,
    seed: u64,
    spec: &ThresholdSpec,
    mode: ExecutionMode,
) -> Result<HeadResponse, SprintError> {
    let (live_q, live_k) = validate_request(request)?;
    let (q, k, v) = (request.q(), request.k(), request.v());
    let (s_q, s_k) = (q.rows(), k.rows());

    match mode {
        ExecutionMode::Dense | ExecutionMode::Oracle => {
            let threshold = match mode {
                ExecutionMode::Dense => f32::MIN,
                _ => request.threshold(),
            };
            let padding = request.padding();
            let (out, decisions) =
                pruned_attention(q, k, v, &request.config(), threshold, padding.as_ref())?;
            let mut memory_stats = sprint_memory::MemoryStats::default();
            if live_q > 0 && live_k > 0 {
                let mut controller =
                    MemoryController::new(config.memory_geometry(), config.timing)?;
                controller.start_new_head();
                for d in decisions.iter().take(live_q) {
                    controller.process_query(&d.as_slice()[..live_k])?;
                }
                memory_stats = controller.stats();
            }
            Ok(HeadResponse {
                output: out.output,
                decisions,
                prune_stats: sprint_reram::PruneHardwareStats::default(),
                memory_stats,
                faults: FaultReport::default(),
            })
        }
        ExecutionMode::Sprint | ExecutionMode::NoRecompute => {
            let recompute = mode == ExecutionMode::Sprint;
            if live_q == 0 || live_k == 0 {
                let all_pruned = PruneDecision::new(vec![true; s_k]);
                return Ok(HeadResponse {
                    output: Matrix::zeros(s_q, v.cols())?,
                    decisions: (0..s_q).map(|_| all_pruned.clone()).collect(),
                    prune_stats: sprint_reram::PruneHardwareStats::default(),
                    memory_stats: sprint_memory::MemoryStats::default(),
                    faults: FaultReport::default(),
                });
            }

            // In-memory pruning over the live region only (the 2-D
            // reduction filters padded rows/columns before memory ever
            // sees them).
            let q_live = submatrix(q, live_q)?;
            let k_live = submatrix(k, live_k)?;
            let mut pruner =
                InMemoryPruner::new(&q_live, &k_live, request.config().scale(), noise, seed)?;

            let mut controller = MemoryController::new(config.memory_geometry(), config.timing)?;
            controller.start_new_head();

            let threshold = request.threshold();
            let mut decisions = Vec::with_capacity(s_q);
            let mut approx_rows: Vec<Vec<f32>> = Vec::with_capacity(live_q);
            for i in 0..live_q {
                let outcome = pruner.prune_query(q_live.row(i), threshold, spec)?;
                // Extend the live-region decision to the full sequence:
                // padded keys are always pruned.
                let mut pruned = vec![true; s_k];
                for (j, flag) in pruned.iter_mut().enumerate().take(live_k) {
                    *flag = outcome.decision.is_pruned(j);
                }
                controller.process_query(&pruned[..live_k])?;
                let mut row = vec![f32::NEG_INFINITY; s_k];
                for j in 0..live_k {
                    if !pruned[j] {
                        row[j] = outcome.approx_scores[j];
                    }
                }
                approx_rows.push(row);
                decisions.push(PruneDecision::new(pruned));
            }
            for _ in live_q..s_q {
                decisions.push(PruneDecision::new(vec![true; s_k]));
            }

            let mut ws = Workspace::new();
            let output = if recompute {
                // On-chip recompute: full-precision (8-bit datapath)
                // scores for every surviving key.
                quantized_attention(q, k, v, &request.config(), Some(&decisions))?.output
            } else {
                // No recompute: the approximate in-memory scores drive
                // the softmax and weighted sum directly. The workspace
                // stages each probability row; surviving keys
                // accumulate row-wise.
                let mut out = Matrix::zeros(s_q, v.cols())?;
                let prow = ws.prob_row(s_k);
                for (i, row) in approx_rows.iter().enumerate() {
                    prow.copy_from_slice(row);
                    softmax_inplace(prow);
                    let orow = out.row_mut(i);
                    for (j, &p) in prow.iter().enumerate() {
                        if p > 0.0 {
                            for (o, &vx) in orow.iter_mut().zip(v.row(j)) {
                                *o += p * vx;
                            }
                        }
                    }
                }
                out
            };

            Ok(HeadResponse {
                output,
                decisions,
                prune_stats: pruner.stats(),
                memory_stats: controller.stats(),
                faults: FaultReport::default(),
            })
        }
    }
}

/// The first `rows` rows of `m` as an owned matrix (the seed helper).
fn submatrix(m: &Matrix, rows: usize) -> Result<Matrix, sprint_attention::AttentionError> {
    let mut out = Matrix::zeros(rows, m.cols())?;
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    Ok(out)
}
