//! The functional execution modes of the engine.

use serde::{Deserialize, Serialize};

/// How the engine executes a head — the four functional pipelines of
/// the paper's Fig. 9 evaluation, replacing the bare `recompute: bool`
/// flag of the pre-engine API.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Full SPRINT: analog in-memory thresholding, SLD-driven
    /// selective fetch, and on-chip 8-bit recomputation of the
    /// surviving scores.
    #[default]
    Sprint,
    /// SPRINT without the recompute stage (Fig. 9's third bar): the
    /// approximate analog scores feed the softmax directly.
    NoRecompute,
    /// Dense baseline: no pruning at all — full-precision attention
    /// over the live region with padding masked (Fig. 9's first bar).
    Dense,
    /// Oracle runtime pruning: the learned threshold applied to
    /// *full-precision digital* scores (LeOPArd-style, Fig. 9's second
    /// bar) — the upper bound the analog path approximates.
    Oracle,
}

impl ExecutionMode {
    /// All four modes, in the paper's Fig. 9 bar order.
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::Dense,
        ExecutionMode::Oracle,
        ExecutionMode::NoRecompute,
        ExecutionMode::Sprint,
    ];

    /// Display label (the Fig. 9 bar names).
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Sprint => "SPRINT",
            ExecutionMode::NoRecompute => "SPRINT w/o Recompute",
            ExecutionMode::Dense => "Baseline",
            ExecutionMode::Oracle => "Runtime Pruning",
        }
    }

    /// Whether this mode runs the analog in-memory thresholding path
    /// (and therefore consumes per-head seed randomness).
    pub fn uses_in_memory_pruning(self) -> bool {
        matches!(self, ExecutionMode::Sprint | ExecutionMode::NoRecompute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_fig9_bars() {
        assert_eq!(ExecutionMode::Sprint.label(), "SPRINT");
        assert_eq!(ExecutionMode::Dense.label(), "Baseline");
        assert_eq!(ExecutionMode::Oracle.label(), "Runtime Pruning");
        assert_eq!(ExecutionMode::NoRecompute.label(), "SPRINT w/o Recompute");
    }

    #[test]
    fn only_analog_modes_use_seeds() {
        assert!(ExecutionMode::Sprint.uses_in_memory_pruning());
        assert!(ExecutionMode::NoRecompute.uses_in_memory_pruning());
        assert!(!ExecutionMode::Dense.uses_in_memory_pruning());
        assert!(!ExecutionMode::Oracle.uses_in_memory_pruning());
    }

    #[test]
    fn default_is_full_sprint() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::Sprint);
        assert_eq!(ExecutionMode::ALL.len(), 4);
    }
}
