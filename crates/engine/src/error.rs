//! The unified engine error type and the legacy [`SystemError`].
//!
//! Every substrate crate exposes its own error enum; before the engine
//! redesign each caller stitched them together ad hoc. [`SprintError`]
//! is the single error the serving API surfaces: one `From` impl per
//! substrate (`AttentionError`, `ReramError`, `MemoryError`,
//! `AcceleratorError`) plus the legacy end-to-end [`SystemError`], so
//! `?` composes across every layer.

use std::error::Error;
use std::fmt;

use sprint_accelerator::AcceleratorError;
use sprint_attention::AttentionError;
use sprint_memory::MemoryError;
use sprint_reram::ReramError;

/// Errors from the end-to-end system (any substrate can fail).
///
/// This is the pre-engine error of `SprintSystem::run_head`, kept for
/// the shimmed legacy API; new code should use [`SprintError`].
#[derive(Debug)]
pub enum SystemError {
    /// Attention math error.
    Attention(AttentionError),
    /// ReRAM substrate error.
    Reram(ReramError),
    /// Memory subsystem error.
    Memory(MemoryError),
    /// An engine-level failure with no legacy equivalent (malformed
    /// request, accelerator model error), carried as text.
    Engine(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Attention(e) => write!(f, "attention: {e}"),
            SystemError::Reram(e) => write!(f, "reram: {e}"),
            SystemError::Memory(e) => write!(f, "memory: {e}"),
            SystemError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl Error for SystemError {}

impl From<AttentionError> for SystemError {
    fn from(e: AttentionError) -> Self {
        SystemError::Attention(e)
    }
}

impl From<ReramError> for SystemError {
    fn from(e: ReramError) -> Self {
        SystemError::Reram(e)
    }
}

impl From<MemoryError> for SystemError {
    fn from(e: MemoryError) -> Self {
        SystemError::Memory(e)
    }
}

/// The one error type of the engine API.
///
/// # Example
///
/// ```
/// use sprint_engine::SprintError;
///
/// fn run() -> Result<(), SprintError> {
///     let m = sprint_attention::Matrix::zeros(0, 4); // invalid
///     m.map_err(SprintError::from)?;
///     Ok(())
/// }
/// let err = run().unwrap_err();
/// assert!(matches!(err, SprintError::Attention(_)));
/// assert!(err.to_string().contains("attention"));
/// ```
#[derive(Debug)]
pub enum SprintError {
    /// Attention math error (shapes, quantization, softmax).
    Attention(AttentionError),
    /// ReRAM substrate error (crossbar geometry, programming, pruning).
    Reram(ReramError),
    /// Memory subsystem error (geometry, timing, addressing).
    Memory(MemoryError),
    /// Accelerator model error (CORELET configuration, mapping).
    Accelerator(AcceleratorError),
    /// The request itself is malformed (inconsistent shapes, padding
    /// over a cross-shaped head).
    Request(String),
}

impl fmt::Display for SprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SprintError::Attention(e) => write!(f, "attention: {e}"),
            SprintError::Reram(e) => write!(f, "reram: {e}"),
            SprintError::Memory(e) => write!(f, "memory: {e}"),
            SprintError::Accelerator(e) => write!(f, "accelerator: {e}"),
            SprintError::Request(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl SprintError {
    /// Whether this error is the shared KV page pool running out of
    /// capacity — the one failure the session layers treat as
    /// *retryable*: evict a cold session (freeing its pages) and issue
    /// the identical open/step/resume again.
    pub fn is_pool_exhausted(&self) -> bool {
        matches!(
            self,
            SprintError::Attention(AttentionError::PoolExhausted { .. })
        )
    }
}

impl Error for SprintError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SprintError::Attention(e) => Some(e),
            SprintError::Reram(e) => Some(e),
            SprintError::Memory(e) => Some(e),
            SprintError::Accelerator(e) => Some(e),
            SprintError::Request(_) => None,
        }
    }
}

impl From<AttentionError> for SprintError {
    fn from(e: AttentionError) -> Self {
        SprintError::Attention(e)
    }
}

impl From<ReramError> for SprintError {
    fn from(e: ReramError) -> Self {
        SprintError::Reram(e)
    }
}

impl From<MemoryError> for SprintError {
    fn from(e: MemoryError) -> Self {
        SprintError::Memory(e)
    }
}

impl From<AcceleratorError> for SprintError {
    fn from(e: AcceleratorError) -> Self {
        SprintError::Accelerator(e)
    }
}

impl From<SystemError> for SprintError {
    fn from(e: SystemError) -> Self {
        match e {
            SystemError::Attention(e) => SprintError::Attention(e),
            SystemError::Reram(e) => SprintError::Reram(e),
            SystemError::Memory(e) => SprintError::Memory(e),
            SystemError::Engine(msg) => SprintError::Request(msg),
        }
    }
}

impl From<SprintError> for SystemError {
    fn from(e: SprintError) -> Self {
        match e {
            SprintError::Attention(e) => SystemError::Attention(e),
            SprintError::Reram(e) => SystemError::Reram(e),
            SprintError::Memory(e) => SystemError::Memory(e),
            SprintError::Accelerator(e) => SystemError::Engine(e.to_string()),
            SprintError::Request(msg) => SystemError::Engine(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SprintError>();
        assert_err::<SystemError>();
    }

    #[test]
    fn conversions_round_trip_the_substrate_variants() {
        let e = SprintError::from(ReramError::InvalidParameter("x".into()));
        let legacy = SystemError::from(e);
        assert!(matches!(legacy, SystemError::Reram(_)));
        let back = SprintError::from(legacy);
        assert!(matches!(back, SprintError::Reram(_)));
    }

    #[test]
    fn request_errors_survive_the_legacy_boundary_as_text() {
        let e = SprintError::Request("padding over cross-shaped head".into());
        let legacy = SystemError::from(e);
        assert!(legacy.to_string().contains("cross-shaped"));
    }

    #[test]
    fn display_names_the_layer() {
        let e = SprintError::from(AttentionError::EmptyInput("scores"));
        assert!(e.to_string().starts_with("attention:"));
        assert!(e.source().is_some());
    }
}
