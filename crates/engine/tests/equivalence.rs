//! The engine's central contract: state reuse changes nothing.
//!
//! Every test compares [`sprint_engine::Engine`] — crossbars
//! reprogrammed in place, controller cold-reset, pooled scratch —
//! against [`sprint_engine::reference::run_head_frozen`], the frozen
//! pre-engine pipeline that rebuilds everything per call (the seed
//! `SprintSystem::run_head`). Responses must be bit-identical
//! (`PartialEq` over output matrix, decisions and both stat blocks),
//! across all four execution modes, head shapes, and worker counts.

use sprint_attention::{Matrix, PaddingMask};
use sprint_engine::{
    derive_head_seed, reference, Engine, ExecutionMode, HeadRequest, HeadResponse, SprintConfig,
};
use sprint_reram::{NoiseModel, ThresholdSpec};
use sprint_workloads::{HeadTrace, ModelConfig, TraceGenerator};

fn trace(model: ModelConfig, seq: usize, seed: u64) -> HeadTrace {
    let spec = model.trace_spec().with_seq_len(seq);
    TraceGenerator::new(seed).generate(&spec).unwrap()
}

fn frozen(
    req: &HeadRequest,
    engine: &Engine,
    seed: u64,
    mode: ExecutionMode,
    spec: &ThresholdSpec,
) -> HeadResponse {
    reference::run_head_frozen(req, engine.config(), engine.noise(), seed, spec, mode).unwrap()
}

#[test]
fn engine_matches_seed_path_across_modes_and_reused_state() {
    // One engine executes a stream of heads of different models,
    // shapes and modes; every response must equal the fresh-state
    // seed pipeline's. Noise is ON, so pruner RNG state reuse bugs
    // cannot hide.
    let noise = NoiseModel::default();
    let engine = Engine::builder(SprintConfig::medium())
        .noise(noise)
        .seed(0x5eed ^ 0x1234)
        .build()
        .unwrap();
    let heads = [
        trace(ModelConfig::bert_base(), 96, 1),
        trace(ModelConfig::vit_base(), 64, 2),
        trace(ModelConfig::bert_base(), 48, 3),
    ];
    let spec = ThresholdSpec::default();
    let mut head_id = 0u64;
    for t in &heads {
        for mode in ExecutionMode::ALL {
            let req = HeadRequest::from_trace(t)
                .with_head_id(head_id)
                .with_mode(mode);
            let got = engine.run_head(&req).unwrap();
            let seed = derive_head_seed(engine.seed(), head_id);
            let want = frozen(&req, &engine, seed, mode, &spec);
            assert_eq!(got, want, "mode {mode:?}, head {head_id}");
            head_id += 1;
        }
    }
}

#[test]
fn engine_matches_seed_path_for_cross_shaped_heads() {
    // s_q != s_k: a 3-query "decode" step against a 64-key cache, and
    // the transposed case, both unpadded.
    let t = trace(ModelConfig::bert_base(), 64, 7);
    let q3 = {
        let mut m = Matrix::zeros(3, t.q().cols()).unwrap();
        for r in 0..3 {
            m.row_mut(r).copy_from_slice(t.q().row(r));
        }
        m
    };
    let engine = Engine::builder(SprintConfig::small())
        .noise(NoiseModel::default())
        .seed(99)
        .build()
        .unwrap();
    let spec = ThresholdSpec::default();
    for mode in ExecutionMode::ALL {
        let narrow = HeadRequest::new(&q3, t.k(), t.v(), t.config(), t.threshold()).with_mode(mode);
        let got = engine.run_head(&narrow).unwrap();
        let want = frozen(&narrow, &engine, derive_head_seed(99, 0), mode, &spec);
        assert_eq!(got, want, "narrow, mode {mode:?}");
        assert_eq!(got.output.rows(), 3);
        assert_eq!(got.decisions.len(), 3);

        let wide = HeadRequest::new(t.q(), &q3, &q3, t.config(), t.threshold()).with_mode(mode);
        let got = engine.run_head(&wide).unwrap();
        let want = frozen(&wide, &engine, derive_head_seed(99, 0), mode, &spec);
        assert_eq!(got, want, "wide, mode {mode:?}");
        assert_eq!(got.decisions[0].len(), 3);
    }
}

#[test]
fn engine_matches_seed_path_for_fully_padded_heads() {
    let t = trace(ModelConfig::bert_base(), 32, 9);
    let engine = Engine::builder(SprintConfig::small())
        .seed(5)
        .build()
        .unwrap();
    let spec = ThresholdSpec::default();
    let dead = PaddingMask::new(t.seq_len(), 0).unwrap();
    for mode in ExecutionMode::ALL {
        let req = HeadRequest::from_trace(&t)
            .with_padding(dead)
            .with_mode(mode);
        let got = engine.run_head(&req).unwrap();
        let want = frozen(&req, &engine, derive_head_seed(5, 0), mode, &spec);
        assert_eq!(got, want, "mode {mode:?}");
        assert!(got.output.as_slice().iter().all(|&x| x == 0.0));
    }
}

#[test]
fn engine_matches_seed_path_for_all_pruned_heads() {
    // A hugely negative comparator margin makes the analog threshold
    // unreachable: every key of every query is pruned in memory, the
    // recompute path sees only all-pruned decisions.
    let t = trace(ModelConfig::bert_base(), 48, 11);
    let spec = ThresholdSpec {
        score_bits: None,
        margin_fraction: -1.0e3,
    };
    let engine = Engine::builder(SprintConfig::small())
        .noise(NoiseModel::default())
        .threshold_spec(spec)
        .seed(13)
        .build()
        .unwrap();
    for mode in [ExecutionMode::Sprint, ExecutionMode::NoRecompute] {
        let req = HeadRequest::from_trace(&t).with_mode(mode);
        let got = engine.run_head(&req).unwrap();
        let want = frozen(&req, &engine, derive_head_seed(13, 0), mode, &spec);
        assert_eq!(got, want, "mode {mode:?}");
        assert!(
            got.decisions.iter().all(|d| d.kept_count() == 0),
            "{mode:?}"
        );
        assert_eq!(got.memory_stats.fetched_vectors, 0, "{mode:?}");
    }
}

#[test]
fn run_batch_is_worker_count_independent() {
    // The acceptance criterion: run_batch results depend only on the
    // batch, never on SPRINT_THREADS (which flows into the same
    // worker-count cap run_batch_threads sweeps here).
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(64);
    let heads = TraceGenerator::new(21).generate_many(&spec, 6).unwrap();
    let engine = Engine::builder(SprintConfig::small())
        .noise(NoiseModel::default())
        .seed(0xba7c4)
        // Explicit slots so the 2/4/8-worker sweeps genuinely run
        // concurrently even when available_parallelism is 1.
        .worker_slots(8)
        .build()
        .unwrap();
    let requests: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
    let one = engine.run_batch_threads(1, &requests).unwrap();
    for threads in [2usize, 4, 8] {
        let many = engine.run_batch_threads(threads, &requests).unwrap();
        assert_eq!(one, many, "{threads} workers");
    }
    // And each slot equals the single-head path seeded by position.
    for (i, req) in requests.iter().enumerate() {
        let single = engine
            .run_head_seeded(req, derive_head_seed(engine.seed(), i as u64))
            .unwrap();
        assert_eq!(single, one[i], "head {i}");
    }
}

#[test]
fn shim_seed_compatibility_via_raw_seeds() {
    // run_head_seeded with a raw seed reproduces what a pre-engine
    // SprintSystem::new(cfg, noise, seed) produced — the oracle path
    // the legacy shim rides on.
    let t = trace(ModelConfig::bert_base(), 80, 15);
    let engine = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .build()
        .unwrap();
    let spec = ThresholdSpec::default();
    for (mode, raw_seed) in [
        (ExecutionMode::Sprint, 5u64),
        (ExecutionMode::NoRecompute, 777),
    ] {
        let req = HeadRequest::from_trace(&t).with_mode(mode);
        let got = engine.run_head_seeded(&req, raw_seed).unwrap();
        let want = frozen(&req, &engine, raw_seed, mode, &spec);
        assert_eq!(got, want, "mode {mode:?} seed {raw_seed}");
    }
}
