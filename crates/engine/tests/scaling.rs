//! Worker-scaling coverage for the sharded batch path.
//!
//! Wall-clock speedup only exists on hosts with free cores, so the
//! always-on tests here assert the *distribution* properties that
//! scaling rests on — every worker runs a balanced chunk, the
//! per-worker busy counters account for all the work, and the
//! parallel critical path shrinks with worker count — while the
//! wall-clock smoke test is `#[ignore]`d by default and additionally
//! skips itself on hosts with fewer than four available cores.

use std::time::Instant;

use sprint_engine::{
    DecodeLoop, DecodeTask, Engine, HeadRequest, ModelProfile, ModelRequest, ModelServer,
    SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

fn engine(slots: usize) -> Engine {
    Engine::builder(SprintConfig::small())
        .noise(NoiseModel::ideal())
        .seed(17)
        .worker_slots(slots)
        .build()
        .unwrap()
}

fn traces(n: usize, seq: usize, seed: u64) -> Vec<sprint_workloads::HeadTrace> {
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
    TraceGenerator::new(seed).generate_many(&spec, n).unwrap()
}

#[test]
fn every_worker_runs_a_balanced_chunk() {
    let e = engine(4);
    // Large enough that each worker's chunk runs well past one
    // scheduler tick even in release builds — the busy counters read
    // /proc schedstat, which only updates at scheduling events, so a
    // sub-millisecond chunk can legitimately report zero.
    let heads = traces(32, 160, 40);
    let reqs: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
    let (_, report) = e.run_batch_report(4, &reqs).unwrap();
    assert_eq!(report.workers.len(), 4);
    assert_eq!(
        report.workers.iter().map(|w| w.items).sum::<usize>(),
        reqs.len(),
        "every request accounted to exactly one worker"
    );
    for stats in &report.workers {
        assert_eq!(stats.items, 8, "32 requests over 4 workers is 8 each");
        assert!(
            stats.busy_ns > 0,
            "worker {} reported no busy time",
            stats.worker
        );
        assert!(stats.wall_ns > 0);
    }
}

#[test]
fn critical_path_shrinks_with_worker_count() {
    // The critical path (busiest worker's CPU time) is the wall-clock
    // the distribution would take with one free core per worker — it
    // must shrink with workers even on a fully loaded host, because it
    // counts only executed cycles, never descheduled time.
    let e = engine(4);
    // Sized so each 4-worker chunk far exceeds the schedstat tick
    // granularity (see every_worker_runs_a_balanced_chunk).
    let heads = traces(32, 160, 41);
    let reqs: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
    let (_, one) = e.run_batch_report(1, &reqs).unwrap();
    let (_, four) = e.run_batch_report(4, &reqs).unwrap();
    assert!(one.critical_path_ns() > 0);
    // Generous bound: a quarter of the work plus 100% overhead slack.
    assert!(
        2 * four.critical_path_ns() <= one.critical_path_ns(),
        "4-worker critical path {} ns is not under half the 1-worker {} ns",
        four.critical_path_ns(),
        one.critical_path_ns()
    );
    // And the chunks are balanced: the busiest worker holds no more
    // than three times the average share of the total work (loose
    // because the tick-granular busy clock under-measures whichever
    // workers were context-switched least).
    let avg = four.total_busy_ns() / four.workers.len() as u128;
    assert!(
        four.critical_path_ns() <= 3 * avg,
        "busiest worker {} ns vs average {} ns",
        four.critical_path_ns(),
        avg
    );
}

#[test]
fn serve_stats_localize_the_pass_stages() {
    let server = ModelServer::new(engine(4));
    let request = ModelRequest::new(
        ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(2)
            .with_heads(4)
            .with_seq_len(48),
    )
    .with_seed(9);
    let (responses, stats) = server
        .serve_many_report(4, std::slice::from_ref(&request))
        .unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].total.heads, 8);
    assert_eq!(
        stats.batch.workers.iter().map(|w| w.items).sum::<usize>(),
        8,
        "the head batch fans out all layers x heads"
    );
    assert!(!stats.synth.workers.is_empty());
    // Busy counters are tick-granular and this pass is small, so
    // assert on the always-nonzero wall side of the per-worker stats
    // and on the serial stage timers instead of the busy deltas.
    assert!(stats.batch.workers.iter().all(|w| w.wall_ns > 0));
    assert!(stats.plan_ns > 0);
    assert!(stats.critical_path_ns() >= stats.batch.critical_path_ns());
    // The report path returns the same responses as the plain one.
    assert_eq!(responses, server.serve_many(&[request]).unwrap());
}

#[test]
fn decode_report_accounts_sessions_to_workers() {
    let e = engine(4);
    let task = DecodeTask {
        spec: ModelConfig::bert_base().trace_spec().with_seq_len(24),
        prefill: 16,
        mode: None,
        threshold_spec: None,
    };
    let report = DecodeLoop::new(&e).run_threads(2, &[task; 6]).unwrap();
    assert_eq!(report.workers.len(), 2);
    assert_eq!(report.workers.iter().map(|w| w.items).sum::<usize>(), 6);
    for stats in &report.workers {
        assert_eq!(stats.items, 3, "6 sessions over 2 workers is 3 each");
    }
}

#[test]
fn seed_collision_rejection_guards_the_public_batch_entries() {
    // Regression: duplicate effective head ids silently shared pruner
    // seeds. The public batch entries now reject them up front.
    let e = engine(2);
    let heads = traces(2, 32, 42);
    let tagged: Vec<HeadRequest> = heads
        .iter()
        .map(|t| HeadRequest::from_trace(t).with_head_id(3))
        .collect();
    assert!(e.run_batch(&tagged).is_err());
    assert!(e.run_batch_threads(2, &tagged).is_err());
    assert!(e.run_batch_report(2, &tagged).is_err());
    // Mode sweeps through the model server intentionally reuse head
    // ids across flattened passes and must keep working.
    let server = ModelServer::new(engine(2));
    let template = ModelRequest::new(
        ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(1)
            .with_heads(2)
            .with_seq_len(32),
    )
    .with_seed(5);
    let out = server
        .serve_many(&[template.clone(), template])
        .expect("repeated templates share head ids by design");
    assert_eq!(out[0], out[1]);
}

/// Wall-clock speedup needs free cores; run with
/// `cargo test -p sprint-engine --test scaling -- --ignored` on a
/// multi-core host. Skips itself below 4 available cores.
#[test]
#[ignore = "wall-clock smoke test; needs a host with >= 4 free cores"]
fn four_workers_beat_one_on_wall_clock() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 4 {
        eprintln!("skipping: only {cores} available core(s); wall-clock scaling needs >= 4");
        return;
    }
    let e = engine(4);
    let heads = traces(64, 128, 43);
    let reqs: Vec<HeadRequest> = heads.iter().map(HeadRequest::from_trace).collect();
    // Warm the scratches so first-touch allocation is off the clock.
    e.run_batch_threads(1, &reqs).unwrap();
    let started = Instant::now();
    e.run_batch_threads(1, &reqs).unwrap();
    let one = started.elapsed();
    let started = Instant::now();
    e.run_batch_threads(4, &reqs).unwrap();
    let four = started.elapsed();
    // Generous margin: 4 workers must be at least ~1.7x faster.
    assert!(
        four.as_nanos() * 10 <= one.as_nanos() * 6,
        "4 workers took {four:?}, 1 worker took {one:?}: expected <= 0.6x"
    );
}
