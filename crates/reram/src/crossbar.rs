//! The MLC ReRAM crossbar array (Fig. 4, Eq. 2).
//!
//! Values are stored as signed integer codes on multi-level cells
//! (4 bits/cell per the robustness analysis the paper cites). Analog
//! vector-matrix multiplication drives the input vector on the
//! wordlines through DACs and sums column currents; the model applies
//! per-cell programming variation (fixed at write time) and additive
//! per-operation output noise from a [`NoiseModel`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{CellFault, FaultModel, NoiseModel, ProgramOutcome, ReramError};

/// A `rows × cols` ReRAM crossbar of signed MLC cells.
///
/// # Example
///
/// ```
/// use sprint_reram::{CrossbarArray, NoiseModel};
///
/// # fn main() -> Result<(), sprint_reram::ReramError> {
/// let mut xb = CrossbarArray::new(4, 2, 4, NoiseModel::ideal(), 1)?;
/// xb.program_column(0, &[1, 2, 3, 4])?;
/// xb.program_column(1, &[-1, 0, 1, 0])?;
/// let out = xb.vmm(&[1, 1, 1, 1])?;
/// assert_eq!(out, vec![10.0, 0.0]); // ideal analog equals digital
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cell_bits: u32,
    /// Programmed integer codes, column-major (`cols × rows`).
    codes: Vec<i32>,
    /// Effective analog weight of each cell (code × (1 + variation)),
    /// column-major.
    weights: Vec<f64>,
    noise: NoiseModel,
    rng: StdRngState,
    vmm_count: u64,
    /// Optional hard-fault injector. `None` leaves every path below
    /// bit-identical to the fault-unaware array.
    fault: Option<FaultModel>,
    /// Per-column program epoch (bumped on every write; transient
    /// faults re-roll per epoch). Maintained unconditionally but only
    /// observable through a fault model.
    epochs: Vec<u64>,
    /// Fault-overlaid analog weights, column-major. Empty unless a
    /// fault model is attached; refreshed per column on program,
    /// epoch advance and model attachment.
    faulted_weights: Vec<f64>,
}

/// Serializable wrapper holding the RNG seed/stream; the RNG itself is
/// reconstructed on deserialize.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StdRngState {
    seed: u64,
    #[serde(skip, default = "none_rng")]
    rng: Option<StdRng>,
}

// Referenced only from the `#[serde(default)]` attribute above, which
// the vendored no-op derive does not expand.
#[allow(dead_code)]
fn none_rng() -> Option<StdRng> {
    None
}

impl StdRngState {
    fn new(seed: u64) -> Self {
        StdRngState {
            seed,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        let seed = self.seed;
        self.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed))
    }
}

/// Shared geometry validation for [`CrossbarArray::new`] and
/// [`CrossbarArray::reset`].
fn validate_geometry(rows: usize, cols: usize, cell_bits: u32) -> Result<(), ReramError> {
    if rows == 0 {
        return Err(ReramError::InvalidGeometry {
            name: "rows",
            value: rows,
        });
    }
    if cols == 0 {
        return Err(ReramError::InvalidGeometry {
            name: "cols",
            value: cols,
        });
    }
    if !(1..=8).contains(&cell_bits) {
        return Err(ReramError::InvalidParameter(format!(
            "cell_bits {cell_bits} outside 1..=8"
        )));
    }
    Ok(())
}

/// Box-Muller standard normal (no `rand_distr` in the offline set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl CrossbarArray {
    /// Creates an unprogrammed crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidGeometry`] for zero dimensions and
    /// [`ReramError::InvalidParameter`] for unsupported cell widths
    /// (1–8 bits are modelled; the paper uses 4).
    pub fn new(
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<Self, ReramError> {
        validate_geometry(rows, cols, cell_bits)?;
        Ok(CrossbarArray {
            rows,
            cols,
            cell_bits,
            codes: vec![0; rows * cols],
            weights: vec![0.0; rows * cols],
            noise,
            rng: StdRngState::new(seed),
            vmm_count: 0,
            fault: None,
            epochs: vec![0; cols],
            faulted_weights: Vec::new(),
        })
    }

    /// Restores the array to its freshly-constructed (unprogrammed)
    /// state for a possibly different geometry, reusing the existing
    /// cell allocations. After a successful call the array is
    /// bit-identical in behaviour to
    /// `CrossbarArray::new(rows, cols, cell_bits, noise, seed)` — the
    /// RNG is reseeded, counters are zeroed, and every cell reads as
    /// code 0 — only the backing `Vec` capacities (invisible to the
    /// model) differ.
    ///
    /// # Errors
    ///
    /// Same validation as [`CrossbarArray::new`]; on error the array is
    /// left unchanged.
    pub fn reset(
        &mut self,
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<(), ReramError> {
        validate_geometry(rows, cols, cell_bits)?;
        self.rows = rows;
        self.cols = cols;
        self.cell_bits = cell_bits;
        self.codes.clear();
        self.codes.resize(rows * cols, 0);
        self.weights.clear();
        self.weights.resize(rows * cols, 0.0);
        self.noise = noise;
        self.rng = StdRngState::new(seed);
        self.vmm_count = 0;
        self.epochs.clear();
        self.epochs.resize(cols, 0);
        if self.fault.is_some() {
            self.faulted_weights.clear();
            self.faulted_weights.resize(rows * cols, 0.0);
            for c in 0..cols {
                self.refresh_faulted_column(c);
            }
        }
        Ok(())
    }

    /// Appends `added` unprogrammed bitline columns, preserving every
    /// already-programmed cell (codes *and* their effective analog
    /// weights, programming variation included).
    ///
    /// This is the incremental-growth entry of the decode path: keys
    /// are stored column-wise, so appending one row of the logical K
    /// matrix appends one crossbar column. The column-major cell layout
    /// makes the append a pure extension of the backing buffers — no
    /// existing cell moves, so the array keeps behaving exactly as it
    /// did for the old columns. The RNG state is left untouched; new
    /// columns draw their programming variation when
    /// [`CrossbarArray::program_column`] writes them.
    pub fn append_cols(&mut self, added: usize) {
        self.codes.resize(self.codes.len() + added * self.rows, 0);
        self.weights
            .resize(self.weights.len() + added * self.rows, 0.0);
        self.cols += added;
        self.epochs.resize(self.cols, 0);
        if self.fault.is_some() {
            self.faulted_weights.resize(self.weights.len(), 0.0);
            for c in self.cols - added..self.cols {
                self.refresh_faulted_column(c);
            }
        }
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bits per cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Largest storable signed code.
    pub fn code_max(&self) -> i32 {
        (1 << (self.cell_bits - 1)) - 1
    }

    /// Smallest storable signed code.
    pub fn code_min(&self) -> i32 {
        -(1 << (self.cell_bits - 1))
    }

    /// Number of analog vector-matrix operations performed so far
    /// (energy accounting hook).
    pub fn vmm_count(&self) -> u64 {
        self.vmm_count
    }

    /// Programs `values` into column `col`, one code per row.
    ///
    /// Programming applies the noise model's per-cell variation to the
    /// effective analog weight; the digital code is stored exactly
    /// (cells are verified at write time, variation shows at read).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column,
    /// [`ReramError::LengthMismatch`] for a wrong vector length, or
    /// [`ReramError::CodeOutOfRange`] for codes outside the cell range.
    pub fn program_column(&mut self, col: usize, values: &[i32]) -> Result<(), ReramError> {
        if col >= self.cols {
            return Err(ReramError::IndexOutOfRange {
                what: "column",
                index: col,
                bound: self.cols,
            });
        }
        if values.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "column vector",
                expected: self.rows,
                found: values.len(),
            });
        }
        for &v in values {
            if v < self.code_min() || v > self.code_max() {
                return Err(ReramError::CodeOutOfRange {
                    code: v,
                    bits: self.cell_bits,
                });
            }
        }
        let sigma = self.noise.programming_sigma();
        for (r, &v) in values.iter().enumerate() {
            let idx = col * self.rows + r;
            self.codes[idx] = v;
            let variation = if sigma > 0.0 {
                1.0 + sigma * normal(self.rng.rng())
            } else {
                1.0
            };
            self.weights[idx] = v as f64 * variation;
        }
        self.epochs[col] += 1;
        self.refresh_faulted_column(col);
        Ok(())
    }

    /// Returns the digitally read codes of column `col` — what the
    /// sense amplifiers regenerate, so an attached [`FaultModel`]
    /// shows here (a stuck-on cell reads the maximum code, a dead
    /// line reads 0). Without a fault model this is exactly the
    /// intended codes.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column.
    pub fn column_codes(&self, col: usize) -> Result<Vec<i32>, ReramError> {
        if col >= self.cols {
            return Err(ReramError::IndexOutOfRange {
                what: "column",
                index: col,
                bound: self.cols,
            });
        }
        let intended = &self.codes[col * self.rows..(col + 1) * self.rows];
        let Some(fault) = &self.fault else {
            return Ok(intended.to_vec());
        };
        let epoch = self.epochs[col];
        Ok(intended
            .iter()
            .enumerate()
            .map(
                |(r, &code)| match fault.cell_fault(self.rng.seed, r, col, epoch) {
                    CellFault::None => code,
                    CellFault::StuckOn => self.code_max(),
                    CellFault::StuckOff | CellFault::Transient => 0,
                    CellFault::Worn(f) => (code as f64 * f).round() as i32,
                },
            )
            .collect())
    }

    /// Returns the *intended* digital codes of column `col` — the
    /// write-verified shadow the controller holds, unaffected by any
    /// fault model. Scrub passes compare
    /// [`CrossbarArray::column_codes`] against this oracle.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column.
    pub fn intended_codes(&self, col: usize) -> Result<Vec<i32>, ReramError> {
        if col >= self.cols {
            return Err(ReramError::IndexOutOfRange {
                what: "column",
                index: col,
                bound: self.cols,
            });
        }
        Ok(self.codes[col * self.rows..(col + 1) * self.rows].to_vec())
    }

    /// Analog vector-matrix multiplication (Eq. 2): drives `input`
    /// codes on the wordlines and returns one analog output per column,
    /// in code units, including programming variation and output noise.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless
    /// `input.len() == rows`.
    pub fn vmm(&mut self, input: &[i32]) -> Result<Vec<f64>, ReramError> {
        if input.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "input vector",
                expected: self.rows,
                found: input.len(),
            });
        }
        self.vmm_count += 1;
        let full_scale = self.full_scale(input);
        let sigma = self.noise.relative_sigma() * full_scale;
        let effective = if self.fault.is_some() {
            &self.faulted_weights
        } else {
            &self.weights
        };
        let mut out = Vec::with_capacity(self.cols);
        for c in 0..self.cols {
            let weights = &effective[c * self.rows..(c + 1) * self.rows];
            let mut acc = 0.0f64;
            for (w, &x) in weights.iter().zip(input) {
                acc += w * x as f64;
            }
            if sigma > 0.0 {
                acc += sigma * normal(self.rng.rng());
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// The exact digital dot products the analog operation
    /// approximates (no variation, no noise). Reference for tests and
    /// for computing approximation error.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless
    /// `input.len() == rows`.
    pub fn exact_vmm(&self, input: &[i32]) -> Result<Vec<i64>, ReramError> {
        if input.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "input vector",
                expected: self.rows,
                found: input.len(),
            });
        }
        Ok((0..self.cols)
            .map(|c| {
                self.codes[c * self.rows..(c + 1) * self.rows]
                    .iter()
                    .zip(input)
                    .map(|(&w, &x)| w as i64 * x as i64)
                    .sum()
            })
            .collect())
    }

    /// Full-scale analog output for the given input drive: the worst
    /// case |Σ input_i · w_i| with every cell at the code extreme.
    /// Noise is proportional to this, matching how ADC-equivalent
    /// accuracy is specified against the converter's full range.
    pub fn full_scale(&self, input: &[i32]) -> f64 {
        let drive: f64 = input.iter().map(|&x| (x as f64).abs()).sum();
        drive * self.code_max() as f64
    }

    /// The construction seed, doubling as this array's stable identity
    /// for fault hashing and [`crate::FaultSite`] coordinates.
    pub fn identity(&self) -> u64 {
        self.rng.seed
    }

    /// The attached fault model, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Attaches (or detaches, with `None`) a hard-fault model.
    ///
    /// Attachment is retroactive and purely overlay-based: the fault
    /// pattern is a pure function of the model, this array's identity
    /// and the per-column program epochs, so attaching after
    /// programming reads identically to having programmed with the
    /// model attached. Detaching restores the fault-free behavior
    /// bit-for-bit (intended codes and pristine weights are never
    /// overwritten, and no RNG draw is ever spent on faults).
    pub fn set_fault_model(&mut self, fault: Option<FaultModel>) {
        self.fault = fault;
        if self.fault.is_some() {
            self.faulted_weights.clear();
            self.faulted_weights.resize(self.weights.len(), 0.0);
            for c in 0..self.cols {
                self.refresh_faulted_column(c);
            }
        } else {
            self.faulted_weights.clear();
        }
    }

    /// Recomputes the fault-overlaid analog weights of column `col`.
    fn refresh_faulted_column(&mut self, col: usize) {
        let Some(fault) = &self.fault else {
            return;
        };
        let epoch = self.epochs[col];
        let code_max = self.code_max() as f64;
        for r in 0..self.rows {
            let idx = col * self.rows + r;
            self.faulted_weights[idx] = match fault.cell_fault(self.rng.seed, r, col, epoch) {
                CellFault::None => self.weights[idx],
                CellFault::StuckOn => code_max,
                CellFault::StuckOff | CellFault::Transient => 0.0,
                CellFault::Worn(f) => self.weights[idx] * f,
            };
        }
    }

    /// Advances column `col`'s program epoch by `ticks` write cycles
    /// without rewriting it (the deterministic backoff of a verified
    /// program: waiting is counted in attempts, never wall-clock).
    fn advance_epoch(&mut self, col: usize, ticks: u64) {
        self.epochs[col] += ticks;
        self.refresh_faulted_column(col);
    }

    /// Write-verifies column `col`: reads the column back digitally
    /// and returns the rows whose readout disagrees with the intended
    /// codes. Empty without a fault model (writes are then verified by
    /// construction).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column.
    pub fn verify_column(&self, col: usize) -> Result<Vec<usize>, ReramError> {
        let read = self.column_codes(col)?;
        let intended = &self.codes[col * self.rows..(col + 1) * self.rows];
        Ok(read
            .iter()
            .zip(intended)
            .enumerate()
            .filter(|(_, (r, i))| r != i)
            .map(|(row, _)| row)
            .collect())
    }

    /// Programs column `col` with write-verify and bounded retry:
    /// program, read back, and while any cell reads wrong and attempts
    /// remain, back off `2^(attempt-1)` write-cycle ticks (advancing
    /// the column's program epoch, which re-rolls transient upsets)
    /// and reprogram. Permanent faults survive every retry and are
    /// reported in the outcome.
    ///
    /// # Errors
    ///
    /// Same validation as [`CrossbarArray::program_column`].
    pub fn program_column_verified(
        &mut self,
        col: usize,
        values: &[i32],
        max_attempts: u32,
    ) -> Result<ProgramOutcome, ReramError> {
        let max_attempts = max_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_ticks = 0u64;
        loop {
            self.program_column(col, values)?;
            attempts += 1;
            let faulty_rows = self.verify_column(col)?;
            if faulty_rows.is_empty() || attempts >= max_attempts {
                return Ok(ProgramOutcome {
                    attempts,
                    backoff_ticks,
                    faulty_rows,
                });
            }
            let ticks = 1u64 << (attempts - 1).min(16);
            backoff_ticks += ticks;
            self.advance_epoch(col, ticks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ideal_array(rows: usize, cols: usize) -> CrossbarArray {
        CrossbarArray::new(rows, cols, 4, NoiseModel::ideal(), 42).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(CrossbarArray::new(0, 4, 4, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 0, 4, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 4, 0, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 4, 9, NoiseModel::ideal(), 0).is_err());
    }

    #[test]
    fn four_bit_cells_store_minus8_to_7() {
        let xb = ideal_array(2, 2);
        assert_eq!(xb.code_min(), -8);
        assert_eq!(xb.code_max(), 7);
    }

    #[test]
    fn programming_validates_inputs() {
        let mut xb = ideal_array(3, 2);
        assert!(xb.program_column(2, &[0, 0, 0]).is_err());
        assert!(xb.program_column(0, &[0, 0]).is_err());
        assert!(xb.program_column(0, &[8, 0, 0]).is_err());
        assert!(xb.program_column(0, &[-9, 0, 0]).is_err());
        assert!(xb.program_column(0, &[-8, 7, 0]).is_ok());
    }

    #[test]
    fn ideal_vmm_equals_exact() {
        let mut xb = ideal_array(8, 3);
        xb.program_column(0, &[1, -2, 3, -4, 5, -6, 7, -8]).unwrap();
        xb.program_column(1, &[7; 8]).unwrap();
        xb.program_column(2, &[0; 8]).unwrap();
        let input = vec![1, 2, 3, 4, 5, 6, 7, -8];
        let analog = xb.vmm(&input).unwrap();
        let exact = xb.exact_vmm(&input).unwrap();
        for (a, e) in analog.iter().zip(&exact) {
            assert_eq!(*a, *e as f64, "ideal analog must be exact");
        }
        assert_eq!(xb.vmm_count(), 1);
    }

    #[test]
    fn column_codes_round_trip() {
        let mut xb = ideal_array(4, 2);
        let v = vec![3, -8, 7, 0];
        xb.program_column(1, &v).unwrap();
        assert_eq!(xb.column_codes(1).unwrap(), v);
        assert!(xb.column_codes(2).is_err());
    }

    #[test]
    fn vmm_validates_input_length() {
        let mut xb = ideal_array(4, 2);
        assert!(xb.vmm(&[1, 2]).is_err());
        assert!(xb.exact_vmm(&[1, 2]).is_err());
    }

    #[test]
    fn noisy_vmm_stays_within_expected_band() {
        let noise = NoiseModel::equivalent_bits(5).unwrap();
        let mut xb = CrossbarArray::new(64, 16, 4, noise, 7).unwrap();
        for c in 0..16 {
            let col: Vec<i32> = (0..64).map(|r| ((r + c) % 15) as i32 - 7).collect();
            xb.program_column(c, &col).unwrap();
        }
        let input: Vec<i32> = (0..64).map(|r| (r % 15) - 7).collect();
        let exact = xb.exact_vmm(&input).unwrap();
        let fs = xb.full_scale(&input);
        // Mean over many noisy reads converges to near the exact value
        // (programming variation adds a static offset of ~1%).
        let reps = 200;
        let mut mean = [0.0f64; 16];
        for _ in 0..reps {
            let out = xb.vmm(&input).unwrap();
            for (m, o) in mean.iter_mut().zip(&out) {
                *m += o / reps as f64;
            }
        }
        for (c, (&m, &e)) in mean.iter().zip(&exact).enumerate() {
            let tol = 0.04 * fs.max(1.0);
            assert!(
                (m - e as f64).abs() < tol,
                "col {c}: mean {m} vs exact {e} (tol {tol})"
            );
        }
    }

    #[test]
    fn noise_scale_tracks_equivalent_bits() {
        // More equivalent bits -> tighter spread around exact.
        let spread = |bits: u32| -> f64 {
            // No programming variation for this test.
            let nm = NoiseModel::from_sigmas(
                NoiseModel::equivalent_bits(bits).unwrap().relative_sigma(),
                0.0,
            )
            .unwrap();
            let mut xb = CrossbarArray::new(64, 1, 4, nm, 3).unwrap();
            xb.program_column(0, &[5; 64]).unwrap();
            let input = vec![5; 64];
            let exact = xb.exact_vmm(&input).unwrap()[0] as f64;
            let mut sq = 0.0;
            let n = 300;
            for _ in 0..n {
                let o = xb.vmm(&input).unwrap()[0];
                sq += (o - exact) * (o - exact);
            }
            (sq / n as f64).sqrt()
        };
        let s3 = spread(3);
        let s6 = spread(6);
        assert!(s3 > 4.0 * s6, "3-bit spread {s3} vs 6-bit {s6}");
    }

    #[test]
    fn append_cols_preserves_programmed_cells() {
        let mut xb = ideal_array(4, 2);
        xb.program_column(0, &[1, -2, 3, -4]).unwrap();
        xb.program_column(1, &[7, 0, -8, 2]).unwrap();
        let before = xb.vmm(&[1, 1, 1, 1]).unwrap();
        xb.append_cols(2);
        assert_eq!(xb.cols(), 4);
        xb.program_column(2, &[0, 0, 1, 0]).unwrap();
        let after = xb.vmm(&[1, 1, 1, 1]).unwrap();
        assert_eq!(&after[..2], &before[..], "old columns untouched");
        assert_eq!(after[2], 1.0);
        assert_eq!(after[3], 0.0, "unprogrammed appended column reads 0");
    }

    #[test]
    fn reset_is_bit_identical_to_fresh_construction() {
        let noise = NoiseModel::default();
        let program_and_run = |xb: &mut CrossbarArray| -> Vec<f64> {
            for c in 0..xb.cols() {
                let col: Vec<i32> = (0..xb.rows()).map(|r| ((r + c) % 15) as i32 - 7).collect();
                xb.program_column(c, &col).unwrap();
            }
            let input: Vec<i32> = (0..xb.rows()).map(|r| ((r % 15) as i32) - 7).collect();
            xb.vmm(&input).unwrap()
        };
        // Dirty an array with one geometry, then reset to another.
        let mut reused = CrossbarArray::new(16, 8, 4, noise, 1).unwrap();
        program_and_run(&mut reused);
        reused.reset(24, 5, 4, noise, 77).unwrap();
        let mut fresh = CrossbarArray::new(24, 5, 4, noise, 77).unwrap();
        assert_eq!(program_and_run(&mut reused), program_and_run(&mut fresh));
        assert_eq!(reused.vmm_count(), 1);
        // Invalid reset leaves the array untouched.
        assert!(reused.reset(0, 5, 4, noise, 1).is_err());
        assert_eq!(reused.rows(), 24);
    }

    #[test]
    fn attaching_a_quiet_fault_model_changes_nothing() {
        let noise = NoiseModel::default();
        let mut plain = CrossbarArray::new(16, 8, 4, noise, 5).unwrap();
        let mut faulted = CrossbarArray::new(16, 8, 4, noise, 5).unwrap();
        faulted.set_fault_model(Some(FaultModel::new(99)));
        let col: Vec<i32> = (0..16).map(|r| (r % 15) - 7).collect();
        for c in 0..8 {
            plain.program_column(c, &col).unwrap();
            faulted.program_column(c, &col).unwrap();
        }
        let input = vec![1; 16];
        assert_eq!(
            plain.vmm(&input).unwrap(),
            faulted.vmm(&input).unwrap(),
            "a quiet model must not perturb a single draw"
        );
        assert_eq!(
            plain.column_codes(0).unwrap(),
            faulted.column_codes(0).unwrap()
        );
        assert!(faulted.verify_column(0).unwrap().is_empty());
    }

    #[test]
    fn post_hoc_attachment_equals_program_time_attachment() {
        let fault = FaultModel::uniform(0.2, 17).unwrap();
        let noise = NoiseModel::default();
        let col: Vec<i32> = (0..16).map(|r| (r % 15) - 7).collect();
        let mut before = CrossbarArray::new(16, 8, 4, noise, 5).unwrap();
        before.set_fault_model(Some(fault));
        let mut after = CrossbarArray::new(16, 8, 4, noise, 5).unwrap();
        for c in 0..8 {
            before.program_column(c, &col).unwrap();
            after.program_column(c, &col).unwrap();
        }
        after.set_fault_model(Some(fault));
        let input = vec![1; 16];
        assert_eq!(before.vmm(&input).unwrap(), after.vmm(&input).unwrap());
        for c in 0..8 {
            assert_eq!(
                before.column_codes(c).unwrap(),
                after.column_codes(c).unwrap()
            );
        }
    }

    #[test]
    fn detaching_restores_fault_free_reads() {
        let mut xb = ideal_array(8, 2);
        let col = vec![1, 2, 3, 4, 5, 6, 7, -8];
        xb.program_column(0, &col).unwrap();
        xb.set_fault_model(Some(FaultModel::new(1).with_stuck_rates(0.5, 0.5).unwrap()));
        assert!(!xb.verify_column(0).unwrap().is_empty());
        xb.set_fault_model(None);
        assert_eq!(xb.column_codes(0).unwrap(), col);
        assert_eq!(xb.vmm(&[1; 8]).unwrap()[0], 20.0);
    }

    #[test]
    fn stuck_faults_show_in_reads_and_compute() {
        // Every cell stuck on: digital reads saturate at code_max and
        // the analog output is rows * code_max regardless of codes.
        let mut xb = ideal_array(4, 1);
        xb.set_fault_model(Some(FaultModel::new(3).with_stuck_rates(1.0, 0.0).unwrap()));
        xb.program_column(0, &[1, -2, 3, -4]).unwrap();
        assert_eq!(xb.column_codes(0).unwrap(), vec![7; 4]);
        assert_eq!(xb.vmm(&[1, 1, 1, 1]).unwrap()[0], 28.0);
        assert_eq!(
            xb.exact_vmm(&[1, 1, 1, 1]).unwrap()[0],
            -2,
            "the digital oracle stays on intended codes"
        );
        assert_eq!(xb.verify_column(0).unwrap().len(), 4);
    }

    #[test]
    fn verified_program_retries_clear_transients_but_not_stuck_cells() {
        // Transient-only model: a high upset rate almost surely faults
        // some cell on the first try; bounded retries re-roll the epoch
        // until the write takes.
        let fault = FaultModel::new(11).with_transient_rate(0.15).unwrap();
        let mut xb = CrossbarArray::new(16, 1, 4, NoiseModel::ideal(), 13).unwrap();
        xb.set_fault_model(Some(fault));
        let col: Vec<i32> = (0..16).map(|r| (r % 15) - 7).collect();
        let outcome = xb.program_column_verified(0, &col, 64).unwrap();
        assert!(outcome.verified(), "transients must eventually clear");
        assert!(outcome.attempts > 1, "first write should have upset");
        assert!(outcome.backoff_ticks > 0);
        // Stuck-at faults never clear, whatever the retry budget.
        let mut stuck = CrossbarArray::new(8, 1, 4, NoiseModel::ideal(), 13).unwrap();
        stuck.set_fault_model(Some(FaultModel::new(2).with_stuck_rates(0.0, 1.0).unwrap()));
        let outcome = stuck
            .program_column_verified(0, &[1, 2, 3, 4, 5, 6, 7, -8], 4)
            .unwrap();
        assert_eq!(outcome.attempts, 4);
        assert_eq!(outcome.faulty_rows.len(), 8);
        assert_eq!(outcome.backoff_ticks, 1 + 2 + 4, "2^(attempt-1) ticks");
    }

    #[test]
    fn sub_lsb_wear_passes_verify_but_perturbs_analog() {
        // 10% drift on a code of 2 rounds back to 2 digitally but
        // shrinks the analog weight.
        let mut xb = ideal_array(4, 1);
        xb.set_fault_model(Some(FaultModel::new(5).with_wear(1.0, 0.1).unwrap()));
        xb.program_column(0, &[2, 2, 2, 2]).unwrap();
        assert!(xb.verify_column(0).unwrap().is_empty(), "sub-LSB drift");
        let analog = xb.vmm(&[1, 1, 1, 1]).unwrap()[0];
        assert!(analog < 8.0, "worn cells must read below {analog}");
        assert!(analog > 8.0 * 0.9 * 0.9, "drift bounded at 10%");
    }

    proptest! {
        #[test]
        fn prop_ideal_vmm_matches_naive(
            rows in 1usize..32,
            cols in 1usize..8,
            seed in 0u64..100,
        ) {
            let mut xb = CrossbarArray::new(rows, cols, 4, NoiseModel::ideal(), seed).unwrap();
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
            let mut next_code = || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                ((state % 16) as i32) - 8
            };
            for c in 0..cols {
                let col: Vec<i32> = (0..rows).map(|_| next_code()).collect();
                xb.program_column(c, &col).unwrap();
            }
            let input: Vec<i32> = (0..rows).map(|_| next_code()).collect();
            let analog = xb.vmm(&input).unwrap();
            let exact = xb.exact_vmm(&input).unwrap();
            for (a, e) in analog.iter().zip(&exact) {
                prop_assert_eq!(*a, *e as f64);
            }
        }
    }
}
