//! The MLC ReRAM crossbar array (Fig. 4, Eq. 2).
//!
//! Values are stored as signed integer codes on multi-level cells
//! (4 bits/cell per the robustness analysis the paper cites). Analog
//! vector-matrix multiplication drives the input vector on the
//! wordlines through DACs and sums column currents; the model applies
//! per-cell programming variation (fixed at write time) and additive
//! per-operation output noise from a [`NoiseModel`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{NoiseModel, ReramError};

/// A `rows × cols` ReRAM crossbar of signed MLC cells.
///
/// # Example
///
/// ```
/// use sprint_reram::{CrossbarArray, NoiseModel};
///
/// # fn main() -> Result<(), sprint_reram::ReramError> {
/// let mut xb = CrossbarArray::new(4, 2, 4, NoiseModel::ideal(), 1)?;
/// xb.program_column(0, &[1, 2, 3, 4])?;
/// xb.program_column(1, &[-1, 0, 1, 0])?;
/// let out = xb.vmm(&[1, 1, 1, 1])?;
/// assert_eq!(out, vec![10.0, 0.0]); // ideal analog equals digital
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cell_bits: u32,
    /// Programmed integer codes, column-major (`cols × rows`).
    codes: Vec<i32>,
    /// Effective analog weight of each cell (code × (1 + variation)),
    /// column-major.
    weights: Vec<f64>,
    noise: NoiseModel,
    rng: StdRngState,
    vmm_count: u64,
}

/// Serializable wrapper holding the RNG seed/stream; the RNG itself is
/// reconstructed on deserialize.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StdRngState {
    seed: u64,
    #[serde(skip, default = "none_rng")]
    rng: Option<StdRng>,
}

// Referenced only from the `#[serde(default)]` attribute above, which
// the vendored no-op derive does not expand.
#[allow(dead_code)]
fn none_rng() -> Option<StdRng> {
    None
}

impl StdRngState {
    fn new(seed: u64) -> Self {
        StdRngState {
            seed,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        let seed = self.seed;
        self.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed))
    }
}

/// Shared geometry validation for [`CrossbarArray::new`] and
/// [`CrossbarArray::reset`].
fn validate_geometry(rows: usize, cols: usize, cell_bits: u32) -> Result<(), ReramError> {
    if rows == 0 {
        return Err(ReramError::InvalidGeometry {
            name: "rows",
            value: rows,
        });
    }
    if cols == 0 {
        return Err(ReramError::InvalidGeometry {
            name: "cols",
            value: cols,
        });
    }
    if !(1..=8).contains(&cell_bits) {
        return Err(ReramError::InvalidParameter(format!(
            "cell_bits {cell_bits} outside 1..=8"
        )));
    }
    Ok(())
}

/// Box-Muller standard normal (no `rand_distr` in the offline set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl CrossbarArray {
    /// Creates an unprogrammed crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidGeometry`] for zero dimensions and
    /// [`ReramError::InvalidParameter`] for unsupported cell widths
    /// (1–8 bits are modelled; the paper uses 4).
    pub fn new(
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<Self, ReramError> {
        validate_geometry(rows, cols, cell_bits)?;
        Ok(CrossbarArray {
            rows,
            cols,
            cell_bits,
            codes: vec![0; rows * cols],
            weights: vec![0.0; rows * cols],
            noise,
            rng: StdRngState::new(seed),
            vmm_count: 0,
        })
    }

    /// Restores the array to its freshly-constructed (unprogrammed)
    /// state for a possibly different geometry, reusing the existing
    /// cell allocations. After a successful call the array is
    /// bit-identical in behaviour to
    /// `CrossbarArray::new(rows, cols, cell_bits, noise, seed)` — the
    /// RNG is reseeded, counters are zeroed, and every cell reads as
    /// code 0 — only the backing `Vec` capacities (invisible to the
    /// model) differ.
    ///
    /// # Errors
    ///
    /// Same validation as [`CrossbarArray::new`]; on error the array is
    /// left unchanged.
    pub fn reset(
        &mut self,
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<(), ReramError> {
        validate_geometry(rows, cols, cell_bits)?;
        self.rows = rows;
        self.cols = cols;
        self.cell_bits = cell_bits;
        self.codes.clear();
        self.codes.resize(rows * cols, 0);
        self.weights.clear();
        self.weights.resize(rows * cols, 0.0);
        self.noise = noise;
        self.rng = StdRngState::new(seed);
        self.vmm_count = 0;
        Ok(())
    }

    /// Appends `added` unprogrammed bitline columns, preserving every
    /// already-programmed cell (codes *and* their effective analog
    /// weights, programming variation included).
    ///
    /// This is the incremental-growth entry of the decode path: keys
    /// are stored column-wise, so appending one row of the logical K
    /// matrix appends one crossbar column. The column-major cell layout
    /// makes the append a pure extension of the backing buffers — no
    /// existing cell moves, so the array keeps behaving exactly as it
    /// did for the old columns. The RNG state is left untouched; new
    /// columns draw their programming variation when
    /// [`CrossbarArray::program_column`] writes them.
    pub fn append_cols(&mut self, added: usize) {
        self.codes.resize(self.codes.len() + added * self.rows, 0);
        self.weights
            .resize(self.weights.len() + added * self.rows, 0.0);
        self.cols += added;
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bits per cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Largest storable signed code.
    pub fn code_max(&self) -> i32 {
        (1 << (self.cell_bits - 1)) - 1
    }

    /// Smallest storable signed code.
    pub fn code_min(&self) -> i32 {
        -(1 << (self.cell_bits - 1))
    }

    /// Number of analog vector-matrix operations performed so far
    /// (energy accounting hook).
    pub fn vmm_count(&self) -> u64 {
        self.vmm_count
    }

    /// Programs `values` into column `col`, one code per row.
    ///
    /// Programming applies the noise model's per-cell variation to the
    /// effective analog weight; the digital code is stored exactly
    /// (cells are verified at write time, variation shows at read).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column,
    /// [`ReramError::LengthMismatch`] for a wrong vector length, or
    /// [`ReramError::CodeOutOfRange`] for codes outside the cell range.
    pub fn program_column(&mut self, col: usize, values: &[i32]) -> Result<(), ReramError> {
        if col >= self.cols {
            return Err(ReramError::IndexOutOfRange {
                what: "column",
                index: col,
                bound: self.cols,
            });
        }
        if values.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "column vector",
                expected: self.rows,
                found: values.len(),
            });
        }
        for &v in values {
            if v < self.code_min() || v > self.code_max() {
                return Err(ReramError::CodeOutOfRange {
                    code: v,
                    bits: self.cell_bits,
                });
            }
        }
        let sigma = self.noise.programming_sigma();
        for (r, &v) in values.iter().enumerate() {
            let idx = col * self.rows + r;
            self.codes[idx] = v;
            let variation = if sigma > 0.0 {
                1.0 + sigma * normal(self.rng.rng())
            } else {
                1.0
            };
            self.weights[idx] = v as f64 * variation;
        }
        Ok(())
    }

    /// Returns the digitally stored codes of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad column.
    pub fn column_codes(&self, col: usize) -> Result<Vec<i32>, ReramError> {
        if col >= self.cols {
            return Err(ReramError::IndexOutOfRange {
                what: "column",
                index: col,
                bound: self.cols,
            });
        }
        Ok(self.codes[col * self.rows..(col + 1) * self.rows].to_vec())
    }

    /// Analog vector-matrix multiplication (Eq. 2): drives `input`
    /// codes on the wordlines and returns one analog output per column,
    /// in code units, including programming variation and output noise.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless
    /// `input.len() == rows`.
    pub fn vmm(&mut self, input: &[i32]) -> Result<Vec<f64>, ReramError> {
        if input.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "input vector",
                expected: self.rows,
                found: input.len(),
            });
        }
        self.vmm_count += 1;
        let full_scale = self.full_scale(input);
        let sigma = self.noise.relative_sigma() * full_scale;
        let mut out = Vec::with_capacity(self.cols);
        for c in 0..self.cols {
            let weights = &self.weights[c * self.rows..(c + 1) * self.rows];
            let mut acc = 0.0f64;
            for (w, &x) in weights.iter().zip(input) {
                acc += w * x as f64;
            }
            if sigma > 0.0 {
                acc += sigma * normal(self.rng.rng());
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// The exact digital dot products the analog operation
    /// approximates (no variation, no noise). Reference for tests and
    /// for computing approximation error.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless
    /// `input.len() == rows`.
    pub fn exact_vmm(&self, input: &[i32]) -> Result<Vec<i64>, ReramError> {
        if input.len() != self.rows {
            return Err(ReramError::LengthMismatch {
                what: "input vector",
                expected: self.rows,
                found: input.len(),
            });
        }
        Ok((0..self.cols)
            .map(|c| {
                self.codes[c * self.rows..(c + 1) * self.rows]
                    .iter()
                    .zip(input)
                    .map(|(&w, &x)| w as i64 * x as i64)
                    .sum()
            })
            .collect())
    }

    /// Full-scale analog output for the given input drive: the worst
    /// case |Σ input_i · w_i| with every cell at the code extreme.
    /// Noise is proportional to this, matching how ADC-equivalent
    /// accuracy is specified against the converter's full range.
    pub fn full_scale(&self, input: &[i32]) -> f64 {
        let drive: f64 = input.iter().map(|&x| (x as f64).abs()).sum();
        drive * self.code_max() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ideal_array(rows: usize, cols: usize) -> CrossbarArray {
        CrossbarArray::new(rows, cols, 4, NoiseModel::ideal(), 42).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(CrossbarArray::new(0, 4, 4, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 0, 4, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 4, 0, NoiseModel::ideal(), 0).is_err());
        assert!(CrossbarArray::new(4, 4, 9, NoiseModel::ideal(), 0).is_err());
    }

    #[test]
    fn four_bit_cells_store_minus8_to_7() {
        let xb = ideal_array(2, 2);
        assert_eq!(xb.code_min(), -8);
        assert_eq!(xb.code_max(), 7);
    }

    #[test]
    fn programming_validates_inputs() {
        let mut xb = ideal_array(3, 2);
        assert!(xb.program_column(2, &[0, 0, 0]).is_err());
        assert!(xb.program_column(0, &[0, 0]).is_err());
        assert!(xb.program_column(0, &[8, 0, 0]).is_err());
        assert!(xb.program_column(0, &[-9, 0, 0]).is_err());
        assert!(xb.program_column(0, &[-8, 7, 0]).is_ok());
    }

    #[test]
    fn ideal_vmm_equals_exact() {
        let mut xb = ideal_array(8, 3);
        xb.program_column(0, &[1, -2, 3, -4, 5, -6, 7, -8]).unwrap();
        xb.program_column(1, &[7; 8]).unwrap();
        xb.program_column(2, &[0; 8]).unwrap();
        let input = vec![1, 2, 3, 4, 5, 6, 7, -8];
        let analog = xb.vmm(&input).unwrap();
        let exact = xb.exact_vmm(&input).unwrap();
        for (a, e) in analog.iter().zip(&exact) {
            assert_eq!(*a, *e as f64, "ideal analog must be exact");
        }
        assert_eq!(xb.vmm_count(), 1);
    }

    #[test]
    fn column_codes_round_trip() {
        let mut xb = ideal_array(4, 2);
        let v = vec![3, -8, 7, 0];
        xb.program_column(1, &v).unwrap();
        assert_eq!(xb.column_codes(1).unwrap(), v);
        assert!(xb.column_codes(2).is_err());
    }

    #[test]
    fn vmm_validates_input_length() {
        let mut xb = ideal_array(4, 2);
        assert!(xb.vmm(&[1, 2]).is_err());
        assert!(xb.exact_vmm(&[1, 2]).is_err());
    }

    #[test]
    fn noisy_vmm_stays_within_expected_band() {
        let noise = NoiseModel::equivalent_bits(5).unwrap();
        let mut xb = CrossbarArray::new(64, 16, 4, noise, 7).unwrap();
        for c in 0..16 {
            let col: Vec<i32> = (0..64).map(|r| ((r + c) % 15) as i32 - 7).collect();
            xb.program_column(c, &col).unwrap();
        }
        let input: Vec<i32> = (0..64).map(|r| (r % 15) - 7).collect();
        let exact = xb.exact_vmm(&input).unwrap();
        let fs = xb.full_scale(&input);
        // Mean over many noisy reads converges to near the exact value
        // (programming variation adds a static offset of ~1%).
        let reps = 200;
        let mut mean = [0.0f64; 16];
        for _ in 0..reps {
            let out = xb.vmm(&input).unwrap();
            for (m, o) in mean.iter_mut().zip(&out) {
                *m += o / reps as f64;
            }
        }
        for (c, (&m, &e)) in mean.iter().zip(&exact).enumerate() {
            let tol = 0.04 * fs.max(1.0);
            assert!(
                (m - e as f64).abs() < tol,
                "col {c}: mean {m} vs exact {e} (tol {tol})"
            );
        }
    }

    #[test]
    fn noise_scale_tracks_equivalent_bits() {
        // More equivalent bits -> tighter spread around exact.
        let spread = |bits: u32| -> f64 {
            // No programming variation for this test.
            let nm = NoiseModel::from_sigmas(
                NoiseModel::equivalent_bits(bits).unwrap().relative_sigma(),
                0.0,
            )
            .unwrap();
            let mut xb = CrossbarArray::new(64, 1, 4, nm, 3).unwrap();
            xb.program_column(0, &[5; 64]).unwrap();
            let input = vec![5; 64];
            let exact = xb.exact_vmm(&input).unwrap()[0] as f64;
            let mut sq = 0.0;
            let n = 300;
            for _ in 0..n {
                let o = xb.vmm(&input).unwrap()[0];
                sq += (o - exact) * (o - exact);
            }
            (sq / n as f64).sqrt()
        };
        let s3 = spread(3);
        let s6 = spread(6);
        assert!(s3 > 4.0 * s6, "3-bit spread {s3} vs 6-bit {s6}");
    }

    #[test]
    fn append_cols_preserves_programmed_cells() {
        let mut xb = ideal_array(4, 2);
        xb.program_column(0, &[1, -2, 3, -4]).unwrap();
        xb.program_column(1, &[7, 0, -8, 2]).unwrap();
        let before = xb.vmm(&[1, 1, 1, 1]).unwrap();
        xb.append_cols(2);
        assert_eq!(xb.cols(), 4);
        xb.program_column(2, &[0, 0, 1, 0]).unwrap();
        let after = xb.vmm(&[1, 1, 1, 1]).unwrap();
        assert_eq!(&after[..2], &before[..], "old columns untouched");
        assert_eq!(after[2], 1.0);
        assert_eq!(after[3], 0.0, "unprogrammed appended column reads 0");
    }

    #[test]
    fn reset_is_bit_identical_to_fresh_construction() {
        let noise = NoiseModel::default();
        let program_and_run = |xb: &mut CrossbarArray| -> Vec<f64> {
            for c in 0..xb.cols() {
                let col: Vec<i32> = (0..xb.rows()).map(|r| ((r + c) % 15) as i32 - 7).collect();
                xb.program_column(c, &col).unwrap();
            }
            let input: Vec<i32> = (0..xb.rows()).map(|r| ((r % 15) as i32) - 7).collect();
            xb.vmm(&input).unwrap()
        };
        // Dirty an array with one geometry, then reset to another.
        let mut reused = CrossbarArray::new(16, 8, 4, noise, 1).unwrap();
        program_and_run(&mut reused);
        reused.reset(24, 5, 4, noise, 77).unwrap();
        let mut fresh = CrossbarArray::new(24, 5, 4, noise, 77).unwrap();
        assert_eq!(program_and_run(&mut reused), program_and_run(&mut fresh));
        assert_eq!(reused.vmm_count(), 1);
        // Invalid reset leaves the array untouched.
        assert!(reused.reset(0, 5, 4, noise, 1).is_err());
        assert_eq!(reused.rows(), 24);
    }

    proptest! {
        #[test]
        fn prop_ideal_vmm_matches_naive(
            rows in 1usize..32,
            cols in 1usize..8,
            seed in 0u64..100,
        ) {
            let mut xb = CrossbarArray::new(rows, cols, 4, NoiseModel::ideal(), seed).unwrap();
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
            let mut next_code = || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                ((state % 16) as i32) - 8
            };
            for c in 0..cols {
                let col: Vec<i32> = (0..rows).map(|_| next_code()).collect();
                xb.program_column(c, &col).unwrap();
            }
            let input: Vec<i32> = (0..rows).map(|_| next_code()).collect();
            let analog = xb.vmm(&input).unwrap();
            let exact = xb.exact_vmm(&input).unwrap();
            for (a, e) in analog.iter().zip(&exact) {
                prop_assert_eq!(*a, *e as f64);
            }
        }
    }
}
