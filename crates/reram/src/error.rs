//! The crate error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the ReRAM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReramError {
    /// An array was configured with an invalid geometry.
    InvalidGeometry {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
    },
    /// A vector length does not match the array geometry.
    LengthMismatch {
        /// What was being accessed.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// A column or row index is out of range.
    IndexOutOfRange {
        /// What index.
        what: &'static str,
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
    /// A code does not fit the cell's bit width.
    CodeOutOfRange {
        /// The code value.
        code: i32,
        /// Cell bit width.
        bits: u32,
    },
    /// Invalid model parameter (noise sigma, bit width, margin...).
    InvalidParameter(String),
    /// A program failed write-verify at a specific cell: the column
    /// could not be brought to its intended codes within the retry
    /// budget. Carries structured coordinates (crossbar identity, row,
    /// column) so recovery policy above the substrate can act on them
    /// without string parsing.
    ProgramFault {
        /// Construction seed of the crossbar holding the cell.
        crossbar: u64,
        /// Wordline (row) index of the first unverifiable cell.
        row: usize,
        /// Bitline (column) index of the unverifiable column.
        col: usize,
    },
}

impl fmt::Display for ReramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReramError::InvalidGeometry { name, value } => {
                write!(f, "invalid array geometry: {name} = {value}")
            }
            ReramError::LengthMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} has length {found}, expected {expected}"),
            ReramError::IndexOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            ReramError::CodeOutOfRange { code, bits } => {
                write!(f, "code {code} does not fit a signed {bits}-bit cell")
            }
            ReramError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ReramError::ProgramFault { crossbar, row, col } => write!(
                f,
                "program fault: cell ({row}, {col}) of crossbar {crossbar:#x} failed write-verify"
            ),
        }
    }
}

impl Error for ReramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ReramError::CodeOutOfRange { code: 9, bits: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4-bit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ReramError>();
    }

    #[test]
    fn program_fault_carries_structured_coordinates() {
        let e = ReramError::ProgramFault {
            crossbar: 0xbeef,
            row: 3,
            col: 17,
        };
        // The coordinates are matchable fields, not a formatted string.
        match &e {
            ReramError::ProgramFault { crossbar, row, col } => {
                assert_eq!((*crossbar, *row, *col), (0xbeef, 3, 17));
            }
            _ => unreachable!(),
        }
        let text = e.to_string();
        assert!(
            text.contains("0xbeef") && text.contains("(3, 17)"),
            "{text}"
        );
    }
}
