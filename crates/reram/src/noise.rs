//! Analog noise model for ReRAM in-memory computing (§III-A ①).
//!
//! The paper lists thermal noise, temperature fluctuation, process
//! variation and coupling noise as the inaccuracies limiting in-memory
//! precision, and anchors the aggregate effect on the HP Labs
//! measurement that a 64-tap in-memory dot product delivers **5-bit
//! equivalent output accuracy** (Hu et al., DAC'16). This model folds
//! all per-operation effects into one additive Gaussian on the analog
//! output, parameterized as an equivalent ADC bit count, plus a static
//! per-cell programming variation applied by [`crate::CrossbarArray`].

use serde::{Deserialize, Serialize};

use crate::ReramError;

/// Aggregate analog error model.
///
/// `relative_sigma` is the standard deviation of the additive output
/// noise as a fraction of the full-scale analog output;
/// `programming_sigma` is the relative standard deviation of each
/// cell's stored conductance (fixed at programming time).
///
/// # Example
///
/// ```
/// use sprint_reram::NoiseModel;
///
/// let hp = NoiseModel::equivalent_bits(5).unwrap();
/// let ideal = NoiseModel::ideal();
/// assert!(hp.relative_sigma() > ideal.relative_sigma());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    relative_sigma: f64,
    programming_sigma: f64,
}

impl NoiseModel {
    /// A noiseless model: analog compute equals digital compute
    /// exactly. Used by equivalence tests and ideal-hardware ablations.
    pub fn ideal() -> Self {
        NoiseModel {
            relative_sigma: 0.0,
            programming_sigma: 0.0,
        }
    }

    /// A model whose aggregate output error matches a `bits`-bit ADC:
    /// `sigma = 1 / (2^bits * sqrt(12))` of full scale (the RMS of a
    /// uniform quantization error of that width).
    ///
    /// `NoiseModel::equivalent_bits(5)` reproduces the paper's HP-Labs
    /// anchor and is the default used in the §VII evaluation.
    ///
    /// The per-cell **programming variation defaults to 1 %**
    /// (`programming_sigma = 0.01`, the write-variation figure the
    /// paper's robustness analysis assumes). Override it explicitly
    /// with [`NoiseModel::with_programming_sigma`] when composing with
    /// other non-idealities (e.g. a [`crate::FaultModel`]), so the two
    /// error sources stay separately attributable.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] unless `1 <= bits <= 16`.
    pub fn equivalent_bits(bits: u32) -> Result<Self, ReramError> {
        if !(1..=16).contains(&bits) {
            return Err(ReramError::InvalidParameter(format!(
                "equivalent bits {bits} outside 1..=16"
            )));
        }
        Ok(NoiseModel {
            relative_sigma: 1.0 / ((1u64 << bits) as f64 * 12f64.sqrt()),
            programming_sigma: 0.01,
        })
    }

    /// Builds a model from explicit sigmas.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] if either sigma is
    /// negative or not finite.
    pub fn from_sigmas(relative_sigma: f64, programming_sigma: f64) -> Result<Self, ReramError> {
        for (name, v) in [
            ("relative_sigma", relative_sigma),
            ("programming_sigma", programming_sigma),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ReramError::InvalidParameter(format!(
                    "{name} = {v} must be finite and non-negative"
                )));
            }
        }
        Ok(NoiseModel {
            relative_sigma,
            programming_sigma,
        })
    }

    /// Returns this model with the per-cell programming variation
    /// replaced, keeping the output-noise sigma. Use this to override
    /// the 1 % default that [`NoiseModel::equivalent_bits`] bakes in:
    ///
    /// ```
    /// use sprint_reram::NoiseModel;
    ///
    /// let quiet_writes = NoiseModel::equivalent_bits(5)
    ///     .unwrap()
    ///     .with_programming_sigma(0.0)
    ///     .unwrap();
    /// assert_eq!(quiet_writes.programming_sigma(), 0.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] if the sigma is
    /// negative or not finite.
    pub fn with_programming_sigma(self, programming_sigma: f64) -> Result<Self, ReramError> {
        NoiseModel::from_sigmas(self.relative_sigma, programming_sigma)
    }

    /// Output noise standard deviation as a fraction of full scale.
    pub fn relative_sigma(&self) -> f64 {
        self.relative_sigma
    }

    /// Per-cell programming variation (relative).
    pub fn programming_sigma(&self) -> f64 {
        self.programming_sigma
    }

    /// Whether this model introduces no error at all.
    pub fn is_ideal(&self) -> bool {
        self.relative_sigma == 0.0 && self.programming_sigma == 0.0
    }

    /// A conservative bound (3σ) on the output error for a given full
    /// scale, used to size the thresholding safety margin.
    pub fn margin_bound(&self, full_scale: f64) -> f64 {
        3.0 * self.relative_sigma * full_scale
    }
}

impl Default for NoiseModel {
    /// The paper's evaluation setting: 5-bit-equivalent output
    /// accuracy.
    fn default() -> Self {
        NoiseModel::equivalent_bits(5).expect("5 is a valid bit count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_exact() {
        let m = NoiseModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.margin_bound(100.0), 0.0);
    }

    #[test]
    fn default_is_five_bit_equivalent() {
        let m = NoiseModel::default();
        let five = NoiseModel::equivalent_bits(5).unwrap();
        assert_eq!(m.relative_sigma(), five.relative_sigma());
    }

    #[test]
    fn sigma_halves_per_extra_bit() {
        let b4 = NoiseModel::equivalent_bits(4).unwrap();
        let b5 = NoiseModel::equivalent_bits(5).unwrap();
        assert!((b4.relative_sigma() / b5.relative_sigma() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn five_bit_sigma_matches_quantization_rms() {
        let m = NoiseModel::equivalent_bits(5).unwrap();
        // 1 / (32 * sqrt(12)) ≈ 0.009021.
        assert!((m.relative_sigma() - 0.009021).abs() < 1e-5);
    }

    #[test]
    fn parameter_validation() {
        assert!(NoiseModel::equivalent_bits(0).is_err());
        assert!(NoiseModel::equivalent_bits(17).is_err());
        assert!(NoiseModel::from_sigmas(-0.1, 0.0).is_err());
        assert!(NoiseModel::from_sigmas(0.0, f64::NAN).is_err());
        assert!(NoiseModel::from_sigmas(0.01, 0.02).is_ok());
    }

    #[test]
    fn equivalent_bits_defaults_one_percent_programming_sigma() {
        let m = NoiseModel::equivalent_bits(5).unwrap();
        assert_eq!(m.programming_sigma(), 0.01, "the documented default");
    }

    #[test]
    fn with_programming_sigma_overrides_only_that_knob() {
        let base = NoiseModel::equivalent_bits(5).unwrap();
        let overridden = base.with_programming_sigma(0.05).unwrap();
        assert_eq!(overridden.relative_sigma(), base.relative_sigma());
        assert_eq!(overridden.programming_sigma(), 0.05);
        assert!(base.with_programming_sigma(-0.01).is_err());
        assert!(base.with_programming_sigma(f64::INFINITY).is_err());
    }

    #[test]
    fn margin_bound_scales_with_full_scale() {
        let m = NoiseModel::from_sigmas(0.01, 0.0).unwrap();
        assert!((m.margin_bound(100.0) - 3.0).abs() < 1e-12);
        assert!((m.margin_bound(200.0) - 6.0).abs() < 1e-12);
    }
}
