//! The in-memory thresholding engine (§III-B "In-memory thresholding
//! dataflow").
//!
//! Key vectors live column-wise in transposable arrays, 4 MSBs per
//! element. To prune for a query: the memory controller ships the
//! query's MSB nibbles (CopyQ), a low-precision DAC drives them on the
//! wordlines, every column develops an analog dot product, analog
//! comparators check each against the threshold voltage, and a row of
//! 1-bit ADCs emits the binary pruning vector (ReadP). Scores land in
//! the analog domain only — no multi-bit ADC anywhere on this path.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use sprint_attention::{quantize_matrix, Matrix, PruneDecision, QuantParams};

/// The effective analog noise for a given MLC depth: cells denser than
/// the 4-bit design point halve their level spacing with every extra
/// bit, so both sigmas scale by `2^(cell_bits − 4)` beyond it.
fn effective_noise(noise: NoiseModel, cell_bits: u32) -> Result<NoiseModel, ReramError> {
    if cell_bits <= 4 {
        return Ok(noise);
    }
    let factor = 2f64.powi(cell_bits as i32 - 4);
    NoiseModel::from_sigmas(
        noise.relative_sigma() * factor,
        noise.programming_sigma() * factor,
    )
}

use crate::{
    FaultMap, FaultModel, FaultSite, NoiseModel, RepairOutcome, ReramError, TransposableArray,
};

/// Columns per transposable array (Table I: 64 × 128).
const ARRAY_COLS: usize = 128;
/// Wordlines per transposable array (Table I).
const ARRAY_ROWS: usize = 64;

/// How the analog score is compared against the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSpec {
    /// `Some(b)`: quantize the in-memory score to `b` bits before the
    /// comparison (Eq. 3's `Score_R^b`, the Fig. 5 sensitivity knob).
    /// `None`: pure analog comparison (SPRINT's actual design — the
    /// comparator sees the continuous analog value plus noise).
    pub score_bits: Option<u32>,
    /// Safety margin subtracted from the threshold, as a fraction of
    /// the analog full scale ("a modest negative margin on top of Th",
    /// §III-A). Positive values prune less and protect borderline keys.
    pub margin_fraction: f64,
}

impl Default for ThresholdSpec {
    /// The paper's design point: analog comparator, no extra margin.
    fn default() -> Self {
        ThresholdSpec {
            score_bits: None,
            margin_fraction: 0.0,
        }
    }
}

impl ThresholdSpec {
    /// Analog comparison with a 3σ noise margin for the given model —
    /// enough that noise alone almost never falsely prunes a key the
    /// digital threshold keeps.
    pub fn analog_with_noise_margin(noise: &NoiseModel) -> Self {
        ThresholdSpec {
            score_bits: None,
            margin_fraction: 3.0 * noise.relative_sigma(),
        }
    }

    /// Quantized-score comparison with `bits` bits (Fig. 5 study).
    pub fn quantized(bits: u32) -> Self {
        ThresholdSpec {
            score_bits: Some(bits),
            margin_fraction: 0.0,
        }
    }
}

/// Operation counters for energy accounting (§VII methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PruneHardwareStats {
    /// Analog in-memory vector-matrix operations (per array tile).
    pub in_memory_ops: u64,
    /// Individual analog comparator firings (one per key column).
    pub comparator_firings: u64,
    /// DAC wordline conversions (one per query element per row tile).
    pub dac_conversions: u64,
    /// Transposed reads of stored key vectors.
    pub transposed_reads: u64,
    /// Queries thresholded.
    pub queries_pruned: u64,
}

impl PruneHardwareStats {
    /// The per-field difference `self − earlier` (saturating), for
    /// per-step accounting over a long-lived pruner: snapshot the
    /// stats before an operation, subtract afterwards, and the delta
    /// equals what a freshly built pruner would have counted for that
    /// operation alone.
    pub fn delta_since(&self, earlier: &PruneHardwareStats) -> PruneHardwareStats {
        PruneHardwareStats {
            in_memory_ops: self.in_memory_ops.saturating_sub(earlier.in_memory_ops),
            comparator_firings: self
                .comparator_firings
                .saturating_sub(earlier.comparator_firings),
            dac_conversions: self.dac_conversions.saturating_sub(earlier.dac_conversions),
            transposed_reads: self
                .transposed_reads
                .saturating_sub(earlier.transposed_reads),
            queries_pruned: self.queries_pruned.saturating_sub(earlier.queries_pruned),
        }
    }
}

/// The outcome of in-memory thresholding for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneOutcome {
    /// The binary pruning vector (`true` = pruned), as shipped back to
    /// the memory controller by `ReadP`.
    pub decision: PruneDecision,
    /// The approximate scores the analog path produced, converted back
    /// to real score units. These are what "SPRINT w/o recompute"
    /// would feed the softmax (Fig. 9's third bar).
    pub approx_scores: Vec<f32>,
}

/// The complete in-memory pruning engine over one attention head's
/// key matrix.
///
/// # Example
///
/// ```
/// use sprint_attention::Matrix;
/// use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
///
/// # fn main() -> Result<(), sprint_reram::ReramError> {
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
/// let q = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
/// let mut pruner = InMemoryPruner::new(&q, &k, 1.0, NoiseModel::ideal(), 1)?;
/// let out = pruner.prune_query(q.row(0), 0.5, &ThresholdSpec::default())?;
/// assert!(out.decision.is_kept(0));
/// assert!(out.decision.is_pruned(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InMemoryPruner {
    /// `tiles[col_tile][row_tile]`, each a transposable array.
    tiles: Vec<Vec<TransposableArray>>,
    s: usize,
    d: usize,
    /// Bits stored per MLC cell (4 in the paper's design).
    cell_bits: u32,
    q_params: QuantParams,
    /// The 8-bit key quantizer the stored MSB codes were derived from.
    /// [`InMemoryPruner::extend`] appends new keys under these params
    /// while they still cover the history's range, and reprograms
    /// everything when a new key forces a recalibration.
    k_params: QuantParams,
    /// Running `max_abs` of the programmed key history (append-only:
    /// never shrinks), so `extend`'s params check folds only the new
    /// rows instead of rescanning the whole history.
    k_max_abs: f32,
    /// The score scaling (1/√d in the models), kept for recomputing
    /// `score_lsb` when either quantizer recalibrates.
    attention_scale: f32,
    /// The *base* (unscaled) noise model; the effective noise applied
    /// to tiles additionally scales with the MLC depth.
    noise: NoiseModel,
    /// The base seed every per-tile RNG seed derives from.
    seed: u64,
    /// Real score value of one MSB-code product unit:
    /// `(16·sq) · (16·sk) · attention_scale`.
    score_lsb: f64,
    /// Full-scale |score| in code units that the Fig. 5 score
    /// quantization is measured against: the provisioned comparator/
    /// ADC reference range, 4x the observed workload maximum (design
    /// margin for process, temperature and workload drift).
    full_scale_codes: f64,
    /// Optional hard-fault injector, stamped onto every tile (and onto
    /// tiles created later by [`InMemoryPruner::extend`]).
    fault: Option<FaultModel>,
    /// Keys remapped to verified fault-free spare columns: the memory
    /// controller routes their scores from the exact digital shadow
    /// instead of the faulty analog column.
    remapped: BTreeSet<usize>,
    stats: PruneHardwareStats,
}

impl InMemoryPruner {
    /// Builds the engine: quantizes `k` to 8 bits, stores each key's
    /// MSB nibbles in one transposable-array column, and calibrates
    /// the query quantizer from `q`'s dynamic range.
    ///
    /// `attention_scale` is the score scaling (1/√d in the models).
    /// Keys longer than one array's wordline count are split across
    /// row tiles whose currents are merged before comparison (§V
    /// "Scaling for embedding size").
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] if `q` and `k` disagree
    /// on the embedding size, or [`ReramError::InvalidParameter`] for
    /// a non-positive scale.
    pub fn new(
        q: &Matrix,
        k: &Matrix,
        attention_scale: f32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<Self, ReramError> {
        InMemoryPruner::with_cell_bits(q, k, attention_scale, noise, seed, 4)
    }

    /// Builds the engine with a non-default MLC depth (§III studies
    /// the bits-per-cell robustness/density trade-off; 4 is cited as
    /// the optimal balance).
    ///
    /// Cells denser than 4 bits grow *more* sensitive to circuit
    /// noise: the per-cell level spacing halves with every extra bit,
    /// so both the read-noise and programming-variation sigmas are
    /// scaled by `2^(cell_bits − 4)` beyond the 4-bit design point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InMemoryPruner::new`]; additionally
    /// `cell_bits` must be in `1..=8`.
    pub fn with_cell_bits(
        q: &Matrix,
        k: &Matrix,
        attention_scale: f32,
        noise: NoiseModel,
        seed: u64,
        cell_bits: u32,
    ) -> Result<Self, ReramError> {
        let unit_params = QuantParams::new(8, 1.0)
            .map_err(|e| ReramError::InvalidParameter(format!("query quantization: {e}")))?;
        let mut pruner = InMemoryPruner {
            tiles: Vec::new(),
            s: 0,
            d: 0,
            cell_bits,
            q_params: unit_params,
            k_params: unit_params,
            k_max_abs: 0.0,
            attention_scale: 1.0,
            noise,
            seed,
            score_lsb: 1.0,
            full_scale_codes: 1.0,
            fault: None,
            remapped: BTreeSet::new(),
            stats: PruneHardwareStats::default(),
        };
        pruner.reprogram_with_cell_bits(q, k, attention_scale, noise, seed, cell_bits)?;
        Ok(pruner)
    }

    /// Reprograms the engine in place for a new head, reusing the
    /// crossbar allocations (the [`crate::TransposableArray`] tiles are
    /// [reset](crate::TransposableArray::reset) and re-tiled rather than
    /// reallocated). After a successful call the pruner behaves
    /// bit-identically to a freshly constructed
    /// [`InMemoryPruner::new`] with the same arguments: the per-tile
    /// RNGs are reseeded, the quantizers recalibrated, and the hardware
    /// operation counters zeroed.
    ///
    /// This is the steady-state entry of the serving engine: one pruner
    /// per worker amortizes its tile allocations across every head it
    /// executes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InMemoryPruner::new`]. On error the pruner
    /// may hold partially reprogrammed state and must be successfully
    /// reprogrammed before further use.
    pub fn reprogram(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        attention_scale: f32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<(), ReramError> {
        self.reprogram_with_cell_bits(q, k, attention_scale, noise, seed, 4)
    }

    /// [`InMemoryPruner::reprogram`] with a non-default MLC depth (the
    /// in-place counterpart of [`InMemoryPruner::with_cell_bits`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`InMemoryPruner::with_cell_bits`]; on error
    /// the pruner must be reprogrammed before further use.
    pub fn reprogram_with_cell_bits(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        attention_scale: f32,
        noise: NoiseModel,
        seed: u64,
        cell_bits: u32,
    ) -> Result<(), ReramError> {
        if !(1..=8).contains(&cell_bits) {
            return Err(ReramError::InvalidParameter(format!(
                "cell_bits {cell_bits} outside 1..=8"
            )));
        }
        // Denser cells are harder to sense and program accurately;
        // validate the scaled model up front (matching the pre-split
        // error order) even though `program_keys` rederives it.
        effective_noise(noise, cell_bits)?;
        if q.cols() != k.cols() {
            return Err(ReramError::LengthMismatch {
                what: "query embedding",
                expected: k.cols(),
                found: q.cols(),
            });
        }
        if !(attention_scale.is_finite() && attention_scale > 0.0) {
            return Err(ReramError::InvalidParameter(format!(
                "attention scale {attention_scale} must be positive"
            )));
        }
        self.cell_bits = cell_bits;
        self.noise = noise;
        self.seed = seed;
        self.attention_scale = attention_scale;
        self.d = k.cols();
        self.program_keys(k)?;
        self.calibrate_query(q, true)
    }

    /// (Re)tiles and programs the full key matrix: quantizes `k` to
    /// 8 bits, resets or creates every tile with its derived seed, and
    /// stores each key's MSB codes in its column. Leaves the pruner's
    /// key-side state (`s`, `k_params`) consistent and zeroes the
    /// hardware counters — exactly what a fresh construction over `k`
    /// would hold.
    fn program_keys(&mut self, k: &Matrix) -> Result<(), ReramError> {
        let noise = effective_noise(self.noise, self.cell_bits)?;
        let s = k.rows();
        let d = self.d;
        let cell_bits = self.cell_bits;
        let qk = quantize_matrix(k, 8)
            .map_err(|e| ReramError::InvalidParameter(format!("key quantization: {e}")))?;

        let fault = self.fault;
        let col_tiles = s.div_ceil(ARRAY_COLS);
        let row_tiles = d.div_ceil(ARRAY_ROWS);
        self.tiles.truncate(col_tiles);
        for ct in 0..col_tiles {
            if ct == self.tiles.len() {
                self.tiles.push(Vec::with_capacity(row_tiles));
            }
            let row_arrays = &mut self.tiles[ct];
            row_arrays.truncate(row_tiles);
            for rt in 0..row_tiles {
                let rows = (d - rt * ARRAY_ROWS).min(ARRAY_ROWS);
                let cols = (s - ct * ARRAY_COLS).min(ARRAY_COLS);
                let tile_seed = tile_seed(self.seed, ct, rt);
                if rt == row_arrays.len() {
                    row_arrays.push(TransposableArray::with_cell_bits(
                        rows, cols, cell_bits, noise, tile_seed,
                    )?);
                } else {
                    row_arrays[rt].reset(rows, cols, cell_bits, noise, tile_seed)?;
                }
                row_arrays[rt].set_fault_model(fault);
            }
        }

        // Program every key's MSB nibbles.
        for j in 0..s {
            let ct = j / ARRAY_COLS;
            let slot = j % ARRAY_COLS;
            for (rt, arr) in self.tiles[ct].iter_mut().enumerate() {
                let base = rt * ARRAY_ROWS;
                let shift = 8 - cell_bits;
                let codes: Vec<i32> = (0..arr.rows())
                    .map(|r| round_msb_bits(qk.code(j, base + r), shift, cell_bits))
                    .collect();
                arr.store_key(slot, &codes)?;
            }
        }

        self.s = s;
        self.k_params = qk.params();
        self.k_max_abs = k.max_abs();
        // A full reprogram routes every key back to its own column, so
        // any earlier spare-column remap is stale.
        self.remapped.clear();
        self.stats = PruneHardwareStats::default();
        Ok(())
    }

    /// Recalibrates the query side: the 8-bit query quantizer (the
    /// per-query DAC reference) is set to `q`'s dynamic range and the
    /// score LSB rederived from both quantizer steps.
    ///
    /// With `with_full_scale`, additionally recalibrates the
    /// provisioned comparator/ADC full scale by sampling up to 128
    /// query rows — an `O(s·d)` pass that only affects quantized-score
    /// comparison ([`ThresholdSpec::quantized`]); pure analog
    /// comparison never reads the full scale, so decode sessions skip
    /// it unless their comparator needs it.
    ///
    /// Fresh construction performs exactly this calibration, so a
    /// long-lived pruner that calls [`InMemoryPruner::extend`] followed
    /// by `calibrate_query(step_q, ...)` matches a pruner freshly built
    /// from the same grown history and step query.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless `q.cols()` equals
    /// the embedding size.
    pub fn calibrate_query(&mut self, q: &Matrix, with_full_scale: bool) -> Result<(), ReramError> {
        if q.cols() != self.d {
            return Err(ReramError::LengthMismatch {
                what: "query embedding",
                expected: self.d,
                found: q.cols(),
            });
        }
        let qq_params = QuantParams::for_matrix(8, q)
            .map_err(|e| ReramError::InvalidParameter(format!("query quantization: {e}")))?;
        let unit = 4f64.powi((8 - self.cell_bits) as i32);
        self.q_params = qq_params;
        self.score_lsb = unit
            * qq_params.step() as f64
            * self.k_params.step() as f64
            * self.attention_scale as f64;
        if !with_full_scale {
            return Ok(());
        }
        // Calibrate the analog full scale against the observed score
        // range: sample up to 128 query rows and take the largest
        // exact |code dot|.
        let sample = q.rows().min(128);
        let mut observed = 0.0f64;
        for i in 0..sample {
            let scores = self.exact_msb_scores(q.row(i))?;
            for sc in scores {
                observed = observed.max((sc as f64 / self.score_lsb).abs());
            }
        }
        // The comparator/ADC reference range is provisioned with 4x
        // headroom over the nominal workload (design-time margin for
        // process, temperature and workload drift). The Fig. 5 score
        // quantization is measured against this provisioned range,
        // which is why very low bit counts collapse accuracy.
        let floor = self.d as f64;
        self.full_scale_codes = (observed * 4.0).max(floor);
        Ok(())
    }

    /// Appends the new trailing rows of `k_full` (everything beyond
    /// the keys already stored) to the programmed crossbars — the
    /// incremental entry of the autoregressive decode path.
    ///
    /// `k_full` is the *entire* key history, whose first `keys()` rows
    /// must be the keys this pruner already stores. Two regimes:
    ///
    /// * **Append** (the common case): the new keys fit the calibrated
    ///   key-quantizer range, so their MSB codes are programmed into
    ///   fresh columns ([`TransposableArray::append_slots`]) without
    ///   touching any existing cell — `O(added · d)` work. Returns
    ///   `Ok(false)`.
    /// * **Recalibration** (rare — a new key exceeds every magnitude
    ///   seen so far): the shared 8-bit quantizer must re-cover the
    ///   grown range, which changes every stored code, so the whole
    ///   history is requantized and reprogrammed exactly as a fresh
    ///   construction would be. Returns `Ok(true)` and **zeroes the
    ///   hardware counters** (snapshot [`InMemoryPruner::stats`]
    ///   *after* `extend` when computing per-step deltas).
    ///
    /// In both regimes the stored codes afterwards equal those of a
    /// pruner freshly built over `k_full`, so — after a matching
    /// [`InMemoryPruner::calibrate_query`] — decode-step outcomes are
    /// bit-identical to a reprogram-from-scratch oracle under an ideal
    /// (noise-free) analog model. Under a noisy model the *draws*
    /// differ (a fresh pruner consumes its RNG streams in a different
    /// order), so equivalence is distributional, not bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] for a wrong embedding
    /// size and [`ReramError::InvalidParameter`] if `k_full` holds
    /// fewer rows than are already programmed.
    pub fn extend(&mut self, k_full: &Matrix) -> Result<bool, ReramError> {
        if k_full.cols() != self.d {
            return Err(ReramError::LengthMismatch {
                what: "key embedding",
                expected: self.d,
                found: k_full.cols(),
            });
        }
        if k_full.rows() < self.s {
            return Err(ReramError::InvalidParameter(format!(
                "key history shrank: {} stored, {} offered",
                self.s,
                k_full.rows()
            )));
        }
        if k_full.rows() == self.s {
            return Ok(false);
        }
        // Fold only the appended rows into the running maximum — the
        // same fold `Matrix::max_abs` performs, grouped over (stored
        // prefix, new rows), so the derived params are bit-identical
        // to a from-scratch calibration over `k_full` at O(added·d).
        let new_max = k_full.as_slice()[self.s * self.d..]
            .iter()
            .fold(self.k_max_abs, |m, v| m.max(v.abs()));
        let new_params = QuantParams::for_max_abs(8, new_max)
            .map_err(|e| ReramError::InvalidParameter(format!("key quantization: {e}")))?;
        if new_params != self.k_params {
            // A new key widened the range: every stored code changes,
            // so requantize and reprogram the full history (the same
            // tiling, seeds and programming order as a fresh build).
            self.program_keys(k_full)?;
            let unit = 4f64.powi((8 - self.cell_bits) as i32);
            self.score_lsb = unit
                * self.q_params.step() as f64
                * self.k_params.step() as f64
                * self.attention_scale as f64;
            return Ok(true);
        }
        self.k_max_abs = new_max;
        for j in self.s..k_full.rows() {
            self.append_key(j, k_full.row(j))?;
            self.s += 1;
        }
        Ok(false)
    }

    /// [`InMemoryPruner::extend`] for exactly one appended key row,
    /// with the full-history gather deferred behind a closure: the
    /// paged decode path hands each step's key row straight from page
    /// storage and only pays the `O(s·d)` `history()` gather on the
    /// rare recalibration (a key that widens the quantizer range,
    /// which requantizes and reprograms everything — exactly as
    /// [`InMemoryPruner::extend`] would).
    ///
    /// `history()` must return the entire grown key history, new row
    /// included. Returns `Ok(true)` on a recalibrating reprogram
    /// (hardware counters zeroed, as in `extend`), `Ok(false)` on the
    /// common `O(d)` single-column append. The stored codes afterwards
    /// equal a fresh build over the grown history in both regimes.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] for a wrong embedding
    /// size and [`ReramError::InvalidParameter`] if `history()`
    /// disagrees with the grown geometry on a recalibration.
    pub fn extend_row(
        &mut self,
        row: &[f32],
        history: impl FnOnce() -> Matrix,
    ) -> Result<bool, ReramError> {
        if row.len() != self.d {
            return Err(ReramError::LengthMismatch {
                what: "key embedding",
                expected: self.d,
                found: row.len(),
            });
        }
        let new_max = row.iter().fold(self.k_max_abs, |m, v| m.max(v.abs()));
        let new_params = QuantParams::for_max_abs(8, new_max)
            .map_err(|e| ReramError::InvalidParameter(format!("key quantization: {e}")))?;
        if new_params != self.k_params {
            let full = history();
            if full.cols() != self.d || full.rows() != self.s + 1 {
                return Err(ReramError::InvalidParameter(format!(
                    "key history is {}x{}, expected {}x{}",
                    full.rows(),
                    full.cols(),
                    self.s + 1,
                    self.d
                )));
            }
            self.program_keys(&full)?;
            let unit = 4f64.powi((8 - self.cell_bits) as i32);
            self.score_lsb = unit
                * self.q_params.step() as f64
                * self.k_params.step() as f64
                * self.attention_scale as f64;
            return Ok(true);
        }
        self.k_max_abs = new_max;
        self.append_key(self.s, row)?;
        self.s += 1;
        Ok(false)
    }

    /// Programs key `j` (== the current key count) into fresh crossbar
    /// columns under the already-calibrated quantizer — the shared
    /// append arm of [`InMemoryPruner::extend`] and
    /// [`InMemoryPruner::extend_row`]. Does not bump `self.s`.
    fn append_key(&mut self, j: usize, key: &[f32]) -> Result<(), ReramError> {
        let noise = effective_noise(self.noise, self.cell_bits)?;
        let shift = 8 - self.cell_bits;
        let ct = j / ARRAY_COLS;
        let slot = j % ARRAY_COLS;
        if ct == self.tiles.len() {
            // First key of a new column tile: create its row tiles
            // with the same derived seeds a fresh build would use.
            let row_tiles = self.d.div_ceil(ARRAY_ROWS);
            let mut row_arrays = Vec::with_capacity(row_tiles);
            for rt in 0..row_tiles {
                let rows = (self.d - rt * ARRAY_ROWS).min(ARRAY_ROWS);
                let mut arr = TransposableArray::with_cell_bits(
                    rows,
                    1,
                    self.cell_bits,
                    noise,
                    tile_seed(self.seed, ct, rt),
                )?;
                arr.set_fault_model(self.fault);
                row_arrays.push(arr);
            }
            self.tiles.push(row_arrays);
        } else if slot >= self.tiles[ct][0].cols() {
            for arr in &mut self.tiles[ct] {
                arr.append_slots(1);
            }
        }
        for (rt, arr) in self.tiles[ct].iter_mut().enumerate() {
            let base = rt * ARRAY_ROWS;
            let codes: Vec<i32> = (0..arr.rows())
                .map(|r| {
                    round_msb_bits(self.k_params.quantize(key[base + r]), shift, self.cell_bits)
                })
                .collect();
            arr.store_key(slot, &codes)?;
        }
        Ok(())
    }

    /// Number of keys covered.
    pub fn keys(&self) -> usize {
        self.s
    }

    /// Embedding size.
    pub fn embedding(&self) -> usize {
        self.d
    }

    /// Bits per MLC cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Accumulated hardware operation counts.
    pub fn stats(&self) -> PruneHardwareStats {
        self.stats
    }

    /// The real score value of one analog code unit (diagnostics).
    pub fn score_lsb(&self) -> f64 {
        self.score_lsb
    }

    /// Thresholds one query in memory and returns the binary pruning
    /// vector plus the approximate scores.
    ///
    /// `threshold` is in real score units (the learned `Th`).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] unless
    /// `q_row.len()` equals the embedding size, or
    /// [`ReramError::InvalidParameter`] for an unsupported
    /// `score_bits`.
    pub fn prune_query(
        &mut self,
        q_row: &[f32],
        threshold: f32,
        spec: &ThresholdSpec,
    ) -> Result<PruneOutcome, ReramError> {
        if q_row.len() != self.d {
            return Err(ReramError::LengthMismatch {
                what: "query row",
                expected: self.d,
                found: q_row.len(),
            });
        }
        if let Some(bits) = spec.score_bits {
            if !(1..=16).contains(&bits) {
                return Err(ReramError::InvalidParameter(format!(
                    "score_bits {bits} outside 1..=16"
                )));
            }
        }
        // Query MSB nibbles (the low-precision DAC input), rounded to
        // keep the approximation zero-mean. Query and key precision
        // are set identically (§III-B footnote).
        let shift = 8 - self.cell_bits;
        let q_msb: Vec<i32> = q_row
            .iter()
            .map(|&x| round_msb_bits(self.q_params.quantize(x), shift, self.cell_bits))
            .collect();

        // The analog noise is referenced to the crossbar's drive-based
        // full scale (that is what the ADC-equivalent accuracy of the
        // noise model is specified against), so the safety margin must
        // use the same reference to bound it.
        let drive_fs: f64 = self.tiles[0]
            .iter()
            .enumerate()
            .map(|(rt, arr)| {
                let base = rt * ARRAY_ROWS;
                arr.full_scale(&q_msb[base..base + arr.rows()])
            })
            .sum();

        let mut code_scores = self.analog_scores(&q_msb)?;
        self.stats.queries_pruned += 1;
        self.stats.comparator_firings += self.s as u64;

        // Keys remapped to spare columns are served by verified
        // fault-free cells: the controller substitutes their exact
        // digital-shadow scores for the faulty analog readings.
        if !self.remapped.is_empty() {
            for &j in &self.remapped {
                code_scores[j] = self.exact_key_score(&q_msb, j)? as f64;
            }
        }

        let th_codes = threshold as f64 / self.score_lsb;
        let margin_codes = spec.margin_fraction * drive_fs;
        let mut pruned = Vec::with_capacity(self.s);
        let mut approx_scores = Vec::with_capacity(self.s);
        for &raw in &code_scores {
            let compared = match spec.score_bits {
                Some(bits) => quantize_symmetric(raw, self.full_scale_codes, bits),
                None => raw,
            };
            pruned.push(compared < th_codes - margin_codes);
            approx_scores.push((compared * self.score_lsb) as f32);
        }
        Ok(PruneOutcome {
            decision: PruneDecision::new(pruned),
            approx_scores,
        })
    }

    /// The analog code-unit score of every key for the given query
    /// nibbles, merging row-tile currents.
    fn analog_scores(&mut self, q_msb: &[i32]) -> Result<Vec<f64>, ReramError> {
        let mut out = vec![0.0f64; self.s];
        for (ct, row_arrays) in self.tiles.iter_mut().enumerate() {
            let base_col = ct * ARRAY_COLS;
            for (rt, arr) in row_arrays.iter_mut().enumerate() {
                let base_row = rt * ARRAY_ROWS;
                let input = &q_msb[base_row..base_row + arr.rows()];
                let partial = arr.in_situ_compute(input)?;
                self.stats.in_memory_ops += 1;
                self.stats.dac_conversions += arr.rows() as u64;
                for (c, p) in partial.iter().enumerate() {
                    out[base_col + c] += p;
                }
            }
        }
        Ok(out)
    }

    /// Exact digital reference of the MSB-level scores (no analog
    /// effects), in real score units. Tests compare the analog path
    /// against this.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::LengthMismatch`] for a wrong query length.
    pub fn exact_msb_scores(&self, q_row: &[f32]) -> Result<Vec<f32>, ReramError> {
        if q_row.len() != self.d {
            return Err(ReramError::LengthMismatch {
                what: "query row",
                expected: self.d,
                found: q_row.len(),
            });
        }
        let shift = 8 - self.cell_bits;
        let q_msb: Vec<i32> = q_row
            .iter()
            .map(|&x| round_msb_bits(self.q_params.quantize(x), shift, self.cell_bits))
            .collect();
        let mut out = vec![0i64; self.s];
        for (ct, row_arrays) in self.tiles.iter().enumerate() {
            let base_col = ct * ARRAY_COLS;
            for (rt, arr) in row_arrays.iter().enumerate() {
                let base_row = rt * ARRAY_ROWS;
                let input = &q_msb[base_row..base_row + arr.rows()];
                let partial = arr.exact_compute(input)?;
                for (c, p) in partial.iter().enumerate() {
                    out[base_col + c] += p;
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|c| (c as f64 * self.score_lsb) as f32)
            .collect())
    }

    /// Fetches the stored MSB codes of key `j` via a transposed read
    /// (the selective unpruned-vector fetch of §III-B).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad key index.
    pub fn read_key_msb(&mut self, j: usize) -> Result<Vec<i32>, ReramError> {
        if j >= self.s {
            return Err(ReramError::IndexOutOfRange {
                what: "key",
                index: j,
                bound: self.s,
            });
        }
        let ct = j / ARRAY_COLS;
        let slot = j % ARRAY_COLS;
        let mut codes = Vec::with_capacity(self.d);
        for arr in &mut self.tiles[ct] {
            codes.extend(arr.transposed_read(slot)?);
        }
        self.stats.transposed_reads += 1;
        Ok(codes)
    }

    /// Attaches (or detaches, with `None`) a hard-fault model, stamping
    /// it onto every crossbar tile. Attachment is retroactive and
    /// overlay-based (see [`crate::CrossbarArray::set_fault_model`]):
    /// no noise draw is spent, so a detach restores fault-free behavior
    /// bit-for-bit. Changing the model also clears any spare-column
    /// remap, which was derived under the old fault pattern.
    pub fn set_fault_model(&mut self, fault: Option<FaultModel>) {
        self.fault = fault;
        self.remapped.clear();
        for row_arrays in &mut self.tiles {
            for arr in row_arrays {
                arr.set_fault_model(fault);
            }
        }
    }

    /// The attached fault model, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Scrubs the whole programmed key set: transposed-reads every key
    /// and compares the readout against the intended (write-verified)
    /// digital shadow, returning the map of every disagreeing cell.
    /// Each scanned key costs one transposed read in the hardware
    /// stats. Without a fault model the map is always clean.
    ///
    /// Scrubbing is only ever invoked explicitly by the layer above —
    /// programming and extending never scrub implicitly, so their
    /// hardware-stats contracts are unchanged.
    ///
    /// # Errors
    ///
    /// Propagates read errors (none occur on a consistent pruner).
    pub fn scrub(&mut self) -> Result<FaultMap, ReramError> {
        let mut sites = Vec::new();
        for j in 0..self.s {
            self.scrub_key_into(j, &mut sites)?;
        }
        Ok(FaultMap {
            keys_scanned: self.s,
            sites,
        })
    }

    /// Scrubs a single key (the decode path's per-append check).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad key index.
    pub fn scrub_key(&mut self, j: usize) -> Result<FaultMap, ReramError> {
        if j >= self.s {
            return Err(ReramError::IndexOutOfRange {
                what: "key",
                index: j,
                bound: self.s,
            });
        }
        let mut sites = Vec::new();
        self.scrub_key_into(j, &mut sites)?;
        Ok(FaultMap {
            keys_scanned: 1,
            sites,
        })
    }

    /// Appends key `j`'s faulty cells (readout vs. intended shadow) to
    /// `sites`, charging one transposed read.
    fn scrub_key_into(&mut self, j: usize, sites: &mut Vec<FaultSite>) -> Result<(), ReramError> {
        let ct = j / ARRAY_COLS;
        let slot = j % ARRAY_COLS;
        for (rt, arr) in self.tiles[ct].iter_mut().enumerate() {
            let read = arr.transposed_read(slot)?;
            let intended = arr.intended_codes(slot)?;
            for (r, (got, want)) in read.iter().zip(&intended).enumerate() {
                if got != want {
                    sites.push(FaultSite {
                        crossbar: arr.identity(),
                        row: rt * ARRAY_ROWS + r,
                        col: j,
                    });
                }
            }
        }
        self.stats.transposed_reads += 1;
        Ok(())
    }

    /// Attempts to repair every faulty key in `map` by reprogramming
    /// its columns from the intended digital shadow with write-verify
    /// and bounded retry (`max_attempts` per column; backoff advances
    /// the program epoch, which re-rolls transient upsets). The
    /// returned outcome counts retries and deterministic backoff ticks
    /// and re-scrubs the touched keys into `remaining` — permanent
    /// faults survive and stay listed there.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] if `map` names a key
    /// this pruner does not hold.
    pub fn repair(
        &mut self,
        map: &FaultMap,
        max_attempts: u32,
    ) -> Result<RepairOutcome, ReramError> {
        let mut outcome = RepairOutcome::default();
        let faulty = map.faulty_keys();
        for &j in &faulty {
            if j >= self.s {
                return Err(ReramError::IndexOutOfRange {
                    what: "key",
                    index: j,
                    bound: self.s,
                });
            }
            let ct = j / ARRAY_COLS;
            let slot = j % ARRAY_COLS;
            for arr in self.tiles[ct].iter_mut() {
                let intended = arr.intended_codes(slot)?;
                let program = arr.store_key_verified(slot, &intended, max_attempts)?;
                outcome.retries += u64::from(program.attempts.saturating_sub(1));
                outcome.backoff_ticks += program.backoff_ticks;
            }
        }
        outcome.remaining.keys_scanned = faulty.len();
        for &j in &faulty {
            self.scrub_key_into(j, &mut outcome.remaining.sites)?;
        }
        Ok(outcome)
    }

    /// Remaps `keys` to verified fault-free spare columns: their scores
    /// are thereafter routed from the exact digital shadow instead of
    /// the faulty analog columns ([`InMemoryPruner::prune_query`]
    /// substitutes them before the comparator). Replaces any previous
    /// remap; a full reprogram or fault-model change clears it.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] if any key is out of
    /// range.
    pub fn set_remapped(&mut self, keys: &[usize]) -> Result<(), ReramError> {
        for &j in keys {
            if j >= self.s {
                return Err(ReramError::IndexOutOfRange {
                    what: "key",
                    index: j,
                    bound: self.s,
                });
            }
        }
        self.remapped = keys.iter().copied().collect();
        Ok(())
    }

    /// The keys currently remapped to spare columns, ascending.
    pub fn remapped_keys(&self) -> Vec<usize> {
        self.remapped.iter().copied().collect()
    }

    /// The exact digital-shadow score of key `j` for the given query
    /// nibbles, in code units (the spare-column substitute for a
    /// remapped key).
    fn exact_key_score(&self, q_msb: &[i32], j: usize) -> Result<i64, ReramError> {
        let ct = j / ARRAY_COLS;
        let slot = j % ARRAY_COLS;
        let mut acc = 0i64;
        for (rt, arr) in self.tiles[ct].iter().enumerate() {
            let base = rt * ARRAY_ROWS;
            let intended = arr.intended_codes(slot)?;
            for (r, &w) in intended.iter().enumerate() {
                acc += w as i64 * q_msb[base + r] as i64;
            }
        }
        Ok(acc)
    }
}

/// The derived RNG seed of tile `(col_tile, row_tile)` — shared by the
/// full reprogram and the incremental append so a tile created either
/// way draws from the same stream.
fn tile_seed(seed: u64, ct: usize, rt: usize) -> u64 {
    seed.wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((ct * 1024 + rt) as u64)
}

/// Rounded top bits of an 8-bit code for a `cell_bits`-deep cell
/// (zero-mean split; see `QuantizedMatrix::msb_rounded`).
fn round_msb_bits(code: i32, shift: u32, cell_bits: u32) -> i32 {
    let denom = 1i32 << shift;
    let half = denom / 2;
    let rounded = if code >= 0 {
        (code + half) / denom
    } else {
        (code - half) / denom
    };
    let hi = (1i32 << (cell_bits - 1)) - 1;
    rounded.clamp(-hi - 1, hi)
}

/// Symmetric uniform quantization of `x` to `bits` bits over
/// `[-full_scale, full_scale]`, returning the reconstructed value.
fn quantize_symmetric(x: f64, full_scale: f64, bits: u32) -> f64 {
    let qmax = ((1i64 << (bits - 1)) - 1).max(1) as f64;
    let step = full_scale / qmax;
    let code = (x / step).round().clamp(-qmax, qmax);
    code * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_attention::Matrix;

    /// A deterministic pseudo-random matrix in [-1, 1].
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn digital_decision(pruner: &InMemoryPruner, q_row: &[f32], th: f32) -> PruneDecision {
        let exact = pruner.exact_msb_scores(q_row).unwrap();
        PruneDecision::from_scores(&exact, th)
    }

    #[test]
    fn construction_validates_shapes_and_scale() {
        let k = random_matrix(8, 16, 1);
        let q_bad = random_matrix(4, 8, 2);
        assert!(InMemoryPruner::new(&q_bad, &k, 1.0, NoiseModel::ideal(), 0).is_err());
        let q = random_matrix(4, 16, 2);
        assert!(InMemoryPruner::new(&q, &k, 0.0, NoiseModel::ideal(), 0).is_err());
        assert!(InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 0).is_ok());
    }

    #[test]
    fn ideal_analog_matches_digital_msb_decision() {
        // Invariant 2 of DESIGN.md.
        let q = random_matrix(6, 32, 3);
        let k = random_matrix(40, 32, 4);
        let mut pruner = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::ideal(), 5).unwrap();
        let spec = ThresholdSpec::default();
        for i in 0..q.rows() {
            let out = pruner.prune_query(q.row(i), 0.05, &spec).unwrap();
            let reference = digital_decision(&pruner, q.row(i), 0.05);
            assert_eq!(out.decision, reference, "query {i}");
        }
    }

    #[test]
    fn tiling_covers_multiple_arrays() {
        // 300 keys -> 3 column tiles; d=128 -> 2 row tiles.
        let q = random_matrix(2, 128, 7);
        let k = random_matrix(300, 128, 8);
        let mut pruner = InMemoryPruner::new(&q, &k, 0.09, NoiseModel::ideal(), 9).unwrap();
        let out = pruner
            .prune_query(q.row(0), 0.0, &ThresholdSpec::default())
            .unwrap();
        assert_eq!(out.decision.len(), 300);
        // 3 col tiles x 2 row tiles analog ops for one query.
        assert_eq!(pruner.stats().in_memory_ops, 6);
        let reference = digital_decision(&pruner, q.row(0), 0.0);
        assert_eq!(out.decision, reference, "tiled must equal monolithic");
    }

    #[test]
    fn noise_margin_protects_kept_keys() {
        // Invariant 3: with a 3-sigma margin, in-memory pruning keeps
        // (almost surely) every key the digital threshold keeps.
        let q = random_matrix(8, 64, 11);
        let k = random_matrix(128, 64, 12);
        let noise = NoiseModel::default();
        let mut pruner = InMemoryPruner::new(&q, &k, 0.125, noise, 13).unwrap();
        let spec = ThresholdSpec::analog_with_noise_margin(&noise);
        for i in 0..q.rows() {
            let th = 0.02f32;
            let out = pruner.prune_query(q.row(i), th, &spec).unwrap();
            let reference = digital_decision(&pruner, q.row(i), th);
            for j in 0..reference.len() {
                if reference.is_kept(j) {
                    assert!(
                        out.decision.is_kept(j),
                        "query {i} falsely pruned key {j} despite margin"
                    );
                }
            }
        }
    }

    #[test]
    fn margin_increases_kept_count() {
        let q = random_matrix(4, 32, 21);
        let k = random_matrix(64, 32, 22);
        let mut a = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::ideal(), 23).unwrap();
        let mut b = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::ideal(), 23).unwrap();
        let no_margin = a
            .prune_query(q.row(0), 0.05, &ThresholdSpec::default())
            .unwrap();
        let with_margin = b
            .prune_query(
                q.row(0),
                0.05,
                &ThresholdSpec {
                    score_bits: None,
                    margin_fraction: 0.05,
                },
            )
            .unwrap();
        assert!(with_margin.decision.kept_count() >= no_margin.decision.kept_count());
    }

    #[test]
    fn fewer_score_bits_degrade_the_decision() {
        // The Fig. 5 mechanism: coarse score quantization makes the
        // pruning decision diverge from the reference.
        let q = random_matrix(16, 64, 31);
        let k = random_matrix(96, 64, 32);
        let divergence = |bits: u32| -> usize {
            let mut pruner = InMemoryPruner::new(&q, &k, 0.125, NoiseModel::ideal(), 33).unwrap();
            let spec = ThresholdSpec::quantized(bits);
            let mut diffs = 0;
            for i in 0..q.rows() {
                let th = 0.03f32;
                let out = pruner.prune_query(q.row(i), th, &spec).unwrap();
                let reference = digital_decision(&pruner, q.row(i), th);
                diffs += (0..reference.len())
                    .filter(|&j| out.decision.is_pruned(j) != reference.is_pruned(j))
                    .count();
            }
            diffs
        };
        let coarse = divergence(1);
        let four = divergence(4);
        let fine = divergence(10);
        assert!(
            coarse > four,
            "1-bit ({coarse}) must diverge more than 4-bit ({four})"
        );
        assert!(
            four >= fine,
            "4-bit ({four}) must diverge at least as much as 10-bit ({fine})"
        );
    }

    #[test]
    fn transposed_reads_return_stored_msb_codes() {
        let q = random_matrix(1, 64, 41);
        let k = random_matrix(200, 64, 42);
        let qk = quantize_matrix(&k, 8).unwrap();
        let mut pruner = InMemoryPruner::new(&q, &k, 0.125, NoiseModel::default(), 43).unwrap();
        for j in [0usize, 64, 127, 128, 199] {
            let fetched = pruner.read_key_msb(j).unwrap();
            let expected: Vec<i32> = (0..64).map(|c| qk.msb_rounded(j, c)).collect();
            assert_eq!(fetched, expected, "key {j}");
        }
        assert_eq!(pruner.stats().transposed_reads, 5);
        assert!(pruner.read_key_msb(200).is_err());
    }

    #[test]
    fn stats_accumulate_per_query() {
        let q = random_matrix(3, 64, 51);
        let k = random_matrix(128, 64, 52);
        let mut pruner = InMemoryPruner::new(&q, &k, 0.125, NoiseModel::ideal(), 53).unwrap();
        let spec = ThresholdSpec::default();
        for i in 0..3 {
            pruner.prune_query(q.row(i), 0.0, &spec).unwrap();
        }
        let stats = pruner.stats();
        assert_eq!(stats.queries_pruned, 3);
        assert_eq!(stats.comparator_firings, 3 * 128);
        assert_eq!(stats.in_memory_ops, 3, "one 64x128 tile per query");
        assert_eq!(stats.dac_conversions, 3 * 64);
    }

    #[test]
    fn prune_query_validates_inputs() {
        let q = random_matrix(1, 16, 61);
        let k = random_matrix(8, 16, 62);
        let mut pruner = InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 63).unwrap();
        assert!(pruner
            .prune_query(&[0.0; 8], 0.0, &ThresholdSpec::default())
            .is_err());
        assert!(pruner
            .prune_query(q.row(0), 0.0, &ThresholdSpec::quantized(0))
            .is_err());
        assert!(pruner
            .prune_query(q.row(0), 0.0, &ThresholdSpec::quantized(17))
            .is_err());
    }

    #[test]
    fn reprogram_is_bit_identical_to_fresh_construction() {
        // The serving-engine contract: a pruner reused across heads of
        // different shapes produces exactly the outputs a freshly built
        // pruner would, noise draws included.
        let noise = NoiseModel::default();
        let heads = [
            (random_matrix(6, 32, 3), random_matrix(40, 32, 4), 0.176f32),
            (random_matrix(4, 128, 5), random_matrix(300, 128, 6), 0.09),
            (random_matrix(8, 64, 7), random_matrix(96, 64, 8), 0.125),
        ];
        let mut reused =
            InMemoryPruner::new(&heads[0].0, &heads[0].1, heads[0].2, noise, 999).unwrap();
        for (i, (q, k, scale)) in heads.iter().enumerate() {
            let seed = 50 + i as u64;
            reused.reprogram(q, k, *scale, noise, seed).unwrap();
            let mut fresh = InMemoryPruner::new(q, k, *scale, noise, seed).unwrap();
            let spec = ThresholdSpec::default();
            for r in 0..q.rows() {
                let a = reused.prune_query(q.row(r), 0.02, &spec).unwrap();
                let b = fresh.prune_query(q.row(r), 0.02, &spec).unwrap();
                assert_eq!(a, b, "head {i} query {r}");
            }
            assert_eq!(reused.stats(), fresh.stats(), "head {i}");
            assert_eq!(reused.keys(), k.rows());
            assert_eq!(reused.embedding(), k.cols());
        }
    }

    /// The rows `0..n` of `m` as an owned matrix.
    fn prefix(m: &Matrix, n: usize) -> Matrix {
        m.prefix_rows(n).unwrap()
    }

    #[test]
    fn extend_matches_fresh_construction_at_every_length() {
        // The decode contract: growing the programmed key set one row
        // at a time (plus per-step query calibration) is bit-identical
        // to rebuilding the pruner over each prefix, ideal-noise-wise.
        // 300 keys at d = 128 crosses both column- and row-tile
        // boundaries along the way.
        let q_all = random_matrix(48, 128, 71);
        let k_all = random_matrix(300, 128, 72);
        let noise = NoiseModel::ideal();
        let spec = ThresholdSpec::quantized(6); // exercises the full scale
        let start = 260;
        let mut grown =
            InMemoryPruner::new(&prefix(&q_all, 1), &prefix(&k_all, start), 0.09, noise, 5)
                .unwrap();
        for s in start + 1..=300 {
            let q_row = Matrix::from_vec(1, 128, q_all.row(s - start).to_vec()).unwrap();
            let k = prefix(&k_all, s);
            let before = grown.stats();
            let reprogrammed = grown.extend(&k).unwrap();
            grown.calibrate_query(&q_row, true).unwrap();
            let mut fresh = InMemoryPruner::new(&q_row, &k, 0.09, noise, 5).unwrap();
            let a = grown.prune_query(q_row.row(0), 0.02, &spec).unwrap();
            let b = fresh.prune_query(q_row.row(0), 0.02, &spec).unwrap();
            assert_eq!(a, b, "s = {s}");
            assert_eq!(grown.keys(), s);
            let base = if reprogrammed {
                PruneHardwareStats::default()
            } else {
                before
            };
            assert_eq!(
                grown.stats().delta_since(&base),
                fresh.stats(),
                "s = {s} stats delta"
            );
        }
    }

    #[test]
    fn extend_recalibrates_when_a_key_widens_the_range() {
        let q = random_matrix(1, 32, 81);
        let k = random_matrix(64, 32, 82);
        let noise = NoiseModel::ideal();
        let mut grown = InMemoryPruner::new(&q, &k, 0.176, noise, 9).unwrap();
        // Append a key 3x beyond anything seen: the shared quantizer
        // must re-cover the range, forcing a full reprogram.
        let mut widened = k.as_slice().to_vec();
        widened.extend(k.row(0).iter().map(|x| x * 3.0));
        let k_wide = Matrix::from_vec(65, 32, widened).unwrap();
        assert!(grown.extend(&k_wide).unwrap(), "range grew: must reprogram");
        grown.calibrate_query(&q, true).unwrap();
        let mut fresh = InMemoryPruner::new(&q, &k_wide, 0.176, noise, 9).unwrap();
        let spec = ThresholdSpec::default();
        let a = grown.prune_query(q.row(0), 0.02, &spec).unwrap();
        let b = fresh.prune_query(q.row(0), 0.02, &spec).unwrap();
        assert_eq!(a, b);
        // An in-range append afterwards goes back to the cheap path.
        let mut more = k_wide.as_slice().to_vec();
        more.extend_from_slice(k.row(1));
        let k_more = Matrix::from_vec(66, 32, more).unwrap();
        assert!(!grown.extend(&k_more).unwrap());
    }

    #[test]
    fn extend_validates_inputs() {
        let q = random_matrix(1, 16, 91);
        let k = random_matrix(8, 16, 92);
        let mut p = InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 3).unwrap();
        // Wrong embedding.
        assert!(p.extend(&random_matrix(9, 8, 93)).is_err());
        // Shrunk history.
        assert!(p.extend(&random_matrix(4, 16, 94)).is_err());
        // Same length: no-op.
        assert!(!p.extend(&k).unwrap());
        assert_eq!(p.keys(), 8);
        // Query calibration validates the embedding too.
        assert!(p.calibrate_query(&random_matrix(1, 8, 95), false).is_err());
    }

    #[test]
    fn stats_delta_saturates_and_subtracts() {
        let a = PruneHardwareStats {
            in_memory_ops: 5,
            comparator_firings: 100,
            dac_conversions: 64,
            transposed_reads: 2,
            queries_pruned: 3,
        };
        let b = PruneHardwareStats {
            in_memory_ops: 7,
            comparator_firings: 150,
            dac_conversions: 128,
            transposed_reads: 2,
            queries_pruned: 4,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.in_memory_ops, 2);
        assert_eq!(d.comparator_firings, 50);
        assert_eq!(d.queries_pruned, 1);
        // Saturation after a counter reset (recalibration event).
        let z = PruneHardwareStats::default().delta_since(&a);
        assert_eq!(z, PruneHardwareStats::default());
    }

    #[test]
    fn quantize_symmetric_is_sane() {
        assert_eq!(quantize_symmetric(0.0, 100.0, 4), 0.0);
        // Saturation at the full scale.
        let sat = quantize_symmetric(1e9, 100.0, 4);
        assert!((sat - 100.0).abs() < 100.0 / 7.0);
        // 1-bit quantization collapses to {-fs, 0, fs}.
        let one = quantize_symmetric(30.0, 100.0, 1);
        assert!(one == 0.0 || (one - 100.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::FaultModel;
    use proptest::prelude::*;
    use sprint_attention::Matrix;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn digital_decision(pruner: &InMemoryPruner, q_row: &[f32], th: f32) -> PruneDecision {
        let exact = pruner.exact_msb_scores(q_row).unwrap();
        PruneDecision::from_scores(&exact, th)
    }

    #[test]
    fn quiet_fault_model_keeps_the_pruner_bit_identical() {
        let q = random_matrix(4, 64, 201);
        let k = random_matrix(96, 64, 202);
        let noise = NoiseModel::default();
        let mut plain = InMemoryPruner::new(&q, &k, 0.125, noise, 7).unwrap();
        let mut stamped = InMemoryPruner::new(&q, &k, 0.125, noise, 7).unwrap();
        stamped.set_fault_model(Some(FaultModel::new(55)));
        let spec = ThresholdSpec::default();
        for i in 0..q.rows() {
            let a = plain.prune_query(q.row(i), 0.02, &spec).unwrap();
            let b = stamped.prune_query(q.row(i), 0.02, &spec).unwrap();
            assert_eq!(a, b, "query {i}");
        }
        assert!(stamped.scrub().unwrap().is_clean());
    }

    #[test]
    fn fault_free_scrub_is_clean_and_charges_reads() {
        let q = random_matrix(1, 32, 211);
        let k = random_matrix(20, 32, 212);
        let mut p = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::default(), 3).unwrap();
        let before = p.stats();
        let map = p.scrub().unwrap();
        assert!(map.is_clean());
        assert_eq!(map.keys_scanned, 20);
        assert_eq!(p.stats().delta_since(&before).transposed_reads, 20);
    }

    #[test]
    fn repair_clears_transients_completely() {
        let q = random_matrix(1, 32, 221);
        let k = random_matrix(16, 32, 222);
        let fault = FaultModel::new(9).with_transient_rate(0.1).unwrap();
        let mut p = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::default(), 31).unwrap();
        p.set_fault_model(Some(fault));
        let map = p.scrub().unwrap();
        assert!(!map.is_clean(), "10% upsets over 512 cells must show");
        let outcome = p.repair(&map, 64).unwrap();
        assert!(
            outcome.remaining.is_clean(),
            "transients must clear: {:?}",
            outcome.remaining
        );
        assert!(outcome.retries > 0);
        assert!(p.scrub().unwrap().is_clean(), "repair persists");
    }

    #[test]
    fn permanent_faults_survive_repair() {
        let q = random_matrix(1, 32, 231);
        let k = random_matrix(16, 32, 232);
        let fault = FaultModel::new(4).with_stuck_rates(0.1, 0.1).unwrap();
        let mut p = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::default(), 41).unwrap();
        p.set_fault_model(Some(fault));
        let map = p.scrub().unwrap();
        assert!(!map.is_clean());
        let outcome = p.repair(&map, 8).unwrap();
        assert_eq!(
            outcome.remaining.sites, map.sites,
            "stuck cells shrug off every retry"
        );
    }

    #[test]
    fn dead_columns_flag_every_key() {
        let q = random_matrix(1, 32, 241);
        let k = random_matrix(24, 32, 242);
        let fault = FaultModel::new(6).with_line_rates(1.0, 0.0).unwrap();
        let mut p = InMemoryPruner::new(&q, &k, 0.176, NoiseModel::default(), 51).unwrap();
        p.set_fault_model(Some(fault));
        let map = p.scrub().unwrap();
        assert_eq!(map.faulty_keys(), (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn remapped_keys_score_from_the_digital_shadow() {
        // Ideal noise: clean analog columns are exact, so once the
        // faulty keys are remapped the decision must equal the digital
        // reference despite heavy stuck faults.
        let q = random_matrix(4, 64, 251);
        let k = random_matrix(96, 64, 252);
        let fault = FaultModel::new(12).with_stuck_rates(0.1, 0.1).unwrap();
        let mut p = InMemoryPruner::new(&q, &k, 0.125, NoiseModel::ideal(), 61).unwrap();
        p.set_fault_model(Some(fault));
        let map = p.scrub().unwrap();
        assert!(!map.is_clean());
        p.set_remapped(&map.faulty_keys()).unwrap();
        assert_eq!(p.remapped_keys(), map.faulty_keys());
        let spec = ThresholdSpec::default();
        for i in 0..q.rows() {
            let out = p.prune_query(q.row(i), 0.02, &spec).unwrap();
            let reference = digital_decision(&p, q.row(i), 0.02);
            assert_eq!(out.decision, reference, "query {i}");
        }
    }

    #[test]
    fn scrub_key_and_repair_validate_indices() {
        let q = random_matrix(1, 16, 261);
        let k = random_matrix(8, 16, 262);
        let mut p = InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 71).unwrap();
        assert!(p.scrub_key(8).is_err());
        assert!(p.scrub_key(7).unwrap().is_clean());
        assert!(p.set_remapped(&[8]).is_err());
        let bogus = FaultMap {
            keys_scanned: 1,
            sites: vec![FaultSite {
                crossbar: 0,
                row: 0,
                col: 9,
            }],
        };
        assert!(p.repair(&bogus, 2).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_permanent_fault_maps_survive_reprogram_cycles(
            seed in 0u64..40,
            fault_seed in 0u64..40,
        ) {
            // The determinism contract: a permanent-fault map derives
            // from crossbar identity alone, so independently built
            // pruners agree and reprogram/reset cycles change nothing.
            let q = random_matrix(2, 64, seed ^ 0xaaaa);
            let k = random_matrix(160, 64, seed ^ 0xbbbb);
            let fault = FaultModel::new(fault_seed)
                .with_stuck_rates(0.05, 0.05).unwrap()
                .with_line_rates(0.05, 0.02).unwrap();
            let noise = NoiseModel::default();
            let mut a = InMemoryPruner::new(&q, &k, 0.125, noise, seed).unwrap();
            a.set_fault_model(Some(fault));
            let map = a.scrub().unwrap();
            let mut b = InMemoryPruner::new(&q, &k, 0.125, noise, seed).unwrap();
            b.set_fault_model(Some(fault));
            prop_assert_eq!(&map, &b.scrub().unwrap());
            a.reprogram(&q, &k, 0.125, noise, seed).unwrap();
            prop_assert_eq!(&map, &a.scrub().unwrap());
        }
    }
}

#[cfg(test)]
mod cell_bit_tests {
    use super::*;
    use sprint_attention::Matrix;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    #[test]
    fn cell_bits_are_validated() {
        let q = random_matrix(2, 16, 1);
        let k = random_matrix(8, 16, 2);
        assert!(InMemoryPruner::with_cell_bits(&q, &k, 0.25, NoiseModel::ideal(), 3, 0).is_err());
        assert!(InMemoryPruner::with_cell_bits(&q, &k, 0.25, NoiseModel::ideal(), 3, 9).is_err());
        let p = InMemoryPruner::with_cell_bits(&q, &k, 0.25, NoiseModel::ideal(), 3, 6).unwrap();
        assert_eq!(p.cell_bits(), 6);
    }

    #[test]
    fn default_constructor_uses_four_bit_cells() {
        let q = random_matrix(2, 16, 4);
        let k = random_matrix(8, 16, 5);
        let p = InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 6).unwrap();
        assert_eq!(p.cell_bits(), 4);
    }

    #[test]
    fn more_cell_bits_approximate_the_full_score_better_under_ideal_analog() {
        // With noise held at zero, deeper cells keep more of the code
        // and the in-memory score converges on the full 8-bit score.
        let q = random_matrix(8, 32, 7);
        let k = random_matrix(48, 32, 8);
        let exact_full: Vec<f32> = {
            // Full-precision digital reference through the same
            // quantizers (8-bit codes).
            let p8 =
                InMemoryPruner::with_cell_bits(&q, &k, 0.18, NoiseModel::ideal(), 9, 8).unwrap();
            p8.exact_msb_scores(q.row(0)).unwrap()
        };
        let err_of = |bits: u32| -> f64 {
            let p =
                InMemoryPruner::with_cell_bits(&q, &k, 0.18, NoiseModel::ideal(), 9, bits).unwrap();
            let approx = p.exact_msb_scores(q.row(0)).unwrap();
            approx
                .iter()
                .zip(&exact_full)
                .map(|(a, e)| ((a - e).abs()) as f64)
                .sum::<f64>()
                / approx.len() as f64
        };
        let e2 = err_of(2);
        let e4 = err_of(4);
        let e6 = err_of(6);
        assert!(e2 > e4, "2-bit err {e2} must exceed 4-bit err {e4}");
        assert!(e4 > e6, "4-bit err {e4} must exceed 6-bit err {e6}");
    }

    #[test]
    fn deeper_cells_carry_more_noise() {
        // The robustness half of the section III trade-off: beyond the
        // 4-bit design point, the effective noise model degrades.
        let q = random_matrix(4, 64, 11);
        let k = random_matrix(96, 64, 12);
        let spread_of = |bits: u32| -> f64 {
            let mut p =
                InMemoryPruner::with_cell_bits(&q, &k, 0.125, NoiseModel::default(), 13, bits)
                    .unwrap();
            let exact = p.exact_msb_scores(q.row(0)).unwrap();
            let mut sq = 0.0f64;
            let n = 20;
            for _ in 0..n {
                let out = p
                    .prune_query(q.row(0), 0.0, &ThresholdSpec::default())
                    .unwrap();
                for (a, e) in out.approx_scores.iter().zip(&exact) {
                    sq += ((a - e) as f64).powi(2);
                }
            }
            (sq / (n * exact.len()) as f64).sqrt()
        };
        let s4 = spread_of(4);
        let s7 = spread_of(7);
        assert!(
            s7 > 1.5 * s4,
            "7-bit cells ({s7}) must be noisier than 4-bit cells ({s4})"
        );
    }
}
