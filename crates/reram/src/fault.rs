//! Hard-fault model for the ReRAM substrate.
//!
//! [`crate::NoiseModel`] covers the *soft* analog inaccuracies the
//! paper folds into a Gaussian (§III-A ①). Real crossbar deployments
//! additionally suffer *hard* device faults: cells stuck at the
//! highest (G-on) or lowest (G-off) conductance, whole bitline/wordline
//! defects, endurance wear that drifts the programmed level, and
//! transient program upsets that a rewrite clears. [`FaultModel`]
//! injects all of these deterministically.
//!
//! # Determinism contract
//!
//! Fault state is a **pure hash** of the fault seed, the owning
//! array's construction seed, the cell coordinates and (for transient
//! upsets) the column's program epoch. The model never draws from the
//! crossbar's noise RNG, so
//!
//! * attaching a fault model perturbs **zero** noise draws — a
//!   fault-free configuration is bit-identical with or without the
//!   model plumbed through, and
//! * the fault pattern depends only on crossbar *identity*, never on
//!   scheduling — the same head sees the same faults at any worker
//!   count.
//!
//! Fault sets are *nested* in the rate: every cell hashes to one
//! uniform draw, and a cell is faulty iff that draw falls below the
//! rate, so raising a rate only ever adds faults. Accuracy-vs-rate
//! sweeps are therefore monotone by construction.

use serde::{Deserialize, Serialize};

use crate::ReramError;

/// splitmix64 finalizer: the same mixer the engine uses for head-seed
/// derivation, reused here so fault hashes are well distributed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_COLUMN: u64 = 0xc01;
const SALT_ROW: u64 = 0x501;
const SALT_CELL: u64 = 0xce11;
const SALT_TRANSIENT: u64 = 0x7a5;
const SALT_WEAR: u64 = 0x3ea;
const SALT_DRIFT: u64 = 0xd1f;

/// The fault state of one cell, resolved by [`FaultModel::cell_fault`].
///
/// Resolution priority: a column fault dominates a row fault, which
/// dominates a per-cell stuck fault, then a transient upset, then
/// wear. A cell reports at most one fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFault {
    /// The cell operates normally.
    None,
    /// Stuck at the highest conductance: reads as the maximum code.
    StuckOn,
    /// Stuck at the lowest conductance (or on a dead line): reads 0.
    StuckOff,
    /// Endurance wear: the cell retains only this fraction of its
    /// programmed level (in `(0, 1]`). Small drifts round back to the
    /// intended digital code — they pass write-verify but still
    /// perturb the analog weight.
    Worn(f64),
    /// A transient program upset: the write did not take (reads 0),
    /// but reprogramming at a later epoch can clear it.
    Transient,
}

/// Deterministic, seed-derived hard-fault injector.
///
/// All rates are probabilities in `[0, 1]`; a model with every rate at
/// zero is *quiet* and injects nothing. See the module docs for the
/// determinism contract.
///
/// # Example
///
/// ```
/// use sprint_reram::{CellFault, FaultModel};
///
/// let quiet = FaultModel::new(1);
/// assert!(quiet.is_quiet());
/// assert_eq!(quiet.cell_fault(7, 0, 0, 0), CellFault::None);
///
/// let heavy = FaultModel::new(1).with_stuck_rates(0.5, 0.5).unwrap();
/// assert!(!heavy.is_quiet());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    stuck_on_rate: f64,
    stuck_off_rate: f64,
    column_rate: f64,
    row_rate: f64,
    wear_rate: f64,
    wear_drift: f64,
    transient_rate: f64,
    seed: u64,
}

fn validate_rate(name: &'static str, v: f64) -> Result<(), ReramError> {
    if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
        return Err(ReramError::InvalidParameter(format!(
            "{name} = {v} must be a probability in [0, 1]"
        )));
    }
    Ok(())
}

impl FaultModel {
    /// A quiet model (every rate zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultModel {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            column_rate: 0.0,
            row_rate: 0.0,
            wear_rate: 0.0,
            wear_drift: 0.0,
            transient_rate: 0.0,
            seed,
        }
    }

    /// A mixed fault population scaled by one knob, for sweeps: `rate`
    /// splits evenly between stuck-on and stuck-off cells, an eighth of
    /// it hits whole columns, a sixteenth whole rows, the full rate
    /// drives wear (30 % drift) and a quarter of it transient upsets.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] unless `rate` is a
    /// probability.
    pub fn uniform(rate: f64, seed: u64) -> Result<Self, ReramError> {
        validate_rate("rate", rate)?;
        FaultModel::new(seed)
            .with_stuck_rates(rate / 2.0, rate / 2.0)?
            .with_line_rates(rate / 8.0, rate / 16.0)?
            .with_wear(rate, 0.3)?
            .with_transient_rate(rate / 4.0)
    }

    /// Sets the per-cell stuck-at-G-on / stuck-at-G-off rates.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] for rates outside
    /// `[0, 1]` or summing above 1.
    pub fn with_stuck_rates(mut self, stuck_on: f64, stuck_off: f64) -> Result<Self, ReramError> {
        validate_rate("stuck_on_rate", stuck_on)?;
        validate_rate("stuck_off_rate", stuck_off)?;
        if stuck_on + stuck_off > 1.0 {
            return Err(ReramError::InvalidParameter(format!(
                "stuck rates {stuck_on} + {stuck_off} exceed 1"
            )));
        }
        self.stuck_on_rate = stuck_on;
        self.stuck_off_rate = stuck_off;
        Ok(self)
    }

    /// Sets the whole-column (bitline) and whole-row (wordline) fault
    /// rates. A faulty line reads 0 in every cell it crosses.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] for rates outside
    /// `[0, 1]`.
    pub fn with_line_rates(mut self, column: f64, row: f64) -> Result<Self, ReramError> {
        validate_rate("column_rate", column)?;
        validate_rate("row_rate", row)?;
        self.column_rate = column;
        self.row_rate = row;
        Ok(self)
    }

    /// Sets the endurance-wear rate and the maximum conductance drift
    /// of a worn cell (a worn cell retains between `1 - drift` and 1
    /// of its programmed level, the exact fraction hashed per cell).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] for values outside
    /// `[0, 1]`.
    pub fn with_wear(mut self, rate: f64, drift: f64) -> Result<Self, ReramError> {
        validate_rate("wear_rate", rate)?;
        validate_rate("wear_drift", drift)?;
        self.wear_rate = rate;
        self.wear_drift = drift;
        Ok(self)
    }

    /// Sets the transient program-upset rate. Transient faults are
    /// re-rolled per program *epoch*, so a bounded reprogram-retry with
    /// backoff (which advances the epoch) can clear them.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] for a rate outside
    /// `[0, 1]`.
    pub fn with_transient_rate(mut self, rate: f64) -> Result<Self, ReramError> {
        validate_rate("transient_rate", rate)?;
        self.transient_rate = rate;
        Ok(self)
    }

    /// The seed this model hashes fault positions from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every rate is zero (the model injects nothing).
    pub fn is_quiet(&self) -> bool {
        self.stuck_on_rate == 0.0
            && self.stuck_off_rate == 0.0
            && self.column_rate == 0.0
            && self.row_rate == 0.0
            && self.wear_rate == 0.0
            && self.transient_rate == 0.0
    }

    /// One well-mixed hash per (array, salt, a, b) site.
    fn site_hash(&self, array: u64, salt: u64, a: u64, b: u64) -> u64 {
        mix(self.seed
            ^ mix(array ^ 0xfa17_0000)
            ^ salt
            ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ b.wrapping_mul(0xff51_afd7_ed55_8ccd))
    }

    /// Resolves the fault state of cell `(row, col)` of the array with
    /// construction seed `array`, at program epoch `epoch`.
    ///
    /// Pure: same arguments, same answer — see the module docs.
    pub fn cell_fault(&self, array: u64, row: usize, col: usize, epoch: u64) -> CellFault {
        if self.is_quiet() {
            return CellFault::None;
        }
        if unit(self.site_hash(array, SALT_COLUMN, col as u64, 0)) < self.column_rate
            || unit(self.site_hash(array, SALT_ROW, row as u64, 0)) < self.row_rate
        {
            return CellFault::StuckOff;
        }
        let cell = unit(self.site_hash(array, SALT_CELL, row as u64, col as u64));
        if cell < self.stuck_on_rate {
            return CellFault::StuckOn;
        }
        if cell < self.stuck_on_rate + self.stuck_off_rate {
            return CellFault::StuckOff;
        }
        let t = self.site_hash(array, SALT_TRANSIENT, row as u64, col as u64);
        if unit(mix(t ^ epoch.wrapping_mul(0x2545_f491_4f6c_dd1d))) < self.transient_rate {
            return CellFault::Transient;
        }
        if unit(self.site_hash(array, SALT_WEAR, row as u64, col as u64)) < self.wear_rate {
            let d = unit(self.site_hash(array, SALT_DRIFT, row as u64, col as u64));
            return CellFault::Worn(1.0 - self.wear_drift * d);
        }
        CellFault::None
    }
}

/// The coordinates of one faulty cell, as detected by a scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSite {
    /// Construction seed of the crossbar tile holding the cell (the
    /// tile's stable identity across reprogram/reset cycles).
    pub crossbar: u64,
    /// Wordline index within the logical key vector (0..d).
    pub row: usize,
    /// Logical key (bitline column) index within the pruner.
    pub col: usize,
}

/// The result of a scrub pass: every cell whose digital readout
/// disagrees with the intended (write-verified) codes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultMap {
    /// How many keys the scrub covered.
    pub keys_scanned: usize,
    /// Detected faulty cells, in (key, row) scan order.
    pub sites: Vec<FaultSite>,
}

impl FaultMap {
    /// Whether the scrub found no faults.
    pub fn is_clean(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of faulty cells.
    pub fn cell_count(&self) -> usize {
        self.sites.len()
    }

    /// The distinct faulty key indices, ascending.
    pub fn faulty_keys(&self) -> Vec<usize> {
        let mut keys: Vec<usize> = self.sites.iter().map(|s| s.col).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The first detected site, if any.
    pub fn first_site(&self) -> Option<FaultSite> {
        self.sites.first().copied()
    }
}

/// The outcome of a verified (bounded-retry) column program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramOutcome {
    /// Program attempts performed (at least 1).
    pub attempts: u32,
    /// Total deterministic backoff ticks spent between retries
    /// (attempt-counted: `2^(attempt-1)` per retry, never wall-clock).
    pub backoff_ticks: u64,
    /// Rows still reading back wrong after the final attempt.
    pub faulty_rows: Vec<usize>,
}

impl ProgramOutcome {
    /// Whether the final verify read back every row correctly.
    pub fn verified(&self) -> bool {
        self.faulty_rows.is_empty()
    }
}

/// The outcome of an [`crate::InMemoryPruner::repair`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairOutcome {
    /// Retry attempts spent beyond each column's first reprogram.
    pub retries: u64,
    /// Total deterministic backoff ticks spent across all retries.
    pub backoff_ticks: u64,
    /// Faults that survived every retry (permanent faults).
    pub remaining: FaultMap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_model_never_faults() {
        let m = FaultModel::new(42);
        assert!(m.is_quiet());
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(m.cell_fault(7, r, c, 3), CellFault::None);
            }
        }
    }

    #[test]
    fn cell_fault_is_pure() {
        let m = FaultModel::uniform(0.3, 9).unwrap();
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(m.cell_fault(5, r, c, 2), m.cell_fault(5, r, c, 2));
            }
        }
    }

    #[test]
    fn fault_sets_nest_with_rate() {
        // A cell faulty at a low rate stays faulty at any higher rate:
        // the accuracy sweep's monotonicity rests on this.
        let low = FaultModel::new(3).with_stuck_rates(0.02, 0.02).unwrap();
        let high = FaultModel::new(3).with_stuck_rates(0.2, 0.2).unwrap();
        let mut low_faults = 0;
        for r in 0..64 {
            for c in 0..64 {
                let lf = low.cell_fault(11, r, c, 0);
                if lf != CellFault::None {
                    low_faults += 1;
                    assert_ne!(high.cell_fault(11, r, c, 0), CellFault::None);
                }
            }
        }
        assert!(low_faults > 0, "4% of 4096 cells should fault");
    }

    #[test]
    fn column_fault_kills_every_row() {
        let m = FaultModel::new(1).with_line_rates(1.0, 0.0).unwrap();
        for r in 0..8 {
            assert_eq!(m.cell_fault(2, r, 3, 0), CellFault::StuckOff);
        }
    }

    #[test]
    fn transient_depends_on_epoch_but_permanents_do_not() {
        let m = FaultModel::new(8)
            .with_stuck_rates(0.1, 0.1)
            .unwrap()
            .with_transient_rate(0.5)
            .unwrap();
        let mut epoch_sensitive = 0;
        for r in 0..32 {
            for c in 0..32 {
                let e0 = m.cell_fault(4, r, c, 0);
                let e1 = m.cell_fault(4, r, c, 1);
                if matches!(e0, CellFault::StuckOn | CellFault::StuckOff) {
                    assert_eq!(e0, e1, "permanent fault flipped with epoch");
                }
                if (e0 == CellFault::Transient) != (e1 == CellFault::Transient) {
                    epoch_sensitive += 1;
                }
            }
        }
        assert!(epoch_sensitive > 0, "transients must re-roll per epoch");
    }

    #[test]
    fn wear_drift_stays_in_band() {
        let m = FaultModel::new(2).with_wear(1.0, 0.25).unwrap();
        for r in 0..16 {
            match m.cell_fault(6, r, 0, 0) {
                CellFault::Worn(f) => assert!((0.75..=1.0).contains(&f), "retained {f}"),
                other => panic!("expected wear, got {other:?}"),
            }
        }
    }

    #[test]
    fn rates_are_validated() {
        assert!(FaultModel::new(0).with_stuck_rates(-0.1, 0.0).is_err());
        assert!(FaultModel::new(0).with_stuck_rates(0.6, 0.6).is_err());
        assert!(FaultModel::new(0).with_line_rates(1.1, 0.0).is_err());
        assert!(FaultModel::new(0).with_wear(0.5, f64::NAN).is_err());
        assert!(FaultModel::new(0).with_transient_rate(2.0).is_err());
        assert!(FaultModel::uniform(f64::INFINITY, 0).is_err());
        assert!(FaultModel::uniform(0.05, 0).is_ok());
    }

    #[test]
    fn fault_map_accessors() {
        let site = |col: usize, row: usize| FaultSite {
            crossbar: 9,
            row,
            col,
        };
        let map = FaultMap {
            keys_scanned: 4,
            sites: vec![site(3, 0), site(1, 2), site(3, 5)],
        };
        assert!(!map.is_clean());
        assert_eq!(map.cell_count(), 3);
        assert_eq!(map.faulty_keys(), vec![1, 3]);
        assert_eq!(map.first_site().unwrap().col, 3);
        assert!(FaultMap::default().is_clean());
    }
}
