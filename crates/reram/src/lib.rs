//! ReRAM crossbar substrate for SPRINT's in-memory thresholding (§III).
//!
//! Implements the analog half of the paper's contribution:
//!
//! * [`CrossbarArray`] — an MLC ReRAM crossbar performing analog
//!   vector-matrix multiplication (Eq. 2) with per-cell programming
//!   variation and per-operation read noise;
//! * [`TransposableArray`] — the taped-out transposable crossbar of
//!   Wan et al. \[141\] with its two access modes: *in-situ compute*
//!   (assert all bitlines, dot product per column) and *transposed
//!   read* (assert one vertical wordline, read a stored key vector);
//! * [`NoiseModel`] — calibrated to the "5-bit-equivalent output
//!   accuracy for a 64-tap dot product" measurement of Hu et al.;
//! * [`InMemoryPruner`] — the complete in-memory thresholding engine:
//!   4-bit MSB key storage, low-precision DAC query drive, analog
//!   scores, analog comparators with a safety margin, and the binary
//!   pruning vector sent back to the memory controller.
//!
//! # Example
//!
//! ```
//! use sprint_attention::Matrix;
//! use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
//!
//! # fn main() -> Result<(), sprint_reram::ReramError> {
//! let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.5]]).unwrap();
//! let q = Matrix::from_rows(&[vec![1.0, 0.2]]).unwrap();
//! let mut pruner = InMemoryPruner::new(&q, &k, 0.125, NoiseModel::ideal(), 7)?;
//! let outcome = pruner.prune_query(q.row(0), 0.0, &ThresholdSpec::default())?;
//! assert_eq!(outcome.decision.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod crossbar;
mod error;
mod fault;
mod noise;
mod pruner;
mod transposable;

pub use crossbar::CrossbarArray;
pub use error::ReramError;
pub use fault::{CellFault, FaultMap, FaultModel, FaultSite, ProgramOutcome, RepairOutcome};
pub use noise::NoiseModel;
pub use pruner::{InMemoryPruner, PruneHardwareStats, PruneOutcome, ThresholdSpec};
pub use transposable::{AccessMode, TransposableArray};
