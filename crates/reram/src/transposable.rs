//! The transposable ReRAM crossbar (§III-B, Fig. 6).
//!
//! Wan et al.'s taped-out array \[141\] supports two access modes:
//!
//! * **in-situ computation** — the conventional crossbar mode: the
//!   query drives the horizontal wordlines and every vertical bitline
//!   produces one dot product (Fig. 6a);
//! * **transposed read** — horizontal lines become bitlines and one
//!   *vertical* wordline is asserted, so the sense amplifiers read out
//!   the full key vector stored in that column (Fig. 6b).
//!
//! The second mode is what makes selective fetch of unpruned key
//! vectors possible without sequentially activating every row (§III-A
//! challenge ③).

use serde::{Deserialize, Serialize};

use crate::{CrossbarArray, FaultModel, NoiseModel, ProgramOutcome, ReramError};

/// The access mode a transposable array was last used in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// No access yet.
    Idle,
    /// Analog vector-matrix computation (Fig. 6a).
    InSituCompute,
    /// Transposed digital read of one stored column (Fig. 6b).
    TransposedRead,
}

/// A transposable crossbar storing key-vector MSB nibbles.
///
/// # Example
///
/// ```
/// use sprint_reram::{NoiseModel, TransposableArray};
///
/// # fn main() -> Result<(), sprint_reram::ReramError> {
/// let mut arr = TransposableArray::new(4, 2, NoiseModel::ideal(), 3)?;
/// arr.store_key(0, &[1, -2, 3, -4])?;
/// let scores = arr.in_situ_compute(&[1, 1, 1, 1])?;
/// assert_eq!(scores[0], -2.0);
/// assert_eq!(arr.transposed_read(0)?, vec![1, -2, 3, -4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransposableArray {
    inner: CrossbarArray,
    mode: AccessMode,
    compute_ops: u64,
    transposed_reads: u64,
}

impl TransposableArray {
    /// Creates a transposable array of `rows × cols` 4-bit MLC cells.
    ///
    /// Table I sizes the transposable arrays at 64 × 128 with 4-bit
    /// MLC; other geometries are permitted for tiling and tests.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarArray::new`] validation errors.
    pub fn new(rows: usize, cols: usize, noise: NoiseModel, seed: u64) -> Result<Self, ReramError> {
        TransposableArray::with_cell_bits(rows, cols, 4, noise, seed)
    }

    /// Creates a transposable array with a non-default MLC depth
    /// (for the bits-per-cell robustness/density study of §III).
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarArray::new`] validation errors.
    pub fn with_cell_bits(
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<Self, ReramError> {
        Ok(TransposableArray {
            inner: CrossbarArray::new(rows, cols, cell_bits, noise, seed)?,
            mode: AccessMode::Idle,
            compute_ops: 0,
            transposed_reads: 0,
        })
    }

    /// Restores the array to its freshly-constructed state for a
    /// possibly different geometry, reusing the cell allocations (see
    /// [`CrossbarArray::reset`]). After a successful call the array
    /// behaves bit-identically to
    /// [`TransposableArray::with_cell_bits`] with the same arguments.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarArray::reset`] validation errors; on error
    /// the array is left unchanged.
    pub fn reset(
        &mut self,
        rows: usize,
        cols: usize,
        cell_bits: u32,
        noise: NoiseModel,
        seed: u64,
    ) -> Result<(), ReramError> {
        self.inner.reset(rows, cols, cell_bits, noise, seed)?;
        self.mode = AccessMode::Idle;
        self.compute_ops = 0;
        self.transposed_reads = 0;
        Ok(())
    }

    /// Appends `added` empty key slots (bitline columns), preserving
    /// every stored key and its programming variation — see
    /// [`CrossbarArray::append_cols`]. Used by the decode path to grow
    /// a programmed array one key at a time instead of rebuilding it.
    pub fn append_slots(&mut self, added: usize) {
        self.inner.append_cols(added);
    }

    /// Bits per MLC cell.
    pub fn cell_bits(&self) -> u32 {
        self.inner.cell_bits()
    }

    /// Number of wordlines (embedding dimension covered).
    pub fn rows(&self) -> usize {
        self.inner.rows()
    }

    /// Number of bitlines (key slots).
    pub fn cols(&self) -> usize {
        self.inner.cols()
    }

    /// The last access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Analog compute operations performed (energy hook).
    pub fn compute_ops(&self) -> u64 {
        self.compute_ops
    }

    /// Transposed reads performed (energy hook).
    pub fn transposed_reads(&self) -> u64 {
        self.transposed_reads
    }

    /// Stores the 4-bit MSB codes of key `slot` in one column.
    ///
    /// # Errors
    ///
    /// Propagates programming errors (bad slot, wrong length, code out
    /// of the signed 4-bit range).
    pub fn store_key(&mut self, slot: usize, msb_codes: &[i32]) -> Result<(), ReramError> {
        self.inner.program_column(slot, msb_codes)
    }

    /// In-situ computation: drives the query MSB codes on the
    /// wordlines and returns one approximate dot product per stored
    /// key (analog, in code units).
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarArray::vmm`] errors.
    pub fn in_situ_compute(&mut self, query_msb: &[i32]) -> Result<Vec<f64>, ReramError> {
        self.mode = AccessMode::InSituCompute;
        self.compute_ops += 1;
        self.inner.vmm(query_msb)
    }

    /// Exact digital reference for [`TransposableArray::in_situ_compute`].
    ///
    /// # Errors
    ///
    /// Propagates length validation errors.
    pub fn exact_compute(&self, query_msb: &[i32]) -> Result<Vec<i64>, ReramError> {
        self.inner.exact_vmm(query_msb)
    }

    /// Transposed read: asserts the vertical wordline of `slot` and
    /// senses the stored key codes digitally (reads are exact — sense
    /// amplifiers regenerate the programmed levels).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad slot.
    pub fn transposed_read(&mut self, slot: usize) -> Result<Vec<i32>, ReramError> {
        self.mode = AccessMode::TransposedRead;
        self.transposed_reads += 1;
        self.inner.column_codes(slot)
    }

    /// Full-scale output used to size noise and margins.
    pub fn full_scale(&self, query_msb: &[i32]) -> f64 {
        self.inner.full_scale(query_msb)
    }

    /// The construction seed of the underlying crossbar, doubling as
    /// this array's stable identity for fault coordinates.
    pub fn identity(&self) -> u64 {
        self.inner.identity()
    }

    /// Attaches (or detaches) a hard-fault model — see
    /// [`CrossbarArray::set_fault_model`].
    pub fn set_fault_model(&mut self, fault: Option<FaultModel>) {
        self.inner.set_fault_model(fault);
    }

    /// The attached fault model, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.inner.fault_model()
    }

    /// The *intended* (write-verified) codes of key `slot`, unaffected
    /// by any fault model — the digital oracle scrub passes compare
    /// [`TransposableArray::transposed_read`] against.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad slot.
    pub fn intended_codes(&self, slot: usize) -> Result<Vec<i32>, ReramError> {
        self.inner.intended_codes(slot)
    }

    /// Write-verifies key `slot`: the rows whose digital readout
    /// disagrees with the intended codes — see
    /// [`CrossbarArray::verify_column`].
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::IndexOutOfRange`] for a bad slot.
    pub fn verify_key(&self, slot: usize) -> Result<Vec<usize>, ReramError> {
        self.inner.verify_column(slot)
    }

    /// Stores key `slot` with write-verify and bounded deterministic
    /// retry — see [`CrossbarArray::program_column_verified`].
    ///
    /// # Errors
    ///
    /// Same validation as [`TransposableArray::store_key`].
    pub fn store_key_verified(
        &mut self,
        slot: usize,
        msb_codes: &[i32],
        max_attempts: u32,
    ) -> Result<ProgramOutcome, ReramError> {
        self.inner
            .program_column_verified(slot, msb_codes, max_attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_array() -> TransposableArray {
        let mut arr = TransposableArray::new(4, 3, NoiseModel::ideal(), 1).unwrap();
        arr.store_key(0, &[1, 2, 3, 4]).unwrap();
        arr.store_key(1, &[-1, -2, -3, -4]).unwrap();
        arr.store_key(2, &[7, -8, 7, -8]).unwrap();
        arr
    }

    #[test]
    fn table_one_geometry_is_constructible() {
        let arr = TransposableArray::new(64, 128, NoiseModel::default(), 0).unwrap();
        assert_eq!(arr.rows(), 64);
        assert_eq!(arr.cols(), 128);
    }

    #[test]
    fn both_modes_agree_on_stored_data() {
        let mut arr = sample_array();
        // Invariant 8 of DESIGN.md: the column the compute mode uses is
        // exactly what the transposed read returns.
        let q = vec![1, 0, 0, 0];
        let scores = arr.in_situ_compute(&q).unwrap();
        for (slot, &score) in scores.iter().enumerate().take(3) {
            let key = arr.transposed_read(slot).unwrap();
            assert_eq!(score, key[0] as f64, "slot {slot}");
        }
    }

    #[test]
    fn mode_tracking_and_counters() {
        let mut arr = sample_array();
        assert_eq!(arr.mode(), AccessMode::Idle);
        arr.in_situ_compute(&[1, 1, 1, 1]).unwrap();
        assert_eq!(arr.mode(), AccessMode::InSituCompute);
        arr.transposed_read(1).unwrap();
        assert_eq!(arr.mode(), AccessMode::TransposedRead);
        assert_eq!(arr.compute_ops(), 1);
        assert_eq!(arr.transposed_reads(), 1);
    }

    #[test]
    fn exact_compute_matches_ideal_in_situ() {
        let mut arr = sample_array();
        let q = vec![2, -1, 3, 1];
        let analog = arr.in_situ_compute(&q).unwrap();
        let exact = arr.exact_compute(&q).unwrap();
        for (a, e) in analog.iter().zip(&exact) {
            assert_eq!(*a, *e as f64);
        }
    }

    #[test]
    fn transposed_read_is_exact_even_with_noise() {
        // Reads go through sense amplifiers: digital levels come back
        // exactly even when analog compute is noisy.
        let mut arr = TransposableArray::new(8, 2, NoiseModel::default(), 9).unwrap();
        let key = vec![7, -8, 0, 3, -3, 1, -1, 5];
        arr.store_key(0, &key).unwrap();
        for _ in 0..5 {
            assert_eq!(arr.transposed_read(0).unwrap(), key);
        }
    }

    #[test]
    fn invalid_accesses_error() {
        let mut arr = sample_array();
        assert!(arr.store_key(5, &[0; 4]).is_err());
        assert!(arr.store_key(0, &[0; 3]).is_err());
        assert!(arr.transposed_read(3).is_err());
        assert!(arr.in_situ_compute(&[1, 2]).is_err());
    }
}
