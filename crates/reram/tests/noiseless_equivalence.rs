//! In-memory pruning engine invariants (ISSUE 1 satellite): a
//! zero-sigma analog path must reproduce the digital MSB decision
//! exactly, and a fixed seed must make the noisy path fully
//! deterministic.

use sprint_attention::{Matrix, PruneDecision};
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};

fn qk(seq: usize, d: usize, seed_phase: f32) -> (Matrix, Matrix) {
    let gen = |rows: usize, phase: f32| {
        let data: Vec<Vec<f32>> = (0..rows)
            .map(|r| {
                (0..d)
                    .map(|c| ((r * d + c) as f32 * 0.31 + phase).sin())
                    .collect()
            })
            .collect();
        Matrix::from_rows(&data).unwrap()
    };
    (gen(seq, seed_phase), gen(seq, seed_phase + 1.9))
}

#[test]
fn zero_sigma_pruner_matches_digital_decision_exactly() {
    let d = 16;
    let seq = 48;
    let (q, k) = qk(seq, d, 0.0);
    let scale = 1.0 / (d as f32).sqrt();
    let noise = NoiseModel::ideal();
    assert_eq!(noise.relative_sigma(), 0.0);
    assert_eq!(noise.programming_sigma(), 0.0);
    let mut pruner = InMemoryPruner::new(&q, &k, scale, noise, 11).unwrap();
    let spec = ThresholdSpec::default();
    for i in 0..seq {
        // Digital reference: threshold the exact MSB-level scores.
        let exact = pruner.exact_msb_scores(q.row(i)).unwrap();
        let max = exact.iter().cloned().fold(f32::MIN, f32::max);
        // Off-lattice threshold so analog/digital rounding can't
        // straddle an exact tie.
        let threshold = 0.37 * max + 1e-4;
        let digital = PruneDecision::from_scores(&exact, threshold);
        let outcome = pruner.prune_query(q.row(i), threshold, &spec).unwrap();
        assert_eq!(
            outcome.decision.as_slice(),
            digital.as_slice(),
            "query {i}: noiseless analog decision diverged from digital"
        );
    }
}

#[test]
fn fixed_seed_pruner_is_deterministic_under_noise() {
    let d = 16;
    let seq = 32;
    let (q, k) = qk(seq, d, 0.4);
    let scale = 1.0 / (d as f32).sqrt();
    let noise = NoiseModel::from_sigmas(0.05, 0.03).unwrap();
    let run = |seed: u64| {
        let mut pruner = InMemoryPruner::new(&q, &k, scale, noise, seed).unwrap();
        let spec = ThresholdSpec::analog_with_noise_margin(&noise);
        let mut decisions = Vec::new();
        let mut scores = Vec::new();
        for i in 0..seq {
            let out = pruner.prune_query(q.row(i), 0.2, &spec).unwrap();
            decisions.push(out.decision);
            scores.push(out.approx_scores);
        }
        (decisions, scores)
    };
    let (d1, s1) = run(77);
    let (d2, s2) = run(77);
    assert_eq!(d1, d2, "same seed must give identical pruning decisions");
    assert_eq!(s1, s2, "same seed must give identical approximate scores");
    let (d3, _) = run(78);
    assert_ne!(
        d1, d3,
        "different seeds should perturb at least one noisy decision"
    );
}
