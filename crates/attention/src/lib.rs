//! Self-attention math substrate for the SPRINT reproduction.
//!
//! Implements the arithmetic layer of the paper (§II-A background and the
//! §VI on-chip datapath): a small row-major [`Matrix`] type, symmetric
//! fixed-point quantization for the 8-bit QK/V datapath (12-bit softmax
//! inputs, 16-bit attention outputs), exact and hardware (two-LUT)
//! softmax, dense reference attention, learned-threshold runtime pruning
//! in the style of LeOPArd, and the agreement metrics used by the
//! accuracy studies of Figs. 5 and 9.
//!
//! # Example
//!
//! ```
//! use sprint_attention::{Matrix, dense_attention, AttentionConfig};
//!
//! # fn main() -> Result<(), sprint_attention::AttentionError> {
//! let d = 4;
//! let q = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]])?;
//! let k = q.clone();
//! let v = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]])?;
//! let out = dense_attention(&q, &k, &v, &AttentionConfig::new(d))?;
//! assert_eq!(out.output.rows(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod attention;
mod decode;
mod error;
mod fixed;
mod matrix;
mod metrics;
mod paged;
mod pruning;
pub mod reference;
pub mod simd;
mod softmax;
mod workspace;

pub use attention::{
    dense_attention, dense_attention_with, pruned_attention, pruned_attention_with,
    quantized_attention, quantized_attention_with, AttentionConfig, AttentionOutput, PaddingMask,
    QuantizedAttentionOutput, MASK_NEG,
};
pub use decode::{
    dense_attention_decode_with, pruned_attention_decode_cached_with, pruned_attention_decode_with,
    quantized_attention_decode_with, KvCache, KvDelta,
};
pub use error::AttentionError;
pub use fixed::{dequantize, quantize_matrix, quantize_value, QuantParams, QuantizedMatrix};
pub use matrix::Matrix;
pub use metrics::{kl_divergence, mean_abs_error, prune_set_overlap, top1_agreement};
pub use paged::{PagePool, DEFAULT_PAGE_BYTES};
pub use pruning::{calibrate_threshold, pruning_stats, PruneDecision, PruningStats, ThresholdSet};
pub use simd::{active_tier, avx2_available, sanitize_tier, ulp_distance, SimdTier};
pub use softmax::{
    softmax_exact, softmax_inplace, softmax_inplace_tier, softmax_masked, softmax_masked_inplace,
    SoftmaxLut,
};
pub use workspace::Workspace;
