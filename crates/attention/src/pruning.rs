//! Learned-threshold runtime pruning (LeOPArd-style, §II-A).
//!
//! The paper builds on gradient-based learned runtime pruning: a
//! per-layer threshold `Th` is learned during fine-tuning and applied at
//! inference, pruning every key whose score falls below it. This module
//! provides the converged artifact — a per-layer [`ThresholdSet`] — and
//! a calibration routine that recovers the threshold from sample score
//! distributions and a target pruning rate (the two are interchangeable
//! for the architecture study; see DESIGN.md substitutions).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{AttentionError, Matrix};

/// The pruning decision for one query: which keys were pruned.
///
/// Follows the paper's encoding for the binary pruning vector produced
/// by the in-memory comparators: **`true` (1) means pruned**, `false`
/// (0) means the key is kept and must be fetched.
///
/// The flag storage is shared on clone (`Arc`-backed, copy-on-write on
/// [`PruneDecision::apply_padding`]): cloning a decision is a
/// reference-count bump, so the padded tail of a head — one identical
/// all-pruned decision per padded query — shares a single allocation
/// instead of materializing `s × s` flags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneDecision {
    pruned: Arc<Vec<bool>>,
}

impl PruneDecision {
    /// Builds a decision from per-key pruned flags.
    pub fn new(pruned: Vec<bool>) -> Self {
        PruneDecision {
            pruned: Arc::new(pruned),
        }
    }

    /// Builds a decision by thresholding a score row: keys with
    /// `score < threshold` are pruned (Eq. 3 of the paper).
    pub fn from_scores(scores: &[f32], threshold: f32) -> Self {
        PruneDecision::new(scores.iter().map(|&s| s < threshold).collect())
    }

    /// Number of keys covered by the decision.
    pub fn len(&self) -> usize {
        self.pruned.len()
    }

    /// Whether the decision covers zero keys.
    pub fn is_empty(&self) -> bool {
        self.pruned.is_empty()
    }

    /// Whether key `i` is pruned.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_pruned(&self, i: usize) -> bool {
        self.pruned[i]
    }

    /// Whether key `i` is kept.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_kept(&self, i: usize) -> bool {
        !self.pruned[i]
    }

    /// The pruned flags as a slice (`true` = pruned).
    pub fn as_slice(&self) -> &[bool] {
        &self.pruned
    }

    /// Indices of kept (unpruned) keys, ascending.
    pub fn kept_indices(&self) -> Vec<usize> {
        self.pruned
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (!p).then_some(i))
            .collect()
    }

    /// Number of kept keys.
    pub fn kept_count(&self) -> usize {
        self.pruned.iter().filter(|&&p| !p).count()
    }

    /// Fraction of keys pruned.
    pub fn prune_rate(&self) -> f64 {
        if self.pruned.is_empty() {
            0.0
        } else {
            (self.len() - self.kept_count()) as f64 / self.len() as f64
        }
    }

    /// Marks every key at or beyond `live` as pruned (padding mask).
    ///
    /// Copy-on-write: a decision whose storage is shared with clones is
    /// detached before mutation, so the clones are unaffected.
    pub fn apply_padding(&mut self, live: usize) {
        for (i, p) in Arc::make_mut(&mut self.pruned).iter_mut().enumerate() {
            if i >= live {
                *p = true;
            }
        }
    }

    /// Whether two decisions share the same backing allocation (clones
    /// do, until one is mutated). Sharing is an optimization only —
    /// equality is always by value.
    pub fn shares_storage(a: &PruneDecision, b: &PruneDecision) -> bool {
        Arc::ptr_eq(&a.pruned, &b.pruned)
    }

    /// Count of keys kept by `self` that are also kept by `other`
    /// (the overlap exploited by the spatial-locality engine).
    ///
    /// # Panics
    ///
    /// Panics if the two decisions cover different key counts.
    pub fn kept_overlap(&self, other: &PruneDecision) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "decisions cover different key counts"
        );
        self.pruned
            .iter()
            .zip(other.pruned.iter())
            .filter(|(&a, &b)| !a && !b)
            .count()
    }
}

/// Aggregate pruning statistics over all queries of a head.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PruningStats {
    /// Mean fraction of keys pruned per live query.
    pub mean_prune_rate: f64,
    /// Mean fraction of a query's kept keys that were also kept by the
    /// previous query (adjacent-query overlap, Fig. 3).
    pub mean_adjacent_overlap: f64,
    /// Number of live (non-padded) queries measured.
    pub live_queries: usize,
}

/// Computes [`PruningStats`] over a sequence of per-query decisions.
///
/// Queries with zero kept keys contribute a zero overlap term, matching
/// how the memory controller would see them (nothing to reuse).
pub fn pruning_stats(decisions: &[PruneDecision]) -> PruningStats {
    if decisions.is_empty() {
        return PruningStats::default();
    }
    let mut rate_sum = 0.0;
    let mut overlap_sum = 0.0;
    let mut overlap_terms = 0usize;
    for (i, d) in decisions.iter().enumerate() {
        rate_sum += d.prune_rate();
        if i > 0 {
            let kept = d.kept_count();
            if kept > 0 {
                overlap_sum += d.kept_overlap(&decisions[i - 1]) as f64 / kept as f64;
            }
            overlap_terms += 1;
        }
    }
    PruningStats {
        mean_prune_rate: rate_sum / decisions.len() as f64,
        mean_adjacent_overlap: if overlap_terms == 0 {
            0.0
        } else {
            overlap_sum / overlap_terms as f64
        },
        live_queries: decisions.len(),
    }
}

/// Per-layer learned pruning thresholds.
///
/// # Example
///
/// ```
/// use sprint_attention::ThresholdSet;
///
/// let set = ThresholdSet::uniform(12, -0.5);
/// assert_eq!(set.layer(3), -0.5);
/// assert_eq!(set.layers(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSet {
    per_layer: Vec<f32>,
}

impl ThresholdSet {
    /// Creates a set with one threshold per layer.
    ///
    /// # Panics
    ///
    /// Panics if `per_layer` is empty.
    pub fn new(per_layer: Vec<f32>) -> Self {
        assert!(!per_layer.is_empty(), "a model has at least one layer");
        ThresholdSet { per_layer }
    }

    /// Creates a set with the same threshold in every layer.
    pub fn uniform(layers: usize, threshold: f32) -> Self {
        ThresholdSet::new(vec![threshold; layers.max(1)])
    }

    /// Number of layers covered.
    pub fn layers(&self) -> usize {
        self.per_layer.len()
    }

    /// Threshold for `layer`, clamping past the last layer (ALBERT-style
    /// layer sharing reuses the last threshold).
    pub fn layer(&self, layer: usize) -> f32 {
        self.per_layer[layer.min(self.per_layer.len() - 1)]
    }
}

/// Calibrates a pruning threshold from sample scores so that the target
/// fraction of entries falls below it.
///
/// This recovers the converged value of LeOPArd's gradient-learned
/// threshold: at convergence the threshold sits at the score quantile
/// that prunes the learned rate. Only finite scores participate
/// (padding positions carry `-inf`/`MASK_NEG` and are excluded).
///
/// # Errors
///
/// Returns [`AttentionError::EmptyInput`] when `scores` contains no
/// finite entries, or [`AttentionError::InvalidQuantization`] when
/// `target_prune_rate` is outside `[0, 1)`.
///
/// # Example
///
/// ```
/// use sprint_attention::{calibrate_threshold, Matrix};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let scores = Matrix::from_rows(&[vec![0.0, 1.0, 2.0, 3.0]])?;
/// let th = calibrate_threshold(&scores, 0.5)?;
/// assert!(th > 1.0 && th <= 2.0); // prunes {0.0, 1.0}
/// # Ok(())
/// # }
/// ```
pub fn calibrate_threshold(scores: &Matrix, target_prune_rate: f64) -> Result<f32, AttentionError> {
    if !(0.0..1.0).contains(&target_prune_rate) {
        return Err(AttentionError::InvalidQuantization(format!(
            "target prune rate {target_prune_rate} outside [0, 1)"
        )));
    }
    let mut finite: Vec<f32> = scores
        .as_slice()
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    if finite.is_empty() {
        return Err(AttentionError::EmptyInput("finite scores for calibration"));
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite scores compare"));
    let idx = ((finite.len() as f64) * target_prune_rate).floor() as usize;
    if idx == 0 {
        // Prune nothing: any threshold at or below the minimum works.
        return Ok(finite[0]);
    }
    let idx = idx.min(finite.len() - 1);
    // Threshold strictly between the last pruned and first kept score.
    let below = finite[idx - 1];
    let at = finite[idx];
    Ok(if below < at { (below + at) / 2.0 } else { at })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decision_from_scores_applies_strict_less_than() {
        let d = PruneDecision::from_scores(&[0.1, 0.5, 0.9], 0.5);
        assert!(d.is_pruned(0));
        assert!(d.is_kept(1), "score equal to threshold is kept");
        assert!(d.is_kept(2));
        assert_eq!(d.kept_indices(), vec![1, 2]);
        assert_eq!(d.kept_count(), 2);
        assert!((d.prune_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = PruneDecision::new(vec![false, true, false]);
        let mut b = a.clone();
        assert!(PruneDecision::shares_storage(&a, &b));
        // Copy-on-write: mutation detaches the clone, the original is
        // untouched.
        b.apply_padding(1);
        assert!(!PruneDecision::shares_storage(&a, &b));
        assert!(a.is_kept(2));
        assert!(b.is_pruned(2));
    }

    #[test]
    fn padding_prunes_tail() {
        let mut d = PruneDecision::new(vec![false; 6]);
        d.apply_padding(4);
        assert_eq!(d.kept_count(), 4);
        assert!(d.is_pruned(5));
    }

    #[test]
    fn overlap_counts_jointly_kept() {
        let a = PruneDecision::new(vec![false, false, true, false]);
        let b = PruneDecision::new(vec![false, true, true, false]);
        assert_eq!(a.kept_overlap(&b), 2);
        assert_eq!(b.kept_overlap(&a), 2, "overlap is symmetric");
    }

    #[test]
    #[should_panic(expected = "different key counts")]
    fn overlap_rejects_mismatched_lengths() {
        let a = PruneDecision::new(vec![false]);
        let b = PruneDecision::new(vec![false, true]);
        let _ = a.kept_overlap(&b);
    }

    #[test]
    fn stats_aggregate_rates_and_overlap() {
        let decisions = vec![
            PruneDecision::new(vec![false, false, true, true]),
            PruneDecision::new(vec![false, true, true, false]),
        ];
        let stats = pruning_stats(&decisions);
        assert!((stats.mean_prune_rate - 0.5).abs() < 1e-12);
        // Second query keeps {0, 3}; first kept {0, 1} -> overlap 1 of 2.
        assert!((stats.mean_adjacent_overlap - 0.5).abs() < 1e-12);
        assert_eq!(stats.live_queries, 2);
    }

    #[test]
    fn stats_handle_empty_and_fully_pruned() {
        assert_eq!(pruning_stats(&[]), PruningStats::default());
        let decisions = vec![
            PruneDecision::new(vec![true, true]),
            PruneDecision::new(vec![true, true]),
        ];
        let stats = pruning_stats(&decisions);
        assert_eq!(stats.mean_prune_rate, 1.0);
        assert_eq!(stats.mean_adjacent_overlap, 0.0);
    }

    #[test]
    fn threshold_set_clamps_layer_index() {
        let set = ThresholdSet::new(vec![-1.0, -2.0]);
        assert_eq!(set.layer(0), -1.0);
        assert_eq!(set.layer(1), -2.0);
        assert_eq!(set.layer(99), -2.0);
    }

    #[test]
    fn calibration_hits_target_rate() {
        let scores = Matrix::from_vec(1, 100, (0..100).map(|i| i as f32).collect()).unwrap();
        for target in [0.0, 0.25, 0.5, 0.75, 0.9] {
            let th = calibrate_threshold(&scores, target).unwrap();
            let d = PruneDecision::from_scores(scores.row(0), th);
            assert!(
                (d.prune_rate() - target).abs() <= 0.011,
                "target={target} got={}",
                d.prune_rate()
            );
        }
    }

    #[test]
    fn calibration_ignores_non_finite_scores() {
        let mut row = vec![f32::NEG_INFINITY; 50];
        row.extend((0..50).map(|i| i as f32));
        let scores = Matrix::from_vec(1, 100, row).unwrap();
        let th = calibrate_threshold(&scores, 0.5).unwrap();
        // Half of the *finite* scores are below the threshold.
        assert!(th > 24.0 && th < 26.0, "th={th}");
    }

    #[test]
    fn calibration_rejects_bad_inputs() {
        let scores = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(calibrate_threshold(&scores, 1.0).is_err());
        assert!(calibrate_threshold(&scores, -0.1).is_err());
        let masked = Matrix::from_rows(&[vec![f32::NEG_INFINITY]]).unwrap();
        assert!(calibrate_threshold(&masked, 0.5).is_err());
    }

    proptest! {
        #[test]
        fn prop_calibration_rate_close(
            n in 10usize..300,
            target in 0.0f64..0.95,
            seed in 0u64..500,
        ) {
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x >> 40) as f32 / 16777216.0
            };
            let scores = Matrix::from_vec(1, n, (0..n).map(|_| next()).collect()).unwrap();
            let th = calibrate_threshold(&scores, target).unwrap();
            let d = PruneDecision::from_scores(scores.row(0), th);
            // Quantile granularity limits accuracy to ~1/n (ties aside).
            prop_assert!((d.prune_rate() - target).abs() <= 2.0 / n as f64 + 1e-9);
        }

        #[test]
        fn prop_prune_rate_monotone_in_threshold(
            th1 in -1.0f32..1.0, th2 in -1.0f32..1.0,
        ) {
            let scores: Vec<f32> = (0..64).map(|i| (i as f32 / 32.0) - 1.0).collect();
            let (lo, hi) = if th1 <= th2 { (th1, th2) } else { (th2, th1) };
            let d_lo = PruneDecision::from_scores(&scores, lo);
            let d_hi = PruneDecision::from_scores(&scores, hi);
            prop_assert!(d_lo.prune_rate() <= d_hi.prune_rate());
            // Monotone set containment: everything kept at hi is kept at lo.
            for i in 0..scores.len() {
                if d_hi.is_kept(i) {
                    prop_assert!(d_lo.is_kept(i));
                }
            }
        }
    }
}
