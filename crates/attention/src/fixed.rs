//! Symmetric fixed-point quantization for the SPRINT digital datapath.
//!
//! The paper's accelerator "performs all the computations in 8-bit
//! precision, except Softmax with 12-bit inputs. For final attention
//! score, we employ 16-bit precision" (§VI). This module provides the
//! symmetric (zero-point-free) quantizer used for all of those widths.

use serde::{Deserialize, Serialize};

use crate::{AttentionError, Matrix};

/// Parameters of a symmetric uniform quantizer.
///
/// A value `x` is represented as `round(x / scale)` clamped to the
/// signed `bits`-bit range. Symmetric quantization is the standard
/// choice for attention accelerators (A3, SpAtten, LeOPArd all use it)
/// because scores are roughly zero-centred.
///
/// # Example
///
/// ```
/// use sprint_attention::QuantParams;
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let p = QuantParams::for_range(8, 4.0)?; // 8-bit covering [-4, 4]
/// let q = p.quantize(1.0);
/// let back = p.dequantize(q);
/// assert!((back - 1.0).abs() <= p.step() / 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    bits: u32,
    scale: f32,
}

impl QuantParams {
    /// Creates quantizer parameters from a bit width and scale (the real
    /// value of one least-significant bit).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidQuantization`] unless
    /// `1 <= bits <= 24` and `scale` is positive and finite.
    pub fn new(bits: u32, scale: f32) -> Result<Self, AttentionError> {
        if !(1..=24).contains(&bits) {
            return Err(AttentionError::InvalidQuantization(format!(
                "bit width {bits} outside 1..=24"
            )));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(AttentionError::InvalidQuantization(format!(
                "scale {scale} must be positive and finite"
            )));
        }
        Ok(QuantParams { bits, scale })
    }

    /// Creates parameters whose representable range covers
    /// `[-max_abs, +max_abs]` with `bits` bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantParams::new`]; additionally `max_abs`
    /// must be positive and finite.
    pub fn for_range(bits: u32, max_abs: f32) -> Result<Self, AttentionError> {
        if !(max_abs.is_finite() && max_abs > 0.0) {
            return Err(AttentionError::InvalidQuantization(format!(
                "max_abs {max_abs} must be positive and finite"
            )));
        }
        let qmax = ((1i64 << (bits.min(24) - 1)) - 1) as f32;
        QuantParams::new(bits, max_abs / qmax)
    }

    /// Creates parameters calibrated to cover the dynamic range of `m`.
    ///
    /// # Errors
    ///
    /// Returns an error when the matrix is all-zero (no range to cover)
    /// or bits are out of range.
    pub fn for_matrix(bits: u32, m: &Matrix) -> Result<Self, AttentionError> {
        QuantParams::for_max_abs(bits, m.max_abs())
    }

    /// Creates parameters for a known dynamic-range maximum — exactly
    /// the policy [`QuantParams::for_matrix`] applies after scanning a
    /// matrix (an all-zero tensor, `max_abs == 0.0`, quantizes exactly
    /// with any scale). Incremental callers that maintain a *running*
    /// maximum over append-only data (the decode KV cache, the
    /// pruner's extend path) use this to derive bit-identical params
    /// without rescanning the history.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantParams::for_range`] (non-finite
    /// maxima are rejected).
    pub fn for_max_abs(bits: u32, max_abs: f32) -> Result<Self, AttentionError> {
        if max_abs == 0.0 {
            return QuantParams::new(bits, 1.0);
        }
        QuantParams::for_range(bits, max_abs)
    }

    /// The bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The real value of one quantization step.
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// Largest representable integer code.
    pub fn qmax(&self) -> i32 {
        ((1i64 << (self.bits - 1)) - 1) as i32
    }

    /// Smallest representable integer code (symmetric: `-qmax`).
    pub fn qmin(&self) -> i32 {
        -self.qmax()
    }

    /// Quantizes a real value to an integer code with
    /// round-to-nearest-even and saturation.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round_ties_even() as i64;
        q.clamp(self.qmin() as i64, self.qmax() as i64) as i32
    }

    /// Reconstructs the real value of an integer code.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantize-dequantize round trip ("fake quantization").
    pub fn fake_quantize(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// Quantizes a single value with `bits` covering `[-max_abs, max_abs]`.
///
/// Convenience wrapper over [`QuantParams::for_range`].
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn quantize_value(x: f32, bits: u32, max_abs: f32) -> Result<i32, AttentionError> {
    Ok(QuantParams::for_range(bits, max_abs)?.quantize(x))
}

/// Reconstructs a value quantized by [`quantize_value`].
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn dequantize(q: i32, bits: u32, max_abs: f32) -> Result<f32, AttentionError> {
    Ok(QuantParams::for_range(bits, max_abs)?.dequantize(q))
}

/// A matrix quantized to integer codes with shared [`QuantParams`].
///
/// This is the at-rest format of Q/K/V data in SPRINT's ReRAM: 8-bit
/// codes whose upper four bits (`msb_nibble`) live in the transposable
/// arrays and lower four (`lsb_nibble`) in standard arrays (§III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i32>,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shared quantizer parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Integer code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn code(&self, r: usize, c: usize) -> i32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.codes[r * self.cols + c]
    }

    /// Row `r` of integer codes.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn code_row(&self, r: usize) -> &[i32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends one row of values, quantized **with the existing
    /// params** — no recalibration. Values beyond the calibrated range
    /// saturate, so callers growing a matrix whose dynamic range may
    /// widen (the decode KV cache) must compare
    /// [`QuantParams::for_matrix`] over the grown data and requantize
    /// from scratch when the params change; `sprint_attention::KvCache`
    /// wraps exactly that policy.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidQuantization`] unless
    /// `row.len() == cols`.
    pub fn push_row(&mut self, row: &[f32]) -> Result<(), AttentionError> {
        if row.len() != self.cols {
            return Err(AttentionError::InvalidQuantization(format!(
                "pushed row holds {} values, matrix has {} columns",
                row.len(),
                self.cols
            )));
        }
        self.codes
            .extend(row.iter().map(|&x| self.params.quantize(x)));
        self.rows += 1;
        Ok(())
    }

    /// Reconstructs the real-valued matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.codes
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
        .expect("shape preserved by construction")
    }

    /// Splits an 8-bit code into its 4 most significant bits, re-signed.
    ///
    /// For an 8-bit code `q`, the MSB nibble is `q >> 4`, i.e. the value
    /// a 4-bit MLC ReRAM cell stores for in-memory thresholding. The
    /// reconstruction `(q >> 4) << 4` differs from `q` by at most 15
    /// codes — the approximation the in-memory compute sees.
    pub fn msb_nibble(&self, r: usize, c: usize) -> i32 {
        self.code(r, c) >> 4
    }

    /// The complementary low nibble such that
    /// `(msb << 4) + lsb == code` always holds.
    pub fn lsb_nibble(&self, r: usize, c: usize) -> i32 {
        self.code(r, c) - ((self.code(r, c) >> 4) << 4)
    }

    /// The *rounded* MSB nibble: `round(code / 16)` clamped to the
    /// signed 4-bit range.
    ///
    /// Plain truncation (`code >> 4`) biases every stored value toward
    /// −∞ by up to 15 codes, which systematically over-prunes near the
    /// threshold; rounding at write time (one adder in the MSB/LSB
    /// split path) keeps the in-memory approximation zero-mean. The
    /// signed residual `code − 16·msb` lies in `[-8, 7]` and still
    /// fits the 4-bit LSB cell.
    pub fn msb_rounded(&self, r: usize, c: usize) -> i32 {
        let code = self.code(r, c);
        // Round half away from zero, then clamp to the cell range.
        let rounded = if code >= 0 {
            (code + 8) / 16
        } else {
            (code - 8) / 16
        };
        rounded.clamp(-8, 7)
    }

    /// The signed residual paired with [`QuantizedMatrix::msb_rounded`]:
    /// `code − 16·msb`, in `[-8, 8]` (clamping at the positive extreme
    /// widens it by one code, still within a 4-bit signed cell plus
    /// the shared sign).
    pub fn lsb_residual(&self, r: usize, c: usize) -> i32 {
        self.code(r, c) - 16 * self.msb_rounded(r, c)
    }
}

/// Quantizes a matrix to `bits`-bit codes calibrated to its own range.
///
/// # Errors
///
/// Propagates [`QuantParams`] validation errors.
///
/// # Example
///
/// ```
/// use sprint_attention::{Matrix, quantize_matrix};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let m = Matrix::from_rows(&[vec![0.5, -1.0, 0.25]])?;
/// let q = quantize_matrix(&m, 8)?;
/// let back = q.to_matrix();
/// assert!((back.get(0, 1) - -1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn quantize_matrix(m: &Matrix, bits: u32) -> Result<QuantizedMatrix, AttentionError> {
    let params = QuantParams::for_matrix(bits, m)?;
    Ok(QuantizedMatrix {
        rows: m.rows(),
        cols: m.cols(),
        codes: m.as_slice().iter().map(|&x| params.quantize(x)).collect(),
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(QuantParams::new(0, 1.0).is_err());
        assert!(QuantParams::new(25, 1.0).is_err());
        assert!(QuantParams::new(8, 0.0).is_err());
        assert!(QuantParams::new(8, f32::NAN).is_err());
        assert!(QuantParams::new(8, -1.0).is_err());
        assert!(QuantParams::new(8, 0.25).is_ok());
    }

    #[test]
    fn eight_bit_range_is_symmetric() {
        let p = QuantParams::for_range(8, 1.0).unwrap();
        assert_eq!(p.qmax(), 127);
        assert_eq!(p.qmin(), -127);
        assert_eq!(p.quantize(10.0), 127, "saturates above range");
        assert_eq!(p.quantize(-10.0), -127, "saturates below range");
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let p = QuantParams::for_range(8, 4.0).unwrap();
        for i in -100..=100 {
            let x = i as f32 * 0.037;
            let err = (p.fake_quantize(x) - x).abs();
            assert!(err <= p.step() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn matrix_quantization_covers_range() {
        let m = Matrix::from_rows(&[vec![3.0, -3.0, 1.5, 0.0]]).unwrap();
        let q = quantize_matrix(&m, 8).unwrap();
        assert_eq!(q.code(0, 0), 127);
        assert_eq!(q.code(0, 1), -127);
        assert_eq!(q.code(0, 3), 0);
    }

    #[test]
    fn all_zero_matrix_quantizes_without_error() {
        let m = Matrix::zeros(2, 2).unwrap();
        let q = quantize_matrix(&m, 8).unwrap();
        assert!(q.code_row(0).iter().all(|&c| c == 0));
        assert_eq!(q.to_matrix(), m);
    }

    #[test]
    fn nibble_split_reconstructs_code() {
        let m = Matrix::from_rows(&[vec![1.0, -0.37, 0.92, -1.0, 0.004]]).unwrap();
        let q = quantize_matrix(&m, 8).unwrap();
        for c in 0..5 {
            let msb = q.msb_nibble(0, c);
            let lsb = q.lsb_nibble(0, c);
            assert_eq!((msb << 4) + lsb, q.code(0, c));
            assert!((0..16).contains(&lsb), "lsb nibble {lsb} out of range");
            assert!((-8..8).contains(&msb), "msb nibble {msb} out of range");
        }
    }

    #[test]
    fn value_helpers_round_trip() {
        let q = quantize_value(0.5, 12, 2.0).unwrap();
        let x = dequantize(q, 12, 2.0).unwrap();
        assert!((x - 0.5).abs() < 2.0 / 2047.0);
    }

    proptest! {
        #[test]
        fn prop_quantize_monotone(bits in 2u32..16, a in -10.0f32..10.0, b in -10.0f32..10.0) {
            let p = QuantParams::for_range(bits, 10.0).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.quantize(lo) <= p.quantize(hi));
        }

        #[test]
        fn prop_round_trip_bounded(bits in 4u32..16, x in -8.0f32..8.0) {
            let p = QuantParams::for_range(bits, 8.0).unwrap();
            let err = (p.fake_quantize(x) - x).abs();
            prop_assert!(err <= p.step() / 2.0 + 1e-6);
        }

        #[test]
        fn prop_nibbles_recombine(x in -1.0f32..1.0) {
            let m = Matrix::from_rows(&[vec![x, 1.0]]).unwrap();
            let q = quantize_matrix(&m, 8).unwrap();
            prop_assert_eq!((q.msb_nibble(0, 0) << 4) + q.lsb_nibble(0, 0), q.code(0, 0));
        }
    }
}
