//! The shared fixed-size page pool under the decode KV caches.
//!
//! A monolithic append-only [`crate::KvCache`] makes every decode
//! session own an unbounded, contiguous K/V history — fine for one
//! session, fatal for serving thousands: resident memory is the
//! product of session count and history length, and nothing can be
//! reclaimed without killing a session. [`PagePool`] breaks the
//! history into fixed-size pages (float K/V rows plus their 8-bit
//! codes plus the quantization params that produced them), so caches
//! allocate in page units, eviction returns whole pages to a shared
//! free list, and capacity is an exact page count rather than a hope.
//!
//! Accounting is exact by construction: every allocate/release pair
//! moves `pages_in_use` by one, freed pages are reused before the pool
//! ever grows (`allocated_pages() == peak_pages()` is an invariant,
//! property-tested below), and a bounded pool refuses — with
//! [`AttentionError::PoolExhausted`] — rather than overcommits. A
//! refused allocation mutates nothing, so callers can evict and retry.

use std::sync::{Arc, Mutex};

use crate::AttentionError;

/// Default page size: 64 KiB, a few dozen to a few hundred tokens per
/// page at the studied head dimensions.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;

/// Bytes one token occupies in a page per K/V column: a 4-byte float
/// plus a 1-byte code, for both the key and the value row.
const BYTES_PER_ELEMENT: usize = 5;

/// The buffers of one page: float rows and 8-bit codes for both the
/// key and the value history slice the page holds. Released pages keep
/// their allocations on the free list; reuse resizes them to the new
/// cache's layout.
///
/// Pages move by value between the pool and exactly one owning cache,
/// so a double free is unrepresentable: releasing a page consumes it.
#[derive(Debug, Default)]
pub(crate) struct PageBuffers {
    pub(crate) k_floats: Vec<f32>,
    pub(crate) v_floats: Vec<f32>,
    pub(crate) k_codes: Vec<i8>,
    pub(crate) v_codes: Vec<i8>,
}

#[derive(Debug)]
struct PoolState {
    page_bytes: usize,
    capacity_pages: Option<usize>,
    pages_in_use: usize,
    peak_pages: usize,
    allocated_pages: u64,
    reused_pages: u64,
    free: Vec<PageBuffers>,
}

/// A shared pool of fixed-size KV pages with exact capacity
/// accounting.
///
/// Cloning the handle shares the pool (an `Arc` around the state), so
/// one pool bounds every cache built over it — the serving layers hand
/// one pool to all concurrent decode sessions. An unbounded pool never
/// refuses but still accounts; a bounded pool returns
/// [`AttentionError::PoolExhausted`] once `capacity_pages` pages are
/// in use, which is the signal the session layers turn into eviction.
///
/// # Example
///
/// ```
/// use sprint_attention::{KvCache, Matrix, PagePool};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let pool = PagePool::bounded(256, 2); // tiny pages, 2-page budget
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let cache = KvCache::new_in(&pool, &k, &k)?;
/// assert!(pool.pages_in_use() >= 1);
/// drop(cache); // pages return to the pool's free list
/// assert_eq!(pool.pages_in_use(), 0);
/// assert_eq!(pool.allocated_pages(), pool.peak_pages() as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PagePool {
    inner: Arc<Mutex<PoolState>>,
}

impl PagePool {
    fn with_capacity(page_bytes: usize, capacity_pages: Option<usize>) -> Self {
        PagePool {
            inner: Arc::new(Mutex::new(PoolState {
                page_bytes: page_bytes.max(BYTES_PER_ELEMENT),
                capacity_pages,
                pages_in_use: 0,
                peak_pages: 0,
                allocated_pages: 0,
                reused_pages: 0,
                free: Vec::new(),
            })),
        }
    }

    /// A pool that never refuses an allocation (capacity accounting
    /// still runs; `page_bytes` is clamped to hold at least one
    /// element).
    pub fn unbounded(page_bytes: usize) -> Self {
        PagePool::with_capacity(page_bytes, None)
    }

    /// A pool refusing allocations beyond `capacity_pages` pages in
    /// use (clamped to at least one page).
    pub fn bounded(page_bytes: usize, capacity_pages: usize) -> Self {
        PagePool::with_capacity(page_bytes, Some(capacity_pages.max(1)))
    }

    /// The fixed page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.state().page_bytes
    }

    /// The page budget (`None` for an unbounded pool).
    pub fn capacity_pages(&self) -> Option<usize> {
        self.state().capacity_pages
    }

    /// Pages currently owned by live caches.
    pub fn pages_in_use(&self) -> usize {
        self.state().pages_in_use
    }

    /// Exact bytes held by live caches: `pages_in_use * page_bytes`.
    pub fn bytes_in_use(&self) -> usize {
        let s = self.state();
        s.pages_in_use * s.page_bytes
    }

    /// The high-water mark of [`PagePool::pages_in_use`].
    pub fn peak_pages(&self) -> usize {
        self.state().peak_pages
    }

    /// Pages sitting on the free list, ready for reuse.
    pub fn free_pages(&self) -> usize {
        self.state().free.len()
    }

    /// Pages ever created fresh (never decremented). Equal to
    /// [`PagePool::peak_pages`] at all times: a fresh page is created
    /// only when the free list is empty, i.e. freed pages are always
    /// reused before the pool grows.
    pub fn allocated_pages(&self) -> u64 {
        self.state().allocated_pages
    }

    /// Allocations served from the free list instead of fresh memory.
    pub fn reused_pages(&self) -> u64 {
        self.state().reused_pages
    }

    /// How many tokens one page holds for a cache with key embedding
    /// `d` and value width `d_v` (each token stores a float and an
    /// 8-bit code per column, K and V both). At least one token per
    /// page, so even an oversized layout pages correctly.
    pub fn tokens_per_page(&self, d: usize, d_v: usize) -> usize {
        (self.state().page_bytes / (BYTES_PER_ELEMENT * (d + d_v).max(1))).max(1)
    }

    /// Takes one page sized for `tokens` tokens of a `(d, d_v)`
    /// layout, reusing a freed page when one exists.
    ///
    /// # Errors
    ///
    /// [`AttentionError::PoolExhausted`] when a bounded pool is at
    /// capacity with an empty free list; the pool is unchanged.
    pub(crate) fn allocate(
        &self,
        d: usize,
        d_v: usize,
        tokens: usize,
    ) -> Result<PageBuffers, AttentionError> {
        let mut s = self.state();
        let mut buf = match s.free.pop() {
            Some(buf) => {
                s.reused_pages += 1;
                buf
            }
            None => {
                if let Some(capacity) = s.capacity_pages {
                    if s.pages_in_use >= capacity {
                        return Err(AttentionError::PoolExhausted {
                            in_use: s.pages_in_use,
                            capacity,
                        });
                    }
                }
                s.allocated_pages += 1;
                PageBuffers::default()
            }
        };
        s.pages_in_use += 1;
        s.peak_pages = s.peak_pages.max(s.pages_in_use);
        drop(s);
        // (Re)size to the requesting cache's layout; a reused page
        // keeps whatever backing capacity it already grew.
        buf.k_floats.clear();
        buf.k_floats.resize(tokens * d, 0.0);
        buf.v_floats.clear();
        buf.v_floats.resize(tokens * d_v, 0.0);
        buf.k_codes.clear();
        buf.k_codes.resize(tokens * d, 0);
        buf.v_codes.clear();
        buf.v_codes.resize(tokens * d_v, 0);
        Ok(buf)
    }

    /// Returns a page to the free list. Consumes the buffers, so a
    /// page cannot be released twice.
    pub(crate) fn release(&self, buf: PageBuffers) {
        let mut s = self.state();
        s.pages_in_use = s.pages_in_use.saturating_sub(1);
        s.free.push(buf);
    }

    fn state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.inner.lock().expect("page pool poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bounded_pool_refuses_at_capacity_and_recovers() {
        let pool = PagePool::bounded(640, 2);
        let a = pool.allocate(8, 8, 4).unwrap();
        let b = pool.allocate(8, 8, 4).unwrap();
        let err = pool.allocate(8, 8, 4).unwrap_err();
        assert!(matches!(
            err,
            AttentionError::PoolExhausted {
                in_use: 2,
                capacity: 2
            }
        ));
        assert_eq!(pool.pages_in_use(), 2, "a refused allocation is a no-op");
        pool.release(a);
        let c = pool.allocate(4, 4, 2).unwrap();
        assert_eq!(c.k_floats.len(), 8, "reused page resized to new layout");
        assert_eq!(pool.reused_pages(), 1);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.bytes_in_use(), 0);
        assert_eq!(pool.peak_pages(), 2);
        assert_eq!(pool.allocated_pages(), 2);
    }

    #[test]
    fn layout_geometry_is_sane() {
        let pool = PagePool::unbounded(64 * 1024);
        assert_eq!(pool.tokens_per_page(64, 64), 64 * 1024 / (5 * 128));
        assert_eq!(pool.tokens_per_page(1 << 20, 1 << 20), 1, "floor of one");
        assert!(pool.capacity_pages().is_none());
        let tiny = PagePool::bounded(1, 0);
        assert_eq!(tiny.page_bytes(), BYTES_PER_ELEMENT, "clamped up");
        assert_eq!(tiny.capacity_pages(), Some(1), "clamped up");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pool invariants under random alloc/free churn, checked
        /// against an independent reference counter: exact
        /// `pages_in_use * page_bytes` accounting, free-before-grow
        /// (`allocated_pages == peak_pages`), and no double free
        /// (structural: held pages move by value, and the model's
        /// counter would drift if release were ever double-counted).
        #[test]
        fn prop_pool_accounting_is_exact_under_churn(
            capacity in 1usize..6,
            page_bytes in 64usize..2048,
            ops in proptest::collection::vec(0u8..4, 1..80),
        ) {
            let pool = PagePool::bounded(page_bytes, capacity);
            let mut held: Vec<PageBuffers> = Vec::new();
            let mut model_in_use = 0usize;
            let mut model_peak = 0usize;
            for op in ops {
                if op < 3 {
                    // Allocate (biased 3:1 so pools actually fill).
                    match pool.allocate(8, 4, 3) {
                        Ok(buf) => {
                            held.push(buf);
                            model_in_use += 1;
                            model_peak = model_peak.max(model_in_use);
                        }
                        Err(e) => {
                            prop_assert!(matches!(
                                e,
                                AttentionError::PoolExhausted { .. }
                            ));
                            prop_assert_eq!(model_in_use, capacity.max(1));
                        }
                    }
                } else if let Some(buf) = held.pop() {
                    pool.release(buf);
                    model_in_use -= 1;
                }
                // Exact accounting against the reference counter.
                prop_assert_eq!(pool.pages_in_use(), model_in_use);
                prop_assert_eq!(
                    pool.bytes_in_use(),
                    model_in_use * pool.page_bytes()
                );
                prop_assert_eq!(pool.peak_pages(), model_peak);
                // Freed pages are reused before the pool grows: fresh
                // creations only ever happen at a new high-water mark.
                prop_assert_eq!(pool.allocated_pages(), model_peak as u64);
                prop_assert_eq!(
                    pool.free_pages(),
                    model_peak - model_in_use,
                    "every non-held page is on the free list"
                );
            }
            // Full drain: everything returns, nothing leaks.
            for buf in held.drain(..) {
                pool.release(buf);
            }
            prop_assert_eq!(pool.pages_in_use(), 0);
            prop_assert_eq!(pool.bytes_in_use(), 0);
            prop_assert_eq!(pool.free_pages(), model_peak);
        }
    }
}
