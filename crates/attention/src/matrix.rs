//! A small row-major `f32` matrix, sized for attention heads.

use serde::{Deserialize, Serialize};

use crate::AttentionError;

/// A dense row-major matrix of `f32` values.
///
/// Sized for single attention heads (`s × d` with `s ≤ 4096`, `d = 64`
/// in the paper), so it favours simplicity over BLAS-grade performance.
///
/// # Example
///
/// ```
/// use sprint_attention::Matrix;
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.get(1, 0), 3.0);
/// let t = m.transposed();
/// assert_eq!(t.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidDimension`] if either dimension
    /// is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, AttentionError> {
        if rows == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "rows",
                value: rows,
            });
        }
        if cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "cols",
                value: cols,
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::EmptyInput`] for an empty slice and
    /// [`AttentionError::RaggedRows`] if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, AttentionError> {
        let first = rows.first().ok_or(AttentionError::EmptyInput("rows"))?;
        let cols = first.len();
        if cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "cols",
                value: 0,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(AttentionError::RaggedRows {
                    expected: cols,
                    row: i,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] if `data.len() != rows * cols`,
    /// or [`AttentionError::InvalidDimension`] for zero dimensions.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, AttentionError> {
        if rows == 0 || cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: if rows == 0 { "rows" } else { "cols" },
                value: 0,
            });
        }
        if data.len() != rows * cols {
            return Err(AttentionError::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable slice of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f32> {
        self.col_iter(c).collect()
    }

    /// Iterates over column `c` as a strided walk of the row-major
    /// buffer (one bounds check up front instead of one per element).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(c < self.cols, "column {c} out of bounds");
        self.data[c..].iter().step_by(self.cols).copied()
    }

    /// Returns the whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning its backing buffer (row-major).
    /// Pairs with [`crate::Workspace::recycle`] for buffer reuse.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Appends one row, growing the matrix in place (the row-major
    /// layout makes this a pure buffer extension — no element moves).
    /// This is the append-only growth path of the decode KV history.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] unless
    /// `row.len() == cols`.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_attention::Matrix;
    ///
    /// # fn main() -> Result<(), sprint_attention::AttentionError> {
    /// let mut m = Matrix::from_rows(&[vec![1.0, 2.0]])?;
    /// m.push_row(&[3.0, 4.0])?;
    /// assert_eq!(m.shape(), (2, 2));
    /// assert_eq!(m.row(1), &[3.0, 4.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn push_row(&mut self, row: &[f32]) -> Result<(), AttentionError> {
        if row.len() != self.cols {
            return Err(AttentionError::ShapeMismatch {
                op: "push_row",
                left: (1, row.len()),
                right: (1, self.cols),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// An owned copy of the first `n` rows — the inverse of growing a
    /// matrix with [`Matrix::push_row`]. Decode callers use this to
    /// carve a prefill (or a full-prefix oracle history) out of a
    /// longer token stream.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidDimension`] for `n == 0` or
    /// `n > rows`.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_attention::Matrix;
    ///
    /// # fn main() -> Result<(), sprint_attention::AttentionError> {
    /// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
    /// let p = m.prefix_rows(1)?;
    /// assert_eq!(p.shape(), (1, 2));
    /// assert_eq!(p.row(0), &[1.0, 2.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn prefix_rows(&self, n: usize) -> Result<Matrix, AttentionError> {
        if n == 0 || n > self.rows {
            return Err(AttentionError::InvalidDimension {
                name: "prefix rows",
                value: n,
            });
        }
        Matrix::from_vec(n, self.cols, self.data[..n * self.cols].to_vec())
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, AttentionError> {
        if self.cols != rhs.rows {
            return Err(AttentionError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix {
            rows: self.rows,
            cols: rhs.cols,
            data: vec![0.0; self.rows * rhs.cols],
        };
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product against a transposed right-hand side:
    /// `self × rhsᵀ`, i.e. `out[i][j] = self.row(i) · rhs.row(j)`.
    ///
    /// Both operands are walked along their row-major rows — no
    /// materialized transpose — and the loop nest is tiled so a small
    /// block of `rhs` rows stays cache-hot across a block of `self`
    /// rows. This is the score kernel `Q × Kᵀ` of the attention path.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] unless
    /// `self.cols() == rhs.cols()`.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_attention::Matrix;
    ///
    /// # fn main() -> Result<(), sprint_attention::AttentionError> {
    /// let a = Matrix::from_rows(&[vec![1.0, 2.0]])?;
    /// let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]])?;
    /// let c = a.matmul_transposed(&b)?;
    /// assert_eq!(c.shape(), (1, 2));
    /// assert_eq!(c.get(0, 0), 11.0); // 1*3 + 2*4
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix, AttentionError> {
        if self.cols != rhs.cols {
            return Err(AttentionError::ShapeMismatch {
                op: "matmul_transposed",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows)?;
        crate::simd::matmul_transposed_scaled_into(
            crate::simd::active_tier(),
            self,
            rhs,
            1.0,
            0..self.rows,
            0..rhs.rows,
            &mut out,
        );
        Ok(out)
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Maximum absolute value over all elements (0.0 for all-zero data).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// Scalar-tier body of the region matmul: writes
/// `out[i][j] = scale * (a.row(i) · b.row(j))` for every `i` in `rows`
/// and `j` in `cols`, leaving the rest of `out` untouched (the pruned
/// path computes only the live region and masks the remainder). Tiered
/// callers go through [`crate::simd::matmul_transposed_scaled_into`],
/// which falls back to this function on the scalar tier.
///
/// Works directly on the row-major buffers with a four-lane inner loop
/// — the same reduction order as [`dot`], but with the row slices
/// hoisted so the bounds checks sit outside the MAC loop and the lanes
/// vectorize. `a`'s current row stays register/L1-hot while `b` streams
/// row-major (the cache-friendly `Q × Kᵀ` walk; `b` itself fits L2 at
/// every sequence length this repo models).
pub(crate) fn mt_scalar_into(
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    out: &mut Matrix,
) {
    debug_assert_eq!(a.cols, b.cols, "inner dimensions must agree");
    debug_assert!(rows.end <= a.rows && rows.end <= out.rows);
    debug_assert!(cols.end <= b.rows && cols.end <= out.cols);
    // Monomorphize the hot embedding sizes: a compile-time inner
    // dimension lets the MAC loop fully unroll and drop its bounds
    // checks (~3x on d = 64, the head size of every studied model).
    match a.cols {
        32 => mt_fixed::<32>(a, b, scale, rows, cols, out),
        64 => mt_fixed::<64>(a, b, scale, rows, cols, out),
        128 => mt_fixed::<128>(a, b, scale, rows, cols, out),
        _ => mt_generic(a, b, scale, rows, cols, out),
    }
}

/// [`mt_scalar_into`] body for a compile-time inner
/// dimension, register-blocked two query rows at a time: each `b` row
/// is loaded once per row *pair*, and the eight live lane accumulators
/// keep the FP pipelines full (~2x over the single-row walk). The
/// per-row reduction order is identical in the paired and single-row
/// tails, so results do not depend on row parity.
fn mt_fixed<const D: usize>(
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    out: &mut Matrix,
) {
    let out_cols = out.cols;
    let mut i = rows.start;
    while i + 2 <= rows.end {
        let a0: &[f32; D] = a.data[i * D..(i + 1) * D].try_into().expect("row of D");
        let a1: &[f32; D] = a.data[(i + 1) * D..(i + 2) * D]
            .try_into()
            .expect("row of D");
        let (o0, o1) = out.data[i * out_cols..(i + 2) * out_cols].split_at_mut(out_cols);
        for j in cols.clone() {
            let b_row: &[f32; D] = b.data[j * D..(j + 1) * D].try_into().expect("row of D");
            let mut l0 = [0.0f32; 4];
            let mut l1 = [0.0f32; 4];
            let mut c = 0;
            while c + 4 <= D {
                for t in 0..4 {
                    l0[t] += a0[c + t] * b_row[c + t];
                    l1[t] += a1[c + t] * b_row[c + t];
                }
                c += 4;
            }
            while c < D {
                l0[0] += a0[c] * b_row[c];
                l1[0] += a1[c] * b_row[c];
                c += 1;
            }
            o0[j] = scale * ((l0[0] + l0[1]) + (l0[2] + l0[3]));
            o1[j] = scale * ((l1[0] + l1[1]) + (l1[2] + l1[3]));
        }
        i += 2;
    }
    if i < rows.end {
        let a_row: &[f32; D] = a.data[i * D..(i + 1) * D].try_into().expect("row of D");
        let out_row = &mut out.data[i * out_cols..(i + 1) * out_cols];
        for j in cols.clone() {
            let b_row: &[f32; D] = b.data[j * D..(j + 1) * D].try_into().expect("row of D");
            let mut lanes = [0.0f32; 4];
            let mut c = 0;
            while c + 4 <= D {
                for t in 0..4 {
                    lanes[t] += a_row[c + t] * b_row[c + t];
                }
                c += 4;
            }
            while c < D {
                lanes[0] += a_row[c] * b_row[c];
                c += 1;
            }
            out_row[j] = scale * ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
        }
    }
}

/// [`mt_scalar_into`] body for arbitrary inner
/// dimensions. Same four-lane reduction order as [`dot`].
fn mt_generic(
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    out: &mut Matrix,
) {
    let d = a.cols;
    let out_cols = out.cols;
    for i in rows {
        let a_row = &a.data[i * d..(i + 1) * d];
        let out_row = &mut out.data[i * out_cols..(i + 1) * out_cols];
        for j in cols.clone() {
            let b_row = &b.data[j * d..(j + 1) * d];
            out_row[j] = scale * dot(a_row, b_row);
        }
    }
}

/// Dot product of two equal-length slices, unrolled four wide so the
/// independent accumulators keep the FP pipeline full.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    let mut lanes = [0.0f32; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        lanes[0] += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 5).unwrap();
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_vec(2, 0, vec![]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, AttentionError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            AttentionError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.5, -1.0, 2.0],
            vec![3.0, 3.0, 3.0],
            vec![-1.0, 0.0, 0.0],
        ])
        .unwrap();
        let fused = a.matmul_transposed(&b).unwrap();
        let reference = a.matmul(&b.transposed()).unwrap();
        assert_eq!(fused.shape(), (2, 4));
        for r in 0..2 {
            for c in 0..4 {
                assert!((fused.get(r, c) - reference.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn matmul_transposed_rejects_mismatched_inner() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 4).unwrap();
        assert!(matches!(
            a.matmul_transposed(&b).unwrap_err(),
            AttentionError::ShapeMismatch {
                op: "matmul_transposed",
                ..
            }
        ));
    }

    #[test]
    fn matmul_transposed_partial_region_leaves_rest_untouched() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let b = a.clone();
        let mut out = Matrix::zeros(3, 3).unwrap();
        mt_scalar_into(&a, &b, 0.5, 0..2, 0..2, &mut out);
        assert!((out.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((out.get(1, 1) - 4.0).abs() < 1e-6);
        assert_eq!(out.get(2, 2), 0.0, "outside the region stays zero");
        assert_eq!(out.get(0, 2), 0.0);
    }

    #[test]
    fn col_iter_strides_the_buffer() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..7).map(|i| (i + 1) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn map_applies_elementwise() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        let n = m.map(f32::abs);
        assert_eq!(n.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[vec![1.0, -7.5, 3.0]]).unwrap();
        assert_eq!(m.max_abs(), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2).unwrap();
        let _ = m.get(2, 0);
    }

    proptest! {
        #[test]
        fn prop_matmul_against_naive(
            a_rows in 1usize..5, inner in 1usize..5, b_cols in 1usize..5,
            seed in 0u64..1000
        ) {
            // Deterministic pseudo-random fill from the seed.
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51afd7ed558ccd);
                ((x >> 40) as f32 / 16777216.0) - 0.5
            };
            let a = Matrix::from_vec(a_rows, inner, (0..a_rows*inner).map(|_| next()).collect()).unwrap();
            let b = Matrix::from_vec(inner, b_cols, (0..inner*b_cols).map(|_| next()).collect()).unwrap();
            let c = a.matmul(&b).unwrap();
            for r in 0..a_rows {
                for cc in 0..b_cols {
                    let naive: f32 = (0..inner).map(|k| a.get(r, k) * b.get(k, cc)).sum();
                    prop_assert!((c.get(r, cc) - naive).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn prop_matmul_transposed_against_naive(
            a_rows in 1usize..12, inner in 1usize..12, b_rows in 1usize..12,
            seed in 0u64..1000
        ) {
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
            let mut next = || {
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51afd7ed558ccd);
                ((x >> 40) as f32 / 16777216.0) - 0.5
            };
            let a = Matrix::from_vec(a_rows, inner, (0..a_rows*inner).map(|_| next()).collect()).unwrap();
            let b = Matrix::from_vec(b_rows, inner, (0..b_rows*inner).map(|_| next()).collect()).unwrap();
            let c = a.matmul_transposed(&b).unwrap();
            for r in 0..a_rows {
                for cc in 0..b_rows {
                    let naive: f32 = (0..inner).map(|k| a.get(r, k) * b.get(cc, k)).sum();
                    prop_assert!((c.get(r, cc) - naive).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn prop_transpose_preserves_elements(rows in 1usize..6, cols in 1usize..6) {
            let data: Vec<f32> = (0..rows*cols).map(|i| i as f32).collect();
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let t = m.transposed();
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
        }
    }
}
