//! A small row-major `f32` matrix, sized for attention heads.

use serde::{Deserialize, Serialize};

use crate::AttentionError;

/// A dense row-major matrix of `f32` values.
///
/// Sized for single attention heads (`s × d` with `s ≤ 4096`, `d = 64`
/// in the paper), so it favours simplicity over BLAS-grade performance.
///
/// # Example
///
/// ```
/// use sprint_attention::Matrix;
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.get(1, 0), 3.0);
/// let t = m.transposed();
/// assert_eq!(t.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidDimension`] if either dimension
    /// is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, AttentionError> {
        if rows == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "rows",
                value: rows,
            });
        }
        if cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "cols",
                value: cols,
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::EmptyInput`] for an empty slice and
    /// [`AttentionError::RaggedRows`] if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, AttentionError> {
        let first = rows.first().ok_or(AttentionError::EmptyInput("rows"))?;
        let cols = first.len();
        if cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "cols",
                value: 0,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(AttentionError::RaggedRows {
                    expected: cols,
                    row: i,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] if `data.len() != rows * cols`,
    /// or [`AttentionError::InvalidDimension`] for zero dimensions.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, AttentionError> {
        if rows == 0 || cols == 0 {
            return Err(AttentionError::InvalidDimension {
                name: if rows == 0 { "rows" } else { "cols" },
                value: 0,
            });
        }
        if data.len() != rows * cols {
            return Err(AttentionError::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable slice of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, AttentionError> {
        if self.cols != rhs.rows {
            return Err(AttentionError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix {
            rows: self.rows,
            cols: rhs.cols,
            data: vec![0.0; self.rows * rhs.cols],
        };
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Maximum absolute value over all elements (0.0 for all-zero data).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 5).unwrap();
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_vec(2, 0, vec![]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, AttentionError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            AttentionError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn map_applies_elementwise() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        let n = m.map(f32::abs);
        assert_eq!(n.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[vec![1.0, -7.5, 3.0]]).unwrap();
        assert_eq!(m.max_abs(), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2).unwrap();
        let _ = m.get(2, 0);
    }

    proptest! {
        #[test]
        fn prop_matmul_against_naive(
            a_rows in 1usize..5, inner in 1usize..5, b_cols in 1usize..5,
            seed in 0u64..1000
        ) {
            // Deterministic pseudo-random fill from the seed.
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51afd7ed558ccd);
                ((x >> 40) as f32 / 16777216.0) - 0.5
            };
            let a = Matrix::from_vec(a_rows, inner, (0..a_rows*inner).map(|_| next()).collect()).unwrap();
            let b = Matrix::from_vec(inner, b_cols, (0..inner*b_cols).map(|_| next()).collect()).unwrap();
            let c = a.matmul(&b).unwrap();
            for r in 0..a_rows {
                for cc in 0..b_cols {
                    let naive: f32 = (0..inner).map(|k| a.get(r, k) * b.get(k, cc)).sum();
                    prop_assert!((c.get(r, cc) - naive).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn prop_transpose_preserves_elements(rows in 1usize..6, cols in 1usize..6) {
            let data: Vec<f32> = (0..rows*cols).map(|i| i as f32).collect();
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let t = m.transposed();
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
        }
    }
}
