//! AVX2/FMA vector lanes behind [`super::SimdTier::Avx2`].
//!
//! Every function here carries `#[target_feature(enable = "avx2",
//! enable = "fma")]` and must only be reached through the dispatchers
//! in [`super`], which guarantee the features are present at runtime
//! (forced tiers are sanitized against [`super::avx2_available`]).
//!
//! ## Equivalence classes (see `docs/simd.md`)
//!
//! * **Bit-identical to the scalar tier:** [`row_max`], [`scale_row`],
//!   [`axpy`], [`av_row`], [`idot`], [`idot_i8`], [`vpu_accumulate`],
//!   [`vpu_accumulate_i8`] — element-wise operations performed in the
//!   scalar tier's per-element order (multiply *then* add, never a
//!   fused multiply-add), or order-free integer / max reductions.
//! * **≤ 4 ULP vs the scalar tier:** [`dot`] and the matmul built from
//!   it ([`matmul_transposed_scaled_into`]) — the FMA reduction tree
//!   reassociates the sum relative to the scalar four-lane reduction.
//! * **Small relative error vs the scalar tier:** [`exp_rows`] — the
//!   softmax exponent runs through the polynomial [`exp8`] (relative
//!   error ≲ 2⁻²¹ of `f32::exp`) and an 8-lane partial sum, so
//!   probabilities agree across tiers to ~1e-6 relative, not bitwise.
//!   Masked `-inf` scores still produce exactly `0.0` in every tier.
//!
//! Within the AVX2 tier itself, the batch matmul computes every cell
//! in the *same* fixed reduction order as [`dot`] (the column-blocked
//! [`dot4`] interleaves four independent per-cell chains without
//! changing any chain's association), so batch scores and the per-key
//! decode scores agree bit for bit — the decode ≡ batch contract of
//! `crate::decode` holds inside this tier by construction, exactly as
//! it does in the scalar tier.
//!
//! Memory safety never depends on the shape preconditions: every trip
//! count is derived from `min`s of the slice lengths involved, so all
//! loads and stores are in bounds for arbitrary arguments. The shape
//! preconditions are debug-asserted; the `unsafe` in these signatures
//! is purely the CPU-feature requirement.

use core::arch::x86_64::*;
use std::ops::Range;

use crate::Matrix;

/// Loads 8 consecutive floats starting at `s[i]`.
///
/// # Safety
///
/// Requires AVX2+FMA; `i + 8 <= s.len()` must hold (debug-asserted).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn load8(s: &[f32], i: usize) -> __m256 {
    debug_assert!(i + 8 <= s.len(), "load8 out of bounds");
    // SAFETY: the caller guarantees `i + 8 <= s.len()`.
    unsafe { _mm256_loadu_ps(s.as_ptr().add(i)) }
}

/// Horizontal sum of one `__m256` in the tier's fixed pairwise tree:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. This is exactly the
/// per-cell association of the 4-wide transpose reduction in [`dot4`]
/// (`hadd` sums adjacent pairs), so a standalone [`dot`] and a
/// [`dot4`] lane reduce identically bit for bit.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let s = _mm_hadd_ps(lo, hi); // [l0+l1, l2+l3, l4+l5, l6+l7]
    let s = _mm_hadd_ps(s, s); // [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7), ...]
    let s = _mm_add_ss(s, _mm_movehdup_ps(s));
    _mm_cvtss_f32(s)
}

/// Horizontal sum of eight `i32` lanes (order-free: integer addition
/// is associative).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0x4E>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0xB1>(s));
    _mm_cvtsi128_si32(s)
}

/// FMA dot product with the tier's one fixed reduction order: two
/// 8-lane accumulators over 16-float chunks, an optional trailing
/// 8-chunk into the first accumulator, one [`hsum`], then a scalar
/// `mul_add` tail. ≤ 4 ULP from the scalar tier's four-lane reduction;
/// reused verbatim per matmul cell so decode ≡ batch inside this tier.
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    let n = a.len().min(b.len());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds all four loads.
        unsafe {
            acc0 = _mm256_fmadd_ps(load8(a, i), load8(b, i), acc0);
            acc1 = _mm256_fmadd_ps(load8(a, i + 8), load8(b, i + 8), acc1);
        }
        i += 16;
    }
    if i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds both loads.
        unsafe {
            acc0 = _mm256_fmadd_ps(load8(a, i), load8(b, i), acc0);
        }
        i += 8;
    }
    let mut sum = hsum(_mm256_add_ps(acc0, acc1));
    while i < n {
        sum = a[i].mul_add(b[i], sum);
        i += 1;
    }
    sum
}

/// Four independent [`dot`] chains sharing one pass over `a`: each of
/// the four results is produced in *exactly* the reduction order of a
/// standalone [`dot`] call (two accumulators over 16-float chunks, an
/// optional trailing 8-chunk into the first, one [`hsum`], scalar
/// `mul_add` tail) — the chains are interleaved for throughput but
/// never mixed, so `dot4(a, b0..b3)[k] == dot(a, bk)` bit for bit.
/// This is what makes the blocked matmul below keep the decode ≡
/// batch contract: sharing the `a` loads across four columns amortizes
/// half the memory traffic and fills the FMA pipeline (eight live
/// accumulators instead of two) without touching any cell's result.
///
/// # Safety
///
/// Requires AVX2+FMA. All five slices should have equal length
/// (debug-asserted); the trip count is bounded by the shortest.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    debug_assert!(
        a.len() == b0.len() && a.len() == b1.len() && a.len() == b2.len() && a.len() == b3.len(),
        "dot4 of unequal lengths"
    );
    let n = a
        .len()
        .min(b0.len())
        .min(b1.len())
        .min(b2.len())
        .min(b3.len());
    if n == 64 {
        // SAFETY: all five slices hold at least 64 floats.
        return unsafe { dot4_64(a, b0, b1, b2, b3) };
    }
    let mut a00 = _mm256_setzero_ps();
    let mut a01 = _mm256_setzero_ps();
    let mut a10 = _mm256_setzero_ps();
    let mut a11 = _mm256_setzero_ps();
    let mut a20 = _mm256_setzero_ps();
    let mut a21 = _mm256_setzero_ps();
    let mut a30 = _mm256_setzero_ps();
    let mut a31 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds every load below.
        unsafe {
            let va0 = load8(a, i);
            let va1 = load8(a, i + 8);
            a00 = _mm256_fmadd_ps(va0, load8(b0, i), a00);
            a01 = _mm256_fmadd_ps(va1, load8(b0, i + 8), a01);
            a10 = _mm256_fmadd_ps(va0, load8(b1, i), a10);
            a11 = _mm256_fmadd_ps(va1, load8(b1, i + 8), a11);
            a20 = _mm256_fmadd_ps(va0, load8(b2, i), a20);
            a21 = _mm256_fmadd_ps(va1, load8(b2, i + 8), a21);
            a30 = _mm256_fmadd_ps(va0, load8(b3, i), a30);
            a31 = _mm256_fmadd_ps(va1, load8(b3, i + 8), a31);
        }
        i += 16;
    }
    if i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds every load below.
        unsafe {
            let va0 = load8(a, i);
            a00 = _mm256_fmadd_ps(va0, load8(b0, i), a00);
            a10 = _mm256_fmadd_ps(va0, load8(b1, i), a10);
            a20 = _mm256_fmadd_ps(va0, load8(b2, i), a20);
            a30 = _mm256_fmadd_ps(va0, load8(b3, i), a30);
        }
        i += 8;
    }
    // 4-wide transpose reduction: `hadd` sums adjacent pairs, so each
    // cell reduces as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) — the
    // identical association [`hsum`] uses, one shuffle tree for all
    // four cells instead of four.
    let v0 = _mm256_add_ps(a00, a01);
    let v1 = _mm256_add_ps(a10, a11);
    let v2 = _mm256_add_ps(a20, a21);
    let v3 = _mm256_add_ps(a30, a31);
    let t0 = _mm256_hadd_ps(v0, v1);
    let t1 = _mm256_hadd_ps(v2, v3);
    let t2 = _mm256_hadd_ps(t0, t1);
    let r = _mm_add_ps(_mm256_castps256_ps128(t2), _mm256_extractf128_ps::<1>(t2));
    let mut out = [0.0f32; 4];
    // SAFETY: `out` is a 4-float array, exactly one 128-bit store.
    unsafe { _mm_storeu_ps(out.as_mut_ptr(), r) };
    while i < n {
        out[0] = a[i].mul_add(b0[i], out[0]);
        out[1] = a[i].mul_add(b1[i], out[1]);
        out[2] = a[i].mul_add(b2[i], out[2]);
        out[3] = a[i].mul_add(b3[i], out[3]);
        i += 1;
    }
    out
}

/// [`dot4`] specialized to `d == 64` (every studied head size): the
/// loop fully unrolled with constant trip counts, the identical
/// chunk-to-accumulator assignment (first accumulator takes offsets
/// 0/16/32/48, second takes 8/24/40/56 — exactly the order the
/// generic 16-float loop produces) and the identical transpose
/// reduction, so results match the generic path and [`dot`] bit for
/// bit.
///
/// # Safety
///
/// Requires AVX2+FMA and at least 64 floats in every slice (checked
/// by the caller).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot4_64(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    debug_assert!(
        a.len() >= 64 && b0.len() >= 64 && b1.len() >= 64 && b2.len() >= 64 && b3.len() >= 64
    );
    let mut a00 = _mm256_setzero_ps();
    let mut a01 = _mm256_setzero_ps();
    let mut a10 = _mm256_setzero_ps();
    let mut a11 = _mm256_setzero_ps();
    let mut a20 = _mm256_setzero_ps();
    let mut a21 = _mm256_setzero_ps();
    let mut a30 = _mm256_setzero_ps();
    let mut a31 = _mm256_setzero_ps();
    let mut i = 0;
    while i < 64 {
        // SAFETY: `i ∈ {0, 16, 32, 48}` and every slice holds ≥ 64.
        unsafe {
            let va0 = load8(a, i);
            let va1 = load8(a, i + 8);
            a00 = _mm256_fmadd_ps(va0, load8(b0, i), a00);
            a01 = _mm256_fmadd_ps(va1, load8(b0, i + 8), a01);
            a10 = _mm256_fmadd_ps(va0, load8(b1, i), a10);
            a11 = _mm256_fmadd_ps(va1, load8(b1, i + 8), a11);
            a20 = _mm256_fmadd_ps(va0, load8(b2, i), a20);
            a21 = _mm256_fmadd_ps(va1, load8(b2, i + 8), a21);
            a30 = _mm256_fmadd_ps(va0, load8(b3, i), a30);
            a31 = _mm256_fmadd_ps(va1, load8(b3, i + 8), a31);
        }
        i += 16;
    }
    let v0 = _mm256_add_ps(a00, a01);
    let v1 = _mm256_add_ps(a10, a11);
    let v2 = _mm256_add_ps(a20, a21);
    let v3 = _mm256_add_ps(a30, a31);
    let t0 = _mm256_hadd_ps(v0, v1);
    let t1 = _mm256_hadd_ps(v2, v3);
    let t2 = _mm256_hadd_ps(t0, t1);
    let r = _mm_add_ps(_mm256_castps256_ps128(t2), _mm256_extractf128_ps::<1>(t2));
    let mut out = [0.0f32; 4];
    // SAFETY: `out` is a 4-float array, exactly one 128-bit store.
    unsafe { _mm_storeu_ps(out.as_mut_ptr(), r) };
    out
}

/// Column-panel width of the blocked matmul: 32 key rows of up to
/// `d = 128` floats is a 16 KiB panel that stays L1-resident across
/// every query row of the sweep. Without panel blocking each query
/// row re-streams the whole `K` from L2 and the kernel is
/// bandwidth-bound rather than FMA-bound.
const COL_PANEL: usize = 32;

/// `out[i][j] = scale * dot(a.row(i), b.row(j))` over the requested
/// region — column panels of [`COL_PANEL`] swept over all rows (so
/// the panel of `b` rows stays cache-hot), four columns at a time
/// through [`dot4`] (remainder columns through [`dot`]). Cells are
/// independent, so neither the panel order nor the 4-blocking changes
/// any cell's reduction order: every cell is the tier's one fixed
/// [`dot`] chain, and batch scores agree with per-key decode scores
/// bit for bit.
///
/// # Safety
///
/// Requires AVX2+FMA. The region must lie inside `a`/`b`/`out` (the
/// row accessors bounds-check, so violations panic rather than read
/// out of bounds).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn matmul_transposed_scaled_into(
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    rows: Range<usize>,
    cols: Range<usize>,
    out: &mut Matrix,
) {
    debug_assert_eq!(a.cols(), b.cols(), "inner dimensions must agree");
    debug_assert!(rows.end <= a.rows() && rows.end <= out.rows());
    debug_assert!(cols.end <= b.rows() && cols.end <= out.cols());
    let mut jb = cols.start;
    while jb < cols.end {
        let jend = (jb + COL_PANEL).min(cols.end);
        for i in rows.clone() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            let mut j = jb;
            while j + 4 <= jend {
                // SAFETY: AVX2+FMA hold for the whole function.
                let cell =
                    unsafe { dot4(a_row, b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3)) };
                out_row[j] = scale * cell[0];
                out_row[j + 1] = scale * cell[1];
                out_row[j + 2] = scale * cell[2];
                out_row[j + 3] = scale * cell[3];
                j += 4;
            }
            while j < jend {
                // SAFETY: AVX2+FMA hold for the whole function.
                out_row[j] = scale * unsafe { dot(a_row, b.row(j)) };
                j += 1;
            }
        }
        jb = jend;
    }
}

/// Eight-lane `exp` via the classic Cephes `expf` reduction: split off
/// `n = round(x / ln 2)`, evaluate a degree-five polynomial on the
/// remainder, scale by `2^n` through the exponent bits. Relative error
/// ≲ 2⁻²¹ of `f32::exp` over the softmax-relevant domain. Lanes below
/// the flush cutoff (`x < -87.0`, including `-inf` from masked
/// scores) return *exactly* `0.0`, which the pruned AV walk's
/// `p == 0.0` skip relies on.
///
/// The cutoff sits at `-87.0` rather than the true `expf` underflow
/// boundary (`≈ -87.336`): for `x ≥ -87.0` the result is at least
/// `e^-87 ≈ 1.64e-38`, safely above the smallest normal `f32`, so the
/// final `p · 2^n` multiply can never produce a denormal. At the true
/// boundary it does — and masked rows (75%+ `-inf` lanes under paper
/// pruning rates) then pay the per-µop denormal assist on every lane,
/// an ~8x softmax slowdown measured end to end. Scalar `exp` returns
/// tiny subnormals (< 1.5e-38) in the flushed band `[-87.336, -87.0)`;
/// the cross-tier difference is one subnormal of absolute error.
///
/// # Safety
///
/// Requires AVX2+FMA.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
fn exp8(x: __m256) -> __m256 {
    const EXP_LO: f32 = -87.0; // flush-to-zero cutoff (see above)
    const EXP_HI: f32 = 88.376_26; // above this, expf overflows to inf
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5.000_000_3e-1;
    let underflow = _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(EXP_LO));
    let x = _mm256_min_ps(
        _mm256_max_ps(x, _mm256_set1_ps(EXP_LO)),
        _mm256_set1_ps(EXP_HI),
    );
    // n = floor(x * log2(e) + 0.5) — round-to-nearest in float form.
    let n = _mm256_floor_ps(_mm256_fmadd_ps(
        x,
        _mm256_set1_ps(LOG2EF),
        _mm256_set1_ps(0.5),
    ));
    // r = x - n*ln2, in two pieces for the low bits.
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_HI), x);
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_LO), r);
    let r2 = _mm256_mul_ps(r, r);
    let mut p = _mm256_set1_ps(P0);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P4));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(P5));
    p = _mm256_fmadd_ps(p, r2, r);
    p = _mm256_add_ps(p, _mm256_set1_ps(1.0));
    // 2^n through the exponent field (|n| ≤ 128 after the clamps).
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(n),
        _mm256_set1_epi32(127),
    )));
    _mm256_andnot_ps(underflow, _mm256_mul_ps(p, pow2))
}

/// The softmax exponent pass: `row[t] = exp(row[t] - max)` with the
/// sum of the results returned. Eight lanes at a time through [`exp8`]
/// with an 8-lane partial sum (reduced by [`hsum`]), scalar `f32::exp`
/// tail. `-inf` inputs (masked scores) become exactly `0.0` in both
/// the vector body and the tail. Tolerance-class vs the scalar tier:
/// the polynomial and the reassociated sum differ from sequential
/// `f32::exp` by ~1e-6 relative.
///
/// # Safety
///
/// Requires AVX2+FMA. `max` must be finite (debug-asserted): the
/// caller handles the all-`-inf` row before getting here.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn exp_rows(row: &mut [f32], max: f32) -> f32 {
    debug_assert!(max.is_finite(), "exp_rows requires a finite max");
    let n = row.len();
    let vmax = _mm256_set1_ps(max);
    let mut vsum = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the load and store.
        unsafe {
            let e = exp8(_mm256_sub_ps(load8(row, i), vmax));
            _mm256_storeu_ps(row.as_mut_ptr().add(i), e);
            vsum = _mm256_add_ps(vsum, e);
        }
        i += 8;
    }
    let mut sum = hsum(vsum);
    while i < n {
        let s = row[i];
        let e = if s == f32::NEG_INFINITY {
            0.0
        } else {
            (s - max).exp()
        };
        row[i] = e;
        sum += e;
        i += 1;
    }
    sum
}

/// Expands the low 8 bits of a prune mask into 8 bytes of 0/1 (the
/// in-memory representation of `bool`), bit `t` → byte `t`.
const fn spread_mask_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut t = 0;
        while t < 8 {
            table[b] |= (((b >> t) & 1) as u64) << (8 * t);
            t += 1;
        }
        b += 1;
    }
    table
}

/// Byte-spread lookup for [`prune_mask_row`]'s flag writes.
static SPREAD_MASK: [u64; 256] = spread_mask_table();

/// The fused prune scan of one scores row: per element, `pruned =
/// s < threshold` (Eq. 3), the pruned positions masked to `-inf` in
/// *both* the scores row and the probability staging row, the flag
/// byte written, and the kept count returned. Comparison, select and
/// stores are exact operations, so the results are bit-identical to
/// the scalar tier's sequential loop (NaN scores compare false and
/// stay kept in both tiers).
///
/// # Safety
///
/// Requires AVX2+FMA. All three slices should have equal length
/// (debug-asserted); the trip count is bounded by the shortest.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn prune_mask_row(
    srow: &mut [f32],
    prow: &mut [f32],
    flags: &mut [bool],
    threshold: f32,
) -> usize {
    debug_assert!(
        srow.len() == prow.len() && srow.len() == flags.len(),
        "prune_mask_row of unequal lengths"
    );
    let n = srow.len().min(prow.len()).min(flags.len());
    let th = _mm256_set1_ps(threshold);
    let ninf = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut kept = 0usize;
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the loads, the two 8-float
        // stores, and the 8-byte flag store.
        unsafe {
            let s = load8(srow, i);
            let pruned = _mm256_cmp_ps::<_CMP_LT_OQ>(s, th);
            let masked = _mm256_blendv_ps(s, ninf, pruned);
            _mm256_storeu_ps(srow.as_mut_ptr().add(i), masked);
            _mm256_storeu_ps(prow.as_mut_ptr().add(i), masked);
            let bits = _mm256_movemask_ps(pruned) as u32 & 0xff;
            kept += 8 - bits.count_ones() as usize;
            // `bool` is guaranteed to be one byte holding 0 or 1; the
            // table spreads bit t of the mask into byte t.
            flags
                .as_mut_ptr()
                .add(i)
                .cast::<u64>()
                .write_unaligned(SPREAD_MASK[bits as usize]);
        }
        i += 8;
    }
    while i < n {
        let s = srow[i];
        let pruned = s < threshold;
        flags[i] = pruned;
        kept += usize::from(!pruned);
        let masked = if pruned { f32::NEG_INFINITY } else { s };
        srow[i] = masked;
        prow[i] = masked;
        i += 1;
    }
    kept
}

/// Maximum over a row. Bit-identical to the scalar fold for rows
/// without NaN: `max` over a multiset does not depend on association
/// order.
///
/// # Safety
///
/// Requires AVX2+FMA. `row` should be non-empty (debug-asserted; an
/// empty row returns `-inf`).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn row_max(row: &[f32]) -> f32 {
    debug_assert!(!row.is_empty(), "row_max of empty row");
    let n = row.len();
    let mut best = f32::NEG_INFINITY;
    let mut i = 0;
    if n >= 8 {
        // SAFETY: `n >= 8` bounds the first load; `i + 8 <= n` the rest.
        let mut m = unsafe { load8(row, 0) };
        i = 8;
        while i + 8 <= n {
            m = _mm256_max_ps(m, unsafe { load8(row, i) });
            i += 8;
        }
        let lo = _mm256_castps256_ps128(m);
        let hi = _mm256_extractf128_ps::<1>(m);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_movehdup_ps(s));
        best = _mm_cvtss_f32(s);
    }
    while i < n {
        best = best.max(row[i]);
        i += 1;
    }
    best
}

/// `row[t] *= factor` — element-wise, bit-identical to the scalar loop.
///
/// # Safety
///
/// Requires AVX2+FMA (no shape precondition).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn scale_row(row: &mut [f32], factor: f32) {
    let n = row.len();
    let f = _mm256_set1_ps(factor);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the load and store.
        unsafe {
            let p = row.as_mut_ptr().add(i);
            _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), f));
        }
        i += 8;
    }
    while i < n {
        row[i] *= factor;
        i += 1;
    }
}

/// `out[t] = fma(a, x[t], out[t])` — one fused multiply-add per
/// element, the same per-element chain as the tier's AV accumulators
/// ([`av_row`]), so decode (per-key `axpy`) and batch (register-blocked
/// [`av_row`]) produce bit-identical outputs within the tier. Versus
/// the scalar tier's multiply-then-add the fused form keeps the full
/// product before rounding: a ≤ 0.5 ULP difference per step, in the
/// documented AV tolerance class.
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy of unequal lengths");
    let n = out.len().min(x.len());
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the loads and the store.
        unsafe {
            let po = out.as_mut_ptr().add(i);
            let vx = load8(x, i);
            _mm256_storeu_ps(po, _mm256_fmadd_ps(va, vx, _mm256_loadu_ps(po)));
        }
        i += 8;
    }
    while i < n {
        out[i] = a.mul_add(x[i], out[i]);
        i += 1;
    }
}

/// One output row of the AV stage over a contiguous row-major `V`:
/// `out[t] += Σ_j probs[j] * v[j*d_v + t]`, ascending `j`, one fused
/// multiply-add per element — the scalar tier's accumulation order
/// with the multiply-round step fused away, so cross-tier results sit
/// in the documented AV tolerance class while decode ([`axpy`] per
/// key) and batch walks stay bit-identical *within* the tier. With
/// `skip_zero`, keys whose probability is exactly `0.0` are skipped
/// (the sparse pruned-AV contract); without it every key contributes
/// (the dense-crossover path).
///
/// The `d_v == 64` case (every studied model) keeps the output row
/// resident in eight `ymm` accumulators across all keys — one load
/// and one store of the row total, instead of one per key.
///
/// # Safety
///
/// Requires AVX2+FMA. Expects `out.len() == d_v` and
/// `probs.len() * d_v <= v.len()` (debug-asserted); trip counts are
/// clamped to the slice lengths regardless.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn av_row(
    out: &mut [f32],
    probs: &[f32],
    v: &[f32],
    d_v: usize,
    skip_zero: bool,
) {
    debug_assert_eq!(out.len(), d_v, "output row width");
    debug_assert!(probs.len() * d_v <= v.len(), "V too short for probs");
    if d_v == 64 && out.len() == 64 {
        // SAFETY: AVX2+FMA hold for the whole function.
        unsafe { av_row64(out, probs, v, skip_zero) };
        return;
    }
    let keys = probs.len().min(v.len().checked_div(d_v).unwrap_or(0));
    for (j, &p) in probs.iter().take(keys).enumerate() {
        if skip_zero && p == 0.0 {
            continue;
        }
        // SAFETY: `j < keys` bounds the V row; lengths match by slicing.
        unsafe { axpy(out, p, &v[j * d_v..(j + 1) * d_v]) };
    }
}

/// [`av_row`] specialized to `d_v == 64`: the output row lives in
/// eight `ymm` accumulators across the whole key loop. Same
/// per-element order (ascending `j`, one FMA per element) as the
/// tier's generic path and [`axpy`].
///
/// # Safety
///
/// Requires AVX2+FMA and `out.len() == 64` (checked by the caller);
/// the key count is clamped to `v.len() / 64`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn av_row64(out: &mut [f32], probs: &[f32], v: &[f32], skip_zero: bool) {
    debug_assert_eq!(out.len(), 64);
    let keys = probs.len().min(v.len() / 64);
    let mut acc = [_mm256_setzero_ps(); 8];
    for (t, slot) in acc.iter_mut().enumerate() {
        // SAFETY: `out.len() == 64` bounds every 8-float load.
        *slot = unsafe { load8(out, t * 8) };
    }
    // SAFETY: `keys` is clamped so every V row in the span is in bounds.
    unsafe { av_span64(&mut acc, probs, 0, keys, v, skip_zero) };
    for (t, slot) in acc.iter().enumerate() {
        // SAFETY: `out.len() == 64` bounds every 8-float store.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(t * 8), *slot) };
    }
}

/// Accumulates keys `[j0, j1)` into the 64-wide register-resident AV
/// accumulators — the shared span walk of [`av_row64`] (one span) and
/// [`av_rows64`] (one span per key panel). With `skip_zero` the span
/// is scanned eight probabilities at a time (`p != 0.0` compare +
/// movemask; NaN compares true, matching the scalar `p == 0.0` skip)
/// and the surviving keys processed in ascending bit order — the
/// identical keys in the identical order as the per-key branch, so the
/// chunked scan never changes the accumulation chain.
///
/// # Safety
///
/// Requires AVX2+FMA, `j1 <= probs.len()` and `j1 * 64 <= v.len()`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn av_span64(
    acc: &mut [__m256; 8],
    probs: &[f32],
    j0: usize,
    j1: usize,
    v: &[f32],
    skip_zero: bool,
) {
    debug_assert!(j1 <= probs.len() && j1 * 64 <= v.len());
    if skip_zero {
        let zero = _mm256_setzero_ps();
        let mut j = j0;
        while j + 8 <= j1 {
            // SAFETY: `j + 8 <= j1 <= probs.len()` bounds the load.
            let vp8 = unsafe { load8(probs, j) };
            let mut bits =
                _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_NEQ_UQ>(vp8, zero)) as u32 & 0xff;
            while bits != 0 {
                let t = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // SAFETY: `j + t < j1` implies the V row is in bounds.
                unsafe { av_key64(acc, probs[j + t], v, j + t) };
            }
            j += 8;
        }
        for (off, &p) in probs[j..j1].iter().enumerate() {
            if p != 0.0 {
                // SAFETY: `j + off < j1` bounds the V row.
                unsafe { av_key64(acc, p, v, j + off) };
            }
        }
    } else {
        for (j, &p) in probs.iter().enumerate().take(j1).skip(j0) {
            // SAFETY: `j < j1` bounds the V row.
            unsafe { av_key64(acc, p, v, j) };
        }
    }
}

/// Key-panel width of the blocked matrix-level AV: 32 key rows of
/// `d_v = 64` floats is an 8 KiB panel of `V` that stays L1-resident
/// while every output row accumulates its contribution. The
/// single-pass walk streams all of `V` from L2 once *per output row*
/// and is bandwidth-bound; panel blocking streams it once per panel.
const KEY_PANEL: usize = 32;

/// Matrix-level AV for `d_v == 64`: every output row accumulates the
/// current key panel before the sweep advances, with each row's
/// partial sums spilled to and reloaded from the output row between
/// panels. A register spill is exact, and within a row the keys are
/// still visited in ascending order through the same [`av_key64`] FMA
/// chain — so each row's result is bit-identical to a standalone
/// [`av_row64`] call (asserted by the dispatch-layer tests).
///
/// `plans[i] = (live, skip_zero)` processes keys `0..live` of row `i`
/// (`live == 0` leaves the row untouched), skipping exactly-zero
/// probabilities when `skip_zero` is set.
///
/// # Safety
///
/// Requires AVX2+FMA. For every plan: `out.row(i)` and `probs.row(i)`
/// must exist with `out.cols() == 64`, `live <= probs.cols()` and
/// `live * 64 <= v.len()` (debug-asserted; row accessors bounds-check).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn av_rows64(
    out: &mut Matrix,
    probs: &Matrix,
    v: &[f32],
    plans: &[(usize, bool)],
) {
    debug_assert_eq!(out.cols(), 64);
    debug_assert!(plans.len() <= out.rows() && plans.len() <= probs.rows());
    let max_live = plans.iter().map(|p| p.0).max().unwrap_or(0);
    debug_assert!(max_live <= probs.cols() && max_live * 64 <= v.len());
    let mut jb = 0;
    while jb < max_live {
        let panel_end = (jb + KEY_PANEL).min(max_live);
        for (i, &(live, skip_zero)) in plans.iter().enumerate() {
            let end = live.min(panel_end);
            if jb >= end {
                continue;
            }
            let orow = out.row_mut(i);
            let mut acc = [_mm256_setzero_ps(); 8];
            for (t, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `out.cols() == 64` bounds every 8-float load.
                *slot = unsafe { load8(orow, t * 8) };
            }
            // SAFETY: `end <= live` is debug-asserted to bound both
            // `probs.row(i)` and the V rows.
            unsafe { av_span64(&mut acc, probs.row(i), jb, end, v, skip_zero) };
            for (t, slot) in acc.iter().enumerate() {
                // SAFETY: `out.cols() == 64` bounds every 8-float store.
                unsafe { _mm256_storeu_ps(orow.as_mut_ptr().add(t * 8), *slot) };
            }
        }
        jb = panel_end;
    }
}

/// One key's contribution to the 64-wide register-resident AV
/// accumulators: one FMA per element, matching [`axpy`]'s chain so
/// decode and batch agree bitwise within the tier.
///
/// # Safety
///
/// Requires AVX2+FMA and `(j + 1) * 64 <= v.len()` (callers bound `j`
/// by the clamped key count).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn av_key64(acc: &mut [__m256; 8], p: f32, v: &[f32], j: usize) {
    let vp = _mm256_set1_ps(p);
    let base = j * 64;
    for (t, slot) in acc.iter_mut().enumerate() {
        // SAFETY: the caller guarantees `base + 64 <= v.len()`.
        let vx = unsafe { load8(v, base + t * 8) };
        *slot = _mm256_fmadd_ps(vp, vx, *slot);
    }
}

/// Integer dot product over `i32` code rows (the QK-PU MAC chain).
/// Bit-identical to the scalar sum: integer addition is associative
/// and 8-bit code products cannot overflow `i32`.
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn idot(a: &[i32], b: &[i32]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "idot of unequal lengths");
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds both 8-lane loads.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(va, vb));
        }
        i += 8;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum = sum.wrapping_add(a[i].wrapping_mul(b[i]));
        i += 1;
    }
    sum
}

/// [`idot`] with the right side widened from cached `i8` page codes
/// (the decode QK-PU). Bit-identical to the scalar widening sum.
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn idot_i8(a: &[i32], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "idot_i8 of unequal lengths");
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the 8-lane load and the 8-byte
        // low-quadword load.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_cvtepi8_epi32(_mm_loadl_epi64(b.as_ptr().add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(va, vb));
        }
        i += 8;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum = sum.wrapping_add(a[i].wrapping_mul(i32::from(b[i])));
        i += 1;
    }
    sum
}

/// One key's V-PU accumulation over `i32` value codes:
/// `acc[t] += p_code * codes[t]` — element-wise, bit-identical to the
/// scalar loop.
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn vpu_accumulate(acc: &mut [i32], p_code: i32, codes: &[i32]) {
    debug_assert_eq!(acc.len(), codes.len(), "vpu rows of unequal lengths");
    let n = acc.len().min(codes.len());
    let vp = _mm256_set1_epi32(p_code);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the loads and the store.
        unsafe {
            let pa: *mut __m256i = acc.as_mut_ptr().add(i).cast();
            let vc = _mm256_loadu_si256(codes.as_ptr().add(i).cast());
            let sum = _mm256_add_epi32(_mm256_loadu_si256(pa), _mm256_mullo_epi32(vp, vc));
            _mm256_storeu_si256(pa, sum);
        }
        i += 8;
    }
    while i < n {
        acc[i] = acc[i].wrapping_add(p_code.wrapping_mul(codes[i]));
        i += 1;
    }
}

/// [`vpu_accumulate`] over cached `i8` page codes (the decode V-PU).
///
/// # Safety
///
/// Requires AVX2+FMA. Slices should have equal length
/// (debug-asserted); the trip count is bounded by the shorter one.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn vpu_accumulate_i8(acc: &mut [i32], p_code: i32, codes: &[i8]) {
    debug_assert_eq!(acc.len(), codes.len(), "vpu rows of unequal lengths");
    let n = acc.len().min(codes.len());
    let vp = _mm256_set1_epi32(p_code);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the loads and the store.
        unsafe {
            let pa: *mut __m256i = acc.as_mut_ptr().add(i).cast();
            let vc = _mm256_cvtepi8_epi32(_mm_loadl_epi64(codes.as_ptr().add(i).cast()));
            let sum = _mm256_add_epi32(_mm256_loadu_si256(pa), _mm256_mullo_epi32(vp, vc));
            _mm256_storeu_si256(pa, sum);
        }
        i += 8;
    }
    while i < n {
        acc[i] = acc[i].wrapping_add(p_code.wrapping_mul(i32::from(codes[i])));
        i += 1;
    }
}
