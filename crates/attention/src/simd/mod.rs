//! Runtime-dispatched SIMD kernel tiers for the hot attention loops.
//!
//! Two tiers exist: [`SimdTier::Scalar`], the register-blocked Rust
//! that has always been here (and remains the reference oracle every
//! vector lane is differential-tested against), and
//! [`SimdTier::Avx2`], AVX2/FMA lanes for the fused `Q × Kᵀ`, softmax,
//! AV, and 8-bit QK-PU/V-PU paths. Tier selection is automatic at
//! runtime ([`active_tier`]) and overridable for testing via the
//! `SPRINT_SIMD={auto,scalar,avx2}` environment variable or
//! per-[`crate::Workspace`] / per-engine knobs.
//!
//! ## Equivalence contract
//!
//! | kernel family                         | cross-tier guarantee |
//! |---------------------------------------|----------------------|
//! | integer QK-PU / V-PU (`idot`, `idot_i8`, V-PU accumulate) | bit-identical |
//! | softmax `row_max` / `scale_row` stages | bit-identical |
//! | prune scan (`prune_mask_row`)         | bit-identical |
//! | float `Q × Kᵀ` / decode score dots    | ≤ 4 ULP (FMA reduction tree) |
//! | softmax exponent pass (`exp_rows`)    | ~1e-6 relative (polynomial exp + lane sums) |
//! | AV stage (`axpy`, `av_row`)           | ≤ 0.5 ULP per step (fused multiply-add) |
//!
//! Three kernel families diverge across tiers, all by bounded float
//! tolerance: the float dot (its FMA reduction tree reassociates the
//! sum), the softmax exponent pass (the AVX2 tier evaluates a
//! Cephes-style polynomial `exp` eight lanes at a time and sums
//! per-lane), and the AV stage (the AVX2 tier fuses each
//! multiply-add where the scalar tier rounds the product first — the
//! accumulation *order* is identical, so the drift is sub-ULP per
//! element). Masked `-inf` scores produce *exactly* `0.0` in every
//! tier, so pruning decisions and the sparse AV walk's `p == 0.0`
//! skips are tier-independent. Everything else either performs the
//! exact per-element operation order of the scalar tier or reduces an
//! order-free operation (integer add, max). The quantized SPRINT path
//! never touches `exp_rows` — its integer two-LUT softmax is
//! tier-independent, keeping that path bit-identical end to end.
//! `docs/simd.md` documents the contract and how to add a lane.
//!
//! A forced [`SimdTier::Avx2`] on a host without AVX2+FMA is sanitized
//! back to [`SimdTier::Scalar`] everywhere a tier enters the system
//! ([`active_tier`], [`crate::Workspace::set_simd_tier`]), so a tier
//! in flight is always safe to dispatch on.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::Range;
use std::sync::OnceLock;

use crate::Matrix;

#[cfg(target_arch = "x86_64")]
mod avx2;

/// One kernel tier. The scalar tier is always available and is the
/// reference implementation; the AVX2 tier requires runtime-detected
/// AVX2 *and* FMA support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Portable register-blocked Rust — the reference oracle.
    Scalar,
    /// AVX2/FMA vector lanes (x86-64 hosts with both features).
    Avx2,
}

impl SimdTier {
    /// The tier's canonical lowercase name (`"scalar"` / `"avx2"`),
    /// matching the `SPRINT_SIMD` knob values.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_avx2() -> bool {
    false
}

/// Whether this host can run the AVX2 tier (runtime detection of AVX2
/// *and* FMA — the float lanes use fused multiply-adds).
pub fn avx2_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect_avx2)
}

/// Clamps a requested tier to what the host supports: forcing
/// [`SimdTier::Avx2`] on a host without AVX2+FMA falls back to
/// [`SimdTier::Scalar`] rather than faulting. Every entry point that
/// accepts a tier sanitizes through here, so a tier in flight can
/// always be dispatched on safely.
pub fn sanitize_tier(tier: SimdTier) -> SimdTier {
    match tier {
        SimdTier::Avx2 if !avx2_available() => SimdTier::Scalar,
        t => t,
    }
}

/// Parses an `SPRINT_SIMD` knob value. `None` means "auto" (unset,
/// `auto`, or anything unrecognized).
fn parse_knob(raw: Option<&str>) -> Option<SimdTier> {
    match raw.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("scalar") => Some(SimdTier::Scalar),
        Some("avx2") => Some(SimdTier::Avx2),
        _ => None,
    }
}

/// The process-wide default tier: `SPRINT_SIMD` when set (sanitized),
/// otherwise the fastest tier the host supports. Read once and cached;
/// freshly constructed [`crate::Workspace`]s and engines inherit it.
pub fn active_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let forced = parse_knob(std::env::var("SPRINT_SIMD").ok().as_deref());
        sanitize_tier(forced.unwrap_or(if avx2_available() {
            SimdTier::Avx2
        } else {
            SimdTier::Scalar
        }))
    })
}

/// Dot product of two equal-length float rows. Scalar: the four-lane
/// reduction of `crate::matrix`. AVX2: the FMA reduction (≤ 4 ULP).
pub(crate) fn dot(tier: SimdTier, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::dot(a, b) };
    }
    let _ = tier;
    crate::matrix::dot(a, b)
}

/// Tiered `out[i][j] = scale * (a.row(i) · b.row(j))` over a region,
/// leaving the rest of `out` untouched. Scalar: the blocked kernels of
/// `crate::matrix`. AVX2: per-cell [`dot`] (≤ 4 ULP; decode ≡ batch by
/// construction in both tiers).
pub(crate) fn matmul_transposed_scaled_into(
    tier: SimdTier,
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    rows: Range<usize>,
    cols: Range<usize>,
    out: &mut Matrix,
) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; row accesses are bounds-checked.
        unsafe { avx2::matmul_transposed_scaled_into(a, b, scale, rows, cols, out) };
        return;
    }
    let _ = tier;
    crate::matrix::mt_scalar_into(a, b, scale, rows, cols, out);
}

/// Maximum of a row (`-inf` for an empty row). Bit-identical across
/// tiers for NaN-free rows.
pub(crate) fn row_max(tier: SimdTier, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && !row.is_empty() {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::row_max(row) };
    }
    let _ = tier;
    row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// `row[t] *= factor` (the softmax normalization). Bit-identical
/// across tiers: element-wise multiply.
pub(crate) fn scale_row(tier: SimdTier, row: &mut [f32], factor: f32) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        unsafe { avx2::scale_row(row, factor) };
        return;
    }
    let _ = tier;
    for s in row.iter_mut() {
        *s *= factor;
    }
}

/// The fused prune scan of one scores row (Eq. 3): per element,
/// `pruned = s < threshold`; pruned positions are masked to `-inf` in
/// both the scores row and the probability staging row; the decision
/// flag is written; the kept count is returned. Bit-identical across
/// tiers — comparison and select are exact (NaN scores compare false
/// and stay kept in both tiers).
pub(crate) fn prune_mask_row(
    tier: SimdTier,
    srow: &mut [f32],
    prow: &mut [f32],
    flags: &mut [bool],
    threshold: f32,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::prune_mask_row(srow, prow, flags, threshold) };
    }
    let _ = tier;
    let mut kept = 0usize;
    for ((flag, s), p) in flags.iter_mut().zip(srow.iter_mut()).zip(prow.iter_mut()) {
        let pruned = *s < threshold;
        *flag = pruned;
        kept += usize::from(!pruned);
        let masked = if pruned { f32::NEG_INFINITY } else { *s };
        *s = masked;
        *p = masked;
    }
    kept
}

/// The softmax exponent pass: `row[t] = exp(row[t] - max)`, returning
/// the sum of the exponentials. `-inf` entries (masked scores) become
/// exactly `0.0` in every tier. Scalar: sequential `f32::exp`. AVX2:
/// the polynomial [`avx2::exp_rows`] — tolerance class, ~1e-6
/// relative. `max` must be finite; callers handle the all-`-inf` row
/// before this.
pub(crate) fn exp_rows(tier: SimdTier, row: &mut [f32], max: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::exp_rows(row, max) };
    }
    let _ = tier;
    let mut sum = 0.0f32;
    for s in row.iter_mut() {
        let e = if *s == f32::NEG_INFINITY {
            0.0
        } else {
            (*s - max).exp()
        };
        *s = e;
        sum += e;
    }
    sum
}

/// `out[t] += a * x[t]` (the sparse AV inner step over one V row).
/// AV tolerance class: the AVX2 tier fuses the multiply-add (≤ 0.5 ULP
/// per step vs the scalar tier's multiply-then-add), and within each
/// tier this is exactly the [`av_row`] per-element chain, so decode
/// and batch outputs agree bitwise per tier.
pub(crate) fn axpy(tier: SimdTier, out: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        unsafe { avx2::axpy(out, a, x) };
        return;
    }
    let _ = tier;
    crate::attention::axpy(out, a, x);
}

/// One output row of the AV stage over a contiguous row-major `V`:
/// ascending-key accumulation, with `skip_zero` skipping exactly-zero
/// probabilities (the sparse pruned path) or visiting every key (the
/// dense-crossover path). AV tolerance class across tiers (the AVX2
/// tier uses one FMA per element, see [`axpy`]); the skip and stream
/// walks are bit-identical to each other within every tier.
pub(crate) fn av_row(
    tier: SimdTier,
    out: &mut [f32],
    probs: &[f32],
    v: &[f32],
    d_v: usize,
    skip_zero: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; trip counts are clamped to the slice lengths.
        unsafe { avx2::av_row(out, probs, v, d_v, skip_zero) };
        return;
    }
    let _ = tier;
    for (&p, v_row) in probs.iter().zip(v.chunks_exact(d_v)) {
        if !skip_zero || p != 0.0 {
            crate::attention::axpy(out, p, v_row);
        }
    }
}

/// The whole-matrix AV stage: row `i` of `out` accumulates
/// `probs.row(i)[..live] × V` for each plan `(live, skip_zero)`
/// (`live == 0` leaves the row untouched — padded queries). Every row
/// is bit-identical to a standalone [`av_row`] call on the same tier:
/// the AVX2 `d_v == 64` arm sweeps key panels across all rows so the
/// `V` panel stays L1-resident (spilling each row's partial sums
/// between panels, which is exact), every other combination simply
/// loops [`av_row`].
pub(crate) fn av_rows(
    tier: SimdTier,
    out: &mut Matrix,
    probs: &Matrix,
    v: &[f32],
    d_v: usize,
    plans: &[(usize, bool)],
) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && d_v == 64 && out.cols() == 64 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; plan bounds are debug-asserted and row accessors
        // bounds-check.
        unsafe { avx2::av_rows64(out, probs, v, plans) };
        return;
    }
    for (i, &(live, skip_zero)) in plans.iter().enumerate() {
        if live > 0 {
            av_row(
                tier,
                out.row_mut(i),
                &probs.row(i)[..live],
                v,
                d_v,
                skip_zero,
            );
        }
    }
}

/// Integer QK-PU dot over `i32` code rows. Bit-identical across tiers.
pub(crate) fn idot(tier: SimdTier, a: &[i32], b: &[i32]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::idot(a, b) };
    }
    let _ = tier;
    crate::attention::idot(a, b)
}

/// Integer QK-PU dot with the key side widened from cached `i8` page
/// codes (the decode path). Bit-identical across tiers.
pub(crate) fn idot_i8(tier: SimdTier, a: &[i32], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        return unsafe { avx2::idot_i8(a, b) };
    }
    let _ = tier;
    a.iter().zip(b).map(|(&x, &y)| x * i32::from(y)).sum()
}

/// One key's V-PU accumulation over `i32` value codes:
/// `acc[t] += p_code * codes[t]`. Bit-identical across tiers.
pub(crate) fn vpu_accumulate(tier: SimdTier, acc: &mut [i32], p_code: i32, codes: &[i32]) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        unsafe { avx2::vpu_accumulate(acc, p_code, codes) };
        return;
    }
    let _ = tier;
    for (a, &vc) in acc.iter_mut().zip(codes) {
        *a += p_code * vc;
    }
}

/// [`vpu_accumulate`] over cached `i8` page codes (the decode V-PU).
/// Bit-identical across tiers.
pub(crate) fn vpu_accumulate_i8(tier: SimdTier, acc: &mut [i32], p_code: i32, codes: &[i8]) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        debug_assert!(avx2_available(), "unsanitized Avx2 tier");
        // SAFETY: Avx2 tiers only exist after `sanitize_tier` confirmed
        // AVX2+FMA; memory accesses are slice-bounded.
        unsafe { avx2::vpu_accumulate_i8(acc, p_code, codes) };
        return;
    }
    let _ = tier;
    for (a, &vc) in acc.iter_mut().zip(codes) {
        *a += p_code * i32::from(vc);
    }
}

/// Distance between two floats in units in the last place, through the
/// standard monotone total order on the bit patterns. Equal bits give
/// 0; `+0.0`/`-0.0` are 1 apart; NaNs compare by bit pattern like any
/// other value. This is the measuring stick of the documented ≤ 4-ULP
/// float contract (`docs/simd.md`).
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let b = x.to_bits();
        if b & 0x8000_0000 != 0 {
            -(i64::from(b & 0x7fff_ffff)) - 1
        } else {
            i64::from(b)
        }
    }
    key(a).abs_diff(key(b)).try_into().unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random floats in roughly [-1, 1).
    fn rand_f32(seed: u64, n: usize) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        (0..n)
            .map(|_| {
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51AFD7ED558CCD);
                ((x >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect()
    }

    /// Deterministic pseudo-random 8-bit-range codes.
    fn rand_codes(seed: u64, n: usize) -> Vec<i32> {
        let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(3);
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                ((x >> 32) as i32 % 256) - 128
            })
            .collect()
    }

    /// The ≤ 4-ULP dot contract, measured at the accumulated magnitude
    /// `Σ|aᵢ·bᵢ|`: reassociating a sum perturbs it by a few ULP *of the
    /// terms being accumulated*, which equals a few ULP of the result
    /// except under cancellation (where no fixed result-relative bound
    /// exists for either tier).
    fn dot_close(s: f32, v: f32, a: &[f32], b: &[f32]) -> bool {
        let magnitude: f32 = a.iter().zip(b).map(|(&x, &y)| (x * y).abs()).sum();
        ulp_distance(s, v) <= 4 || (s - v).abs() <= 4.0 * f32::EPSILON * magnitude
    }

    /// Lengths crossing every remainder branch of the 8- and 16-wide
    /// loops: 0, 1, lane−1, lane, lane+1 for both widths, plus the
    /// studied head sizes.
    const TAIL_LENGTHS: &[usize] = &[
        0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129,
    ];

    #[test]
    fn knob_parsing_recognizes_tiers_and_defaults_to_auto() {
        assert_eq!(parse_knob(Some("scalar")), Some(SimdTier::Scalar));
        assert_eq!(parse_knob(Some(" AVX2 ")), Some(SimdTier::Avx2));
        assert_eq!(parse_knob(Some("auto")), None);
        assert_eq!(parse_knob(Some("sse9")), None);
        assert_eq!(parse_knob(None), None);
    }

    #[test]
    fn sanitize_clamps_to_host_support() {
        assert_eq!(sanitize_tier(SimdTier::Scalar), SimdTier::Scalar);
        let forced = sanitize_tier(SimdTier::Avx2);
        if avx2_available() {
            assert_eq!(forced, SimdTier::Avx2);
        } else {
            assert_eq!(forced, SimdTier::Scalar);
        }
        assert_eq!(sanitize_tier(active_tier()), active_tier());
    }

    #[test]
    fn tier_names_round_trip_through_the_knob() {
        for tier in [SimdTier::Scalar, SimdTier::Avx2] {
            assert_eq!(parse_knob(Some(tier.name())), Some(tier));
            assert_eq!(format!("{tier}"), tier.name());
        }
    }

    #[test]
    fn ulp_distance_behaves_at_the_edges() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 1);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 3)), 3);
        assert_eq!(ulp_distance(-1.5, -1.5), 0);
        assert!(ulp_distance(1.0, -1.0) > 1_000_000);
    }

    #[test]
    fn tail_lengths_dot_within_ulp_budget() {
        if !avx2_available() {
            return;
        }
        for &n in TAIL_LENGTHS {
            let a = rand_f32(n as u64 + 1, n);
            let b = rand_f32(n as u64 + 1000, n);
            let scalar = dot(SimdTier::Scalar, &a, &b);
            let vector = dot(SimdTier::Avx2, &a, &b);
            assert!(
                dot_close(scalar, vector, &a, &b),
                "len {n}: scalar {scalar} vs avx2 {vector}"
            );
        }
    }

    #[test]
    fn tail_lengths_row_max_and_scale_are_bit_identical() {
        if !avx2_available() {
            return;
        }
        for &n in TAIL_LENGTHS {
            let mut row = rand_f32(n as u64 + 11, n);
            if n > 0 {
                row[n / 2] = f32::NEG_INFINITY; // masked entries appear in real rows
                assert_eq!(
                    row_max(SimdTier::Scalar, &row).to_bits(),
                    row_max(SimdTier::Avx2, &row).to_bits(),
                    "row_max len {n}"
                );
            }
            let mut scalar_row = row.clone();
            scale_row(SimdTier::Scalar, &mut scalar_row, 0.7311);
            scale_row(SimdTier::Avx2, &mut row, 0.7311);
            assert_eq!(
                scalar_row.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                row.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "scale_row len {n}"
            );
        }
    }

    #[test]
    fn tail_lengths_axpy_agrees_within_the_av_tolerance() {
        if !avx2_available() {
            return;
        }
        // The AVX2 arm fuses each multiply-add; versus the scalar
        // multiply-then-add that is at most 0.5 ULP of drift per step,
        // far inside 1e-6 relative for one step.
        for &n in TAIL_LENGTHS {
            let x = rand_f32(n as u64 + 21, n);
            let mut scalar_out = rand_f32(n as u64 + 22, n);
            let mut vector_out = scalar_out.clone();
            axpy(SimdTier::Scalar, &mut scalar_out, 0.4821, &x);
            axpy(SimdTier::Avx2, &mut vector_out, 0.4821, &x);
            // The drift is sub-ULP of the *operands* (O(1) here), so
            // the floor is operand-scale: cancellation can make the
            // result far smaller than the rounding error of one step.
            for (i, (&s, &v)) in scalar_out.iter().zip(vector_out.iter()).enumerate() {
                assert!(
                    (s - v).abs() <= 1e-6 * s.abs().max(1.0),
                    "axpy len {n} slot {i}: {s} vs {v}"
                );
            }
        }
    }

    #[test]
    fn tail_lengths_av_row_modes_agree_and_walks_match_within_tier() {
        if !avx2_available() {
            return;
        }
        // d_v sweeps the lane boundaries; 64 exercises the
        // register-resident specialization.
        for &d_v in &[1usize, 7, 8, 9, 16, 31, 33, 64, 100] {
            for keys in [0usize, 1, 3, 17] {
                let v = rand_f32(d_v as u64 * 31 + keys as u64, keys * d_v);
                let mut probs = rand_f32(d_v as u64 + keys as u64 + 5, keys);
                // Mix in exact zeros so skip_zero has something to skip.
                for p in probs.iter_mut().step_by(2) {
                    *p = 0.0;
                }
                let mut walks = Vec::new();
                for skip_zero in [true, false] {
                    let mut scalar_out = rand_f32(9, d_v);
                    let mut vector_out = scalar_out.clone();
                    av_row(
                        SimdTier::Scalar,
                        &mut scalar_out,
                        &probs,
                        &v,
                        d_v,
                        skip_zero,
                    );
                    av_row(SimdTier::Avx2, &mut vector_out, &probs, &v, d_v, skip_zero);
                    // Cross-tier: the AV tolerance class (FMA drift,
                    // operand-scale floor — see the axpy tail test).
                    for (i, (&s, &a)) in scalar_out.iter().zip(vector_out.iter()).enumerate() {
                        assert!(
                            (s - a).abs() <= 1e-5 * s.abs().max(1.0),
                            "av_row d_v {d_v} keys {keys} skip {skip_zero} slot {i}: {s} vs {a}"
                        );
                    }
                    walks.push((scalar_out, vector_out));
                }
                // Within each tier, the skip walk and the stream walk
                // visit the surviving keys in the same order with the
                // same arithmetic (a visited zero probability is an
                // exact no-op), so they must agree bit for bit.
                let (skip, stream) = (&walks[0], &walks[1]);
                for (tier_idx, tier) in ["scalar", "avx2"].iter().enumerate() {
                    let pick = |w: &(Vec<f32>, Vec<f32>)| {
                        if tier_idx == 0 {
                            w.0.clone()
                        } else {
                            w.1.clone()
                        }
                    };
                    assert_eq!(
                        pick(skip).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        pick(stream).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{tier} skip vs stream, d_v {d_v} keys {keys}"
                    );
                }
            }
        }
    }

    #[test]
    fn av_rows_is_bitwise_the_per_row_walk_on_both_tiers() {
        // The matrix-level stage only re-tiles the sweep (key panels
        // with exact register spills between them); every row must
        // match a standalone av_row call bit for bit. Key counts cross
        // the 32-key panel boundary both ways, d_v == 64 exercises the
        // panel kernel and 16 the fallback loop; plans mix skip/stream
        // rows, short live prefixes and untouched (live == 0) rows.
        let tiers = if avx2_available() {
            vec![SimdTier::Scalar, SimdTier::Avx2]
        } else {
            vec![SimdTier::Scalar]
        };
        for &d_v in &[64usize, 16] {
            for keys in [1usize, 31, 32, 33, 64, 65, 100] {
                let rows = 5;
                let v = rand_f32(keys as u64 * 7 + d_v as u64, keys * d_v);
                let mut probs = Matrix::zeros(rows, keys).unwrap();
                for i in 0..rows {
                    let mut row = rand_f32(i as u64 * 13 + keys as u64, keys);
                    for p in row.iter_mut().step_by(3) {
                        *p = 0.0;
                    }
                    probs.row_mut(i).copy_from_slice(&row);
                }
                let plans: Vec<(usize, bool)> = vec![
                    (keys, true),
                    (keys, false),
                    (0, true),
                    (keys.min(17), true),
                    (keys, true),
                ];
                for &tier in &tiers {
                    let mut batched = Matrix::zeros(rows, d_v).unwrap();
                    av_rows(tier, &mut batched, &probs, &v, d_v, &plans);
                    for (i, &(live, skip_zero)) in plans.iter().enumerate() {
                        let mut single = vec![0.0f32; d_v];
                        if live > 0 {
                            av_row(tier, &mut single, &probs.row(i)[..live], &v, d_v, skip_zero);
                        }
                        assert_eq!(
                            batched
                                .row(i)
                                .iter()
                                .map(|x| x.to_bits())
                                .collect::<Vec<_>>(),
                            single.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                            "{tier} d_v {d_v} keys {keys} row {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tail_lengths_integer_kernels_are_bit_identical() {
        if !avx2_available() {
            return;
        }
        for &n in TAIL_LENGTHS {
            let a = rand_codes(n as u64 + 41, n);
            let b = rand_codes(n as u64 + 42, n);
            let b8: Vec<i8> = b.iter().map(|&c| (c.clamp(-128, 127)) as i8).collect();
            assert_eq!(
                idot(SimdTier::Scalar, &a, &b),
                idot(SimdTier::Avx2, &a, &b),
                "idot len {n}"
            );
            assert_eq!(
                idot_i8(SimdTier::Scalar, &a, &b8),
                idot_i8(SimdTier::Avx2, &a, &b8),
                "idot_i8 len {n}"
            );
            let mut scalar_acc = rand_codes(n as u64 + 43, n);
            let mut vector_acc = scalar_acc.clone();
            vpu_accumulate(SimdTier::Scalar, &mut scalar_acc, 173, &b);
            vpu_accumulate(SimdTier::Avx2, &mut vector_acc, 173, &b);
            assert_eq!(scalar_acc, vector_acc, "vpu_accumulate len {n}");
            vpu_accumulate_i8(SimdTier::Scalar, &mut scalar_acc, 91, &b8);
            vpu_accumulate_i8(SimdTier::Avx2, &mut vector_acc, 91, &b8);
            assert_eq!(scalar_acc, vector_acc, "vpu_accumulate_i8 len {n}");
        }
    }

    #[test]
    fn tiered_matmul_region_matches_scalar_within_ulp() {
        if !avx2_available() {
            return;
        }
        for &d in &[31usize, 32, 33, 64, 100, 128] {
            let a = Matrix::from_vec(5, d, rand_f32(d as u64, 5 * d)).unwrap();
            let b = Matrix::from_vec(7, d, rand_f32(d as u64 + 7, 7 * d)).unwrap();
            let mut scalar_out = Matrix::zeros(5, 7).unwrap();
            let mut vector_out = Matrix::zeros(5, 7).unwrap();
            matmul_transposed_scaled_into(
                SimdTier::Scalar,
                &a,
                &b,
                0.125,
                0..4,
                0..6,
                &mut scalar_out,
            );
            matmul_transposed_scaled_into(
                SimdTier::Avx2,
                &a,
                &b,
                0.125,
                0..4,
                0..6,
                &mut vector_out,
            );
            for r in 0..5 {
                for c in 0..7 {
                    let (s, v) = (scalar_out.get(r, c), vector_out.get(r, c));
                    // 0.125 is a power of two: dividing it back out is
                    // exact, so the dot contract applies unchanged.
                    assert!(
                        dot_close(s / 0.125, v / 0.125, a.row(r), b.row(c)),
                        "d {d} cell ({r},{c}): {s} vs {v}"
                    );
                }
            }
            // Outside the region both stay zero.
            assert_eq!(vector_out.get(4, 6), 0.0);
            assert_eq!(scalar_out.get(4, 6), 0.0);
        }
    }

    proptest! {
        #[test]
        fn prop_dot_tiers_agree_within_ulp(
            len in 0usize..130,
            seed in 0u64..500,
        ) {
            if avx2_available() {
                let a = rand_f32(seed, len);
                let b = rand_f32(seed.wrapping_add(77), len);
                let s = dot(SimdTier::Scalar, &a, &b);
                let v = dot(SimdTier::Avx2, &a, &b);
                prop_assert!(
                    dot_close(s, v, &a, &b),
                    "len {} scalar {} avx2 {}", len, s, v
                );
            }
        }

        #[test]
        fn prop_elementwise_kernels_agree(
            len in 0usize..130,
            seed in 0u64..500,
            factor in -2.0f32..2.0,
        ) {
            if avx2_available() {
                let x = rand_f32(seed, len);
                let mut s_out = rand_f32(seed.wrapping_add(5), len);
                let mut v_out = s_out.clone();
                // axpy is the AV tolerance class: one fused
                // multiply-add per element on AVX2, ≤ 0.5 ULP of
                // drift per step vs multiply-then-add.
                axpy(SimdTier::Scalar, &mut s_out, factor, &x);
                axpy(SimdTier::Avx2, &mut v_out, factor, &x);
                for (&s, &v) in s_out.iter().zip(v_out.iter()) {
                    prop_assert!(
                        (s - v).abs() <= 1e-6 * s.abs().max(1.0),
                        "axpy {} vs {}", s, v
                    );
                }
                // scale_row stays bit-identical: same single multiply
                // per element in both tiers.
                let mut s_scaled = rand_f32(seed.wrapping_add(9), len);
                let mut v_scaled = s_scaled.clone();
                scale_row(SimdTier::Scalar, &mut s_scaled, factor);
                scale_row(SimdTier::Avx2, &mut v_scaled, factor);
                prop_assert_eq!(
                    s_scaled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    v_scaled.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }

        #[test]
        fn prop_integer_kernels_bit_identical(
            len in 0usize..130,
            seed in 0u64..500,
            p_code in 0i32..256,
        ) {
            if avx2_available() {
                let a = rand_codes(seed, len);
                let b = rand_codes(seed.wrapping_add(13), len);
                let b8: Vec<i8> = b.iter().map(|&c| c as i8).collect();
                prop_assert_eq!(idot(SimdTier::Scalar, &a, &b), idot(SimdTier::Avx2, &a, &b));
                prop_assert_eq!(
                    idot_i8(SimdTier::Scalar, &a, &b8),
                    idot_i8(SimdTier::Avx2, &a, &b8)
                );
                let mut s_acc = rand_codes(seed.wrapping_add(29), len);
                let mut v_acc = s_acc.clone();
                vpu_accumulate(SimdTier::Scalar, &mut s_acc, p_code, &b);
                vpu_accumulate(SimdTier::Avx2, &mut v_acc, p_code, &b);
                prop_assert_eq!(&s_acc, &v_acc);
                vpu_accumulate_i8(SimdTier::Scalar, &mut s_acc, p_code, &b8);
                vpu_accumulate_i8(SimdTier::Avx2, &mut v_acc, p_code, &b8);
                prop_assert_eq!(&s_acc, &v_acc);
            }
        }

        #[test]
        fn prop_softmax_tiers_agree_with_exact_zeros_at_masks(
            len in 1usize..130,
            seed in 0u64..500,
            mask_every in 1usize..5,
        ) {
            if avx2_available() {
                let mut scalar_row = rand_f32(seed, len);
                for s in scalar_row.iter_mut().step_by(mask_every) {
                    *s = f32::NEG_INFINITY;
                }
                let mut vector_row = scalar_row.clone();
                crate::softmax::softmax_inplace_tier(&mut scalar_row, SimdTier::Scalar);
                crate::softmax::softmax_inplace_tier(&mut vector_row, SimdTier::Avx2);
                for (i, (&s, &v)) in scalar_row.iter().zip(&vector_row).enumerate() {
                    if s == 0.0 {
                        // Masked positions are exactly zero in every tier:
                        // the pruned AV walk's `p == 0.0` skip depends on it.
                        prop_assert_eq!(v.to_bits(), 0.0f32.to_bits(), "masked slot {}", i);
                    } else {
                        // Probabilities are tolerance-class across tiers
                        // (polynomial exp + reassociated sum, ~1e-6 rel).
                        prop_assert!(
                            (s - v).abs() <= 1e-5 * s.abs().max(1e-3),
                            "slot {}: scalar {} vs avx2 {}", i, s, v
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_exp_rows_tiers_agree_and_sum_matches(
            len in 1usize..130,
            seed in 0u64..500,
        ) {
            if avx2_available() {
                let scores: Vec<f32> = rand_f32(seed, len).iter().map(|x| 6.0 * x).collect();
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut s_row = scores.clone();
                let mut v_row = scores.clone();
                let s_sum = exp_rows(SimdTier::Scalar, &mut s_row, max);
                let v_sum = exp_rows(SimdTier::Avx2, &mut v_row, max);
                prop_assert!((s_sum - v_sum).abs() <= 1e-4 * s_sum.max(1.0));
                for (i, (&s, &v)) in s_row.iter().zip(&v_row).enumerate() {
                    prop_assert!(
                        (s - v).abs() <= 2e-6 * s.max(1e-6),
                        "slot {}: scalar {} vs avx2 {}", i, s, v
                    );
                }
            }
        }
    }

    #[test]
    fn tail_lengths_exp_rows_zero_masked_slots_exactly() {
        if !avx2_available() {
            return;
        }
        for &n in TAIL_LENGTHS {
            if n == 0 {
                continue;
            }
            let mut row: Vec<f32> = rand_f32(n as u64 + 51, n).iter().map(|x| 3.0 * x).collect();
            // Masked scores, deep underflow, and a guaranteed max of 0.
            row[0] = 0.0;
            if n > 1 {
                row[1] = f32::NEG_INFINITY;
            }
            if n > 2 {
                row[2] = -120.0; // underflows expf: must be exactly 0.0
            }
            let mut v_row = row.clone();
            let s_sum = exp_rows(SimdTier::Scalar, &mut row, 0.0);
            let v_sum = exp_rows(SimdTier::Avx2, &mut v_row, 0.0);
            assert!(
                (s_sum - v_sum).abs() <= 1e-4 * s_sum.max(1.0),
                "sum len {n}"
            );
            if n > 1 {
                assert_eq!(v_row[1].to_bits(), 0.0f32.to_bits(), "-inf slot len {n}");
            }
            if n > 2 {
                assert_eq!(
                    v_row[2].to_bits(),
                    0.0f32.to_bits(),
                    "underflow slot len {n}"
                );
            }
            assert_eq!(v_row[0].to_bits(), 1.0f32.to_bits(), "exp(0) len {n}");
        }
    }

    #[test]
    fn avx2_exp_tracks_f32_exp_to_relative_tolerance() {
        if !avx2_available() {
            return;
        }
        // Sweep the softmax-relevant domain (offsets from the row max
        // are always ≤ 0) plus the positive side for completeness. The
        // sweep stops just above the underflow cutoff (-87.336): below
        // it the AVX2 lane flushes to exactly 0.0 by design while
        // scalar `exp` still emits ~1e-38 subnormals — an absolute
        // difference of one subnormal, covered by the tail test above.
        let mut worst = 0.0f32;
        for step in -3480..=300 {
            let x = step as f32 * 0.025;
            let mut row = [x; 8];
            exp_rows(SimdTier::Avx2, &mut row, 0.0);
            let exact = x.exp();
            let rel = if exact == 0.0 {
                row[0].abs()
            } else {
                (row[0] - exact).abs() / exact
            };
            worst = worst.max(rel);
        }
        assert!(worst <= 1e-6, "worst relative exp error {worst}");
    }

    #[test]
    fn avx2_matmul_cells_are_bitwise_equal_to_the_tier_dot() {
        if !avx2_available() {
            return;
        }
        // The decode ≡ batch contract inside the AVX2 tier: every cell
        // of the blocked matmul (dot4 lanes *and* remainder columns)
        // must equal a standalone tier `dot` bit for bit. Column counts
        // 1..=9 cross the 4-block boundary in every phase.
        for &d in &[31usize, 33, 64, 100] {
            for cols in 1usize..=9 {
                let a = Matrix::from_vec(3, d, rand_f32(d as u64 + 61, 3 * d)).unwrap();
                let b = Matrix::from_vec(cols, d, rand_f32(d as u64 + 62, cols * d)).unwrap();
                let mut out = Matrix::zeros(3, cols).unwrap();
                matmul_transposed_scaled_into(SimdTier::Avx2, &a, &b, 1.0, 0..3, 0..cols, &mut out);
                for r in 0..3 {
                    for c in 0..cols {
                        let cell = out.get(r, c);
                        let lone = dot(SimdTier::Avx2, a.row(r), b.row(c));
                        assert_eq!(
                            cell.to_bits(),
                            lone.to_bits(),
                            "d {d} cols {cols} cell ({r},{c}): {cell} vs {lone}"
                        );
                    }
                }
            }
        }
    }
}
