//! Reusable scratch buffers for the fused attention kernels.

/// Per-pipeline scratch for the fused attention kernels: a probability
/// staging row, an integer accumulator row, and a pool of recyclable
/// matrix buffers, all grown on demand and reused across calls.
///
/// The fused kernels write scores and probabilities directly into
/// their output matrices, so the only per-query heap traffic left is
/// what a kernel genuinely returns (the [`crate::PruneDecision`]
/// vectors). A single `Workspace` threaded through a pipeline of
/// [`crate::dense_attention_with`] / [`crate::pruned_attention_with`] /
/// [`crate::quantized_attention_with`] calls supplies their output
/// matrices from the buffer pool and stages the quantized V-PU's
/// accumulation; [`Workspace::prob_row`] is a caller-side staging row
/// (the system pipeline's no-recompute softmax uses it).
///
/// **Pool contract.** The pool never affects results — a pooled buffer
/// is cleared and re-zeroed before reuse, so kernels are bit-identical
/// with or without recycling. Retention is bounded in both buffer
/// count (eight) and total floats (128 MiB), so a
/// long-lived pipeline (a serving loop, a decode session stepping
/// thousands of tokens) cannot accumulate memory; recycles beyond
/// either cap are dropped, never errors.
///
/// # Example
///
/// ```
/// use sprint_attention::{pruned_attention_with, AttentionConfig, Matrix, Workspace};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let q = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let mut ws = Workspace::new();
/// // The same workspace serves any number of heads/layers:
/// for _ in 0..3 {
///     let (_out, _dec) =
///         pruned_attention_with(&q, &q, &q, &AttentionConfig::new(2), 0.0, None, &mut ws)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Workspace {
    prob_row: Vec<f32>,
    acc_row: Vec<i32>,
    pool: Vec<Vec<f32>>,
    tier: crate::SimdTier,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace {
            prob_row: Vec::new(),
            acc_row: Vec::new(),
            pool: Vec::new(),
            tier: crate::active_tier(),
        }
    }
}

/// Recycled matrix buffers kept per workspace. Three per kernel call
/// (scores, probs, output) plus headroom for a second head size.
const POOL_CAP: usize = 8;

/// Total floats the pool may retain across all of its buffers
/// (128 MiB). The count cap alone does not bound memory: a serving
/// run that once touched a long-context head would otherwise hoard up
/// to [`POOL_CAP`] sequence-squared buffers forever. Oversized
/// recycles are dropped instead; the cap still fits a full 4096-token
/// score matrix, so steady-state long-context loops keep their reuse.
const POOL_FLOAT_CAP: usize = 1 << 25;

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Creates a workspace pre-sized for `s_k` keys and `d_v` value
    /// columns, so the first call allocates nothing beyond its output
    /// matrices.
    pub fn with_capacity(s_k: usize, d_v: usize) -> Self {
        Workspace {
            prob_row: vec![0.0; s_k],
            acc_row: vec![0; d_v],
            pool: Vec::new(),
            tier: crate::active_tier(),
        }
    }

    /// Forces the kernel tier every call through this workspace
    /// dispatches on. Requests are sanitized to what the host supports
    /// ([`crate::sanitize_tier`]), so forcing [`crate::SimdTier::Avx2`]
    /// on a non-AVX2 host silently runs scalar rather than faulting.
    pub fn set_simd_tier(&mut self, tier: crate::SimdTier) {
        self.tier = crate::sanitize_tier(tier);
    }

    /// The kernel tier this workspace dispatches on.
    pub fn simd_tier(&self) -> crate::SimdTier {
        self.tier
    }

    /// Returns a matrix's backing buffer to the workspace pool, so the
    /// next kernel call reuses warm memory instead of paying a fresh
    /// allocation (and its page faults). Recycling is optional — the
    /// kernels work identically without it — but a steady-state loop
    /// over heads that recycles its finished outputs runs with zero
    /// heap traffic in the float kernels.
    ///
    /// The pool is bounded in both buffer count and total bytes, so a
    /// long-running serving loop over mixed head sizes cannot
    /// accumulate memory: recycles beyond the caps are simply dropped.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_attention::{dense_attention_with, AttentionConfig, Matrix, Workspace};
    ///
    /// # fn main() -> Result<(), sprint_attention::AttentionError> {
    /// let q = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
    /// let mut ws = Workspace::new();
    /// for _ in 0..10 {
    ///     let out = dense_attention_with(&q, &q, &q, &AttentionConfig::new(2), &mut ws)?;
    ///     // ... use out ...
    ///     ws.recycle(out.scores);
    ///     ws.recycle(out.probs);
    ///     ws.recycle(out.output);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn recycle(&mut self, m: crate::Matrix) {
        let buf = m.into_vec();
        let pooled: usize = self.pool.iter().map(Vec::capacity).sum();
        if self.pool.len() < POOL_CAP && pooled + buf.capacity() <= POOL_FLOAT_CAP {
            self.pool.push(buf);
        }
    }

    /// An all-zero `rows × cols` matrix, backed by a pooled buffer when
    /// one with enough capacity is available.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AttentionError::InvalidDimension`] for zero
    /// dimensions (as [`crate::Matrix::zeros`] does).
    pub(crate) fn zeroed_matrix(
        &mut self,
        rows: usize,
        cols: usize,
    ) -> Result<crate::Matrix, crate::AttentionError> {
        let n = rows * cols;
        // On a miss, allocate fresh rather than consuming (and
        // reallocating) a pooled buffer that is too small — mixed-size
        // pipelines keep their small-buffer slots.
        let mut buf = match self.pool.iter().position(|b| b.capacity() >= n) {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(n, 0.0);
        crate::Matrix::from_vec(rows, cols, buf)
    }

    /// Drops every buffer, returning the workspace to its freshly
    /// constructed state.
    ///
    /// Pipelines recovering from a fault in unrelated code (e.g. an
    /// engine shard whose mutex was poisoned by a panicking worker)
    /// reset rather than reason about which buffers the interrupted
    /// call left mid-write — the pool contract already guarantees a
    /// reset workspace produces bit-identical results, just with cold
    /// first allocations. A forced kernel tier survives the reset —
    /// recovery must not silently change which tier a pipeline runs.
    pub fn reset(&mut self) {
        *self = Workspace {
            tier: self.tier,
            ..Workspace::default()
        };
    }

    /// A zeroed probability staging row of length `n`.
    pub fn prob_row(&mut self, n: usize) -> &mut [f32] {
        self.prob_row.clear();
        self.prob_row.resize(n, 0.0);
        &mut self.prob_row
    }

    /// A zeroed integer accumulator row of length `n` (the quantized
    /// V-PU's 16-bit-bounded accumulation lives here before clamping).
    pub fn acc_row(&mut self, n: usize) -> &mut [i32] {
        self.acc_row.clear();
        self.acc_row.resize(n, 0);
        &mut self.acc_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_zeroed_between_uses() {
        let mut ws = Workspace::new();
        ws.prob_row(4)[2] = 7.0;
        assert_eq!(ws.prob_row(4), &[0.0; 4]);
        ws.acc_row(2)[1] = 5;
        assert_eq!(ws.acc_row(2), &[0; 2]);
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        let mut ws = Workspace::new();
        let mut m = ws.zeroed_matrix(4, 4).unwrap();
        m.row_mut(2).fill(7.0);
        ws.recycle(m);
        let again = ws.zeroed_matrix(4, 4).unwrap();
        assert!(again.as_slice().iter().all(|&x| x == 0.0));
        // A smaller request reuses the same capacity.
        let small = ws.zeroed_matrix(2, 2).unwrap();
        assert_eq!(small.shape(), (2, 2));
        assert!(small.as_slice().iter().all(|&x| x == 0.0));
        assert!(ws.zeroed_matrix(0, 3).is_err());
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..20 {
            ws.recycle(crate::Matrix::zeros(2, 2).unwrap());
        }
        assert!(ws.pool.len() <= super::POOL_CAP);
    }

    #[test]
    fn pool_is_byte_bounded_across_a_long_mixed_run() {
        // Regression: the count cap alone let a serving run hoard up
        // to POOL_CAP huge buffers after one long-context head. The
        // byte cap bounds total retention no matter the mix.
        let mut ws = Workspace::new();
        let big_rows = 1 << 12; // 4096 x 4096 floats = half the cap
        for _ in 0..6 {
            ws.recycle(crate::Matrix::zeros(big_rows, big_rows).unwrap());
            ws.recycle(crate::Matrix::zeros(16, 16).unwrap());
        }
        let pooled: usize = ws.pool.iter().map(Vec::capacity).sum();
        assert!(
            pooled <= super::POOL_FLOAT_CAP,
            "pool retains {pooled} floats, cap {}",
            super::POOL_FLOAT_CAP
        );
        assert!(ws.pool.len() <= super::POOL_CAP);
        // Small buffers still pool once the run shrinks again.
        let mut small_ws = Workspace::new();
        small_ws.recycle(crate::Matrix::zeros(4, 4).unwrap());
        assert_eq!(small_ws.pool.len(), 1);
    }

    #[test]
    fn reset_returns_to_fresh_state() {
        let mut ws = Workspace::with_capacity(8, 8);
        ws.prob_row(8)[0] = 1.0;
        ws.acc_row(8)[0] = 1;
        ws.recycle(crate::Matrix::zeros(4, 4).unwrap());
        ws.reset();
        assert!(ws.pool.is_empty());
        assert_eq!(ws.prob_row.capacity(), 0);
        assert_eq!(ws.acc_row.capacity(), 0);
        // And it still works after the reset.
        assert_eq!(ws.prob_row(3), &[0.0; 3]);
    }

    #[test]
    fn forced_tier_is_sanitized_and_survives_reset() {
        let mut ws = Workspace::new();
        assert_eq!(ws.simd_tier(), crate::active_tier());
        ws.set_simd_tier(crate::SimdTier::Scalar);
        assert_eq!(ws.simd_tier(), crate::SimdTier::Scalar);
        ws.reset();
        assert_eq!(ws.simd_tier(), crate::SimdTier::Scalar);
        ws.set_simd_tier(crate::SimdTier::Avx2);
        // Sanitized: Avx2 only sticks on hosts that can run it.
        assert_eq!(ws.simd_tier(), crate::sanitize_tier(crate::SimdTier::Avx2));
    }

    #[test]
    fn rows_resize_on_demand() {
        let mut ws = Workspace::with_capacity(2, 2);
        assert_eq!(ws.prob_row(5).len(), 5);
        assert_eq!(ws.prob_row(1).len(), 1);
        assert_eq!(ws.acc_row(3).len(), 3);
    }
}
