//! Dense, pruned and quantized self-attention (§II-A, §VI).

use serde::{Deserialize, Serialize};

use crate::matrix::dot;
use crate::{
    quantize_matrix, softmax_exact, softmax_masked, AttentionError, Matrix, PruneDecision,
    SoftmaxLut,
};

/// The "sufficiently large negative value" placed in padded positions
/// before the softmax (§II-C3). Passing it through softmax drives the
/// probability of padded positions to zero.
pub const MASK_NEG: f32 = -1.0e9;

/// Configuration of one attention head.
///
/// # Example
///
/// ```
/// use sprint_attention::AttentionConfig;
///
/// let cfg = AttentionConfig::new(64);
/// assert!((cfg.scale() - 0.125).abs() < 1e-6); // 1/sqrt(64)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionConfig {
    d: usize,
    scale: f32,
}

impl AttentionConfig {
    /// Creates a head configuration with the conventional
    /// `1 / sqrt(d)` score scaling.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "embedding size must be non-zero");
        AttentionConfig {
            d,
            scale: 1.0 / (d as f32).sqrt(),
        }
    }

    /// Creates a head configuration with an explicit score scale.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or the scale is not finite and positive.
    pub fn with_scale(d: usize, scale: f32) -> Self {
        assert!(d > 0, "embedding size must be non-zero");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        AttentionConfig { d, scale }
    }

    /// Embedding size of the head.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Score scaling factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// A prefix padding mask: the first `live` tokens are real, the rest
/// are padding (the gray stripes of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaddingMask {
    total: usize,
    live: usize,
}

impl PaddingMask {
    /// Creates a mask of `total` tokens with the first `live` real.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidDimension`] if `live > total`
    /// or `total == 0`.
    pub fn new(total: usize, live: usize) -> Result<Self, AttentionError> {
        if total == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "total",
                value: total,
            });
        }
        if live > total {
            return Err(AttentionError::InvalidDimension {
                name: "live",
                value: live,
            });
        }
        Ok(PaddingMask { total, live })
    }

    /// Mask with no padding.
    pub fn full(total: usize) -> Self {
        PaddingMask { total, live: total }
    }

    /// Whether token `i` is a real (non-padded) token.
    pub fn is_live(&self, i: usize) -> bool {
        i < self.live
    }

    /// Number of real tokens.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total sequence length including padding.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of the sequence that is padding.
    pub fn padded_fraction(&self) -> f64 {
        (self.total - self.live) as f64 / self.total as f64
    }
}

/// The full intermediate state of one attention head evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionOutput {
    /// Raw (scaled) scores `Q × Kᵀ`, `s_q × s_k`. Pruned/masked entries
    /// hold `f32::NEG_INFINITY`.
    pub scores: Matrix,
    /// Row-wise softmax probabilities, `s_q × s_k`.
    pub probs: Matrix,
    /// Attention values `probs × V`, `s_q × d_v`.
    pub output: Matrix,
}

fn check_shapes(q: &Matrix, k: &Matrix, v: &Matrix) -> Result<(), AttentionError> {
    if q.cols() != k.cols() {
        return Err(AttentionError::ShapeMismatch {
            op: "attention q/k embedding",
            left: q.shape(),
            right: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(AttentionError::ShapeMismatch {
            op: "attention k/v sequence",
            left: k.shape(),
            right: v.shape(),
        });
    }
    Ok(())
}

/// Reference dense self-attention in `f32`:
/// `softmax(scale · Q Kᵀ) × V`.
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] when `Q`/`K` embedding
/// sizes differ or `K`/`V` sequence lengths differ.
pub fn dense_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
) -> Result<AttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let (s_q, s_k) = (q.rows(), k.rows());
    let mut scores = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        for j in 0..s_k {
            scores.set(i, j, cfg.scale() * dot(q.row(i), k.row(j)));
        }
    }
    let mut probs = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        let p = softmax_exact(scores.row(i));
        probs.row_mut(i).copy_from_slice(&p);
    }
    let output = probs.matmul(v)?;
    Ok(AttentionOutput {
        scores,
        probs,
        output,
    })
}

/// Runtime-pruned self-attention (Eq. 3): scores below `threshold` are
/// removed before the softmax; padded positions are removed everywhere.
///
/// Returns the attention state together with the per-query
/// [`PruneDecision`]s (padded keys count as pruned; padded queries get
/// an all-pruned decision and an all-zero output row, matching the
/// two-dimensional sequence reduction of §VI).
///
/// # Errors
///
/// Shape errors as in [`dense_attention`]; additionally the padding
/// mask, when given, must cover exactly `k.rows()` tokens.
pub fn pruned_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    threshold: f32,
    padding: Option<&PaddingMask>,
) -> Result<(AttentionOutput, Vec<PruneDecision>), AttentionError> {
    check_shapes(q, k, v)?;
    if let Some(p) = padding {
        if p.total() != k.rows() {
            return Err(AttentionError::ShapeMismatch {
                op: "padding mask",
                left: (p.total(), 1),
                right: (k.rows(), 1),
            });
        }
    }
    let (s_q, s_k) = (q.rows(), k.rows());
    let mut scores = Matrix::zeros(s_q, s_k)?;
    let mut probs = Matrix::zeros(s_q, s_k)?;
    let mut decisions = Vec::with_capacity(s_q);
    for i in 0..s_q {
        let query_live = padding.map_or(true, |p| p.is_live(i.min(p.total() - 1)));
        if !query_live {
            // Padded query: everything pruned, zero output row.
            for j in 0..s_k {
                scores.set(i, j, f32::NEG_INFINITY);
            }
            decisions.push(PruneDecision::new(vec![true; s_k]));
            continue;
        }
        let mut row_scores = vec![0.0f32; s_k];
        for (j, rs) in row_scores.iter_mut().enumerate() {
            let key_live = padding.map_or(true, |p| p.is_live(j));
            *rs = if key_live {
                cfg.scale() * dot(q.row(i), k.row(j))
            } else {
                MASK_NEG
            };
        }
        let mut decision = PruneDecision::from_scores(&row_scores, threshold);
        if let Some(p) = padding {
            decision.apply_padding(p.live());
        }
        for (j, s) in row_scores.iter().enumerate() {
            scores.set(
                i,
                j,
                if decision.is_pruned(j) {
                    f32::NEG_INFINITY
                } else {
                    *s
                },
            );
        }
        let keep: Vec<bool> = (0..s_k).map(|j| decision.is_kept(j)).collect();
        let p = softmax_masked(&row_scores, &keep)?;
        probs.row_mut(i).copy_from_slice(&p);
        decisions.push(decision);
    }
    let output = probs.matmul(v)?;
    Ok((
        AttentionOutput {
            scores,
            probs,
            output,
        },
        decisions,
    ))
}

/// Result of the quantized (hardware) attention datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedAttentionOutput {
    /// Recomputed scores (dequantized from the 8-bit × 8-bit integer
    /// dot products). Pruned entries hold `f32::NEG_INFINITY`.
    pub scores: Matrix,
    /// 8-bit-resolution probabilities from the two-LUT softmax unit.
    pub probs: Matrix,
    /// Final attention values (16-bit accumulation, dequantized).
    pub output: Matrix,
}

/// The SPRINT on-chip digital datapath: 8-bit Q/K/V, 12-bit softmax
/// inputs via the two-LUT unit, 16-bit attention outputs (§VI).
///
/// When `decisions` is given (the binary pruning vectors coming back
/// from the in-memory thresholding), only kept keys are computed —
/// this is the "on-chip recompute" half of SPRINT. With `None`, the
/// full dense computation is performed in quantized arithmetic (the
/// iso-precision baseline accelerator).
///
/// # Errors
///
/// Shape errors as in [`dense_attention`]; a decision slice, when
/// given, must contain one decision of length `k.rows()` per query.
pub fn quantized_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    decisions: Option<&[PruneDecision]>,
) -> Result<QuantizedAttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let (s_q, s_k) = (q.rows(), k.rows());
    if let Some(ds) = decisions {
        if ds.len() != s_q {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decisions per query",
                left: (ds.len(), 1),
                right: (s_q, 1),
            });
        }
        if let Some(d) = ds.iter().find(|d| d.len() != s_k) {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decision length",
                left: (d.len(), 1),
                right: (s_k, 1),
            });
        }
    }

    // 8-bit quantization of the operand matrices (per-tensor symmetric).
    let qq = quantize_matrix(q, 8)?;
    let qk = quantize_matrix(k, 8)?;
    let qv = quantize_matrix(v, 8)?;
    let score_lsb = qq.params().step() * qk.params().step() * cfg.scale();

    let mut scores = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        for j in 0..s_k {
            let kept = decisions.map_or(true, |ds| ds[i].is_kept(j));
            if !kept {
                scores.set(i, j, f32::NEG_INFINITY);
                continue;
            }
            // Integer MAC: i8 x i8 accumulated in i32 (the QK-PU).
            let acc: i32 = qq
                .code_row(i)
                .iter()
                .zip(qk.code_row(j))
                .map(|(&a, &b)| a * b)
                .sum();
            scores.set(i, j, acc as f32 * score_lsb);
        }
    }

    // Softmax with 12-bit inputs via the two-LUT unit. The range is the
    // largest finite score offset seen in this head.
    let mut max_offset = 1.0f32;
    for i in 0..s_q {
        let row = scores.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            continue;
        }
        for &s in row {
            if s != f32::NEG_INFINITY {
                max_offset = max_offset.max(max - s);
            }
        }
    }
    let unit = SoftmaxLut::new(max_offset.max(1e-3))?;
    let mut probs = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        let p = unit.probabilities(scores.row(i))?;
        probs.row_mut(i).copy_from_slice(&p);
    }

    // V-PU: 8-bit probabilities x 8-bit values, 16-bit accumulation.
    let out_lsb = qv.params().step() / 255.0;
    let mut output = Matrix::zeros(s_q, v.cols())?;
    for i in 0..s_q {
        for c in 0..v.cols() {
            let mut acc: i32 = 0;
            for j in 0..s_k {
                let p_code = (probs.get(i, j) * 255.0).round() as i32;
                if p_code == 0 {
                    continue;
                }
                acc += p_code * qv.code(j, c);
            }
            // Final attention value kept in 16 bits.
            let acc16 = acc.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
            output.set(i, c, acc16 as f32 * out_lsb);
        }
    }

    Ok(QuantizedAttentionOutput {
        scores,
        probs,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_qkv() -> (Matrix, Matrix, Matrix) {
        let q = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0, 0.0],
        ])
        .unwrap();
        let k = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let v = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        (q, k, v)
    }

    #[test]
    fn config_defaults_to_inverse_sqrt_scale() {
        let cfg = AttentionConfig::new(64);
        assert_eq!(cfg.d(), 64);
        assert!((cfg.scale() - 1.0 / 8.0).abs() < 1e-7);
        let explicit = AttentionConfig::with_scale(64, 1.0);
        assert_eq!(explicit.scale(), 1.0);
    }

    #[test]
    fn padding_mask_validation_and_queries() {
        assert!(PaddingMask::new(0, 0).is_err());
        assert!(PaddingMask::new(4, 5).is_err());
        let m = PaddingMask::new(8, 6).unwrap();
        assert!(m.is_live(5));
        assert!(!m.is_live(6));
        assert!((m.padded_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PaddingMask::full(4).padded_fraction(), 0.0);
    }

    #[test]
    fn dense_attention_rows_are_distributions() {
        let (q, k, v) = small_qkv();
        let out = dense_attention(&q, &k, &v, &AttentionConfig::new(4)).unwrap();
        for i in 0..3 {
            let sum: f32 = out.probs.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(out.output.shape(), (3, 4));
    }

    #[test]
    fn dense_attention_prefers_aligned_key() {
        let (q, k, v) = small_qkv();
        let out = dense_attention(&q, &k, &v, &AttentionConfig::new(4)).unwrap();
        // Query 0 aligns with key 0; its probability must dominate.
        assert!(out.probs.get(0, 0) > out.probs.get(0, 1));
        assert!(out.probs.get(0, 0) > out.probs.get(0, 2));
    }

    #[test]
    fn dense_attention_shape_errors() {
        let q = Matrix::zeros(2, 3).unwrap();
        let k = Matrix::zeros(2, 4).unwrap();
        let v = Matrix::zeros(2, 4).unwrap();
        assert!(dense_attention(&q, &k, &v, &AttentionConfig::new(3)).is_err());
        let k2 = Matrix::zeros(2, 3).unwrap();
        let v2 = Matrix::zeros(3, 3).unwrap();
        assert!(dense_attention(&q, &k2, &v2, &AttentionConfig::new(3)).is_err());
    }

    #[test]
    fn pruned_attention_with_low_threshold_matches_dense() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
        let (pruned, decisions) = pruned_attention(&q, &k, &v, &cfg, -1e30, None).unwrap();
        for (i, d) in decisions.iter().enumerate().take(3) {
            assert!(d.kept_count() == 3, "nothing pruned");
            for j in 0..3 {
                assert!((dense.probs.get(i, j) - pruned.probs.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pruned_attention_removes_low_scores() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::with_scale(4, 1.0);
        // Scores for query 0 are [1, 0, 0]; threshold 0.5 keeps only key 0.
        let (out, decisions) = pruned_attention(&q, &k, &v, &cfg, 0.5, None).unwrap();
        assert_eq!(decisions[0].kept_indices(), vec![0]);
        assert!((out.probs.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(out.probs.get(0, 1), 0.0);
        assert_eq!(out.scores.get(0, 1), f32::NEG_INFINITY);
    }

    #[test]
    fn pruned_attention_respects_padding() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let pad = PaddingMask::new(3, 2).unwrap();
        let (out, decisions) = pruned_attention(&q, &k, &v, &cfg, -1e30, Some(&pad)).unwrap();
        // Key 2 is padding: pruned for every live query.
        assert!(decisions[0].is_pruned(2));
        assert!(decisions[1].is_pruned(2));
        // Query 2 is padding: fully pruned, zero output row.
        assert_eq!(decisions[2].kept_count(), 0);
        assert!(out.output.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pruned_attention_rejects_wrong_mask_length() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let pad = PaddingMask::new(5, 2).unwrap();
        assert!(pruned_attention(&q, &k, &v, &cfg, 0.0, Some(&pad)).is_err());
    }

    #[test]
    fn quantized_attention_tracks_dense_reference() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
        let hw = quantized_attention(&q, &k, &v, &cfg, None).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (dense.probs.get(i, j) - hw.probs.get(i, j)).abs() < 0.03,
                    "probs diverge at ({i},{j})"
                );
            }
            for c in 0..4 {
                assert!(
                    (dense.output.get(i, c) - hw.output.get(i, c)).abs() < 0.05,
                    "outputs diverge at ({i},{c})"
                );
            }
        }
    }

    #[test]
    fn quantized_attention_honours_decisions() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let decisions = vec![
            PruneDecision::new(vec![false, true, true]),
            PruneDecision::new(vec![true, false, true]),
            PruneDecision::new(vec![false, false, true]),
        ];
        let hw = quantized_attention(&q, &k, &v, &cfg, Some(&decisions)).unwrap();
        assert_eq!(hw.scores.get(0, 1), f32::NEG_INFINITY);
        assert!((hw.probs.get(0, 0) - 1.0).abs() < 1e-3);
        assert_eq!(hw.probs.get(1, 0), 0.0);
    }

    #[test]
    fn quantized_attention_validates_decision_shape() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let bad_count = vec![PruneDecision::new(vec![false; 3])];
        assert!(quantized_attention(&q, &k, &v, &cfg, Some(&bad_count)).is_err());
        let bad_len = vec![
            PruneDecision::new(vec![false; 2]),
            PruneDecision::new(vec![false; 2]),
            PruneDecision::new(vec![false; 2]),
        ];
        assert!(quantized_attention(&q, &k, &v, &cfg, Some(&bad_len)).is_err());
    }
}
