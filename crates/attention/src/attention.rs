//! Dense, pruned and quantized self-attention (§II-A, §VI).
//!
//! These are the *fused* kernels: scores come from a cache-blocked
//! `Q × Kᵀ` ([`Matrix::matmul_transposed`]) written once per row,
//! softmax runs in place on matrix rows, and the post-prune `A × V`
//! product iterates only the kept indices of each [`PruneDecision`] —
//! the software mirror of the paper's "on-chip recomputation of the
//! surviving scores". Per-query staging lives in a reusable
//! [`Workspace`]; the naive originals survive in [`crate::reference`]
//! as the property-test oracle and bench baseline.

use serde::{Deserialize, Serialize};

use crate::simd::{self, SimdTier};
use crate::softmax::softmax_inplace_tier;
use crate::{quantize_matrix, AttentionError, Matrix, PruneDecision, SoftmaxLut, Workspace};

/// The "sufficiently large negative value" placed in padded positions
/// before the softmax (§II-C3). Passing it through softmax drives the
/// probability of padded positions to zero.
pub const MASK_NEG: f32 = -1.0e9;

/// Kept-fraction at or above which the pruned AV stage stops skipping
/// pruned keys and streams every key instead. At low sparsity the
/// per-key `p != 0` branch mispredicts and the strided skips defeat
/// hardware prefetch, making the "sparse" walk *slower* than dense
/// (BENCH_report.json showed `pruned/fused-rate50` behind
/// `dense/fused`). Visiting a pruned key multiplies its exactly-zero
/// probability into the accumulator — a bit-exact no-op for finite
/// values (`0.0 * v + acc == acc` since softmax probabilities are
/// non-negative), so the crossover never changes results; a regression
/// test pins both AV walks bit-identical.
pub(crate) const DENSE_AV_CROSSOVER: f32 = 0.35;

/// Configuration of one attention head.
///
/// # Example
///
/// ```
/// use sprint_attention::AttentionConfig;
///
/// let cfg = AttentionConfig::new(64);
/// assert!((cfg.scale() - 0.125).abs() < 1e-6); // 1/sqrt(64)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionConfig {
    d: usize,
    scale: f32,
}

impl AttentionConfig {
    /// Creates a head configuration with the conventional
    /// `1 / sqrt(d)` score scaling.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "embedding size must be non-zero");
        AttentionConfig {
            d,
            scale: 1.0 / (d as f32).sqrt(),
        }
    }

    /// Creates a head configuration with an explicit score scale.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or the scale is not finite and positive.
    pub fn with_scale(d: usize, scale: f32) -> Self {
        assert!(d > 0, "embedding size must be non-zero");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        AttentionConfig { d, scale }
    }

    /// Embedding size of the head.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Score scaling factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// A prefix padding mask: the first `live` tokens are real, the rest
/// are padding (the gray stripes of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaddingMask {
    total: usize,
    live: usize,
}

impl PaddingMask {
    /// Creates a mask of `total` tokens with the first `live` real.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidDimension`] if `live > total`
    /// or `total == 0`.
    pub fn new(total: usize, live: usize) -> Result<Self, AttentionError> {
        if total == 0 {
            return Err(AttentionError::InvalidDimension {
                name: "total",
                value: total,
            });
        }
        if live > total {
            return Err(AttentionError::InvalidDimension {
                name: "live",
                value: live,
            });
        }
        Ok(PaddingMask { total, live })
    }

    /// Mask with no padding.
    pub fn full(total: usize) -> Self {
        PaddingMask { total, live: total }
    }

    /// Whether token `i` is a real (non-padded) token.
    pub fn is_live(&self, i: usize) -> bool {
        i < self.live
    }

    /// Number of real tokens.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total sequence length including padding.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of the sequence that is padding.
    pub fn padded_fraction(&self) -> f64 {
        (self.total - self.live) as f64 / self.total as f64
    }
}

/// The full intermediate state of one attention head evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionOutput {
    /// Raw (scaled) scores `Q × Kᵀ`, `s_q × s_k`. Pruned/masked entries
    /// hold `f32::NEG_INFINITY`.
    pub scores: Matrix,
    /// Row-wise softmax probabilities, `s_q × s_k`.
    pub probs: Matrix,
    /// Attention values `probs × V`, `s_q × d_v`.
    pub output: Matrix,
}

pub(crate) fn check_shapes(q: &Matrix, k: &Matrix, v: &Matrix) -> Result<(), AttentionError> {
    if q.cols() != k.cols() {
        return Err(AttentionError::ShapeMismatch {
            op: "attention q/k embedding",
            left: q.shape(),
            right: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(AttentionError::ShapeMismatch {
            op: "attention k/v sequence",
            left: k.shape(),
            right: v.shape(),
        });
    }
    Ok(())
}

/// The padding mask, when given, must cover exactly the key sequence.
pub(crate) fn validate_padding(
    k: &Matrix,
    padding: Option<&PaddingMask>,
) -> Result<(), AttentionError> {
    if let Some(p) = padding {
        if p.total() != k.rows() {
            return Err(AttentionError::ShapeMismatch {
                op: "padding mask",
                left: (p.total(), 1),
                right: (k.rows(), 1),
            });
        }
    }
    Ok(())
}

/// A decision slice, when given, must contain one decision of length
/// `s_k` per query.
pub(crate) fn validate_decisions(
    s_q: usize,
    s_k: usize,
    decisions: Option<&[PruneDecision]>,
) -> Result<(), AttentionError> {
    if let Some(ds) = decisions {
        if ds.len() != s_q {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decisions per query",
                left: (ds.len(), 1),
                right: (s_q, 1),
            });
        }
        if let Some(d) = ds.iter().find(|d| d.len() != s_k) {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decision length",
                left: (d.len(), 1),
                right: (s_k, 1),
            });
        }
    }
    Ok(())
}

/// Whether query `i` is a live (non-padded) query.
///
/// The padding mask describes the *key* sequence; queries share it in
/// the self-attention case (`s_q == s_k`). A query index beyond the
/// mask — possible only in cross-shaped calls where `s_q > s_k` — is
/// not covered by the mask and therefore live. (The seed implementation
/// clamped the query index against the key mask length, silently
/// marking trailing queries live or dead by whatever the last key's
/// state happened to be.)
pub(crate) fn query_is_live(i: usize, padding: Option<&PaddingMask>) -> bool {
    padding.map_or(true, |p| i >= p.total() || p.is_live(i))
}

/// `out += a * x` over equal-length rows (the sparse AV inner step).
/// The d = 64 case (every studied model) takes a fixed-size path so the
/// loop fully unrolls with no bounds checks.
#[inline]
pub(crate) fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    if let (Ok(o), Ok(xv)) = (
        <&mut [f32; 64]>::try_from(&mut *out),
        <&[f32; 64]>::try_from(x),
    ) {
        for t in 0..64 {
            o[t] += a * xv[t];
        }
        return;
    }
    for (o, &xv) in out.iter_mut().zip(x) {
        *o += a * xv;
    }
}

/// Reference dense self-attention in `f32`:
/// `softmax(scale · Q Kᵀ) × V`.
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] when `Q`/`K` embedding
/// sizes differ or `K`/`V` sequence lengths differ.
pub fn dense_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
) -> Result<AttentionOutput, AttentionError> {
    dense_attention_with(q, k, v, cfg, &mut Workspace::new())
}

/// [`dense_attention`] with a caller-provided [`Workspace`]: output
/// matrices come from the workspace's buffer pool (see
/// [`Workspace::recycle`]), the register-blocked `Q × Kᵀ` pass writes
/// the scores once, and the softmax runs in place on each
/// probability-matrix row.
///
/// # Errors
///
/// Same shape errors as [`dense_attention`].
pub fn dense_attention_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    ws: &mut Workspace,
) -> Result<AttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let tier = ws.simd_tier();
    let (s_q, s_k) = (q.rows(), k.rows());
    let d_v = v.cols();
    let mut scores = ws.zeroed_matrix(s_q, s_k)?;
    simd::matmul_transposed_scaled_into(tier, q, k, cfg.scale(), 0..s_q, 0..s_k, &mut scores);
    let mut probs = ws.zeroed_matrix(s_q, s_k)?;
    let mut output = ws.zeroed_matrix(s_q, d_v)?;
    for i in 0..s_q {
        let prow = probs.row_mut(i);
        prow.copy_from_slice(scores.row(i));
        softmax_inplace_tier(prow, tier);
    }
    // Dense rows have no pruned keys: stream every key rather than
    // branching on `p != 0` per key (the crossover's dense walk). The
    // matrix-level stage key-panels `V` across rows on the AVX2 tier;
    // each row remains the tier's one per-row accumulation chain.
    simd::av_rows(
        tier,
        &mut output,
        &probs,
        v.as_slice(),
        d_v,
        &vec![(s_k, false); s_q],
    );
    Ok(AttentionOutput {
        scores,
        probs,
        output,
    })
}

/// Runtime-pruned self-attention (Eq. 3): scores below `threshold` are
/// removed before the softmax; padded positions are removed everywhere.
///
/// Returns the attention state together with the per-query
/// [`PruneDecision`]s (padded keys count as pruned; padded queries get
/// an all-pruned decision and an all-zero output row, matching the
/// two-dimensional sequence reduction of §VI).
///
/// # Errors
///
/// Shape errors as in [`dense_attention`]; additionally the padding
/// mask, when given, must cover exactly `k.rows()` tokens.
pub fn pruned_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    threshold: f32,
    padding: Option<&PaddingMask>,
) -> Result<(AttentionOutput, Vec<PruneDecision>), AttentionError> {
    pruned_attention_with(q, k, v, cfg, threshold, padding, &mut Workspace::new())
}

/// [`pruned_attention`] with a caller-provided [`Workspace`].
///
/// The fused flow per live query row: the blocked `Q × Kᵀ` pass has
/// already written the raw scores for the live region, the keep mask is
/// built in the workspace, pruned entries are masked to `-inf` in the
/// scores row, the masked softmax runs in place on the probability row,
/// and the value product accumulates **only the kept indices** — work
/// in the AV stage scales with the keep rate, the software counterpart
/// of SPRINT recomputing only the ~O(10%) surviving scores on chip.
///
/// # Errors
///
/// Same errors as [`pruned_attention`].
pub fn pruned_attention_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    threshold: f32,
    padding: Option<&PaddingMask>,
    ws: &mut Workspace,
) -> Result<(AttentionOutput, Vec<PruneDecision>), AttentionError> {
    check_shapes(q, k, v)?;
    validate_padding(k, padding)?;
    let tier = ws.simd_tier();
    let (s_q, s_k) = (q.rows(), k.rows());
    let live_k = padding.map_or(s_k, |p| p.live());
    let mut scores = ws.zeroed_matrix(s_q, s_k)?;
    // Blocked Q·Kᵀ over the live region only; padded rows/columns are
    // masked below without ever computing their dot products.
    match padding {
        None => {
            simd::matmul_transposed_scaled_into(
                tier,
                q,
                k,
                cfg.scale(),
                0..s_q,
                0..s_k,
                &mut scores,
            );
        }
        Some(p) => {
            let live_q = p.live().min(s_q);
            simd::matmul_transposed_scaled_into(
                tier,
                q,
                k,
                cfg.scale(),
                0..live_q,
                0..live_k,
                &mut scores,
            );
            if s_q > p.total() {
                // Queries beyond the key mask are live (see
                // `query_is_live`).
                simd::matmul_transposed_scaled_into(
                    tier,
                    q,
                    k,
                    cfg.scale(),
                    p.total()..s_q,
                    0..live_k,
                    &mut scores,
                );
            }
        }
    }
    let mut probs = ws.zeroed_matrix(s_q, s_k)?;
    let d_v = v.cols();
    let mut output = ws.zeroed_matrix(s_q, d_v)?;
    let mut decisions = Vec::with_capacity(s_q);
    // Per-row AV plans, filled as each row's keep rate becomes known;
    // `(0, _)` (padded queries) leaves the output row untouched.
    let mut av_plans = vec![(0usize, false); s_q];
    // Every padded query carries the same all-pruned decision; build it
    // once and share the storage (decision clones are Arc bumps).
    let mut all_pruned: Option<PruneDecision> = None;
    for (i, plan) in av_plans.iter_mut().enumerate() {
        if !query_is_live(i, padding) {
            // Padded query: everything pruned, zero prob/output rows.
            scores.row_mut(i).fill(f32::NEG_INFINITY);
            decisions.push(
                all_pruned
                    .get_or_insert_with(|| PruneDecision::new(vec![true; s_k]))
                    .clone(),
            );
            continue;
        }
        // One fused pass over the live keys: the pruned flag (Eq. 3,
        // `s < th` mirroring `PruneDecision::from_scores`), the -inf
        // masking of the scores row, and the staging of the masked row
        // as the probability row — the tiered `prune_mask_row` scan,
        // bit-identical across tiers. Padded keys (always pruned) are
        // handled by the `true`-initialized flag tail and a fill. The
        // flag vector becomes the returned decision — the only
        // per-query allocation left on this path.
        let srow = scores.row_mut(i);
        let prow = probs.row_mut(i);
        let mut flags = vec![true; s_k];
        let kept = simd::prune_mask_row(
            tier,
            &mut srow[..live_k],
            &mut prow[..live_k],
            &mut flags[..live_k],
            threshold,
        );
        srow[live_k..].fill(f32::NEG_INFINITY);
        // Padded keys get exactly zero probability; the exact softmax
        // runs in place over the live prefix only (-inf pruned entries
        // get zero — the masked softmax).
        prow[live_k..].fill(0.0);
        softmax_inplace_tier(&mut prow[..live_k], tier);
        // AV plan for this row. Below the crossover the walk skips
        // pruned (exactly-zero) probabilities so work scales with the
        // keep rate; at low sparsity it streams every live key instead
        // (see [`DENSE_AV_CROSSOVER`] — bit-identical either way).
        let skip_zero = (kept as f32) < DENSE_AV_CROSSOVER * live_k as f32;
        *plan = (live_k, skip_zero);
        decisions.push(PruneDecision::new(flags));
    }
    // AV over surviving keys, all rows in one matrix-level stage (the
    // AVX2 tier key-panels `V` across rows; padded queries keep a
    // `live == 0` plan and an untouched all-zero output row).
    simd::av_rows(tier, &mut output, &probs, v.as_slice(), d_v, &av_plans);
    Ok((
        AttentionOutput {
            scores,
            probs,
            output,
        },
        decisions,
    ))
}

/// Result of the quantized (hardware) attention datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedAttentionOutput {
    /// Recomputed scores (dequantized from the 8-bit × 8-bit integer
    /// dot products). Pruned entries hold `f32::NEG_INFINITY`.
    pub scores: Matrix,
    /// 8-bit-resolution probabilities from the two-LUT softmax unit.
    pub probs: Matrix,
    /// Final attention values (16-bit accumulation, dequantized).
    pub output: Matrix,
}

/// The SPRINT on-chip digital datapath: 8-bit Q/K/V, 12-bit softmax
/// inputs via the two-LUT unit, 16-bit attention outputs (§VI).
///
/// When `decisions` is given (the binary pruning vectors coming back
/// from the in-memory thresholding), only kept keys are computed —
/// this is the "on-chip recompute" half of SPRINT. With `None`, the
/// full dense computation is performed in quantized arithmetic (the
/// iso-precision baseline accelerator).
///
/// # Errors
///
/// Shape errors as in [`dense_attention`]; a decision slice, when
/// given, must contain one decision of length `k.rows()` per query.
pub fn quantized_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    decisions: Option<&[PruneDecision]>,
) -> Result<QuantizedAttentionOutput, AttentionError> {
    quantized_attention_with(q, k, v, cfg, decisions, &mut Workspace::new())
}

/// [`quantized_attention`] with a caller-provided [`Workspace`].
///
/// Fused like the float path: integer score rows are written once,
/// probabilities go straight into the probability matrix via
/// [`SoftmaxLut::probabilities_into`], and the V-PU accumulates each
/// output row in the workspace's integer accumulator — probabilities
/// are encoded once per key instead of once per key *per output
/// column*, and pruned keys are skipped entirely.
///
/// # Errors
///
/// Same errors as [`quantized_attention`].
pub fn quantized_attention_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    decisions: Option<&[PruneDecision]>,
    ws: &mut Workspace,
) -> Result<QuantizedAttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let tier = ws.simd_tier();
    let (s_q, s_k) = (q.rows(), k.rows());
    validate_decisions(s_q, s_k, decisions)?;

    // 8-bit quantization of the operand matrices (per-tensor symmetric).
    let qq = quantize_matrix(q, 8)?;
    let qk = quantize_matrix(k, 8)?;
    let qv = quantize_matrix(v, 8)?;
    let score_lsb = qq.params().step() * qk.params().step() * cfg.scale();

    let mut scores = ws.zeroed_matrix(s_q, s_k)?;
    for i in 0..s_q {
        // Integer MAC: i8 x i8 accumulated in i32 (the QK-PU).
        quantized_score_row_into(
            tier,
            qq.code_row(i),
            &qk,
            |j| decisions.map_or(true, |ds| ds[i].is_kept(j)),
            score_lsb,
            scores.row_mut(i),
        );
    }

    // Softmax with 12-bit inputs via the two-LUT unit. The range is the
    // largest finite score offset seen in this head.
    let mut max_offset = 1.0f32;
    for i in 0..s_q {
        let row = scores.row(i);
        let max = simd::row_max(tier, row);
        if max == f32::NEG_INFINITY {
            continue;
        }
        for &s in row {
            if s != f32::NEG_INFINITY {
                max_offset = max_offset.max(max - s);
            }
        }
    }
    let unit = SoftmaxLut::new(max_offset.max(1e-3))?;
    let mut probs = ws.zeroed_matrix(s_q, s_k)?;
    for i in 0..s_q {
        unit.probabilities_into(scores.row(i), probs.row_mut(i))?;
    }

    // V-PU: 8-bit probabilities x 8-bit values, accumulated per output
    // row in i32 and clamped to 16 bits at the end (same arithmetic as
    // the per-element form, one probability encode per key).
    let d_v = v.cols();
    let out_lsb = qv.params().step() / 255.0;
    let mut output = ws.zeroed_matrix(s_q, d_v)?;
    let acc = ws.acc_row(d_v);
    for i in 0..s_q {
        vpu_row_into(tier, probs.row(i), &qv, out_lsb, acc, output.row_mut(i));
    }

    Ok(QuantizedAttentionOutput {
        scores,
        probs,
        output,
    })
}

/// Integer dot product (the QK-PU's i8 × i8 → i32 MAC chain). Shared
/// with the single-query decode kernel so both paths MAC identically.
#[inline]
pub(crate) fn idot(a: &[i32], b: &[i32]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// One query's QK-PU score row: kept keys get the dequantized integer
/// MAC, pruned keys `-inf`. The single code-level core shared by the
/// batch kernel and the single-query decode kernel, so their
/// bit-identical contract holds by construction, not just by test.
pub(crate) fn quantized_score_row_into(
    tier: SimdTier,
    q_codes: &[i32],
    qk: &crate::QuantizedMatrix,
    kept: impl Fn(usize) -> bool,
    score_lsb: f32,
    srow: &mut [f32],
) {
    for (j, slot) in srow.iter_mut().enumerate() {
        *slot = if kept(j) {
            simd::idot(tier, q_codes, qk.code_row(j)) as f32 * score_lsb
        } else {
            f32::NEG_INFINITY
        };
    }
}

/// The V-PU accumulation of one probability row over quantized values:
/// 8-bit probability codes × 8-bit value codes accumulated in `i32`,
/// clamped to 16 bits and dequantized into `out_row`. Shared by the
/// batch and decode kernels like [`quantized_score_row_into`].
pub(crate) fn vpu_row_into(
    tier: SimdTier,
    probs_row: &[f32],
    qv: &crate::QuantizedMatrix,
    out_lsb: f32,
    acc: &mut [i32],
    out_row: &mut [f32],
) {
    acc.fill(0);
    for (j, &p) in probs_row.iter().enumerate() {
        let p_code = (p * 255.0).round() as i32;
        if p_code == 0 {
            continue;
        }
        simd::vpu_accumulate(tier, acc, p_code, qv.code_row(j));
    }
    for (slot, &a) in out_row.iter_mut().zip(acc.iter()) {
        // Final attention value kept in 16 bits.
        let acc16 = a.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
        *slot = acc16 as f32 * out_lsb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_qkv() -> (Matrix, Matrix, Matrix) {
        let q = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0, 0.0],
        ])
        .unwrap();
        let k = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let v = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        (q, k, v)
    }

    #[test]
    fn config_defaults_to_inverse_sqrt_scale() {
        let cfg = AttentionConfig::new(64);
        assert_eq!(cfg.d(), 64);
        assert!((cfg.scale() - 1.0 / 8.0).abs() < 1e-7);
        let explicit = AttentionConfig::with_scale(64, 1.0);
        assert_eq!(explicit.scale(), 1.0);
    }

    #[test]
    fn padding_mask_validation_and_queries() {
        assert!(PaddingMask::new(0, 0).is_err());
        assert!(PaddingMask::new(4, 5).is_err());
        let m = PaddingMask::new(8, 6).unwrap();
        assert!(m.is_live(5));
        assert!(!m.is_live(6));
        assert!((m.padded_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PaddingMask::full(4).padded_fraction(), 0.0);
    }

    #[test]
    fn dense_attention_rows_are_distributions() {
        let (q, k, v) = small_qkv();
        let out = dense_attention(&q, &k, &v, &AttentionConfig::new(4)).unwrap();
        for i in 0..3 {
            let sum: f32 = out.probs.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(out.output.shape(), (3, 4));
    }

    /// A deterministic low-entropy matrix so both crossover branches
    /// are reachable by threshold choice alone.
    fn wavy(rows: usize, cols: usize, phase: f32) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|t| ((t as f32) * 0.37 + phase).sin())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn dense_av_crossover_is_bit_identical_to_the_sparse_walk() {
        // Satellite regression for the rate-50 inversion: above the
        // kept-fraction crossover the AV stage streams every key, and
        // that walk must be bit-identical to the skip walk it replaces.
        let cfg = AttentionConfig::new(16);
        let (q, k, v) = (wavy(12, 16, 0.0), wavy(20, 16, 1.0), wavy(20, 16, 2.0));
        for tier in [crate::SimdTier::Scalar, crate::SimdTier::Avx2] {
            let mut ws = Workspace::new();
            ws.set_simd_tier(tier);
            // Thresholds landing on both sides of the 35% crossover.
            for threshold in [-10.0f32, -0.05, 0.05, 0.2] {
                let (out, _dec) =
                    pruned_attention_with(&q, &k, &v, &cfg, threshold, None, &mut ws).unwrap();
                // Oracle: the tier's own per-key skip walk over the
                // kernel's probability rows (the tiers differ in the
                // AV tolerance class, so each tier is checked against
                // its own axpy chain).
                for i in 0..q.rows() {
                    let mut expected = vec![0.0f32; v.cols()];
                    for (&p, v_row) in out
                        .probs
                        .row(i)
                        .iter()
                        .zip(v.as_slice().chunks_exact(v.cols()))
                    {
                        if p != 0.0 {
                            crate::simd::axpy(ws.simd_tier(), &mut expected, p, v_row);
                        }
                    }
                    assert_eq!(
                        out.output
                            .row(i)
                            .iter()
                            .map(|x| x.to_bits())
                            .collect::<Vec<_>>(),
                        expected.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "tier {tier} threshold {threshold} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_attention_prefers_aligned_key() {
        let (q, k, v) = small_qkv();
        let out = dense_attention(&q, &k, &v, &AttentionConfig::new(4)).unwrap();
        // Query 0 aligns with key 0; its probability must dominate.
        assert!(out.probs.get(0, 0) > out.probs.get(0, 1));
        assert!(out.probs.get(0, 0) > out.probs.get(0, 2));
    }

    #[test]
    fn dense_attention_shape_errors() {
        let q = Matrix::zeros(2, 3).unwrap();
        let k = Matrix::zeros(2, 4).unwrap();
        let v = Matrix::zeros(2, 4).unwrap();
        assert!(dense_attention(&q, &k, &v, &AttentionConfig::new(3)).is_err());
        let k2 = Matrix::zeros(2, 3).unwrap();
        let v2 = Matrix::zeros(3, 3).unwrap();
        assert!(dense_attention(&q, &k2, &v2, &AttentionConfig::new(3)).is_err());
    }

    #[test]
    fn pruned_attention_with_low_threshold_matches_dense() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
        let (pruned, decisions) = pruned_attention(&q, &k, &v, &cfg, -1e30, None).unwrap();
        for (i, d) in decisions.iter().enumerate().take(3) {
            assert!(d.kept_count() == 3, "nothing pruned");
            for j in 0..3 {
                assert!((dense.probs.get(i, j) - pruned.probs.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pruned_attention_removes_low_scores() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::with_scale(4, 1.0);
        // Scores for query 0 are [1, 0, 0]; threshold 0.5 keeps only key 0.
        let (out, decisions) = pruned_attention(&q, &k, &v, &cfg, 0.5, None).unwrap();
        assert_eq!(decisions[0].kept_indices(), vec![0]);
        assert!((out.probs.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(out.probs.get(0, 1), 0.0);
        assert_eq!(out.scores.get(0, 1), f32::NEG_INFINITY);
    }

    #[test]
    fn pruned_attention_respects_padding() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let pad = PaddingMask::new(3, 2).unwrap();
        let (out, decisions) = pruned_attention(&q, &k, &v, &cfg, -1e30, Some(&pad)).unwrap();
        // Key 2 is padding: pruned for every live query.
        assert!(decisions[0].is_pruned(2));
        assert!(decisions[1].is_pruned(2));
        // Query 2 is padding: fully pruned, zero output row.
        assert_eq!(decisions[2].kept_count(), 0);
        assert!(out.output.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pruned_attention_queries_beyond_key_mask_are_live() {
        // Regression: with s_q > s_k the query index used to be clamped
        // against the *key* mask length, so trailing queries inherited
        // the last key's padding state. Queries beyond the mask are not
        // covered by it and must be treated as live.
        let q = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let k = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let v = k.clone();
        let cfg = AttentionConfig::new(4);
        let pad = PaddingMask::new(3, 2).unwrap();
        let (out, decisions) = pruned_attention(&q, &k, &v, &cfg, -1e30, Some(&pad)).unwrap();
        // Queries 3 and 4 sit beyond the 3-token key mask: live, with
        // only the padded key pruned.
        for (i, d) in decisions.iter().enumerate().take(5).skip(3) {
            assert_eq!(d.kept_indices(), vec![0, 1], "query {i}");
            let sum: f32 = out.probs.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "query {i} row sums to {sum}");
        }
        // Queries inside the mask still follow it exactly.
        assert!(decisions[1].kept_count() > 0);
        assert_eq!(decisions[2].kept_count(), 0, "query 2 is padded");
        assert!(out.output.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fused_variants_share_a_workspace() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let mut ws = Workspace::with_capacity(3, 4);
        let dense = dense_attention_with(&q, &k, &v, &cfg, &mut ws).unwrap();
        let (pruned, _) = pruned_attention_with(&q, &k, &v, &cfg, -1e30, None, &mut ws).unwrap();
        let hw = quantized_attention_with(&q, &k, &v, &cfg, None, &mut ws).unwrap();
        assert_eq!(dense.probs, pruned.probs, "unpruned path is dense");
        assert_eq!(hw.output.shape(), (3, 4));
    }

    #[test]
    fn pruned_attention_rejects_wrong_mask_length() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let pad = PaddingMask::new(5, 2).unwrap();
        assert!(pruned_attention(&q, &k, &v, &cfg, 0.0, Some(&pad)).is_err());
    }

    #[test]
    fn quantized_attention_tracks_dense_reference() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
        let hw = quantized_attention(&q, &k, &v, &cfg, None).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (dense.probs.get(i, j) - hw.probs.get(i, j)).abs() < 0.03,
                    "probs diverge at ({i},{j})"
                );
            }
            for c in 0..4 {
                assert!(
                    (dense.output.get(i, c) - hw.output.get(i, c)).abs() < 0.05,
                    "outputs diverge at ({i},{c})"
                );
            }
        }
    }

    #[test]
    fn quantized_attention_honours_decisions() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let decisions = vec![
            PruneDecision::new(vec![false, true, true]),
            PruneDecision::new(vec![true, false, true]),
            PruneDecision::new(vec![false, false, true]),
        ];
        let hw = quantized_attention(&q, &k, &v, &cfg, Some(&decisions)).unwrap();
        assert_eq!(hw.scores.get(0, 1), f32::NEG_INFINITY);
        assert!((hw.probs.get(0, 0) - 1.0).abs() < 1e-3);
        assert_eq!(hw.probs.get(1, 0), 0.0);
    }

    #[test]
    fn quantized_attention_validates_decision_shape() {
        let (q, k, v) = small_qkv();
        let cfg = AttentionConfig::new(4);
        let bad_count = vec![PruneDecision::new(vec![false; 3])];
        assert!(quantized_attention(&q, &k, &v, &cfg, Some(&bad_count)).is_err());
        let bad_len = vec![
            PruneDecision::new(vec![false; 2]),
            PruneDecision::new(vec![false; 2]),
            PruneDecision::new(vec![false; 2]),
        ];
        assert!(quantized_attention(&q, &k, &v, &cfg, Some(&bad_len)).is_err());
    }
}
