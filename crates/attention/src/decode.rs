//! Single-query decode kernels and the appendable KV cache.
//!
//! Autoregressive decode issues one query per step against a growing
//! key/value history. The kernels here are the single-query
//! counterparts of the fused batch kernels in [`crate::attention`]
//! (`*_decode_with` mirrors `*_with`), and [`KvCache`] is the
//! append-only history they run against: the float K/V matrices plus
//! their cached 8-bit quantizations, grown one token at a time and
//! requantized only when a new token widens the calibrated range.
//!
//! **Equivalence contract.** Every decode kernel is bit-identical to
//! its batch sibling called with a one-row `Q` over the same history —
//! `tests/fused_equivalence.rs` and the engine's `decode.rs` suite pin
//! this. That is what lets a stateful decode session prove itself
//! against a fresh full-prefix oracle at every step.

use crate::attention::{check_shapes, quantized_score_row_into, vpu_row_into};
use crate::{
    dense_attention_with, pruned_attention_with, quantize_matrix, AttentionConfig, AttentionError,
    Matrix, PruneDecision, QuantParams, QuantizedMatrix, SoftmaxLut, Workspace,
};

/// The append-only key/value history of one decode session.
///
/// Holds the float `K`/`V` matrices **and** their 8-bit quantized
/// images, maintained under the invariant that the cached codes always
/// equal `quantize_matrix(k, 8)` / `quantize_matrix(v, 8)` over the
/// full history: a pushed token whose magnitude fits the calibrated
/// range appends one quantized row (`O(d)`); a token that widens the
/// range forces a full requantization (`O(s·d)`, rare — the range is a
/// running maximum), reported through [`KvDelta`] so callers can
/// account the recalibration.
///
/// # Example
///
/// ```
/// use sprint_attention::{KvCache, Matrix};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let mut cache = KvCache::new(&k, &k)?;
/// let delta = cache.push(&[0.5, -0.5], &[0.25, 0.25])?;
/// assert_eq!(cache.len(), 3);
/// assert!(!delta.requantized_k, "in-range token appends cheaply");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Matrix,
    v: Matrix,
    qk: QuantizedMatrix,
    qv: QuantizedMatrix,
    /// Running `max_abs` of `k` / `v` (append-only matrices never
    /// shrink their range), so the per-push params check is `O(d)`
    /// instead of an `O(s·d)` full-history rescan.
    k_max_abs: f32,
    v_max_abs: f32,
}

/// What one [`KvCache::push`] had to do to keep the quantized images
/// exact: `false` flags mean the token's row was appended under the
/// existing params, `true` means the whole matrix was requantized
/// because the token widened the calibrated range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvDelta {
    /// The key history was requantized from scratch.
    pub requantized_k: bool,
    /// The value history was requantized from scratch.
    pub requantized_v: bool,
}

impl KvCache {
    /// Builds the cache from the prefill history (cloned and quantized
    /// once). `k` and `v` must agree on the sequence length.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] when the sequence
    /// lengths differ; quantization errors otherwise.
    pub fn new(k: &Matrix, v: &Matrix) -> Result<Self, AttentionError> {
        if k.rows() != v.rows() {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache k/v sequence",
                left: k.shape(),
                right: v.shape(),
            });
        }
        Ok(KvCache {
            k: k.clone(),
            v: v.clone(),
            qk: quantize_matrix(k, 8)?,
            qv: quantize_matrix(v, 8)?,
            k_max_abs: k.max_abs(),
            v_max_abs: v.max_abs(),
        })
    }

    /// Appends one token's key and value rows, keeping the quantized
    /// images exactly equal to a from-scratch quantization of the
    /// grown history (requantizing only when the token widens the
    /// calibrated range).
    ///
    /// The push is atomic: both rows are validated before anything
    /// mutates, so on error the cache — and its documented invariant —
    /// is exactly as it was.
    ///
    /// # Errors
    ///
    /// Shape errors for wrong row lengths; quantization errors on a
    /// requantize.
    pub fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<KvDelta, AttentionError> {
        if k_row.len() != self.k.cols() {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache k row",
                left: (1, k_row.len()),
                right: (1, self.k.cols()),
            });
        }
        if v_row.len() != self.v.cols() {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache v row",
                left: (1, v_row.len()),
                right: (1, self.v.cols()),
            });
        }
        // All remaining fallible work up front: fold both rows into
        // candidate running maxima (the same fold [`Matrix::max_abs`]
        // performs, grouped over (prefix, new row) — `O(d)`, and
        // bit-identical to a from-scratch scan) and derive both
        // quantizers. A non-finite value errors *here*, before any
        // mutation.
        let k_max = k_row.iter().fold(self.k_max_abs, |m, v| m.max(v.abs()));
        let v_max = v_row.iter().fold(self.v_max_abs, |m, v| m.max(v.abs()));
        let k_params = QuantParams::for_max_abs(8, k_max)?;
        let v_params = QuantParams::for_max_abs(8, v_max)?;
        self.k.push_row(k_row)?;
        self.v.push_row(v_row)?;
        self.k_max_abs = k_max;
        self.v_max_abs = v_max;
        let requantized_k = Self::apply(&self.k, &mut self.qk, k_params, k_row)?;
        let requantized_v = Self::apply(&self.v, &mut self.qv, v_params, v_row)?;
        Ok(KvDelta {
            requantized_k,
            requantized_v,
        })
    }

    /// Re-establishes `quantized == quantize_matrix(full, 8)` after
    /// `row` was appended to `full`, under the pre-validated `params`;
    /// returns whether a full requantization was needed. Cannot fail
    /// in practice once `params` derived successfully (the requantize
    /// re-derives the same finite maximum).
    fn apply(
        full: &Matrix,
        quantized: &mut QuantizedMatrix,
        params: QuantParams,
        row: &[f32],
    ) -> Result<bool, AttentionError> {
        if params == quantized.params() {
            quantized.push_row(row)?;
            Ok(false)
        } else {
            *quantized = quantize_matrix(full, 8)?;
            Ok(true)
        }
    }

    /// Tokens in the history.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    /// Whether the history is empty (never true — construction
    /// requires a non-empty prefill — but conventional next to `len`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key history (`s × d`).
    pub fn k(&self) -> &Matrix {
        &self.k
    }

    /// The value history (`s × d_v`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// The cached 8-bit key quantization (equal to
    /// `quantize_matrix(k(), 8)` at all times).
    pub fn quantized_k(&self) -> &QuantizedMatrix {
        &self.qk
    }

    /// The cached 8-bit value quantization (equal to
    /// `quantize_matrix(v(), 8)` at all times).
    pub fn quantized_v(&self) -> &QuantizedMatrix {
        &self.qv
    }
}

/// Checks that `q` is a single query row matching the history's
/// embedding.
fn check_decode_query(q: &Matrix, k: &Matrix) -> Result<(), AttentionError> {
    if q.rows() != 1 {
        return Err(AttentionError::ShapeMismatch {
            op: "decode query (one row expected)",
            left: q.shape(),
            right: (1, k.cols()),
        });
    }
    check_shapes(q, k, k)
}

/// Single-query dense attention: one output row of
/// `softmax(scale · q Kᵀ) × V`, bit-identical to
/// [`dense_attention_with`] over the same one-row `Q` (it *is* that
/// call, with the intermediate matrices recycled into the workspace).
///
/// # Errors
///
/// Shape errors as in [`dense_attention_with`]; additionally `q` must
/// hold exactly one row.
pub fn dense_attention_decode_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    ws: &mut Workspace,
) -> Result<Vec<f32>, AttentionError> {
    check_decode_query(q, k)?;
    let out = dense_attention_with(q, k, v, cfg, ws)?;
    ws.recycle(out.scores);
    ws.recycle(out.probs);
    Ok(out.output.into_vec())
}

/// Single-query runtime-pruned attention: the output row plus the
/// step's [`PruneDecision`], bit-identical to
/// [`pruned_attention_with`] over the same one-row `Q` without
/// padding. `threshold == f32::MIN` reduces to the dense baseline with
/// an all-kept decision — the digital decode pipelines (Dense/Oracle)
/// both route through here.
///
/// # Errors
///
/// Shape errors as in [`pruned_attention_with`]; additionally `q` must
/// hold exactly one row.
pub fn pruned_attention_decode_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    threshold: f32,
    ws: &mut Workspace,
) -> Result<(Vec<f32>, PruneDecision), AttentionError> {
    check_decode_query(q, k)?;
    let (out, mut decisions) = pruned_attention_with(q, k, v, cfg, threshold, None, ws)?;
    ws.recycle(out.scores);
    ws.recycle(out.probs);
    Ok((out.output.into_vec(), decisions.remove(0)))
}

/// Single-query quantized (hardware-datapath) attention over a
/// [`KvCache`]: the on-chip recompute stage of one decode step.
///
/// Bit-identical to [`crate::quantized_attention_with`] called with
/// the same one-row `Q`, the cache's full float `K`/`V` and the same
/// decision — but the per-call `K`/`V` quantization (`O(s·d)`) is
/// replaced by the cache's incrementally maintained codes, so a step
/// costs `O(kept·d)` in the MAC stages plus the unavoidable `O(s)`
/// softmax staging. Only the query is quantized per call (its DAC/
/// datapath calibration is per-step by design).
///
/// # Errors
///
/// Shape errors as in [`crate::quantized_attention_with`];
/// additionally `q` must hold exactly one row.
pub fn quantized_attention_decode_with(
    q: &Matrix,
    kv: &KvCache,
    cfg: &AttentionConfig,
    decision: Option<&PruneDecision>,
    ws: &mut Workspace,
) -> Result<Vec<f32>, AttentionError> {
    check_decode_query(q, kv.k())?;
    let s_k = kv.len();
    if let Some(d) = decision {
        if d.len() != s_k {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decision length",
                left: (d.len(), 1),
                right: (s_k, 1),
            });
        }
    }

    // Per-step 8-bit query quantization; K/V codes come from the cache.
    let qq = quantize_matrix(q, 8)?;
    let qk = kv.quantized_k();
    let qv = kv.quantized_v();
    let score_lsb = qq.params().step() * qk.params().step() * cfg.scale();

    // Integer score row (QK-PU MACs over kept keys only) — the same
    // code-level core as the batch kernel's score stage.
    let mut scores = ws.zeroed_matrix(1, s_k)?;
    quantized_score_row_into(
        qq.code_row(0),
        qk,
        |j| decision.map_or(true, |d| d.is_kept(j)),
        score_lsb,
        scores.row_mut(0),
    );

    // Two-LUT softmax with the same per-call range rule as the batch
    // kernel (largest finite score offset in this step's row).
    let mut max_offset = 1.0f32;
    let row = scores.row(0);
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max != f32::NEG_INFINITY {
        for &s in row {
            if s != f32::NEG_INFINITY {
                max_offset = max_offset.max(max - s);
            }
        }
    }
    let unit = SoftmaxLut::new(max_offset.max(1e-3))?;
    let mut probs = ws.zeroed_matrix(1, s_k)?;
    unit.probabilities_into(scores.row(0), probs.row_mut(0))?;

    // V-PU: 8-bit probabilities × cached 8-bit values — the batch
    // kernel's V-PU core over this step's single row.
    let d_v = kv.v().cols();
    let out_lsb = qv.params().step() / 255.0;
    let mut output = vec![0.0f32; d_v];
    let acc = ws.acc_row(d_v);
    vpu_row_into(probs.row(0), qv, out_lsb, acc, &mut output);
    ws.recycle(scores);
    ws.recycle(probs);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense_attention, pruned_attention, quantized_attention};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn one_row(m: &Matrix, r: usize) -> Matrix {
        Matrix::from_vec(1, m.cols(), m.row(r).to_vec()).unwrap()
    }

    #[test]
    fn kv_cache_tracks_from_scratch_quantization() {
        let k_all = random_matrix(40, 16, 1);
        let v_all = random_matrix(40, 16, 2);
        let mut cache = KvCache::new(
            &Matrix::from_vec(8, 16, k_all.as_slice()[..8 * 16].to_vec()).unwrap(),
            &Matrix::from_vec(8, 16, v_all.as_slice()[..8 * 16].to_vec()).unwrap(),
        )
        .unwrap();
        for t in 8..40 {
            cache.push(k_all.row(t), v_all.row(t)).unwrap();
            let fresh_k = quantize_matrix(cache.k(), 8).unwrap();
            let fresh_v = quantize_matrix(cache.v(), 8).unwrap();
            assert_eq!(cache.quantized_k(), &fresh_k, "t = {t}");
            assert_eq!(cache.quantized_v(), &fresh_v, "t = {t}");
        }
        assert_eq!(cache.len(), 40);
        assert!(!cache.is_empty());
    }

    #[test]
    fn kv_cache_requantizes_when_the_range_widens() {
        let k = random_matrix(8, 8, 3);
        let mut cache = KvCache::new(&k, &k).unwrap();
        let wide: Vec<f32> = k.row(0).iter().map(|x| x * 5.0).collect();
        let delta = cache.push(&wide, k.row(1)).unwrap();
        assert!(delta.requantized_k, "5x token must widen the K range");
        assert!(!delta.requantized_v);
        assert_eq!(
            cache.quantized_k(),
            &quantize_matrix(cache.k(), 8).unwrap(),
            "codes stay exact through the recalibration"
        );
    }

    #[test]
    fn kv_cache_validates_shapes_and_failed_pushes_are_atomic() {
        let k = random_matrix(4, 8, 5);
        let v3 = random_matrix(3, 8, 6);
        assert!(KvCache::new(&k, &v3).is_err());
        let mut cache = KvCache::new(&k, &k).unwrap();
        // Either row mis-sized: nothing mutates (regression — a bad V
        // row used to leave K grown, breaking the quantized-image
        // invariant forever after).
        assert!(cache.push(&[0.0; 4], &[0.0; 8]).is_err());
        assert!(cache.push(&[0.0; 8], &[0.0; 4]).is_err());
        // A non-finite value fails the quantizer derivation — also
        // before anything mutates.
        let mut inf_row = [0.0f32; 8];
        inf_row[3] = f32::INFINITY;
        assert!(cache.push(&inf_row, &[0.0; 8]).is_err());
        assert!(cache.push(&[0.0; 8], &inf_row).is_err());
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.k().rows(), cache.v().rows());
        // The cache is still fully usable and exact after the errors.
        let row = random_matrix(1, 8, 7);
        cache.push(row.row(0), row.row(0)).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.quantized_k(), &quantize_matrix(cache.k(), 8).unwrap());
        assert_eq!(cache.quantized_v(), &quantize_matrix(cache.v(), 8).unwrap());
    }

    #[test]
    fn decode_kernels_match_their_batch_siblings() {
        let cfg = AttentionConfig::new(16);
        let k = random_matrix(48, 16, 7);
        let v = random_matrix(48, 16, 8);
        let q_all = random_matrix(4, 16, 9);
        let kv = KvCache::new(&k, &v).unwrap();
        let mut ws = Workspace::new();
        for r in 0..4 {
            let q1 = one_row(&q_all, r);
            // Dense.
            let dense_row = dense_attention_decode_with(&q1, &k, &v, &cfg, &mut ws).unwrap();
            let dense_full = dense_attention(&q1, &k, &v, &cfg).unwrap();
            assert_eq!(dense_row.as_slice(), dense_full.output.row(0));
            // Pruned.
            let (pruned_row, decision) =
                pruned_attention_decode_with(&q1, &k, &v, &cfg, 0.02, &mut ws).unwrap();
            let (pruned_full, decisions) = pruned_attention(&q1, &k, &v, &cfg, 0.02, None).unwrap();
            assert_eq!(pruned_row.as_slice(), pruned_full.output.row(0));
            assert_eq!(decision, decisions[0]);
            // Quantized, pruned and unpruned.
            for d in [None, Some(&decision)] {
                let hw_row = quantized_attention_decode_with(&q1, &kv, &cfg, d, &mut ws).unwrap();
                let hw_full =
                    quantized_attention(&q1, &k, &v, &cfg, d.map(std::slice::from_ref)).unwrap();
                assert_eq!(hw_row.as_slice(), hw_full.output.row(0), "query {r}");
            }
        }
    }

    #[test]
    fn decode_kernels_reject_multi_row_queries() {
        let cfg = AttentionConfig::new(8);
        let k = random_matrix(4, 8, 11);
        let q2 = random_matrix(2, 8, 12);
        let kv = KvCache::new(&k, &k).unwrap();
        let mut ws = Workspace::new();
        assert!(dense_attention_decode_with(&q2, &k, &k, &cfg, &mut ws).is_err());
        assert!(pruned_attention_decode_with(&q2, &k, &k, &cfg, 0.0, &mut ws).is_err());
        assert!(quantized_attention_decode_with(&q2, &kv, &cfg, None, &mut ws).is_err());
        // Wrong decision length.
        let q1 = one_row(&q2, 0);
        let bad = PruneDecision::new(vec![false; 3]);
        assert!(quantized_attention_decode_with(&q1, &kv, &cfg, Some(&bad), &mut ws).is_err());
    }
}
