//! Single-query decode kernels and the paged, appendable KV cache.
//!
//! Autoregressive decode issues one query per step against a growing
//! key/value history. The kernels here are the single-query
//! counterparts of the fused batch kernels in [`crate::attention`]
//! (`*_decode_with` mirrors `*_with`), and [`KvCache`] is the
//! append-only history they run against: float K/V rows plus their
//! cached 8-bit quantizations, grown one token at a time and
//! requantized only when a new token widens the calibrated range.
//!
//! The storage is paged: rows live in fixed-size pages drawn from a
//! shared [`crate::PagePool`], so thousands of concurrent sessions can
//! share one exactly-accounted memory budget and an evicted session
//! returns whole pages to the pool (see `paged.rs`). Appends cross
//! page boundaries transparently; `push` semantics and the running-max
//! requantization contract are unchanged from the monolithic cache.
//!
//! **Equivalence contract.** Every decode kernel is bit-identical to
//! its batch sibling called with a one-row `Q` over the same history —
//! `tests/fused_equivalence.rs` and the engine's `decode.rs` suite pin
//! this. That is what lets a stateful decode session prove itself
//! against a fresh full-prefix oracle at every step, and what makes
//! eviction safe: a rehydrated cache rebuilt from the same rows is the
//! same cache, bit for bit.

use crate::attention::{check_shapes, DENSE_AV_CROSSOVER};
use crate::paged::{PageBuffers, PagePool, DEFAULT_PAGE_BYTES};
use crate::simd;
use crate::{
    dense_attention_with, pruned_attention_with, quantize_matrix, AttentionConfig, AttentionError,
    Matrix, PruneDecision, QuantParams, SoftmaxLut, Workspace,
};

/// One page of history: a slice of the K/V rows and their codes, plus
/// the quantization parameters those codes were written under (always
/// equal to the cache-wide params — updated in place on requantize).
#[derive(Debug)]
struct Page {
    buf: PageBuffers,
    k_params: QuantParams,
    v_params: QuantParams,
}

/// The append-only key/value history of one decode session, stored in
/// fixed-size pages from a shared [`PagePool`].
///
/// Holds the float `K`/`V` rows **and** their 8-bit quantized codes,
/// maintained under the invariant that the cached codes always equal
/// `quantize_matrix(gather, 8)` over the full history: a pushed token
/// whose magnitude fits the calibrated range appends one quantized row
/// (`O(d)`); a token that widens the range forces a full
/// requantization (`O(s·d)`, rare — the range is a running maximum),
/// reported through [`KvDelta`] so callers can account the
/// recalibration.
///
/// Dropping the cache returns every page to its pool, which is how the
/// session layers evict a cold session without losing its (externally
/// retained) token history.
///
/// # Example
///
/// ```
/// use sprint_attention::{KvCache, Matrix};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let k = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let mut cache = KvCache::new(&k, &k)?;
/// let delta = cache.push(&[0.5, -0.5], &[0.25, 0.25])?;
/// assert_eq!(cache.len(), 3);
/// assert!(!delta.requantized_k, "in-range token appends cheaply");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KvCache {
    pool: PagePool,
    d: usize,
    d_v: usize,
    tokens_per_page: usize,
    len: usize,
    pages: Vec<Page>,
    k_params: QuantParams,
    v_params: QuantParams,
    /// Running `max_abs` of the K / V history (append-only histories
    /// never shrink their range), so the per-push params check is
    /// `O(d)` instead of an `O(s·d)` full-history rescan.
    k_max_abs: f32,
    v_max_abs: f32,
}

/// What one [`KvCache::push`] had to do to keep the quantized images
/// exact: `false` flags mean the token's row was appended under the
/// existing params, `true` means the whole history was requantized
/// because the token widened the calibrated range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvDelta {
    /// The key history was requantized from scratch.
    pub requantized_k: bool,
    /// The value history was requantized from scratch.
    pub requantized_v: bool,
}

impl KvCache {
    /// Builds the cache from the prefill history in a private unbounded
    /// pool (for standalone use; sessions share a pool via
    /// [`KvCache::new_in`]). `k` and `v` must agree on the sequence
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::ShapeMismatch`] when the sequence
    /// lengths differ; quantization errors otherwise.
    pub fn new(k: &Matrix, v: &Matrix) -> Result<Self, AttentionError> {
        KvCache::new_in(&PagePool::unbounded(DEFAULT_PAGE_BYTES), k, v)
    }

    /// Builds the cache from the prefill history, drawing pages from
    /// `pool`. On any error (including pool exhaustion part-way
    /// through the prefill) every page taken so far is returned to the
    /// pool.
    ///
    /// # Errors
    ///
    /// Shape and quantization errors as in [`KvCache::new`];
    /// [`AttentionError::PoolExhausted`] when a bounded pool cannot
    /// hold the prefill.
    pub fn new_in(pool: &PagePool, k: &Matrix, v: &Matrix) -> Result<Self, AttentionError> {
        if k.rows() != v.rows() {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache k/v sequence",
                left: k.shape(),
                right: v.shape(),
            });
        }
        let (d, d_v) = (k.cols(), v.cols());
        let k_max_abs = k.max_abs();
        let v_max_abs = v.max_abs();
        let k_params = QuantParams::for_max_abs(8, k_max_abs)?;
        let v_params = QuantParams::for_max_abs(8, v_max_abs)?;
        let mut cache = KvCache {
            pool: pool.clone(),
            d,
            d_v,
            tokens_per_page: pool.tokens_per_page(d, d_v),
            len: 0,
            pages: Vec::new(),
            k_params,
            v_params,
            k_max_abs,
            v_max_abs,
        };
        // Params are calibrated to the full prefill up front, so each
        // appended row quantizes exactly as a from-scratch
        // `quantize_matrix` of the whole history would (row-major,
        // per-element, same params).
        for t in 0..k.rows() {
            cache.append_row(k.row(t), v.row(t))?;
        }
        Ok(cache)
    }

    /// Appends one token's key and value rows, keeping the quantized
    /// images exactly equal to a from-scratch quantization of the
    /// grown history (requantizing only when the token widens the
    /// calibrated range). Appends cross page boundaries transparently,
    /// drawing a page from the pool when the last one is full.
    ///
    /// The push is atomic: both rows are validated — and the page, if
    /// one is needed, is acquired — before anything mutates, so on
    /// error (including [`AttentionError::PoolExhausted`]) the cache
    /// and its documented invariant are exactly as they were, and the
    /// push can be retried after the caller frees pool capacity.
    ///
    /// # Errors
    ///
    /// Shape errors for wrong row lengths; quantization errors for
    /// non-finite values; pool exhaustion when a bounded pool has no
    /// page for the boundary crossing.
    pub fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<KvDelta, AttentionError> {
        if k_row.len() != self.d {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache k row",
                left: (1, k_row.len()),
                right: (1, self.d),
            });
        }
        if v_row.len() != self.d_v {
            return Err(AttentionError::ShapeMismatch {
                op: "kv cache v row",
                left: (1, v_row.len()),
                right: (1, self.d_v),
            });
        }
        // All remaining fallible work up front: fold both rows into
        // candidate running maxima (the same fold [`Matrix::max_abs`]
        // performs, grouped over (prefix, new row) — `O(d)`, and
        // bit-identical to a from-scratch scan), derive both
        // quantizers, and acquire the page if this push crosses a
        // boundary. A non-finite value or an exhausted pool errors
        // *here*, before any mutation.
        let k_max = k_row.iter().fold(self.k_max_abs, |m, v| m.max(v.abs()));
        let v_max = v_row.iter().fold(self.v_max_abs, |m, v| m.max(v.abs()));
        let k_params = QuantParams::for_max_abs(8, k_max)?;
        let v_params = QuantParams::for_max_abs(8, v_max)?;
        self.append_row(k_row, v_row)?;
        self.k_max_abs = k_max;
        self.v_max_abs = v_max;
        let requantized_k = k_params != self.k_params;
        if requantized_k {
            self.requantize_k(k_params);
        } else {
            self.write_k_codes(self.len - 1, k_row);
        }
        let requantized_v = v_params != self.v_params;
        if requantized_v {
            self.requantize_v(v_params);
        } else {
            self.write_v_codes(self.len - 1, v_row);
        }
        Ok(KvDelta {
            requantized_k,
            requantized_v,
        })
    }

    /// Appends the float rows plus their codes under the *current*
    /// params (callers requantize afterwards if the params moved),
    /// drawing a page when the last one is full. The only fallible
    /// step is the pool allocation, and it happens before any
    /// mutation.
    fn append_row(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), AttentionError> {
        if self.len == self.pages.len() * self.tokens_per_page {
            let buf = self.pool.allocate(self.d, self.d_v, self.tokens_per_page)?;
            self.pages.push(Page {
                buf,
                k_params: self.k_params,
                v_params: self.v_params,
            });
        }
        let slot = self.len % self.tokens_per_page;
        let page = self.pages.last_mut().expect("page just ensured");
        page.buf.k_floats[slot * self.d..(slot + 1) * self.d].copy_from_slice(k_row);
        page.buf.v_floats[slot * self.d_v..(slot + 1) * self.d_v].copy_from_slice(v_row);
        self.len += 1;
        self.write_k_codes(self.len - 1, k_row);
        self.write_v_codes(self.len - 1, v_row);
        Ok(())
    }

    fn write_k_codes(&mut self, j: usize, k_row: &[f32]) {
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        let params = self.k_params;
        let page = &mut self.pages[p];
        for (code, &x) in page.buf.k_codes[slot * self.d..(slot + 1) * self.d]
            .iter_mut()
            .zip(k_row)
        {
            *code = params.quantize(x) as i8;
        }
    }

    fn write_v_codes(&mut self, j: usize, v_row: &[f32]) {
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        let params = self.v_params;
        let page = &mut self.pages[p];
        for (code, &x) in page.buf.v_codes[slot * self.d_v..(slot + 1) * self.d_v]
            .iter_mut()
            .zip(v_row)
        {
            *code = params.quantize(x) as i8;
        }
    }

    /// Rewrites every key code under `params` (the token that widened
    /// the range is already stored as floats). Row-major over the
    /// occupied slots, so the result equals `quantize_matrix` of the
    /// gathered history bit for bit.
    fn requantize_k(&mut self, params: QuantParams) {
        self.k_params = params;
        for p in 0..self.pages.len() {
            let tokens = self.page_tokens(p);
            let d = self.d;
            let page = &mut self.pages[p];
            page.k_params = params;
            for (code, &x) in page.buf.k_codes[..tokens * d]
                .iter_mut()
                .zip(&page.buf.k_floats[..tokens * d])
            {
                *code = params.quantize(x) as i8;
            }
        }
    }

    /// [`KvCache::requantize_k`] for the value side.
    fn requantize_v(&mut self, params: QuantParams) {
        self.v_params = params;
        for p in 0..self.pages.len() {
            let tokens = self.page_tokens(p);
            let d_v = self.d_v;
            let page = &mut self.pages[p];
            page.v_params = params;
            for (code, &x) in page.buf.v_codes[..tokens * d_v]
                .iter_mut()
                .zip(&page.buf.v_floats[..tokens * d_v])
            {
                *code = params.quantize(x) as i8;
            }
        }
    }

    /// Occupied tokens in page `p` (all pages but the last are full).
    fn page_tokens(&self, p: usize) -> usize {
        (self.len - p * self.tokens_per_page).min(self.tokens_per_page)
    }

    /// Tokens in the history.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the history is empty (never true — construction
    /// requires a non-empty prefill — but conventional next to `len`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key embedding width `d`.
    pub fn embed_dim(&self) -> usize {
        self.d
    }

    /// The value width `d_v`.
    pub fn value_dim(&self) -> usize {
        self.d_v
    }

    /// Key row `j` of the history.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    pub fn k_row(&self, j: usize) -> &[f32] {
        assert!(j < self.len, "kv row {j} out of bounds (len {})", self.len);
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        &self.pages[p].buf.k_floats[slot * self.d..(slot + 1) * self.d]
    }

    /// Value row `j` of the history.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    pub fn v_row(&self, j: usize) -> &[f32] {
        assert!(j < self.len, "kv row {j} out of bounds (len {})", self.len);
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        &self.pages[p].buf.v_floats[slot * self.d_v..(slot + 1) * self.d_v]
    }

    /// The cached 8-bit codes of key row `j` (equal to quantizing the
    /// row under [`KvCache::k_params`] at all times).
    pub fn k_code_row(&self, j: usize) -> &[i8] {
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        &self.pages[p].buf.k_codes[slot * self.d..(slot + 1) * self.d]
    }

    /// The cached 8-bit codes of value row `j`.
    pub fn v_code_row(&self, j: usize) -> &[i8] {
        let (p, slot) = (j / self.tokens_per_page, j % self.tokens_per_page);
        &self.pages[p].buf.v_codes[slot * self.d_v..(slot + 1) * self.d_v]
    }

    /// The quantizer behind the cached key codes (calibrated to the
    /// running key range).
    pub fn k_params(&self) -> QuantParams {
        self.k_params
    }

    /// The quantizer behind the cached value codes.
    pub fn v_params(&self) -> QuantParams {
        self.v_params
    }

    /// The running `max_abs` of the key history.
    pub fn k_max_abs(&self) -> f32 {
        self.k_max_abs
    }

    /// The running `max_abs` of the value history.
    pub fn v_max_abs(&self) -> f32 {
        self.v_max_abs
    }

    /// An owned contiguous copy of the key history (`s × d`) — the
    /// `O(s·d)` gather for consumers that need a [`Matrix`], e.g.
    /// (re)programming the in-memory pruner on recalibration.
    pub fn gather_k(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.len * self.d);
        for (p, page) in self.pages.iter().enumerate() {
            data.extend_from_slice(&page.buf.k_floats[..self.page_tokens(p) * self.d]);
        }
        Matrix::from_vec(self.len, self.d, data).expect("paged history is non-empty and exact")
    }

    /// An owned contiguous copy of the value history (`s × d_v`).
    pub fn gather_v(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.len * self.d_v);
        for (p, page) in self.pages.iter().enumerate() {
            data.extend_from_slice(&page.buf.v_floats[..self.page_tokens(p) * self.d_v]);
        }
        Matrix::from_vec(self.len, self.d_v, data).expect("paged history is non-empty and exact")
    }

    /// Pages this cache currently holds.
    pub fn pages(&self) -> usize {
        self.pages.len()
    }

    /// The pool this cache draws from.
    pub fn pool(&self) -> &PagePool {
        &self.pool
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        for page in self.pages.drain(..) {
            self.pool.release(page.buf);
        }
    }
}

/// Checks that `q` is a single query row matching the history's
/// embedding.
fn check_decode_query(q: &Matrix, k: &Matrix) -> Result<(), AttentionError> {
    if q.rows() != 1 {
        return Err(AttentionError::ShapeMismatch {
            op: "decode query (one row expected)",
            left: q.shape(),
            right: (1, k.cols()),
        });
    }
    check_shapes(q, k, k)
}

/// [`check_decode_query`] against a paged cache (same error shapes and
/// op strings as the matrix form).
fn check_decode_query_cached(q: &Matrix, kv: &KvCache) -> Result<(), AttentionError> {
    if q.rows() != 1 {
        return Err(AttentionError::ShapeMismatch {
            op: "decode query (one row expected)",
            left: q.shape(),
            right: (1, kv.embed_dim()),
        });
    }
    if q.cols() != kv.embed_dim() {
        return Err(AttentionError::ShapeMismatch {
            op: "attention q/k embedding",
            left: q.shape(),
            right: (kv.len(), kv.embed_dim()),
        });
    }
    Ok(())
}

/// Single-query dense attention: one output row of
/// `softmax(scale · q Kᵀ) × V`, bit-identical to
/// [`dense_attention_with`] over the same one-row `Q` (it *is* that
/// call, with the intermediate matrices recycled into the workspace).
///
/// # Errors
///
/// Shape errors as in [`dense_attention_with`]; additionally `q` must
/// hold exactly one row.
pub fn dense_attention_decode_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    ws: &mut Workspace,
) -> Result<Vec<f32>, AttentionError> {
    check_decode_query(q, k)?;
    let out = dense_attention_with(q, k, v, cfg, ws)?;
    ws.recycle(out.scores);
    ws.recycle(out.probs);
    Ok(out.output.into_vec())
}

/// Single-query runtime-pruned attention: the output row plus the
/// step's [`PruneDecision`], bit-identical to
/// [`pruned_attention_with`] over the same one-row `Q` without
/// padding. `threshold == f32::MIN` reduces to the dense baseline with
/// an all-kept decision — the digital decode pipelines (Dense/Oracle)
/// both route through here.
///
/// # Errors
///
/// Shape errors as in [`pruned_attention_with`]; additionally `q` must
/// hold exactly one row.
pub fn pruned_attention_decode_with(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &AttentionConfig,
    threshold: f32,
    ws: &mut Workspace,
) -> Result<(Vec<f32>, PruneDecision), AttentionError> {
    check_decode_query(q, k)?;
    let (out, mut decisions) = pruned_attention_with(q, k, v, cfg, threshold, None, ws)?;
    ws.recycle(out.scores);
    ws.recycle(out.probs);
    Ok((out.output.into_vec(), decisions.remove(0)))
}

/// [`pruned_attention_decode_with`] reading K/V straight from a paged
/// [`KvCache`] — no gather. Bit-identical to the matrix form over the
/// cache's gathered history: the per-key score is the same four-lane
/// `dot` reduction the blocked `Q × Kᵀ` pass performs for a one-row
/// `Q`, and the mask/softmax/sparse-AV flow is the batch kernel's,
/// verbatim, over page-resident rows.
///
/// # Errors
///
/// Shape errors as in [`pruned_attention_decode_with`].
pub fn pruned_attention_decode_cached_with(
    q: &Matrix,
    kv: &KvCache,
    cfg: &AttentionConfig,
    threshold: f32,
    ws: &mut Workspace,
) -> Result<(Vec<f32>, PruneDecision), AttentionError> {
    check_decode_query_cached(q, kv)?;
    let tier = ws.simd_tier();
    let s_k = kv.len();
    let q_row = q.row(0);
    let mut scores = ws.zeroed_matrix(1, s_k)?;
    let mut probs = ws.zeroed_matrix(1, s_k)?;
    let mut output = vec![0.0f32; kv.value_dim()];
    let mut flags = vec![true; s_k];
    {
        let srow = scores.row_mut(0);
        for (j, slot) in srow.iter_mut().enumerate() {
            *slot = cfg.scale() * simd::dot(tier, q_row, kv.k_row(j));
        }
        let prow = probs.row_mut(0);
        let mut kept = 0usize;
        for ((flag, s), p) in flags.iter_mut().zip(srow.iter_mut()).zip(prow.iter_mut()) {
            let pruned = *s < threshold;
            *flag = pruned;
            kept += usize::from(!pruned);
            let masked = if pruned { f32::NEG_INFINITY } else { *s };
            *s = masked;
            *p = masked;
        }
        crate::softmax::softmax_inplace_tier(prow, tier);
        // Same kept-fraction crossover as the batch kernel: at low
        // sparsity stream every key (a visited zero probability is a
        // bit-exact no-op), below it skip pruned keys.
        let skip_zero = (kept as f32) < DENSE_AV_CROSSOVER * s_k as f32;
        for (j, &p) in prow.iter().enumerate() {
            if !skip_zero || p != 0.0 {
                simd::axpy(tier, &mut output, p, kv.v_row(j));
            }
        }
    }
    ws.recycle(scores);
    ws.recycle(probs);
    Ok((output, PruneDecision::new(flags)))
}

/// Single-query quantized (hardware-datapath) attention over a paged
/// [`KvCache`]: the on-chip recompute stage of one decode step.
///
/// Bit-identical to [`crate::quantized_attention_with`] called with
/// the same one-row `Q`, the cache's gathered float `K`/`V` and the
/// same decision — but the per-call `K`/`V` quantization (`O(s·d)`) is
/// replaced by the cache's incrementally maintained page-resident
/// codes, so a step costs `O(kept·d)` in the MAC stages plus the
/// unavoidable `O(s)` softmax staging. Only the query is quantized per
/// call (its DAC/datapath calibration is per-step by design).
///
/// # Errors
///
/// Shape errors as in [`crate::quantized_attention_with`];
/// additionally `q` must hold exactly one row.
pub fn quantized_attention_decode_with(
    q: &Matrix,
    kv: &KvCache,
    cfg: &AttentionConfig,
    decision: Option<&PruneDecision>,
    ws: &mut Workspace,
) -> Result<Vec<f32>, AttentionError> {
    check_decode_query_cached(q, kv)?;
    let tier = ws.simd_tier();
    let s_k = kv.len();
    if let Some(d) = decision {
        if d.len() != s_k {
            return Err(AttentionError::ShapeMismatch {
                op: "pruning decision length",
                left: (d.len(), 1),
                right: (s_k, 1),
            });
        }
    }

    // Per-step 8-bit query quantization; K/V codes come from the
    // cache's pages.
    let qq = quantize_matrix(q, 8)?;
    let score_lsb = qq.params().step() * kv.k_params().step() * cfg.scale();

    // Integer score row (QK-PU MACs over kept keys only) — the same
    // arithmetic as the batch kernel's score stage, reading each key's
    // codes from its page.
    let mut scores = ws.zeroed_matrix(1, s_k)?;
    {
        let q_codes = qq.code_row(0);
        for (j, slot) in scores.row_mut(0).iter_mut().enumerate() {
            *slot = if decision.map_or(true, |d| d.is_kept(j)) {
                simd::idot_i8(tier, q_codes, kv.k_code_row(j)) as f32 * score_lsb
            } else {
                f32::NEG_INFINITY
            };
        }
    }

    // Two-LUT softmax with the same per-call range rule as the batch
    // kernel (largest finite score offset in this step's row).
    let mut max_offset = 1.0f32;
    let row = scores.row(0);
    let max = simd::row_max(tier, row);
    if max != f32::NEG_INFINITY {
        for &s in row {
            if s != f32::NEG_INFINITY {
                max_offset = max_offset.max(max - s);
            }
        }
    }
    let unit = SoftmaxLut::new(max_offset.max(1e-3))?;
    let mut probs = ws.zeroed_matrix(1, s_k)?;
    unit.probabilities_into(scores.row(0), probs.row_mut(0))?;

    // V-PU: 8-bit probabilities × cached 8-bit values — the batch
    // kernel's V-PU arithmetic over this step's single row, values
    // read from page storage.
    let d_v = kv.value_dim();
    let out_lsb = kv.v_params().step() / 255.0;
    let mut output = vec![0.0f32; d_v];
    let acc = ws.acc_row(d_v);
    acc.fill(0);
    for (j, &p) in probs.row(0).iter().enumerate() {
        let p_code = (p * 255.0).round() as i32;
        if p_code == 0 {
            continue;
        }
        simd::vpu_accumulate_i8(tier, acc, p_code, kv.v_code_row(j));
    }
    for (slot, &a) in output.iter_mut().zip(acc.iter()) {
        // Final attention value kept in 16 bits.
        let acc16 = a.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
        *slot = acc16 as f32 * out_lsb;
    }
    ws.recycle(scores);
    ws.recycle(probs);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense_attention, pruned_attention, quantized_attention};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn one_row(m: &Matrix, r: usize) -> Matrix {
        Matrix::from_vec(1, m.cols(), m.row(r).to_vec()).unwrap()
    }

    /// A pool whose pages hold ~`tokens` tokens of a `(d, d_v)`
    /// layout, so small test histories still cross page boundaries.
    fn tiny_pool(tokens: usize, d: usize, d_v: usize) -> PagePool {
        PagePool::unbounded(tokens * 5 * (d + d_v))
    }

    /// The cache's codes must equal a from-scratch quantization of the
    /// gathered history — the paged form of the exactness invariant.
    fn assert_codes_exact(cache: &KvCache, label: &str) {
        let fresh_k = quantize_matrix(&cache.gather_k(), 8).unwrap();
        let fresh_v = quantize_matrix(&cache.gather_v(), 8).unwrap();
        assert_eq!(cache.k_params(), fresh_k.params(), "{label}: k params");
        assert_eq!(cache.v_params(), fresh_v.params(), "{label}: v params");
        for j in 0..cache.len() {
            let k_codes: Vec<i32> = cache.k_code_row(j).iter().map(|&c| i32::from(c)).collect();
            let v_codes: Vec<i32> = cache.v_code_row(j).iter().map(|&c| i32::from(c)).collect();
            assert_eq!(
                k_codes.as_slice(),
                fresh_k.code_row(j),
                "{label}: k row {j}"
            );
            assert_eq!(
                v_codes.as_slice(),
                fresh_v.code_row(j),
                "{label}: v row {j}"
            );
        }
    }

    #[test]
    fn kv_cache_tracks_from_scratch_quantization_across_page_boundaries() {
        let k_all = random_matrix(40, 16, 1);
        let v_all = random_matrix(40, 16, 2);
        // Five tokens per page: the 40-token history spans eight pages.
        let pool = tiny_pool(5, 16, 16);
        let mut cache = KvCache::new_in(
            &pool,
            &Matrix::from_vec(8, 16, k_all.as_slice()[..8 * 16].to_vec()).unwrap(),
            &Matrix::from_vec(8, 16, v_all.as_slice()[..8 * 16].to_vec()).unwrap(),
        )
        .unwrap();
        for t in 8..40 {
            cache.push(k_all.row(t), v_all.row(t)).unwrap();
            assert_codes_exact(&cache, &format!("t = {t}"));
            assert_eq!(cache.k_row(t), k_all.row(t), "float rows survive paging");
        }
        assert_eq!(cache.len(), 40);
        assert!(!cache.is_empty());
        assert_eq!(cache.pages(), 8);
        assert_eq!(pool.pages_in_use(), 8);
        assert_eq!(cache.gather_k().as_slice(), k_all.as_slice());
        assert_eq!(cache.gather_v().as_slice(), v_all.as_slice());
        drop(cache);
        assert_eq!(pool.pages_in_use(), 0, "dropping the cache frees its pages");
    }

    #[test]
    fn kv_cache_requantizes_when_the_range_widens() {
        let k = random_matrix(8, 8, 3);
        let mut cache = KvCache::new_in(&tiny_pool(3, 8, 8), &k, &k).unwrap();
        let wide: Vec<f32> = k.row(0).iter().map(|x| x * 5.0).collect();
        let delta = cache.push(&wide, k.row(1)).unwrap();
        assert!(delta.requantized_k, "5x token must widen the K range");
        assert!(!delta.requantized_v);
        assert_codes_exact(&cache, "after recalibration");
    }

    #[test]
    fn kv_cache_validates_shapes_and_failed_pushes_are_atomic() {
        let k = random_matrix(4, 8, 5);
        let v3 = random_matrix(3, 8, 6);
        assert!(KvCache::new(&k, &v3).is_err());
        let mut cache = KvCache::new(&k, &k).unwrap();
        // Either row mis-sized: nothing mutates (regression — a bad V
        // row used to leave K grown, breaking the quantized-image
        // invariant forever after).
        assert!(cache.push(&[0.0; 4], &[0.0; 8]).is_err());
        assert!(cache.push(&[0.0; 8], &[0.0; 4]).is_err());
        // A non-finite value fails the quantizer derivation — also
        // before anything mutates.
        let mut inf_row = [0.0f32; 8];
        inf_row[3] = f32::INFINITY;
        assert!(cache.push(&inf_row, &[0.0; 8]).is_err());
        assert!(cache.push(&[0.0; 8], &inf_row).is_err());
        assert_eq!(cache.len(), 4);
        // The cache is still fully usable and exact after the errors.
        let row = random_matrix(1, 8, 7);
        cache.push(row.row(0), row.row(0)).unwrap();
        assert_eq!(cache.len(), 5);
        assert_codes_exact(&cache, "after rejected pushes");
    }

    #[test]
    fn exhausted_pool_fails_the_push_atomically_and_retries_after_release() {
        let pool = PagePool::bounded(2 * 5 * 16, 3); // 2 tokens/page, 3 pages
        let k = random_matrix(4, 8, 9);
        let mut cache = KvCache::new_in(&pool, &k, &k).unwrap();
        let victim = KvCache::new_in(
            &pool,
            &k.prefix_rows(2).unwrap(),
            &k.prefix_rows(2).unwrap(),
        )
        .unwrap();
        assert_eq!(pool.pages_in_use(), 3, "pool fully committed");
        // The next push crosses a page boundary with nothing free:
        // atomic failure, cache untouched and still exact.
        let row = random_matrix(1, 8, 10);
        let err = cache.push(row.row(0), row.row(0)).unwrap_err();
        assert!(matches!(err, AttentionError::PoolExhausted { .. }));
        assert_eq!(cache.len(), 4, "failed push must not grow the cache");
        assert_codes_exact(&cache, "after exhaustion");
        // Evicting the other cache frees its page; the identical retry
        // now succeeds — the session layer's evict-then-retry loop.
        drop(victim);
        cache.push(row.row(0), row.row(0)).unwrap();
        assert_eq!(cache.len(), 5);
        assert_codes_exact(&cache, "after retry");
    }

    #[test]
    fn decode_kernels_match_their_batch_siblings() {
        let cfg = AttentionConfig::new(16);
        let k = random_matrix(48, 16, 7);
        let v = random_matrix(48, 16, 8);
        let q_all = random_matrix(4, 16, 9);
        // Paged storage (7 tokens/page) must not perturb a single bit.
        let kv = KvCache::new_in(&tiny_pool(7, 16, 16), &k, &v).unwrap();
        let mut ws = Workspace::new();
        for r in 0..4 {
            let q1 = one_row(&q_all, r);
            // Dense.
            let dense_row = dense_attention_decode_with(&q1, &k, &v, &cfg, &mut ws).unwrap();
            let dense_full = dense_attention(&q1, &k, &v, &cfg).unwrap();
            assert_eq!(dense_row.as_slice(), dense_full.output.row(0));
            // Pruned, matrix and paged forms.
            let (pruned_row, decision) =
                pruned_attention_decode_with(&q1, &k, &v, &cfg, 0.02, &mut ws).unwrap();
            let (pruned_full, decisions) = pruned_attention(&q1, &k, &v, &cfg, 0.02, None).unwrap();
            assert_eq!(pruned_row.as_slice(), pruned_full.output.row(0));
            assert_eq!(decision, decisions[0]);
            let (paged_row, paged_decision) =
                pruned_attention_decode_cached_with(&q1, &kv, &cfg, 0.02, &mut ws).unwrap();
            assert_eq!(paged_row, pruned_row, "query {r}: paged pruned");
            assert_eq!(paged_decision, decision);
            // Quantized, pruned and unpruned.
            for d in [None, Some(&decision)] {
                let hw_row = quantized_attention_decode_with(&q1, &kv, &cfg, d, &mut ws).unwrap();
                let hw_full =
                    quantized_attention(&q1, &k, &v, &cfg, d.map(std::slice::from_ref)).unwrap();
                assert_eq!(hw_row.as_slice(), hw_full.output.row(0), "query {r}");
            }
        }
    }

    #[test]
    fn decode_kernels_reject_multi_row_queries() {
        let cfg = AttentionConfig::new(8);
        let k = random_matrix(4, 8, 11);
        let q2 = random_matrix(2, 8, 12);
        let kv = KvCache::new(&k, &k).unwrap();
        let mut ws = Workspace::new();
        assert!(dense_attention_decode_with(&q2, &k, &k, &cfg, &mut ws).is_err());
        assert!(pruned_attention_decode_with(&q2, &k, &k, &cfg, 0.0, &mut ws).is_err());
        assert!(pruned_attention_decode_cached_with(&q2, &kv, &cfg, 0.0, &mut ws).is_err());
        assert!(quantized_attention_decode_with(&q2, &kv, &cfg, None, &mut ws).is_err());
        // Wrong decision length.
        let q1 = one_row(&q2, 0);
        let bad = PruneDecision::new(vec![false; 3]);
        assert!(quantized_attention_decode_with(&q1, &kv, &cfg, Some(&bad), &mut ws).is_err());
    }
}
