//! The crate error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the attention substrate.
///
/// All public fallible functions in this crate return this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttentionError {
    /// A matrix was constructed from rows of unequal length, or with a
    /// zero dimension where one is not allowed.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Its length.
        found: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A dimension argument was zero or otherwise out of range.
    InvalidDimension {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
    },
    /// A quantization parameter was invalid (non-positive scale or
    /// unsupported bit width).
    InvalidQuantization(String),
    /// An empty input where at least one element is required.
    EmptyInput(&'static str),
    /// A bounded [`crate::PagePool`] has no free page and is at
    /// capacity. The failed allocation mutates nothing, so the caller
    /// can evict a cache and retry.
    PoolExhausted {
        /// Pages currently held by live caches.
        in_use: usize,
        /// The pool's page budget.
        capacity: usize,
    },
}

impl fmt::Display for AttentionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttentionError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "row {row} has length {found}, expected {expected} to match the first row"
            ),
            AttentionError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            AttentionError::InvalidDimension { name, value } => {
                write!(f, "invalid dimension {name} = {value}")
            }
            AttentionError::InvalidQuantization(msg) => {
                write!(f, "invalid quantization parameters: {msg}")
            }
            AttentionError::EmptyInput(what) => write!(f, "empty input: {what}"),
            AttentionError::PoolExhausted { in_use, capacity } => write!(
                f,
                "kv page pool exhausted: {in_use} of {capacity} pages in use"
            ),
        }
    }
}

impl Error for AttentionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = AttentionError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AttentionError>();
    }
}
