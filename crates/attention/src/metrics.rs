//! Agreement metrics for the accuracy studies of Figs. 5 and 9.

use crate::{AttentionError, Matrix, PruneDecision};

/// Fraction of rows whose argmax column agrees between two matrices.
///
/// This is the decision-agreement metric the accuracy proxy uses: when
/// approximate pruning changes which value vector dominates a query's
/// attention output, the downstream prediction flips.
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] unless both matrices have
/// the same shape.
///
/// # Example
///
/// ```
/// use sprint_attention::{top1_agreement, Matrix};
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let a = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]])?;
/// let b = Matrix::from_rows(&[vec![0.8, 0.2], vec![0.6, 0.4]])?;
/// assert_eq!(top1_agreement(&a, &b)?, 0.5);
/// # Ok(())
/// # }
/// ```
pub fn top1_agreement(a: &Matrix, b: &Matrix) -> Result<f64, AttentionError> {
    if a.shape() != b.shape() {
        return Err(AttentionError::ShapeMismatch {
            op: "top1_agreement",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let argmax = |row: &[f32]| -> usize {
        row.iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let agree = (0..a.rows())
        .filter(|&i| argmax(a.row(i)) == argmax(b.row(i)))
        .count();
    Ok(agree as f64 / a.rows() as f64)
}

/// Mean absolute error between two matrices, ignoring positions where
/// either side is non-finite (pruned entries carry `-inf`).
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] unless shapes match.
pub fn mean_abs_error(a: &Matrix, b: &Matrix) -> Result<f64, AttentionError> {
    if a.shape() != b.shape() {
        return Err(AttentionError::ShapeMismatch {
            op: "mean_abs_error",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        if x.is_finite() && y.is_finite() {
            sum += (x - y).abs() as f64;
            n += 1;
        }
    }
    Ok(if n == 0 { 0.0 } else { sum / n as f64 })
}

/// Kullback-Leibler divergence `KL(p ‖ q)` in nats between two
/// probability rows, with an epsilon floor to keep masked zeros finite.
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] for unequal lengths, or
/// [`AttentionError::EmptyInput`] for empty rows.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> Result<f64, AttentionError> {
    if p.len() != q.len() {
        return Err(AttentionError::ShapeMismatch {
            op: "kl_divergence",
            left: (p.len(), 1),
            right: (q.len(), 1),
        });
    }
    if p.is_empty() {
        return Err(AttentionError::EmptyInput("kl_divergence rows"));
    }
    const EPS: f64 = 1e-9;
    let mut kl = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        let pi = pi.max(0.0) as f64;
        if pi > 0.0 {
            kl += pi * (pi / (qi.max(0.0) as f64 + EPS)).ln();
        }
    }
    Ok(kl.max(0.0))
}

/// Fraction of keys kept by `reference` that are also kept by `approx`
/// (the recall of an approximate pruning decision).
///
/// A value of 1.0 means the approximate (in-memory) thresholding did
/// not falsely prune any key the precise threshold would keep — the
/// property SPRINT's negative threshold margin is designed to ensure.
///
/// Returns 1.0 when the reference keeps nothing (no key to miss).
///
/// # Panics
///
/// Panics if the decisions cover different key counts.
pub fn prune_set_overlap(reference: &PruneDecision, approx: &PruneDecision) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "decisions cover different key counts"
    );
    let ref_kept = reference.kept_count();
    if ref_kept == 0 {
        return 1.0;
    }
    reference.kept_overlap(approx) as f64 / ref_kept as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_agreement_counts_matching_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.5]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 0.0], vec![0.9, 0.1]]).unwrap();
        assert!((top1_agreement(&a, &b).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top1_agreement_requires_matching_shapes() {
        let a = Matrix::zeros(2, 2).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(top1_agreement(&a, &b).is_err());
    }

    #[test]
    fn identical_matrices_agree_fully() {
        let a = Matrix::from_rows(&[vec![0.3, 0.7], vec![0.6, 0.4]]).unwrap();
        assert_eq!(top1_agreement(&a, &a).unwrap(), 1.0);
        assert_eq!(mean_abs_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mae_ignores_non_finite_entries() {
        let a = Matrix::from_rows(&[vec![f32::NEG_INFINITY, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 2.0]]).unwrap();
        assert_eq!(mean_abs_error(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn kl_is_zero_for_identical_distributions() {
        let p = [0.25f32, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).unwrap() < 1e-9);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9f32, 0.1];
        let q = [0.1f32, 0.9];
        let kl = kl_divergence(&p, &q).unwrap();
        assert!(kl > 1.0, "kl={kl}");
    }

    #[test]
    fn kl_validates_inputs() {
        assert!(kl_divergence(&[0.5], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[], &[]).is_err());
    }

    #[test]
    fn overlap_is_recall_of_reference_kept_set() {
        let reference = PruneDecision::new(vec![false, false, true, false]);
        let approx = PruneDecision::new(vec![false, true, true, false]);
        // Reference keeps {0,1,3}; approx keeps {0,3}: recall 2/3.
        assert!((prune_set_overlap(&reference, &approx) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_empty_reference_is_one() {
        let reference = PruneDecision::new(vec![true, true]);
        let approx = PruneDecision::new(vec![false, true]);
        assert_eq!(prune_set_overlap(&reference, &approx), 1.0);
    }
}
