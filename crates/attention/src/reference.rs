//! Naive reference attention kernels.
//!
//! These are the original per-pair `dot` + `Matrix::set` implementations
//! the fused kernels in `crate::attention` replaced. They stay in-tree
//! for two jobs:
//!
//! 1. **oracle** — the property tests assert the fused kernels match
//!    these within tight tolerances on random inputs;
//! 2. **baseline** — the `attention_kernels` criterion bench measures
//!    the fused speedup against them (the before/after table in
//!    `BENCH_report.json`).
//!
//! They are *not* the hot path; nothing outside tests and benches
//! should call them. As the oracle they are pinned to the scalar
//! kernel tier throughout — the per-pair dots use the scalar `dot`
//! and the softmax runs [`crate::softmax_inplace_tier`] with
//! [`SimdTier::Scalar`] — so their outputs never change with the
//! process-wide [`crate::active_tier`].

use crate::matrix::dot;
use crate::{
    quantize_matrix, softmax_inplace_tier, AttentionError, AttentionOutput, Matrix, PaddingMask,
    PruneDecision, QuantizedAttentionOutput, SimdTier, SoftmaxLut, MASK_NEG,
};

use crate::attention::{check_shapes, query_is_live, validate_decisions, validate_padding};

/// Naive dense attention: per-pair dot products, per-row allocations,
/// dense `probs × V`. Semantics identical to [`crate::dense_attention`].
///
/// # Errors
///
/// Same shape errors as [`crate::dense_attention`].
pub fn dense_attention_naive(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &crate::AttentionConfig,
) -> Result<AttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let (s_q, s_k) = (q.rows(), k.rows());
    let mut scores = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        for j in 0..s_k {
            scores.set(i, j, cfg.scale() * dot(q.row(i), k.row(j)));
        }
    }
    let mut probs = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        let mut p = scores.row(i).to_vec();
        softmax_inplace_tier(&mut p, SimdTier::Scalar);
        probs.row_mut(i).copy_from_slice(&p);
    }
    let output = probs.matmul(v)?;
    Ok(AttentionOutput {
        scores,
        probs,
        output,
    })
}

/// Naive runtime-pruned attention. Semantics identical to
/// [`crate::pruned_attention`] (including the corrected query-liveness
/// indexing for `s_q != s_k`).
///
/// # Errors
///
/// Same errors as [`crate::pruned_attention`].
pub fn pruned_attention_naive(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &crate::AttentionConfig,
    threshold: f32,
    padding: Option<&PaddingMask>,
) -> Result<(AttentionOutput, Vec<PruneDecision>), AttentionError> {
    check_shapes(q, k, v)?;
    validate_padding(k, padding)?;
    let (s_q, s_k) = (q.rows(), k.rows());
    let mut scores = Matrix::zeros(s_q, s_k)?;
    let mut probs = Matrix::zeros(s_q, s_k)?;
    let mut decisions = Vec::with_capacity(s_q);
    for i in 0..s_q {
        if !query_is_live(i, padding) {
            // Padded query: everything pruned, zero output row.
            for j in 0..s_k {
                scores.set(i, j, f32::NEG_INFINITY);
            }
            decisions.push(PruneDecision::new(vec![true; s_k]));
            continue;
        }
        let mut row_scores = vec![0.0f32; s_k];
        for (j, rs) in row_scores.iter_mut().enumerate() {
            let key_live = padding.map_or(true, |p| p.is_live(j));
            *rs = if key_live {
                cfg.scale() * dot(q.row(i), k.row(j))
            } else {
                MASK_NEG
            };
        }
        let mut decision = PruneDecision::from_scores(&row_scores, threshold);
        if let Some(p) = padding {
            decision.apply_padding(p.live());
        }
        for (j, s) in row_scores.iter().enumerate() {
            scores.set(
                i,
                j,
                if decision.is_pruned(j) {
                    f32::NEG_INFINITY
                } else {
                    *s
                },
            );
        }
        let mut p = row_scores.clone();
        for (s, j) in p.iter_mut().zip(0..s_k) {
            if decision.is_pruned(j) {
                *s = f32::NEG_INFINITY;
            }
        }
        softmax_inplace_tier(&mut p, SimdTier::Scalar);
        probs.row_mut(i).copy_from_slice(&p);
        decisions.push(decision);
    }
    let output = probs.matmul(v)?;
    Ok((
        AttentionOutput {
            scores,
            probs,
            output,
        },
        decisions,
    ))
}

/// Naive quantized attention: per-pair integer MACs, per-row probability
/// allocation, per-element V-PU probability re-rounding. Semantics
/// identical to [`crate::quantized_attention`].
///
/// # Errors
///
/// Same errors as [`crate::quantized_attention`].
pub fn quantized_attention_naive(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &crate::AttentionConfig,
    decisions: Option<&[PruneDecision]>,
) -> Result<QuantizedAttentionOutput, AttentionError> {
    check_shapes(q, k, v)?;
    let (s_q, s_k) = (q.rows(), k.rows());
    validate_decisions(s_q, s_k, decisions)?;

    // 8-bit quantization of the operand matrices (per-tensor symmetric).
    let qq = quantize_matrix(q, 8)?;
    let qk = quantize_matrix(k, 8)?;
    let qv = quantize_matrix(v, 8)?;
    let score_lsb = qq.params().step() * qk.params().step() * cfg.scale();

    let mut scores = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        for j in 0..s_k {
            let kept = decisions.map_or(true, |ds| ds[i].is_kept(j));
            if !kept {
                scores.set(i, j, f32::NEG_INFINITY);
                continue;
            }
            // Integer MAC: i8 x i8 accumulated in i32 (the QK-PU).
            let acc: i32 = qq
                .code_row(i)
                .iter()
                .zip(qk.code_row(j))
                .map(|(&a, &b)| a * b)
                .sum();
            scores.set(i, j, acc as f32 * score_lsb);
        }
    }

    // Softmax with 12-bit inputs via the two-LUT unit.
    let mut max_offset = 1.0f32;
    for i in 0..s_q {
        let row = scores.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            continue;
        }
        for &s in row {
            if s != f32::NEG_INFINITY {
                max_offset = max_offset.max(max - s);
            }
        }
    }
    let unit = SoftmaxLut::new(max_offset.max(1e-3))?;
    let mut probs = Matrix::zeros(s_q, s_k)?;
    for i in 0..s_q {
        let p = unit.probabilities(scores.row(i))?;
        probs.row_mut(i).copy_from_slice(&p);
    }

    // V-PU: 8-bit probabilities x 8-bit values, 16-bit accumulation.
    let out_lsb = qv.params().step() / 255.0;
    let mut output = Matrix::zeros(s_q, v.cols())?;
    for i in 0..s_q {
        for c in 0..v.cols() {
            let mut acc: i32 = 0;
            for j in 0..s_k {
                let p_code = (probs.get(i, j) * 255.0).round() as i32;
                if p_code == 0 {
                    continue;
                }
                acc += p_code * qv.code(j, c);
            }
            // Final attention value kept in 16 bits.
            let acc16 = acc.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
            output.set(i, c, acc16 as f32 * out_lsb);
        }
    }

    Ok(QuantizedAttentionOutput {
        scores,
        probs,
        output,
    })
}
