//! Exact and hardware (two look-up table) softmax.
//!
//! The SPRINT softmax unit takes 12-bit inputs and produces 8-bit
//! probabilities, computing the exponent with the two-LUT method used by
//! A3 and LeOPArd ("we use a two look-up-tables method for exponent
//! calculation", §VI): the negative offset from the row maximum is split
//! into a coarse and a fine part, each indexing a 64-entry table, and
//! the two table outputs are multiplied.

use serde::{Deserialize, Serialize};

use crate::AttentionError;

/// Numerically-stable exact softmax over a slice.
///
/// Returns an empty vector for empty input. Entries equal to
/// `f32::NEG_INFINITY` (pruned or masked positions) receive exactly
/// zero probability.
///
/// # Example
///
/// ```
/// use sprint_attention::softmax_exact;
///
/// let p = softmax_exact(&[1.0, 1.0, f32::NEG_INFINITY]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// assert_eq!(p[2], 0.0);
/// ```
pub fn softmax_exact(scores: &[f32]) -> Vec<f32> {
    let mut out = scores.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Numerically-stable exact softmax computed in place, with no
/// allocation.
///
/// Entries equal to `f32::NEG_INFINITY` (pruned or masked positions)
/// become exactly zero; a row that is entirely `-inf` becomes all-zero
/// (the convention of [`softmax_exact`]). This is the fused-kernel
/// primitive: the caller supplies the row (typically a matrix row) and
/// it is overwritten with the probabilities.
///
/// # Example
///
/// ```
/// use sprint_attention::softmax_inplace;
///
/// let mut row = [1.0, 1.0, f32::NEG_INFINITY];
/// softmax_inplace(&mut row);
/// assert!((row[0] - 0.5).abs() < 1e-6);
/// assert_eq!(row[2], 0.0);
/// ```
pub fn softmax_inplace(row: &mut [f32]) {
    softmax_inplace_tier(row, crate::active_tier());
}

/// [`softmax_inplace`] dispatching every stage — max scan, exponent
/// pass, normalization — on an explicit kernel tier. The exponent pass
/// is the tolerance-class stage of the cross-tier contract: the AVX2
/// tier evaluates a polynomial `exp` eight lanes at a time, so
/// probabilities agree across tiers to ~1e-6 relative rather than
/// bitwise (see the table in [`crate::simd`]). Masked `-inf` entries
/// become exactly `0.0` in every tier, and a row that is entirely
/// `-inf` is all-zero, so pruning structure is tier-independent.
pub fn softmax_inplace_tier(row: &mut [f32], tier: crate::SimdTier) {
    if row.is_empty() {
        return;
    }
    let max = crate::simd::row_max(tier, row);
    if max == f32::NEG_INFINITY {
        // Every position masked: define the output as all-zero.
        row.fill(0.0);
        return;
    }
    let sum = crate::simd::exp_rows(tier, row, max);
    crate::simd::scale_row(tier, row, 1.0 / sum);
}

/// Exact masked softmax computed in place: positions where `keep[i]` is
/// `false` get exactly zero probability, the rest are renormalized over
/// the kept set. Allocation-free counterpart of [`softmax_masked`].
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] if the mask length differs
/// from the row length.
pub fn softmax_masked_inplace(row: &mut [f32], keep: &[bool]) -> Result<(), AttentionError> {
    if row.len() != keep.len() {
        return Err(AttentionError::ShapeMismatch {
            op: "softmax_masked",
            left: (row.len(), 1),
            right: (keep.len(), 1),
        });
    }
    for (s, &k) in row.iter_mut().zip(keep) {
        if !k {
            *s = f32::NEG_INFINITY;
        }
    }
    softmax_inplace(row);
    Ok(())
}

/// Exact softmax with a boolean keep-mask.
///
/// Positions where `keep[i]` is `false` are excluded (zero probability),
/// mirroring how transformer implementations place a large negative
/// value in masked positions before the softmax (§II-C3).
///
/// # Errors
///
/// Returns [`AttentionError::ShapeMismatch`] if the mask length differs
/// from the score length.
pub fn softmax_masked(scores: &[f32], keep: &[bool]) -> Result<Vec<f32>, AttentionError> {
    if scores.len() != keep.len() {
        return Err(AttentionError::ShapeMismatch {
            op: "softmax_masked",
            left: (scores.len(), 1),
            right: (keep.len(), 1),
        });
    }
    let mut out = scores.to_vec();
    softmax_masked_inplace(&mut out, keep)?;
    Ok(out)
}

/// The SPRINT hardware softmax unit: 12-bit inputs, two 64-entry
/// exponent LUTs, 8-bit probability outputs.
///
/// The unit receives score offsets from the running row maximum as
/// non-negative 12-bit fixed-point magnitudes `u = (max − s) / step`.
/// `u` is split as `u = hi · 64 + lo`; `exp(−u·step)` is approximated by
/// `coarse[hi] · fine[lo]`, with both tables storing 8-bit fractions.
///
/// # Example
///
/// ```
/// use sprint_attention::SoftmaxLut;
///
/// # fn main() -> Result<(), sprint_attention::AttentionError> {
/// let unit = SoftmaxLut::new(16.0)?;
/// let probs = unit.probabilities(&[2.0, 2.0, -6.0])?;
/// assert!((probs[0] - 0.5).abs() < 0.01);
/// assert!(probs[2] < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxLut {
    /// Real score range covered by the 12-bit input (max − min).
    range: f32,
    /// Coarse exponent table: `exp(-(i * 64) * step)`, 8-bit fraction.
    coarse: Vec<u8>,
    /// Fine exponent table: `exp(-i * step)`, 8-bit fraction.
    fine: Vec<u8>,
}

/// Entries per LUT ("2EA of 64B LUTs" in Table I: 64 bytes = 64 8-bit
/// entries each).
const LUT_ENTRIES: usize = 64;
/// Total 12-bit input codes (LUT_ENTRIES²).
const INPUT_CODES: usize = LUT_ENTRIES * LUT_ENTRIES;

impl SoftmaxLut {
    /// Builds the two LUTs for inputs covering a score offset range of
    /// `range` (offsets beyond it saturate to probability ≈ 0).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::InvalidQuantization`] unless `range` is
    /// positive and finite.
    pub fn new(range: f32) -> Result<Self, AttentionError> {
        if !(range.is_finite() && range > 0.0) {
            return Err(AttentionError::InvalidQuantization(format!(
                "softmax range {range} must be positive and finite"
            )));
        }
        let step = range / INPUT_CODES as f32;
        let to_u8 = |x: f32| -> u8 { (x * 255.0).round().clamp(0.0, 255.0) as u8 };
        let coarse = (0..LUT_ENTRIES)
            .map(|i| to_u8((-(i as f32) * LUT_ENTRIES as f32 * step).exp()))
            .collect();
        let fine = (0..LUT_ENTRIES)
            .map(|i| to_u8((-(i as f32) * step).exp()))
            .collect();
        Ok(SoftmaxLut {
            range,
            coarse,
            fine,
        })
    }

    /// The real value of one 12-bit input step.
    pub fn step(&self) -> f32 {
        self.range / INPUT_CODES as f32
    }

    /// The score-offset range covered by the unit.
    pub fn range(&self) -> f32 {
        self.range
    }

    /// Looks up `exp(−offset)` for a non-negative real offset, exactly
    /// as the hardware would: quantize to 12 bits, split into two
    /// 6-bit indices, multiply the 8-bit table outputs.
    ///
    /// Returns a fraction in `[0, 1]` with ~8 bits of precision.
    pub fn exp_neg(&self, offset: f32) -> f32 {
        debug_assert!(offset >= -1e-6, "offset {offset} must be non-negative");
        let code = ((offset / self.step()).round() as usize).min(INPUT_CODES - 1);
        let hi = code / LUT_ENTRIES;
        let lo = code % LUT_ENTRIES;
        // 8-bit x 8-bit multiply -> 16-bit product, kept as fraction.
        let product = self.coarse[hi] as u32 * self.fine[lo] as u32;
        product as f32 / (255.0 * 255.0)
    }

    /// Computes 8-bit-equivalent softmax probabilities for a score row.
    ///
    /// `f32::NEG_INFINITY` entries (pruned/masked) get zero probability.
    /// This models the full unit: streaming max, two-LUT exponent,
    /// FIFO accumulation, and the final division (two divider lanes in
    /// hardware; arithmetic here is sequential but bit-equivalent).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::EmptyInput`] for an empty score row.
    pub fn probabilities(&self, scores: &[f32]) -> Result<Vec<f32>, AttentionError> {
        let mut out = vec![0.0; scores.len()];
        self.probabilities_into(scores, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SoftmaxLut::probabilities`]: writes the 8-bit
    /// probabilities into `out` (typically a probability-matrix row).
    ///
    /// # Errors
    ///
    /// Returns [`AttentionError::EmptyInput`] for an empty score row and
    /// [`AttentionError::ShapeMismatch`] if `out` has a different length.
    pub fn probabilities_into(
        &self,
        scores: &[f32],
        out: &mut [f32],
    ) -> Result<(), AttentionError> {
        if scores.is_empty() {
            return Err(AttentionError::EmptyInput("softmax scores"));
        }
        if scores.len() != out.len() {
            return Err(AttentionError::ShapeMismatch {
                op: "softmax probabilities",
                left: (scores.len(), 1),
                right: (out.len(), 1),
            });
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            out.fill(0.0);
            return Ok(());
        }
        let mut sum = 0.0f32;
        for (slot, &s) in out.iter_mut().zip(scores) {
            let e = if s == f32::NEG_INFINITY {
                0.0
            } else {
                self.exp_neg(max - s)
            };
            *slot = e;
            sum += e;
        }
        if sum == 0.0 {
            out.fill(0.0);
            return Ok(());
        }
        // The divider output is an 8-bit probability.
        for slot in out.iter_mut() {
            *slot = (*slot / sum * 255.0).round() / 255.0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_softmax_is_distribution() {
        let p = softmax_exact(&[0.1, 2.0, -1.0, 0.5]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exact_softmax_handles_extremes() {
        assert!(softmax_exact(&[]).is_empty());
        let all_masked = softmax_exact(&[f32::NEG_INFINITY; 3]);
        assert_eq!(all_masked, vec![0.0; 3]);
        // Large values do not overflow thanks to max subtraction.
        let p = softmax_exact(&[1000.0, 999.0]);
        assert!((p[0] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-5);
    }

    #[test]
    fn exact_softmax_shift_invariant() {
        let a = softmax_exact(&[0.0, 1.0, 2.0]);
        let b = softmax_exact(&[10.0, 11.0, 12.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_softmax_zeroes_dropped_positions() {
        let p = softmax_masked(&[1.0, 1.0, 1.0], &[true, false, true]).unwrap();
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_checks_lengths() {
        assert!(softmax_masked(&[1.0], &[true, false]).is_err());
        assert!(softmax_masked_inplace(&mut [1.0], &[true, false]).is_err());
    }

    #[test]
    fn inplace_softmax_matches_exact() {
        let scores = [0.3f32, -1.2, 2.5, f32::NEG_INFINITY, 0.0];
        let reference = softmax_exact(&scores);
        let mut row = scores;
        softmax_inplace(&mut row);
        for (a, b) in row.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-7);
        }
        let mut empty: [f32; 0] = [];
        softmax_inplace(&mut empty);
    }

    #[test]
    fn masked_inplace_matches_masked() {
        let scores = [1.0f32, 2.0, 3.0, 4.0];
        let keep = [true, false, true, false];
        let reference = softmax_masked(&scores, &keep).unwrap();
        let mut row = scores;
        softmax_masked_inplace(&mut row, &keep).unwrap();
        assert_eq!(row.to_vec(), reference);
        assert_eq!(row[1], 0.0);
    }

    #[test]
    fn lut_probabilities_into_matches_allocating_variant() {
        let unit = SoftmaxLut::new(16.0).unwrap();
        let scores = [1.5, 0.2, f32::NEG_INFINITY, 3.0];
        let reference = unit.probabilities(&scores).unwrap();
        let mut out = [0.0f32; 4];
        unit.probabilities_into(&scores, &mut out).unwrap();
        assert_eq!(out.to_vec(), reference);
        let mut wrong = [0.0f32; 3];
        assert!(unit.probabilities_into(&scores, &mut wrong).is_err());
    }

    #[test]
    fn lut_rejects_bad_range() {
        assert!(SoftmaxLut::new(0.0).is_err());
        assert!(SoftmaxLut::new(f32::NAN).is_err());
        assert!(SoftmaxLut::new(-3.0).is_err());
    }

    #[test]
    fn lut_exp_matches_reference_within_8bit() {
        let unit = SoftmaxLut::new(16.0).unwrap();
        for i in 0..200 {
            let x = i as f32 * 0.05;
            let approx = unit.exp_neg(x);
            let exact = (-x).exp();
            // Two chained 8-bit roundings + input quantization.
            assert!(
                (approx - exact).abs() < 0.02,
                "x={x} approx={approx} exact={exact}"
            );
        }
    }

    #[test]
    fn lut_probabilities_close_to_exact() {
        let unit = SoftmaxLut::new(16.0).unwrap();
        let scores = [1.5, 0.2, -0.7, 3.0, -2.0];
        let hw = unit.probabilities(&scores).unwrap();
        let sw = softmax_exact(&scores);
        for (h, s) in hw.iter().zip(&sw) {
            assert!((h - s).abs() < 0.02, "hw={h} sw={s}");
        }
    }

    #[test]
    fn lut_handles_pruned_entries() {
        let unit = SoftmaxLut::new(16.0).unwrap();
        let p = unit.probabilities(&[1.0, f32::NEG_INFINITY, 1.0]).unwrap();
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 0.01);
        let all = unit.probabilities(&[f32::NEG_INFINITY; 4]).unwrap();
        assert_eq!(all, vec![0.0; 4]);
        assert!(unit.probabilities(&[]).is_err());
    }

    #[test]
    fn lut_tables_are_64_bytes_each() {
        let unit = SoftmaxLut::new(8.0).unwrap();
        // Table I: "2EA of 64B LUTs".
        assert_eq!(unit.coarse.len(), 64);
        assert_eq!(unit.fine.len(), 64);
    }

    proptest! {
        #[test]
        fn prop_exact_softmax_distribution(scores in proptest::collection::vec(-20.0f32..20.0, 1..64)) {
            let p = softmax_exact(&scores);
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn prop_lut_probabilities_near_exact(scores in proptest::collection::vec(-6.0f32..6.0, 2..32)) {
            let unit = SoftmaxLut::new(16.0).unwrap();
            let hw = unit.probabilities(&scores).unwrap();
            let sw = softmax_exact(&scores);
            for (h, s) in hw.iter().zip(&sw) {
                prop_assert!((h - s).abs() < 0.03);
            }
        }

        #[test]
        fn prop_lut_exp_monotone_nonincreasing(a in 0.0f32..15.0, b in 0.0f32..15.0) {
            // The two-LUT product is monotone up to the 8-bit table
            // rounding: at coarse-index boundaries the product can
            // glitch upward by about one table step (~1/255). The
            // hardware has the same property; the bound is what we
            // assert.
            let unit = SoftmaxLut::new(16.0).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(unit.exp_neg(lo) >= unit.exp_neg(hi) - 1.5 / 255.0);
        }
    }
}
