//! Property tests: the fused attention kernels must match the naive
//! reference implementations (ISSUE 2 satellite).
//!
//! Every fused kernel is compared against its counterpart in
//! `sprint_attention::reference` on random Q/K/V across sizes,
//! thresholds and padding splits, including the `threshold = -inf`
//! case where the pruned path must reduce to dense attention exactly.

use proptest::prelude::*;
use sprint_attention::reference::{
    dense_attention_naive, pruned_attention_naive, quantized_attention_naive,
};
use sprint_attention::{
    dense_attention, dense_attention_with, pruned_attention, pruned_attention_with,
    quantized_attention, AttentionConfig, Matrix, PaddingMask, PruneDecision, Workspace,
};

/// Deterministic pseudo-random matrix from a seed (splitmix-style).
fn random_matrix(rows: usize, cols: usize, seed: u64, amp: f32) -> Matrix {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(0x2545f4914f6cdd1d);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        amp * (((x >> 40) as f32 / 16777216.0) - 0.5)
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shapes");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            if x == f32::NEG_INFINITY || y == f32::NEG_INFINITY {
                assert_eq!(x, y, "{what} at ({r},{c}): {x} vs {y}");
            } else {
                assert!(
                    (x - y).abs() < tol,
                    "{what} diverges at ({r},{c}): {x} vs {y}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_dense_fused_matches_naive(
        s_q in 1usize..24,
        s_k in 1usize..24,
        d in 1usize..20,
        seed in 0u64..400,
    ) {
        let q = random_matrix(s_q, d, seed, 2.0);
        let k = random_matrix(s_k, d, seed ^ 1, 2.0);
        let v = random_matrix(s_k, d, seed ^ 2, 1.0);
        let cfg = AttentionConfig::new(d);
        let fused = dense_attention(&q, &k, &v, &cfg).unwrap();
        let naive = dense_attention_naive(&q, &k, &v, &cfg).unwrap();
        assert_close(&fused.scores, &naive.scores, 1e-5, "dense scores");
        assert_close(&fused.probs, &naive.probs, 1e-5, "dense probs");
        assert_close(&fused.output, &naive.output, 1e-5, "dense output");
    }

    #[test]
    fn prop_pruned_fused_matches_naive(
        s in 2usize..24,
        d in 1usize..20,
        threshold in -2.0f32..2.0,
        pad in 0usize..8,
        seed in 0u64..400,
    ) {
        let q = random_matrix(s, d, seed, 2.0);
        let k = random_matrix(s, d, seed ^ 1, 2.0);
        let v = random_matrix(s, d, seed ^ 2, 1.0);
        let cfg = AttentionConfig::new(d);
        let live = s - pad.min(s - 1);
        let mask = PaddingMask::new(s, live).unwrap();
        let (fused, fd) = pruned_attention(&q, &k, &v, &cfg, threshold, Some(&mask)).unwrap();
        let (naive, nd) = pruned_attention_naive(&q, &k, &v, &cfg, threshold, Some(&mask)).unwrap();
        prop_assert_eq!(fd, nd, "decisions must be identical");
        assert_close(&fused.scores, &naive.scores, 1e-5, "pruned scores");
        assert_close(&fused.probs, &naive.probs, 1e-5, "pruned probs");
        assert_close(&fused.output, &naive.output, 1e-5, "pruned output");
    }

    #[test]
    fn prop_pruned_at_neg_inf_threshold_equals_dense(
        s in 1usize..20,
        d in 1usize..16,
        seed in 0u64..400,
    ) {
        let q = random_matrix(s, d, seed, 2.0);
        let k = random_matrix(s, d, seed ^ 1, 2.0);
        let v = random_matrix(s, d, seed ^ 2, 1.0);
        let cfg = AttentionConfig::new(d);
        let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
        let (pruned, decisions) =
            pruned_attention(&q, &k, &v, &cfg, f32::NEG_INFINITY, None).unwrap();
        for dec in &decisions {
            prop_assert_eq!(dec.kept_count(), s, "nothing pruned at -inf threshold");
        }
        // Same kernel, same region, no mask writes: bitwise equality.
        prop_assert_eq!(&pruned.scores, &dense.scores);
        prop_assert_eq!(&pruned.probs, &dense.probs);
        assert_close(&pruned.output, &dense.output, 1e-5, "output vs dense");
    }

    #[test]
    fn prop_fused_matches_naive_at_monomorphized_dims(
        s in 2usize..40,
        d_pick in 0usize..3,
        threshold in -2.0f32..2.0,
        pad in 0usize..10,
        seed in 0u64..200,
    ) {
        // The d = 32/64/128 kernels are separate monomorphized paths
        // (register-blocked two rows at a time, with a single-row tail
        // for odd row counts); their reduction order matches `dot`
        // exactly, so fused and naive must agree BITWISE here — scores,
        // probabilities and outputs alike. This is a *scalar-tier*
        // contract (the naive reference is scalar), so the workspace
        // pins SimdTier::Scalar; the AVX2 tier is pinned against the
        // scalar tier separately, by the simd differential harness.
        let d = [32usize, 64, 128][d_pick];
        let q = random_matrix(s, d, seed, 2.0);
        let k = random_matrix(s, d, seed ^ 1, 2.0);
        let v = random_matrix(s, d, seed ^ 2, 1.0);
        let cfg = AttentionConfig::new(d);
        let live = s - pad.min(s - 1);
        let mask = PaddingMask::new(s, live).unwrap();
        let mut ws = Workspace::new();
        ws.set_simd_tier(sprint_attention::SimdTier::Scalar);
        let (fused, fd) =
            pruned_attention_with(&q, &k, &v, &cfg, threshold, Some(&mask), &mut ws).unwrap();
        let (naive, nd) = pruned_attention_naive(&q, &k, &v, &cfg, threshold, Some(&mask)).unwrap();
        prop_assert_eq!(fd, nd);
        prop_assert_eq!(&fused.scores, &naive.scores);
        prop_assert_eq!(&fused.probs, &naive.probs);
        prop_assert_eq!(&fused.output, &naive.output);
        let dense_fused = dense_attention_with(&q, &k, &v, &cfg, &mut ws).unwrap();
        let dense_naive = dense_attention_naive(&q, &k, &v, &cfg).unwrap();
        prop_assert_eq!(&dense_fused.scores, &dense_naive.scores);
        prop_assert_eq!(&dense_fused.probs, &dense_naive.probs);
        prop_assert_eq!(&dense_fused.output, &dense_naive.output);
    }

    #[test]
    fn prop_quantized_fused_matches_naive(
        s in 2usize..16,
        d in 1usize..12,
        prune_mod in 1usize..5,
        seed in 0u64..400,
    ) {
        let q = random_matrix(s, d, seed, 2.0);
        let k = random_matrix(s, d, seed ^ 1, 2.0);
        let v = random_matrix(s, d, seed ^ 2, 1.0);
        let cfg = AttentionConfig::new(d);
        // A deterministic decision pattern keeping every prune_mod-th key.
        let decisions: Vec<PruneDecision> = (0..s)
            .map(|i| {
                PruneDecision::new(
                    (0..s).map(|j| (i + j) % (prune_mod + 1) == prune_mod).collect(),
                )
            })
            .collect();
        let fused = quantized_attention(&q, &k, &v, &cfg, Some(&decisions)).unwrap();
        let naive = quantized_attention_naive(&q, &k, &v, &cfg, Some(&decisions)).unwrap();
        // The integer datapath is identical arithmetic: bitwise equality.
        prop_assert_eq!(&fused.scores, &naive.scores);
        prop_assert_eq!(&fused.probs, &naive.probs);
        prop_assert_eq!(&fused.output, &naive.output);
    }

    #[test]
    fn prop_workspace_reuse_is_transparent(
        s in 2usize..16,
        d in 1usize..12,
        threshold in -1.0f32..1.0,
        seed in 0u64..200,
    ) {
        // Running many heads through one workspace must give the same
        // results as fresh workspaces per call.
        let cfg = AttentionConfig::new(d);
        let mut ws = Workspace::new();
        for head in 0..3u64 {
            let q = random_matrix(s, d, seed ^ (head * 3), 2.0);
            let k = random_matrix(s, d, seed ^ (head * 3 + 1), 2.0);
            let v = random_matrix(s, d, seed ^ (head * 3 + 2), 1.0);
            let shared =
                sprint_attention::pruned_attention_with(&q, &k, &v, &cfg, threshold, None, &mut ws)
                    .unwrap();
            let fresh = pruned_attention(&q, &k, &v, &cfg, threshold, None).unwrap();
            prop_assert_eq!(shared.0.probs, fresh.0.probs);
            prop_assert_eq!(shared.1, fresh.1);
        }
    }
}
