//! Arithmetic-layer invariants of the SPRINT datapath (ISSUE 1
//! satellite): exact softmax, the two-LUT hardware softmax, symmetric
//! quantization, and the pruning/dense equivalence at an all-keep
//! threshold.

use sprint_attention::{
    dense_attention, pruned_attention, quantize_matrix, softmax_exact, AttentionConfig, Matrix,
    QuantParams, SoftmaxLut,
};

fn sample_matrix(rows: usize, cols: usize, amp: f32, phase: f32) -> Matrix {
    let data: Vec<Vec<f32>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| amp * ((r * cols + c) as f32 * 0.7 + phase).sin())
                .collect()
        })
        .collect();
    Matrix::from_rows(&data).unwrap()
}

#[test]
fn softmax_exact_rows_sum_to_one() {
    for scores in [
        vec![0.0f32],
        vec![1.0, 2.0, 3.0, 4.0],
        vec![-30.0, 0.0, 30.0],
        (0..64).map(|i| (i as f32 * 0.37).cos() * 9.0).collect(),
    ] {
        let p = softmax_exact(&scores);
        assert_eq!(p.len(), scores.len());
        let sum: f32 = p.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "softmax row sums to {sum}, not 1, for {scores:?}"
        );
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

#[test]
fn softmax_lut_tracks_exact_within_tolerance() {
    let lut = SoftmaxLut::new(12.0).unwrap();
    let scores: Vec<f32> = (0..48).map(|i| ((i as f32) * 0.41).sin() * 5.0).collect();
    let exact = softmax_exact(&scores);
    let approx = lut.probabilities(&scores).unwrap();
    assert_eq!(exact.len(), approx.len());
    let sum: f32 = approx.iter().sum();
    assert!((sum - 1.0).abs() < 1e-3, "LUT probabilities sum to {sum}");
    for (i, (&e, &a)) in exact.iter().zip(&approx).enumerate() {
        assert!(
            (e - a).abs() < 0.02,
            "LUT diverges from exact at {i}: exact {e} vs lut {a}"
        );
    }
}

#[test]
fn quantize_dequantize_error_bounded_by_half_step() {
    for bits in [4u32, 8, 12] {
        let max_abs = 7.5f32;
        let p = QuantParams::for_range(bits, max_abs).unwrap();
        let half_step = p.step() / 2.0;
        for i in 0..1000 {
            let x = -max_abs + (2.0 * max_abs) * (i as f32 / 999.0);
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(
                err <= half_step * 1.0001,
                "{bits}-bit round trip error {err} exceeds step/2 {half_step} at {x}"
            );
        }
    }
}

#[test]
fn quantized_matrix_round_trip_stays_within_half_step() {
    let m = sample_matrix(6, 8, 3.0, 0.2);
    let qm = quantize_matrix(&m, 8).unwrap();
    let back = qm.to_matrix();
    let half_step = qm.params().step() / 2.0;
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let err = (back.get(r, c) - m.get(r, c)).abs();
            assert!(err <= half_step * 1.0001, "cell ({r},{c}) error {err}");
        }
    }
}

#[test]
fn all_keep_pruned_attention_equals_dense() {
    let d = 8;
    let q = sample_matrix(5, d, 1.0, 0.0);
    let k = sample_matrix(5, d, 1.0, 1.3);
    let v = sample_matrix(5, d, 2.0, 2.6);
    let cfg = AttentionConfig::new(d);
    let dense = dense_attention(&q, &k, &v, &cfg).unwrap();
    // A threshold of -inf keeps every key: the paper's pruned datapath
    // must then be bit-identical (same arithmetic) to the dense one.
    let (pruned, decisions) = pruned_attention(&q, &k, &v, &cfg, f32::NEG_INFINITY, None).unwrap();
    for d in &decisions {
        assert_eq!(d.kept_count(), d.len(), "all-keep decision");
    }
    for r in 0..dense.output.rows() {
        for c in 0..dense.output.cols() {
            let delta = (dense.output.get(r, c) - pruned.output.get(r, c)).abs();
            assert!(delta < 1e-6, "output ({r},{c}) differs by {delta}");
        }
        for c in 0..dense.probs.cols() {
            let delta = (dense.probs.get(r, c) - pruned.probs.get(r, c)).abs();
            assert!(delta < 1e-6, "probs ({r},{c}) differs by {delta}");
        }
    }
}
