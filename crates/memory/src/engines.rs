//! The memory-request and key-index generator engines (§V-C).
//!
//! One MRG per memory controller/channel turns the SLD's memory-request
//! vector into addressed fetches for the keys *resident on that
//! channel*; the KIG runs the identical microarchitecture over the
//! spatial-locality vector to hand the accelerator the indices it can
//! start computing on immediately. Both walk the bit vector with a
//! **base register** (the channel's first key index) and a **shared
//! up-counter** stepping by the channel count.

use serde::{Deserialize, Serialize};

use crate::{KeyLocation, MemoryError, MemoryGeometry};

/// One generated key fetch: logical key index plus physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyAddress {
    /// Logical key index within the sequence.
    pub key: usize,
    /// Physical location in the memory geometry.
    pub location: KeyLocation,
}

/// The per-channel memory request generator.
///
/// # Example
///
/// ```
/// use sprint_memory::{MemoryGeometry, MemoryRequestGenerator};
///
/// let g = MemoryGeometry { channels: 4, ..MemoryGeometry::default() };
/// let mrg = MemoryRequestGenerator::new(1, g).unwrap();
/// // Keys 1 and 5 live on channel 1 (j mod 4 == 1); key 2 does not.
/// let req = vec![false, true, true, false, false, true, false, false];
/// let out = mrg.generate(&req);
/// let keys: Vec<usize> = out.iter().map(|a| a.key).collect();
/// assert_eq!(keys, vec![1, 5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRequestGenerator {
    /// Base register: the first key index on this channel.
    base: usize,
    geometry: MemoryGeometry,
}

impl MemoryRequestGenerator {
    /// Creates the generator for `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOutOfRange`] if the channel does
    /// not exist, or geometry validation errors.
    pub fn new(channel: usize, geometry: MemoryGeometry) -> Result<Self, MemoryError> {
        geometry.validate()?;
        if channel >= geometry.channels {
            return Err(MemoryError::AddressOutOfRange {
                what: "channel",
                index: channel,
                bound: geometry.channels,
            });
        }
        Ok(MemoryRequestGenerator {
            base: channel,
            geometry,
        })
    }

    /// The channel this engine serves.
    pub fn channel(&self) -> usize {
        self.base
    }

    /// Walks `vector` (`true` = generate) and emits an address for
    /// every set bit belonging to this channel.
    ///
    /// Mirrors the hardware: the up-counter starts at the base register
    /// and increments by the channel count, so only this channel's
    /// positions are ever inspected.
    pub fn generate(&self, vector: &[bool]) -> Vec<KeyAddress> {
        let mut out = Vec::new();
        let mut j = self.base;
        while j < vector.len() {
            if vector[j] {
                // By construction j is within this channel; location
                // lookup cannot fail for indices under capacity.
                if let Ok(location) = self.geometry.key_location(j) {
                    debug_assert_eq!(location.channel, self.base % self.geometry.channels);
                    out.push(KeyAddress { key: j, location });
                }
            }
            j += self.geometry.channels;
        }
        out
    }
}

/// The key index generator: identical microarchitecture to the MRG but
/// fed the spatial-locality vector, producing the indices whose score
/// computation can bootstrap from on-chip data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyIndexGenerator {
    inner: MemoryRequestGenerator,
}

impl KeyIndexGenerator {
    /// Creates the generator for `channel`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryRequestGenerator::new`].
    pub fn new(channel: usize, geometry: MemoryGeometry) -> Result<Self, MemoryError> {
        Ok(KeyIndexGenerator {
            inner: MemoryRequestGenerator::new(channel, geometry)?,
        })
    }

    /// The channel this engine serves.
    pub fn channel(&self) -> usize {
        self.inner.channel()
    }

    /// Emits the on-chip key indices of this channel from the
    /// spatial-locality vector.
    pub fn generate(&self, locality_vector: &[bool]) -> Vec<usize> {
        self.inner
            .generate(locality_vector)
            .into_iter()
            .map(|a| a.key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_geometry() -> MemoryGeometry {
        MemoryGeometry {
            channels: 4,
            banks_per_channel: 2,
            vectors_per_row: 4,
            rows_per_bank: 64,
            bytes_per_fetch: 96,
            bursts_per_fetch: 3,
        }
    }

    #[test]
    fn construction_validates_channel() {
        assert!(MemoryRequestGenerator::new(4, small_geometry()).is_err());
        assert!(MemoryRequestGenerator::new(3, small_geometry()).is_ok());
        assert!(KeyIndexGenerator::new(9, small_geometry()).is_err());
    }

    #[test]
    fn generator_only_emits_its_channel() {
        let g = small_geometry();
        let vector = vec![true; 32];
        for ch in 0..4 {
            let mrg = MemoryRequestGenerator::new(ch, g).unwrap();
            let out = mrg.generate(&vector);
            assert_eq!(out.len(), 8, "32 keys / 4 channels");
            assert!(out.iter().all(|a| a.key % 4 == ch));
            assert!(out.iter().all(|a| a.location.channel == ch));
        }
    }

    #[test]
    fn generators_cover_every_set_bit_exactly_once() {
        let g = small_geometry();
        let vector: Vec<bool> = (0..40).map(|j| j % 3 == 0).collect();
        let mut seen = Vec::new();
        for ch in 0..4 {
            let mrg = MemoryRequestGenerator::new(ch, g).unwrap();
            seen.extend(mrg.generate(&vector).into_iter().map(|a| a.key));
        }
        seen.sort_unstable();
        let expected: Vec<usize> = (0..40).filter(|j| j % 3 == 0).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn kig_mirrors_mrg_addressing() {
        let g = small_geometry();
        let vector: Vec<bool> = (0..24).map(|j| j % 5 == 0).collect();
        for ch in 0..4 {
            let mrg = MemoryRequestGenerator::new(ch, g).unwrap();
            let kig = KeyIndexGenerator::new(ch, g).unwrap();
            let mrg_keys: Vec<usize> = mrg.generate(&vector).iter().map(|a| a.key).collect();
            assert_eq!(kig.generate(&vector), mrg_keys);
        }
    }

    #[test]
    fn empty_vector_generates_nothing() {
        let mrg = MemoryRequestGenerator::new(0, small_geometry()).unwrap();
        assert!(mrg.generate(&[]).is_empty());
        assert!(mrg.generate(&[false; 16]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_partition_over_channels(
            bits in proptest::collection::vec(proptest::bool::ANY, 0..128),
        ) {
            let g = small_geometry();
            let mut all = Vec::new();
            for ch in 0..g.channels {
                let mrg = MemoryRequestGenerator::new(ch, g).unwrap();
                all.extend(mrg.generate(&bits).into_iter().map(|a| a.key));
            }
            all.sort_unstable();
            let expected: Vec<usize> =
                bits.iter().enumerate().filter_map(|(j, &b)| b.then_some(j)).collect();
            prop_assert_eq!(all, expected);
        }
    }
}
