//! The backend engine: per-channel command scheduling (§V-B).
//!
//! Implements an FR-FCFS-flavoured policy over one query's fetch
//! batch: requests are grouped by (bank, row) so row-buffer hits are
//! served together, groups are served in arrival order, and every
//! command is placed at its earliest legal cycle by the
//! [`TimingChecker`] — making the emitted trace legal by construction.

use serde::{Deserialize, Serialize};

use sprint_energy::{Cycles, TimingParams};

use crate::{CommandTrace, KeyAddress, MemoryCommand, MemoryError, TimedCommand, TimingChecker};

/// The outcome of scheduling one batch of fetches on one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Cycle the first fetched vector is fully on the bus (the
    /// accelerator can start computing then).
    pub first_data: Option<Cycles>,
    /// Cycle the last data burst completes.
    pub finish: Cycles,
    /// Row-buffer hits (column accesses to an already-open row).
    pub row_hits: u64,
    /// Row-buffer misses (needed a precharge and/or activate).
    pub row_misses: u64,
    /// The issued commands, stamped with cycles.
    pub commands: CommandTrace,
}

/// Scheduler for a single memory channel.
///
/// # Example
///
/// ```
/// use sprint_energy::{Cycles, TimingParams};
/// use sprint_memory::{ChannelScheduler, KeyAddress, MemoryGeometry};
///
/// # fn main() -> Result<(), sprint_memory::MemoryError> {
/// let g = MemoryGeometry::default();
/// let mut sched = ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default())?;
/// let fetches = vec![
///     KeyAddress { key: 0, location: g.key_location(0)? },
///     KeyAddress { key: 16, location: g.key_location(16)? },
/// ];
/// let result = sched.schedule_fetches(&fetches, Cycles::ZERO, g.bursts_per_fetch)?;
/// assert_eq!(result.row_hits + result.row_misses, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChannelScheduler {
    channel: usize,
    checker: TimingChecker,
    timing: TimingParams,
    /// Monotonic issue pointer: the command bus takes one command per
    /// cycle.
    next_issue: Cycles,
}

impl ChannelScheduler {
    /// Creates a scheduler for `channel` with `banks` banks.
    ///
    /// # Errors
    ///
    /// Propagates [`TimingChecker::new`] validation errors.
    pub fn new(channel: usize, banks: usize, timing: TimingParams) -> Result<Self, MemoryError> {
        Ok(ChannelScheduler {
            channel,
            checker: TimingChecker::new(banks, timing)?,
            timing,
            next_issue: Cycles::ZERO,
        })
    }

    /// The channel index.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Restores the scheduler to its freshly-constructed state (cold
    /// timing checker, issue pointer at cycle zero) without
    /// revalidating or reallocating anything.
    pub fn reset_cold(&mut self) {
        self.checker.reset_cold();
        self.next_issue = Cycles::ZERO;
    }

    /// Read-only view of the timing state (open rows etc.).
    pub fn checker(&self) -> &TimingChecker {
        &self.checker
    }

    fn issue(
        &mut self,
        command: MemoryCommand,
        not_before: Cycles,
        trace: &mut CommandTrace,
    ) -> Result<Cycles, MemoryError> {
        let floor = self.next_issue.max(not_before);
        let at = self.checker.issue_at_earliest(command, floor)?;
        self.next_issue = at + Cycles::new(1);
        trace.push(TimedCommand {
            at,
            channel: self.channel,
            command,
        });
        Ok(at)
    }

    /// Performs the in-memory thresholding handshake on this channel:
    /// `CopyQ` beats for the query MSBs (the final one carrying the
    /// start bit) followed by `ReadP` for the pruning vector.
    ///
    /// Returns the cycle the pruning vector is available on chip.
    ///
    /// # Errors
    ///
    /// Propagates timing errors.
    pub fn schedule_thresholding(
        &mut self,
        copyq_beats: usize,
        not_before: Cycles,
    ) -> Result<(Cycles, CommandTrace), MemoryError> {
        let timing = self.timing;
        let mut trace = CommandTrace::new();
        let beats = copyq_beats.max(1);
        let mut last = not_before;
        for beat in 0..beats {
            let start = beat + 1 == beats;
            last = self.issue(MemoryCommand::CopyQ { start }, last, &mut trace)?;
        }
        let readp_at = self.issue(MemoryCommand::ReadP, last, &mut trace)?;
        // Pruning vector lands after the read-like data phase.
        let done = readp_at + timing.t_cl + timing.t_burst;
        Ok((done, trace))
    }

    /// Schedules one query's fetch batch, FR-FCFS style.
    ///
    /// # Errors
    ///
    /// Propagates timing/addressing errors.
    pub fn schedule_fetches(
        &mut self,
        fetches: &[KeyAddress],
        not_before: Cycles,
        bursts_per_fetch: usize,
    ) -> Result<ScheduleResult, MemoryError> {
        let timing = self.timing;
        let mut trace = CommandTrace::new();
        let mut row_hits = 0u64;
        let mut row_misses = 0u64;
        let mut first_data: Option<Cycles> = None;
        let mut finish = self.next_issue.max(not_before);

        // FR-FCFS-lite: group by (bank, row), serve groups in arrival
        // order so open-row requests batch together.
        let mut groups: Vec<((usize, usize), Vec<&KeyAddress>)> = Vec::new();
        for f in fetches {
            let key = (f.location.bank, f.location.row);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(f),
                None => groups.push((key, vec![f])),
            }
        }

        for ((bank, row), group) in groups {
            let open = self.checker.open_row(bank);
            if open != Some(row) {
                if open.is_some() {
                    self.issue(MemoryCommand::Precharge { bank }, not_before, &mut trace)?;
                }
                self.issue(
                    MemoryCommand::Activate { bank, row },
                    not_before,
                    &mut trace,
                )?;
                // The access that opened the row is the miss; the rest
                // of the group rides the now-open row buffer.
                row_misses += 1;
                row_hits += group.len() as u64 - 1;
            } else {
                row_hits += group.len() as u64;
            }
            for f in group {
                for burst in 0..bursts_per_fetch.max(1) {
                    let at = self.issue(
                        MemoryCommand::Read {
                            bank,
                            slot: f.location.slot * bursts_per_fetch.max(1) + burst,
                        },
                        not_before,
                        &mut trace,
                    )?;
                    let data_done = at + timing.t_cl + timing.t_burst;
                    finish = finish.max(data_done);
                    if burst + 1 == bursts_per_fetch.max(1) {
                        first_data = Some(first_data.map_or(data_done, |f0| f0.min(data_done)));
                    }
                }
            }
        }

        Ok(ScheduleResult {
            first_data,
            finish,
            row_hits,
            row_misses,
            commands: trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryGeometry;

    fn geometry() -> MemoryGeometry {
        MemoryGeometry::default()
    }

    fn addr(g: &MemoryGeometry, key: usize) -> KeyAddress {
        KeyAddress {
            key,
            location: g.key_location(key).unwrap(),
        }
    }

    /// Replays a trace through a fresh checker: proves legality.
    fn audit(trace: &CommandTrace, banks: usize) {
        let mut checker = TimingChecker::new(banks, TimingParams::default()).unwrap();
        for cmd in trace {
            checker
                .check_and_apply(cmd.command, cmd.at)
                .unwrap_or_else(|e| panic!("illegal command {cmd:?}: {e}"));
        }
    }

    #[test]
    fn same_row_fetches_hit_the_row_buffer() {
        let g = geometry();
        let mut sched =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        // Keys 0, 16, 32 are consecutive slots of one row on channel 0.
        let fetches: Vec<KeyAddress> = [0usize, 16, 32].iter().map(|&k| addr(&g, k)).collect();
        let r = sched
            .schedule_fetches(&fetches, Cycles::ZERO, g.bursts_per_fetch)
            .unwrap();
        assert_eq!(r.row_misses, 1, "one activate opens the row");
        assert_eq!(r.row_hits, 2, "the rest of the group rides the open row");
        // Re-fetch immediately: now the row is open.
        let r2 = sched
            .schedule_fetches(&fetches, r.finish, g.bursts_per_fetch)
            .unwrap();
        assert_eq!(r2.row_hits, 3);
        assert_eq!(r2.row_misses, 0);
        audit(&r.commands, g.banks_per_channel);
    }

    #[test]
    fn scheduled_traces_are_timing_legal() {
        let g = geometry();
        let mut sched =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        // A spread of keys across banks and rows of channel 0.
        let keys: Vec<usize> = (0..40).map(|i| i * 16 * 7).collect();
        let fetches: Vec<KeyAddress> = keys
            .iter()
            .map(|&k| addr(&g, k % g.capacity_vectors()))
            .collect();
        let mut full_trace = CommandTrace::new();
        let r = sched
            .schedule_fetches(&fetches, Cycles::ZERO, g.bursts_per_fetch)
            .unwrap();
        full_trace.extend(r.commands.iter().copied());
        audit(&full_trace, g.banks_per_channel);
        assert!(r.finish > Cycles::ZERO);
        assert!(r.first_data.unwrap() <= r.finish);
    }

    #[test]
    fn thresholding_handshake_orders_copyq_before_readp() {
        let g = geometry();
        let mut sched =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        let (done, trace) = sched.schedule_thresholding(2, Cycles::ZERO).unwrap();
        audit(&trace, g.banks_per_channel);
        assert_eq!(trace.len(), 3, "2 CopyQ + 1 ReadP");
        assert!(matches!(
            trace[0].command,
            MemoryCommand::CopyQ { start: false }
        ));
        assert!(matches!(
            trace[1].command,
            MemoryCommand::CopyQ { start: true }
        ));
        assert!(matches!(trace[2].command, MemoryCommand::ReadP));
        let t = TimingParams::default();
        assert!(trace[2].at >= trace[1].at + t.t_cl + t.t_ax_th);
        assert!(done > trace[2].at);
    }

    #[test]
    fn fetches_after_thresholding_remain_legal() {
        let g = geometry();
        let mut sched =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        let (done, mut trace) = sched.schedule_thresholding(2, Cycles::ZERO).unwrap();
        let fetches: Vec<KeyAddress> = [0usize, 16].iter().map(|&k| addr(&g, k)).collect();
        let r = sched
            .schedule_fetches(&fetches, done, g.bursts_per_fetch)
            .unwrap();
        trace.extend(r.commands.iter().copied());
        audit(&trace, g.banks_per_channel);
        assert!(r.first_data.unwrap() >= done);
    }

    #[test]
    fn empty_fetch_batch_is_a_noop() {
        let g = geometry();
        let mut sched =
            ChannelScheduler::new(3, g.banks_per_channel, TimingParams::default()).unwrap();
        let r = sched
            .schedule_fetches(&[], Cycles::new(10), g.bursts_per_fetch)
            .unwrap();
        assert!(r.commands.is_empty());
        assert_eq!(r.first_data, None);
        assert_eq!(r.row_hits + r.row_misses, 0);
    }

    #[test]
    fn bank_conflict_costs_more_than_row_hits() {
        let g = geometry();
        // Same bank, different rows: forces precharge/activate churn.
        let per_bank_keys = g.channels * g.vectors_per_row * g.banks_per_channel;
        let conflict_keys = [0usize, per_bank_keys, 2 * per_bank_keys];
        let hit_keys = [0usize, 16, 32];

        let mut s1 =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        let conflict: Vec<KeyAddress> = conflict_keys.iter().map(|&k| addr(&g, k)).collect();
        for a in &conflict {
            assert_eq!(a.location.bank, 0, "test setup: same bank");
        }
        let rc = s1
            .schedule_fetches(&conflict, Cycles::ZERO, g.bursts_per_fetch)
            .unwrap();

        let mut s2 =
            ChannelScheduler::new(0, g.banks_per_channel, TimingParams::default()).unwrap();
        let hits: Vec<KeyAddress> = hit_keys.iter().map(|&k| addr(&g, k)).collect();
        let rh = s2
            .schedule_fetches(&hits, Cycles::ZERO, g.bursts_per_fetch)
            .unwrap();

        assert!(
            rc.finish > rh.finish,
            "row conflicts ({}) must finish later than row hits ({})",
            rc.finish,
            rh.finish
        );
    }
}
