//! Data layout organization (§V-A).
//!
//! Keys are stored non-interleaved — one key vector per memory-mat
//! column — so that in-memory thresholding can process them in place.
//! Adjacent key vectors are distributed across **different channels**:
//! because unpruned indices cluster spatially (Fig. 2), striping
//! neighbours across channels turns a clustered fetch set into
//! balanced per-channel work. Within a channel, consecutive keys fill
//! the same row before moving on, preserving row-buffer locality.

use serde::{Deserialize, Serialize};

use crate::MemoryError;

/// Physical location of one key/value vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyLocation {
    /// Memory channel.
    pub channel: usize,
    /// Bank within the channel.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Vector slot within the row.
    pub slot: usize,
}

/// Channel/bank/row geometry of the ReRAM main memory.
///
/// The default mirrors Table I: 16 channels per CORELET, 64-bit bus,
/// with rows sized so 32 key/value vector pairs share one row buffer.
///
/// # Example
///
/// ```
/// use sprint_memory::MemoryGeometry;
///
/// let g = MemoryGeometry::default();
/// let a = g.key_location(0).unwrap();
/// let b = g.key_location(1).unwrap();
/// assert_ne!(a.channel, b.channel, "adjacent keys go to different channels");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryGeometry {
    /// Number of channels (Table I: 16 × 64-bit @ 1 GHz per CORELET).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Key/value vector pairs per row buffer.
    pub vectors_per_row: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Bytes fetched per unpruned key (K LSB nibbles + V vector; the
    /// MSBs arrive from the transposable arrays): 32 + 64 at d = 64.
    pub bytes_per_fetch: usize,
    /// Data-bus bursts needed per vector fetch.
    pub bursts_per_fetch: usize,
}

impl Default for MemoryGeometry {
    fn default() -> Self {
        MemoryGeometry {
            channels: 16,
            banks_per_channel: 8,
            vectors_per_row: 32,
            rows_per_bank: 4096,
            bytes_per_fetch: 96,
            bursts_per_fetch: 3,
        }
    }
}

impl MemoryGeometry {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::InvalidGeometry`] for any zero field.
    pub fn validate(&self) -> Result<(), MemoryError> {
        for (name, v) in [
            ("channels", self.channels),
            ("banks_per_channel", self.banks_per_channel),
            ("vectors_per_row", self.vectors_per_row),
            ("rows_per_bank", self.rows_per_bank),
            ("bytes_per_fetch", self.bytes_per_fetch),
            ("bursts_per_fetch", self.bursts_per_fetch),
        ] {
            if v == 0 {
                return Err(MemoryError::InvalidGeometry { name, value: v });
            }
        }
        Ok(())
    }

    /// Total key vectors addressable.
    pub fn capacity_vectors(&self) -> usize {
        self.channels * self.banks_per_channel * self.rows_per_bank * self.vectors_per_row
    }

    /// Maps key index `j` to its physical location.
    ///
    /// Striping: channel = `j mod channels`; within the channel, keys
    /// fill a row's vector slots before moving to the next bank, and
    /// banks rotate before rows advance (maximizing bank-level
    /// parallelism for clustered key sets).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOutOfRange`] beyond capacity.
    pub fn key_location(&self, j: usize) -> Result<KeyLocation, MemoryError> {
        if j >= self.capacity_vectors() {
            return Err(MemoryError::AddressOutOfRange {
                what: "key",
                index: j,
                bound: self.capacity_vectors(),
            });
        }
        let channel = j % self.channels;
        let within = j / self.channels;
        let slot = within % self.vectors_per_row;
        let after_row = within / self.vectors_per_row;
        let bank = after_row % self.banks_per_channel;
        let row = after_row / self.banks_per_channel;
        Ok(KeyLocation {
            channel,
            bank,
            row,
            slot,
        })
    }

    /// The key index stored at a location (inverse of
    /// [`MemoryGeometry::key_location`]).
    pub fn key_at(&self, loc: KeyLocation) -> usize {
        let after_row = loc.row * self.banks_per_channel + loc.bank;
        let within = after_row * self.vectors_per_row + loc.slot;
        within * self.channels + loc.channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_geometry_is_valid() {
        MemoryGeometry::default().validate().unwrap();
    }

    #[test]
    fn zero_fields_are_rejected() {
        let g = MemoryGeometry {
            channels: 0,
            ..Default::default()
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn adjacent_keys_stripe_across_channels() {
        let g = MemoryGeometry::default();
        for j in 0..64 {
            let loc = g.key_location(j).unwrap();
            assert_eq!(loc.channel, j % 16);
        }
    }

    #[test]
    fn same_channel_keys_share_rows_first() {
        let g = MemoryGeometry::default();
        // Keys 0, 16, 32, ... are consecutive on channel 0 and should
        // fill the same row before any bank/row change.
        let first = g.key_location(0).unwrap();
        for i in 1..g.vectors_per_row {
            let loc = g.key_location(i * g.channels).unwrap();
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.slot, i);
        }
        // The next one rolls to the next bank, same row index.
        let next = g.key_location(g.vectors_per_row * g.channels).unwrap();
        assert_eq!(next.bank, first.bank + 1);
        assert_eq!(next.row, first.row);
        assert_eq!(next.slot, 0);
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let g = MemoryGeometry {
            channels: 2,
            banks_per_channel: 2,
            vectors_per_row: 2,
            rows_per_bank: 2,
            bytes_per_fetch: 96,
            bursts_per_fetch: 3,
        };
        assert_eq!(g.capacity_vectors(), 16);
        assert!(g.key_location(15).is_ok());
        assert!(g.key_location(16).is_err());
    }

    proptest! {
        #[test]
        fn prop_location_round_trips(j in 0usize..100_000) {
            let g = MemoryGeometry::default();
            let loc = g.key_location(j).unwrap();
            prop_assert_eq!(g.key_at(loc), j);
            prop_assert!(loc.channel < g.channels);
            prop_assert!(loc.bank < g.banks_per_channel);
            prop_assert!(loc.slot < g.vectors_per_row);
            prop_assert!(loc.row < g.rows_per_bank);
        }

        #[test]
        fn prop_locations_are_injective(a in 0usize..50_000, b in 0usize..50_000) {
            let g = MemoryGeometry::default();
            if a != b {
                prop_assert_ne!(
                    g.key_location(a).unwrap(),
                    g.key_location(b).unwrap()
                );
            }
        }
    }
}
