//! The spatial-locality detection engine (§V-C, Eqs. 4–5).
//!
//! Sits in the memory-controller frontend. Given the binary pruning
//! vectors of the previous (`Pᵗ⁻¹`) and current (`Pᵗ`) queries
//! (bit = 1 means pruned), it splits the current unpruned set into:
//!
//! * **memory requests** (Eq. 4): `Pᵗ⁻¹ ∧ ¬Pᵗ` — needed now, not on
//!   chip → the MRG turns these into read requests;
//! * **spatial-locality hits** (Eq. 5): `¬Pᵗ⁻¹ ∧ ¬Pᵗ` — needed now and
//!   already resident → the KIG bootstraps score computation on them
//!   immediately.

use serde::{Deserialize, Serialize};

use crate::MemoryError;

/// The two output vectors of the SLD engine for one query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SldSplit {
    /// Eq. 4: keys to fetch from main memory (`true` = fetch).
    pub memory_requests: Vec<bool>,
    /// Eq. 5: keys already in the on-chip K buffer (`true` = reuse).
    pub locality_hits: Vec<bool>,
}

impl SldSplit {
    /// Indices of keys to fetch.
    pub fn request_indices(&self) -> Vec<usize> {
        self.memory_requests
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Indices of keys to reuse from on-chip buffers.
    pub fn hit_indices(&self) -> Vec<usize> {
        self.locality_hits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Number of keys to fetch.
    pub fn request_count(&self) -> usize {
        self.memory_requests.iter().filter(|&&b| b).count()
    }

    /// Number of keys reused.
    pub fn hit_count(&self) -> usize {
        self.locality_hits.iter().filter(|&&b| b).count()
    }
}

/// The SLD engine: remembers the last pruning vector and splits each
/// new one.
///
/// # Example
///
/// ```
/// use sprint_memory::SldEngine;
///
/// let mut sld = SldEngine::new();
/// // Query 0 keeps keys {0, 2}: both are cold fetches.
/// let s0 = sld.process(&[false, true, false, true]).unwrap();
/// assert_eq!(s0.request_indices(), vec![0, 2]);
/// // Query 1 keeps {0, 3}: key 0 is a locality hit, key 3 a fetch.
/// let s1 = sld.process(&[false, true, true, false]).unwrap();
/// assert_eq!(s1.hit_indices(), vec![0]);
/// assert_eq!(s1.request_indices(), vec![3]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SldEngine {
    last: Option<Vec<bool>>,
}

impl SldEngine {
    /// Creates an engine with no history (the first query fetches its
    /// whole unpruned set).
    pub fn new() -> Self {
        SldEngine::default()
    }

    /// Clears the history (e.g. at a new attention head, whose K
    /// buffer contents are unrelated).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Splits the pruning vector of the current query.
    ///
    /// `pruned[j] == true` means key `j` was pruned in memory (the
    /// paper's '1' encoding). Updates the stored history.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::LengthMismatch`] if the vector length
    /// changes between queries.
    pub fn process(&mut self, pruned: &[bool]) -> Result<SldSplit, MemoryError> {
        if let Some(last) = &self.last {
            if last.len() != pruned.len() {
                return Err(MemoryError::LengthMismatch {
                    what: "pruning vector",
                    expected: last.len(),
                    found: pruned.len(),
                });
            }
        }
        let split = match &self.last {
            None => SldSplit {
                memory_requests: pruned.iter().map(|&p| !p).collect(),
                locality_hits: vec![false; pruned.len()],
            },
            Some(last) => SldSplit {
                // Eq. 4: P(t-1) AND NOT P(t)
                memory_requests: last
                    .iter()
                    .zip(pruned)
                    .map(|(&prev, &cur)| prev && !cur)
                    .collect(),
                // Eq. 5: NOT P(t-1) AND NOT P(t)
                locality_hits: last
                    .iter()
                    .zip(pruned)
                    .map(|(&prev, &cur)| !prev && !cur)
                    .collect(),
            },
        };
        self.last = Some(pruned.to_vec());
        Ok(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_query_is_all_cold_fetches() {
        let mut sld = SldEngine::new();
        let s = sld.process(&[false, false, true]).unwrap();
        assert_eq!(s.request_count(), 2);
        assert_eq!(s.hit_count(), 0);
    }

    #[test]
    fn reset_forgets_history() {
        let mut sld = SldEngine::new();
        sld.process(&[false, false]).unwrap();
        sld.reset();
        let s = sld.process(&[false, false]).unwrap();
        assert_eq!(s.request_count(), 2, "post-reset queries are cold");
    }

    #[test]
    fn length_change_is_rejected() {
        let mut sld = SldEngine::new();
        sld.process(&[false, true]).unwrap();
        assert!(sld.process(&[false, true, true]).is_err());
    }

    #[test]
    fn paper_example_splits_correctly() {
        // Fig. 2 narrative: query "The" keeps K{2,4,5,6,11,13}; the
        // adjacent query "more" additionally needs "appear" and "in"
        // while reusing the rest.
        let s = 16;
        let mut prev = vec![true; s];
        for j in [2, 4, 5, 6, 11, 13] {
            prev[j] = false;
        }
        let mut cur = prev.clone();
        cur[7] = false; // "appear"
        cur[8] = false; // "in"
        cur[2] = true; // one key no longer needed
        let mut sld = SldEngine::new();
        sld.process(&prev).unwrap();
        let split = sld.process(&cur).unwrap();
        assert_eq!(split.request_indices(), vec![7, 8]);
        assert_eq!(split.hit_indices(), vec![4, 5, 6, 11, 13]);
    }

    proptest! {
        /// DESIGN.md invariant 4: requests and hits partition the
        /// current unpruned set.
        #[test]
        fn prop_split_partitions_unpruned(
            prev in proptest::collection::vec(proptest::bool::ANY, 1..64),
            cur_bits in proptest::collection::vec(proptest::bool::ANY, 1..64),
        ) {
            let n = prev.len().min(cur_bits.len());
            let prev = &prev[..n];
            let cur = &cur_bits[..n];
            let mut sld = SldEngine::new();
            sld.process(prev).unwrap();
            let split = sld.process(cur).unwrap();
            for (j, ((&req, &hit), &c)) in split
                .memory_requests
                .iter()
                .zip(&split.locality_hits)
                .zip(cur)
                .enumerate()
            {
                let kept = !c;
                prop_assert!(!(req && hit), "disjoint at {j}");
                prop_assert_eq!(req || hit, kept, "union is the kept set at {}", j);
            }
        }

        /// Identical adjacent pruning vectors need zero fetches.
        #[test]
        fn prop_identical_vectors_are_all_hits(
            bits in proptest::collection::vec(proptest::bool::ANY, 1..64),
        ) {
            let mut sld = SldEngine::new();
            sld.process(&bits).unwrap();
            let split = sld.process(&bits).unwrap();
            prop_assert_eq!(split.request_count(), 0);
            let kept = bits.iter().filter(|&&b| !b).count();
            prop_assert_eq!(split.hit_count(), kept);
        }
    }
}
