//! The SPRINT memory subsystem (§V).
//!
//! Models the off-chip ReRAM main memory side of SPRINT:
//!
//! * [`MemoryGeometry`] — channel/bank/row layout with the paper's
//!   non-interleaved key organization: each key vector occupies one
//!   memory-mat column, and **adjacent key vectors are distributed
//!   across different channels** for bandwidth under spatially-local
//!   fetch patterns;
//! * [`MemoryCommand`] — conventional ACT/PRE/RD/WR plus the paper's
//!   two new commands, [`MemoryCommand::CopyQ`] (ship query MSBs to the
//!   in-memory query buffer; sets a start bit to trigger thresholding)
//!   and [`MemoryCommand::ReadP`] (collect the binary pruning vector);
//! * [`TimingChecker`] — validates command streams against
//!   tRCD/tRP/tCL/tRRD/tFAW and the new `tAxTh` constraint between a
//!   triggering `CopyQ` and the earliest `ReadP`;
//! * [`SldEngine`] — spatial-locality detection (Eqs. 4–5), splitting
//!   each pruning vector into *memory requests* (kept, not on chip)
//!   and *locality hits* (kept, already on chip);
//! * [`MemoryRequestGenerator`] / [`KeyIndexGenerator`] — the per-
//!   channel MRG/KIG engines with their base register + shared
//!   up-counter address generation;
//! * [`ChannelScheduler`] and [`MemoryController`] — an FR-FCFS-style
//!   backend and the frontend orchestration of the
//!   threshold-fetch-compute flow, with cycle and energy accounting.
//!
//! # Example
//!
//! ```
//! use sprint_memory::{MemoryController, MemoryGeometry};
//! use sprint_energy::TimingParams;
//!
//! # fn main() -> Result<(), sprint_memory::MemoryError> {
//! let mut mc = MemoryController::new(MemoryGeometry::default(), TimingParams::default())?;
//! // Query 0 keeps keys 0 and 5; everything is a cold miss.
//! let mut pruned = vec![true; 8];
//! pruned[0] = false;
//! pruned[5] = false;
//! let outcome = mc.process_query(&pruned)?;
//! assert_eq!(outcome.fetched_keys, vec![0, 5]);
//! assert!(outcome.reused_keys.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod command;
mod controller;
mod engines;
mod error;
mod layout;
mod scheduler;
mod sld;
mod timing;

pub use command::{CommandTrace, MemoryCommand, TimedCommand};
pub use controller::{MemoryController, MemoryStats, QueryOutcome};
pub use engines::{KeyAddress, KeyIndexGenerator, MemoryRequestGenerator};
pub use error::MemoryError;
pub use layout::{KeyLocation, MemoryGeometry};
pub use scheduler::{ChannelScheduler, ScheduleResult};
pub use sld::{SldEngine, SldSplit};
pub use timing::TimingChecker;
