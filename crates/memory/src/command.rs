//! Memory commands, including the two SPRINT additions (§V-C).

use serde::{Deserialize, Serialize};

use sprint_energy::Cycles;

/// One memory command as issued by the backend engine.
///
/// `CopyQ` and `ReadP` are the paper's additions: `CopyQ` moves query
/// MSB elements into the in-memory query buffer (with a start bit on
/// the final beat to trigger thresholding) and `ReadP` reads the
/// resulting binary pruning vector out of the bank row buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryCommand {
    /// Activate `row` in `bank` (moves the row into the row buffer).
    Activate {
        /// Target bank.
        bank: usize,
        /// Target row.
        row: usize,
    },
    /// Precharge `bank` (closes its open row).
    Precharge {
        /// Target bank.
        bank: usize,
    },
    /// Column read from the open row of `bank`.
    Read {
        /// Target bank.
        bank: usize,
        /// Vector slot within the open row.
        slot: usize,
    },
    /// Column write into the open row of `bank`.
    Write {
        /// Target bank.
        bank: usize,
        /// Vector slot within the open row.
        slot: usize,
    },
    /// Copy a beat of query MSBs into the in-memory query buffer.
    /// `start` is set on the final beat and triggers thresholding.
    /// Works against an isolated buffer: needs neither tRP nor tRCD,
    /// but occupies the data bus for tCL.
    CopyQ {
        /// Whether this beat starts the in-memory computation.
        start: bool,
    },
    /// Read the binary pruning vector produced by in-memory
    /// thresholding. Follows read-like timing, plus the tAxTh gap
    /// after the triggering `CopyQ`.
    ReadP,
}

impl MemoryCommand {
    /// Whether this command occupies the shared data bus.
    pub fn uses_data_bus(&self) -> bool {
        matches!(
            self,
            MemoryCommand::Read { .. }
                | MemoryCommand::Write { .. }
                | MemoryCommand::CopyQ { .. }
                | MemoryCommand::ReadP
        )
    }

    /// Whether this command is one of SPRINT's additions.
    pub fn is_sprint_extension(&self) -> bool {
        matches!(self, MemoryCommand::CopyQ { .. } | MemoryCommand::ReadP)
    }
}

/// A command stamped with its issue cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedCommand {
    /// Issue cycle.
    pub at: Cycles,
    /// Channel the command was issued on.
    pub channel: usize,
    /// The command.
    pub command: MemoryCommand,
}

/// An ordered command trace (ascending per channel).
pub type CommandTrace = Vec<TimedCommand>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_usage_classification() {
        assert!(MemoryCommand::Read { bank: 0, slot: 0 }.uses_data_bus());
        assert!(MemoryCommand::CopyQ { start: true }.uses_data_bus());
        assert!(MemoryCommand::ReadP.uses_data_bus());
        assert!(!MemoryCommand::Activate { bank: 0, row: 0 }.uses_data_bus());
        assert!(!MemoryCommand::Precharge { bank: 0 }.uses_data_bus());
    }

    #[test]
    fn sprint_extensions_are_flagged() {
        assert!(MemoryCommand::CopyQ { start: false }.is_sprint_extension());
        assert!(MemoryCommand::ReadP.is_sprint_extension());
        assert!(!MemoryCommand::Read { bank: 0, slot: 0 }.is_sprint_extension());
    }
}
