//! The crate error type.

use std::error::Error;
use std::fmt;

use sprint_energy::Cycles;

use crate::MemoryCommand;

/// Errors produced by the memory subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryError {
    /// Geometry parameter out of range.
    InvalidGeometry {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
    },
    /// Timing parameter set failed validation.
    InvalidTiming(String),
    /// A command was issued before its earliest legal cycle.
    TimingViolation {
        /// The offending command.
        command: MemoryCommand,
        /// Cycle it was issued at.
        issued: Cycles,
        /// Earliest legal cycle.
        earliest: Cycles,
        /// Which constraint was violated.
        constraint: &'static str,
    },
    /// A command referenced a bank/row/column outside the geometry.
    AddressOutOfRange {
        /// What was addressed.
        what: &'static str,
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
    /// A column access was issued to a bank with no (or another) open row.
    RowNotOpen {
        /// Bank index.
        bank: usize,
    },
    /// `ReadP` issued with no in-flight thresholding operation.
    NoThresholdingInFlight,
    /// Vector length mismatch (pruning vectors across queries).
    LengthMismatch {
        /// What was compared.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::InvalidGeometry { name, value } => {
                write!(f, "invalid memory geometry: {name} = {value}")
            }
            MemoryError::InvalidTiming(msg) => write!(f, "invalid timing parameters: {msg}"),
            MemoryError::TimingViolation {
                command,
                issued,
                earliest,
                constraint,
            } => write!(
                f,
                "{command:?} issued at {issued} before earliest legal {earliest} ({constraint})"
            ),
            MemoryError::AddressOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            MemoryError::RowNotOpen { bank } => {
                write!(f, "column access to bank {bank} with no matching open row")
            }
            MemoryError::NoThresholdingInFlight => {
                write!(f, "ReadP issued with no in-flight in-memory thresholding")
            }
            MemoryError::LengthMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} has length {found}, expected {expected}"),
        }
    }
}

impl Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MemoryError>();
    }

    #[test]
    fn display_names_the_constraint() {
        let e = MemoryError::TimingViolation {
            command: MemoryCommand::ReadP,
            issued: Cycles::new(3),
            earliest: Cycles::new(11),
            constraint: "tAxTh",
        };
        assert!(e.to_string().contains("tAxTh"));
    }
}
