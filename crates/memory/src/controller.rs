//! The SPRINT memory controller frontend (§V-B/C).
//!
//! Orchestrates, per query: the in-memory thresholding handshake
//! (`CopyQ`/`ReadP`), the SLD split of the returned pruning vector,
//! per-channel MRG address generation, and backend scheduling of the
//! selective fetches. Accumulates the statistics the §VII performance
//! simulator consumes.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use sprint_energy::{Cycles, TimingParams};

use crate::{
    ChannelScheduler, CommandTrace, MemoryError, MemoryGeometry, MemoryRequestGenerator, SldEngine,
};

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Queries processed (thresholding handshakes).
    pub queries: u64,
    /// Key/value vectors fetched from main memory.
    pub fetched_vectors: u64,
    /// Vectors reused from on-chip buffers via spatial locality.
    pub reused_vectors: u64,
    /// Bytes moved over the memory channels.
    pub bytes_fetched: u64,
    /// Row-buffer hits across all channels.
    pub row_hits: u64,
    /// Row-buffer misses across all channels.
    pub row_misses: u64,
    /// `CopyQ` commands issued.
    pub copyq_commands: u64,
    /// `ReadP` commands issued.
    pub readp_commands: u64,
    /// Cycle the controller last went idle.
    pub busy_until: Cycles,
}

/// Per-query outcome of the threshold-and-fetch flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Keys fetched from main memory (ascending).
    pub fetched_keys: Vec<usize>,
    /// Keys reused from the on-chip K buffer (ascending).
    pub reused_keys: Vec<usize>,
    /// Cycle the pruning vector arrived on chip (compute on reused
    /// keys can bootstrap here — the KIG path).
    pub pruning_ready: Cycles,
    /// Cycle the first fetched vector arrived (compute on fetched keys
    /// can start).
    pub first_data: Option<Cycles>,
    /// Cycle every fetch completed.
    pub finish: Cycles,
    /// The full command trace (only when trace recording is enabled).
    pub commands: Option<CommandTrace>,
}

/// The memory controller: one SLD frontend plus one scheduler and MRG
/// per channel.
///
/// # Example
///
/// ```
/// use sprint_memory::{MemoryController, MemoryGeometry};
/// use sprint_energy::TimingParams;
///
/// # fn main() -> Result<(), sprint_memory::MemoryError> {
/// let mut mc = MemoryController::new(MemoryGeometry::default(), TimingParams::default())?;
/// let o1 = mc.process_query(&[false, false, true, true])?;
/// let o2 = mc.process_query(&[false, true, false, true])?;
/// assert_eq!(o2.reused_keys, vec![0], "key 0 stays on chip");
/// assert_eq!(o2.fetched_keys, vec![2]);
/// # drop(o1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryController {
    geometry: MemoryGeometry,
    sld: SldEngine,
    schedulers: Vec<ChannelScheduler>,
    mrgs: Vec<MemoryRequestGenerator>,
    /// Keys currently resident on chip (the per-CORELET look-up
    /// tables of §VI). The SLD vector is the fast single-query-window
    /// approximation; this table catches keys that leave the kept set
    /// for a query and return later, so they are not refetched.
    resident: HashSet<usize>,
    stats: MemoryStats,
    now: Cycles,
    record_traces: bool,
    /// CopyQ beats per query (query MSBs over the bus).
    copyq_beats: usize,
}

impl MemoryController {
    /// Creates a controller over the given geometry and timing.
    ///
    /// # Errors
    ///
    /// Propagates geometry/timing validation errors.
    pub fn new(geometry: MemoryGeometry, timing: TimingParams) -> Result<Self, MemoryError> {
        geometry.validate()?;
        let mut schedulers = Vec::with_capacity(geometry.channels);
        let mut mrgs = Vec::with_capacity(geometry.channels);
        for ch in 0..geometry.channels {
            schedulers.push(ChannelScheduler::new(
                ch,
                geometry.banks_per_channel,
                timing,
            )?);
            mrgs.push(MemoryRequestGenerator::new(ch, geometry)?);
        }
        Ok(MemoryController {
            geometry,
            sld: SldEngine::new(),
            schedulers,
            mrgs,
            resident: HashSet::new(),
            stats: MemoryStats::default(),
            now: Cycles::ZERO,
            record_traces: false,
            copyq_beats: 2,
        })
    }

    /// Enables per-query command-trace recording (tests, debugging).
    pub fn set_trace_recording(&mut self, on: bool) {
        self.record_traces = on;
    }

    /// The geometry in use.
    pub fn geometry(&self) -> MemoryGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets the SLD history and residency tables (new head: on-chip
    /// buffers invalid).
    pub fn start_new_head(&mut self) {
        self.sld.reset();
        self.resident.clear();
    }

    /// Restores the controller to its freshly-constructed state —
    /// cold schedulers, empty SLD/residency tables, zeroed statistics
    /// and cycle counters — reusing every allocation. A controller
    /// reset this way behaves bit-identically to a new one over the
    /// same geometry and timing; the serving engine uses this to run
    /// an unbounded stream of heads through one controller, and a
    /// decode session calls it before each step so per-step statistics
    /// match a fresh-controller oracle exactly.
    pub fn reset_cold(&mut self) {
        for sched in &mut self.schedulers {
            sched.reset_cold();
        }
        self.sld.reset();
        self.resident.clear();
        self.stats = MemoryStats::default();
        self.now = Cycles::ZERO;
    }

    /// Runs the full per-query flow: thresholding handshake, SLD
    /// split, MRG address generation and backend fetch scheduling.
    ///
    /// `pruned[j] == true` means key `j` was pruned by the in-memory
    /// comparators.
    ///
    /// # Errors
    ///
    /// Propagates SLD length, addressing and timing errors.
    pub fn process_query(&mut self, pruned: &[bool]) -> Result<QueryOutcome, MemoryError> {
        // 1. Thresholding handshake on every channel holding K MSBs.
        let mut trace = self.record_traces.then(CommandTrace::new);
        let mut pruning_ready = self.now;
        for sched in &mut self.schedulers {
            let (done, t) = sched.schedule_thresholding(self.copyq_beats, self.now)?;
            pruning_ready = pruning_ready.max(done);
            self.stats.copyq_commands += self.copyq_beats as u64;
            self.stats.readp_commands += 1;
            if let Some(tr) = trace.as_mut() {
                tr.extend(t);
            }
        }
        self.stats.queries += 1;

        // 2. Frontend split, then residency filtering: the SLD vector
        // flags keys absent from the *previous* kept set; the look-up
        // tables suppress requests for keys still resident from older
        // queries.
        let mut split = self.sld.process(pruned)?;
        for (j, req) in split.memory_requests.iter_mut().enumerate() {
            if *req && self.resident.contains(&j) {
                *req = false;
                split.locality_hits[j] = true;
            }
        }
        for (j, &req) in split.memory_requests.iter().enumerate() {
            if req {
                self.resident.insert(j);
            }
        }

        // 3. Per-channel MRG + backend scheduling.
        let mut first_data: Option<Cycles> = None;
        let mut finish = pruning_ready;
        for (sched, mrg) in self.schedulers.iter_mut().zip(&self.mrgs) {
            let fetches = mrg.generate(&split.memory_requests);
            if fetches.is_empty() {
                continue;
            }
            let r =
                sched.schedule_fetches(&fetches, pruning_ready, self.geometry.bursts_per_fetch)?;
            self.stats.fetched_vectors += fetches.len() as u64;
            self.stats.bytes_fetched += (fetches.len() * self.geometry.bytes_per_fetch) as u64;
            self.stats.row_hits += r.row_hits;
            self.stats.row_misses += r.row_misses;
            finish = finish.max(r.finish);
            if let Some(fd) = r.first_data {
                first_data = Some(first_data.map_or(fd, |x| x.min(fd)));
            }
            if let Some(tr) = trace.as_mut() {
                tr.extend(r.commands);
            }
        }

        let reused_keys = split.hit_indices();
        self.stats.reused_vectors += reused_keys.len() as u64;
        self.now = finish;
        self.stats.busy_until = finish;

        Ok(QueryOutcome {
            fetched_keys: split.request_indices(),
            reused_keys,
            pruning_ready,
            first_data,
            finish,
            commands: trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryCommand, TimingChecker};

    fn controller() -> MemoryController {
        MemoryController::new(MemoryGeometry::default(), TimingParams::default()).unwrap()
    }

    fn keep(n: usize, kept: &[usize]) -> Vec<bool> {
        let mut v = vec![true; n];
        for &j in kept {
            v[j] = false;
        }
        v
    }

    #[test]
    fn reset_cold_is_bit_identical_to_fresh_construction() {
        let mut reused = controller();
        // Dirty the controller: queries, open rows, advanced cycles.
        for _ in 0..3 {
            reused.process_query(&keep(64, &[0, 5, 9, 33, 63])).unwrap();
        }
        reused.reset_cold();
        let mut fresh = controller();
        for kept in [vec![0usize, 3, 17, 31], vec![3, 4, 17], vec![4, 30]] {
            let a = reused.process_query(&keep(32, &kept)).unwrap();
            let b = fresh.process_query(&keep(32, &kept)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn cold_query_fetches_entire_kept_set() {
        let mut mc = controller();
        let o = mc.process_query(&keep(32, &[0, 3, 17, 31])).unwrap();
        assert_eq!(o.fetched_keys, vec![0, 3, 17, 31]);
        assert!(o.reused_keys.is_empty());
        assert!(o.first_data.unwrap() >= o.pruning_ready);
        assert!(o.finish >= o.first_data.unwrap());
    }

    #[test]
    fn adjacent_query_reuses_overlap() {
        let mut mc = controller();
        mc.process_query(&keep(32, &[0, 3, 17, 31])).unwrap();
        let o = mc.process_query(&keep(32, &[0, 3, 18, 31])).unwrap();
        assert_eq!(o.fetched_keys, vec![18]);
        assert_eq!(o.reused_keys, vec![0, 3, 31]);
        let stats = mc.stats();
        assert_eq!(stats.fetched_vectors, 5);
        assert_eq!(stats.reused_vectors, 3);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn fully_overlapping_query_fetches_nothing() {
        let mut mc = controller();
        let mask = keep(16, &[1, 2, 3]);
        mc.process_query(&mask).unwrap();
        let before = mc.stats().bytes_fetched;
        let o = mc.process_query(&mask).unwrap();
        assert!(o.fetched_keys.is_empty());
        assert_eq!(o.first_data, None);
        assert_eq!(mc.stats().bytes_fetched, before, "no new bytes moved");
        // Still pays the thresholding handshake.
        assert!(o.finish >= o.pruning_ready);
    }

    #[test]
    fn new_head_resets_locality() {
        let mut mc = controller();
        let mask = keep(16, &[1, 2]);
        mc.process_query(&mask).unwrap();
        mc.start_new_head();
        let o = mc.process_query(&mask).unwrap();
        assert_eq!(o.fetched_keys, vec![1, 2], "cold again after head switch");
    }

    #[test]
    fn bytes_accounting_matches_fetch_count() {
        let mut mc = controller();
        let g = mc.geometry();
        mc.process_query(&keep(64, &[0, 1, 2, 3, 4])).unwrap();
        assert_eq!(mc.stats().bytes_fetched, 5 * g.bytes_per_fetch as u64);
    }

    #[test]
    fn recorded_traces_are_globally_legal_per_channel() {
        let mut mc = controller();
        mc.set_trace_recording(true);
        let o1 = mc
            .process_query(&keep(64, &(0..24).collect::<Vec<_>>()))
            .unwrap();
        let o2 = mc
            .process_query(&keep(64, &(8..40).collect::<Vec<_>>()))
            .unwrap();
        // Replay both traces in per-channel order through fresh checkers.
        let g = mc.geometry();
        for ch in 0..g.channels {
            let mut checker =
                TimingChecker::new(g.banks_per_channel, TimingParams::default()).unwrap();
            let mut cmds: Vec<_> = o1
                .commands
                .as_ref()
                .unwrap()
                .iter()
                .chain(o2.commands.as_ref().unwrap().iter())
                .filter(|c| c.channel == ch)
                .copied()
                .collect();
            cmds.sort_by_key(|c| c.at);
            for c in &cmds {
                checker
                    .check_and_apply(c.command, c.at)
                    .unwrap_or_else(|e| panic!("channel {ch}: {e}"));
            }
        }
    }

    #[test]
    fn sprint_commands_are_present_in_trace() {
        let mut mc = controller();
        mc.set_trace_recording(true);
        let o = mc.process_query(&keep(16, &[0])).unwrap();
        let trace = o.commands.unwrap();
        let copyq = trace
            .iter()
            .filter(|c| matches!(c.command, MemoryCommand::CopyQ { .. }))
            .count();
        let readp = trace
            .iter()
            .filter(|c| matches!(c.command, MemoryCommand::ReadP))
            .count();
        let g = mc.geometry();
        assert_eq!(copyq, 2 * g.channels);
        assert_eq!(readp, g.channels);
    }

    #[test]
    fn query_time_advances_monotonically() {
        let mut mc = controller();
        let o1 = mc.process_query(&keep(32, &[0, 1, 2])).unwrap();
        let o2 = mc.process_query(&keep(32, &[3, 4, 5])).unwrap();
        assert!(o2.pruning_ready > o1.finish.saturating_sub(sprint_energy::Cycles::new(1)));
        assert!(o2.finish >= o1.finish);
    }

    #[test]
    fn length_change_mid_head_errors() {
        let mut mc = controller();
        mc.process_query(&keep(16, &[0])).unwrap();
        assert!(mc.process_query(&keep(17, &[0])).is_err());
    }
}
