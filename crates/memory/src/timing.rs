//! Per-channel timing legality (§V-C "Memory commands and timing
//! considerations").
//!
//! The checker doubles as a generator: the scheduler asks it for the
//! earliest legal issue cycle of each command, so generated traces are
//! legal by construction, and tests replay traces through a fresh
//! checker to prove it (DESIGN.md invariant 5).

use std::collections::VecDeque;

use sprint_energy::{Cycles, TimingParams};

use crate::{MemoryCommand, MemoryError};

/// How many activations may fall within one `tFAW` window.
const FAW_ACTIVATIONS: usize = 4;

#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<usize>,
    /// Earliest cycle a column access may follow the last activate.
    rcd_ready: Cycles,
    /// Earliest cycle an activate may follow the last precharge.
    act_ready: Cycles,
}

/// Tracks one channel's timing state and validates or places commands.
///
/// # Example
///
/// ```
/// use sprint_energy::{Cycles, TimingParams};
/// use sprint_memory::{MemoryCommand, TimingChecker};
///
/// # fn main() -> Result<(), sprint_memory::MemoryError> {
/// let mut tc = TimingChecker::new(8, TimingParams::default())?;
/// let act = MemoryCommand::Activate { bank: 0, row: 3 };
/// let at = tc.issue_at_earliest(act, Cycles::ZERO)?;
/// let rd = MemoryCommand::Read { bank: 0, slot: 0 };
/// let rd_at = tc.issue_at_earliest(rd, at)?;
/// assert!(rd_at >= at + TimingParams::default().t_rcd);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingChecker {
    timing: TimingParams,
    banks: Vec<BankState>,
    /// Issue cycles of recent activations (for tRRD / tFAW).
    act_history: VecDeque<Cycles>,
    /// First cycle at which the shared data bus is free again.
    bus_free_at: Cycles,
    /// Pending in-memory thresholding completion, if any.
    threshold_ready: Option<Cycles>,
    /// Issue cycle of the last command (monotonicity check).
    last_issue: Cycles,
}

impl TimingChecker {
    /// Creates a checker for a channel with `banks` banks.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::InvalidTiming`] for invalid parameters or
    /// [`MemoryError::InvalidGeometry`] for zero banks.
    pub fn new(banks: usize, timing: TimingParams) -> Result<Self, MemoryError> {
        if banks == 0 {
            return Err(MemoryError::InvalidGeometry {
                name: "banks",
                value: 0,
            });
        }
        timing.validate().map_err(MemoryError::InvalidTiming)?;
        Ok(TimingChecker {
            timing,
            banks: vec![BankState::default(); banks],
            act_history: VecDeque::new(),
            bus_free_at: Cycles::ZERO,
            threshold_ready: None,
            last_issue: Cycles::ZERO,
        })
    }

    /// Restores the checker to its freshly-constructed state (all rows
    /// closed, bus free, no thresholding in flight, cycle counters at
    /// zero), reusing the bank-state allocation. Behaviour afterwards
    /// is bit-identical to a new checker over the same parameters.
    pub fn reset_cold(&mut self) {
        self.banks.fill(BankState::default());
        self.act_history.clear();
        self.bus_free_at = Cycles::ZERO;
        self.threshold_ready = None;
        self.last_issue = Cycles::ZERO;
    }

    /// The open row of `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<usize> {
        self.banks.get(bank).and_then(|b| b.open_row)
    }

    /// Earliest legal issue cycle for `command`, not before `not_before`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::AddressOutOfRange`] for a bad bank,
    /// [`MemoryError::RowNotOpen`] for a column access to a closed or
    /// mismatched row, and [`MemoryError::NoThresholdingInFlight`] for
    /// a `ReadP` with nothing pending.
    pub fn earliest(
        &self,
        command: MemoryCommand,
        not_before: Cycles,
    ) -> Result<Cycles, MemoryError> {
        let t = self.timing;
        match command {
            MemoryCommand::Activate { bank, .. } => {
                let b = self.bank(bank)?;
                let mut at = not_before.max(b.act_ready);
                if let Some(&last) = self.act_history.back() {
                    at = at.max(last + t.t_rrd);
                }
                if self.act_history.len() >= FAW_ACTIVATIONS {
                    let fourth_last = self.act_history[self.act_history.len() - FAW_ACTIVATIONS];
                    at = at.max(fourth_last + t.t_faw);
                }
                Ok(at)
            }
            MemoryCommand::Precharge { bank } => {
                self.bank(bank)?;
                Ok(not_before)
            }
            MemoryCommand::Read { bank, .. } | MemoryCommand::Write { bank, .. } => {
                let b = self.bank(bank)?;
                if b.open_row.is_none() {
                    return Err(MemoryError::RowNotOpen { bank });
                }
                // Data phase [at + tCL, at + tCL + burst) must not
                // overlap the bus.
                let bus_gate = self.bus_free_at.saturating_sub(t.t_cl);
                Ok(not_before.max(b.rcd_ready).max(bus_gate))
            }
            MemoryCommand::CopyQ { .. } => {
                // Occupies the bus immediately for tCL; no row timing.
                Ok(not_before.max(self.bus_free_at))
            }
            MemoryCommand::ReadP => {
                let ready = self
                    .threshold_ready
                    .ok_or(MemoryError::NoThresholdingInFlight)?;
                let bus_gate = self.bus_free_at.saturating_sub(t.t_cl);
                Ok(not_before.max(ready).max(bus_gate))
            }
        }
    }

    /// Issues `command` at the earliest legal cycle ≥ `not_before`,
    /// mutating the channel state, and returns the chosen cycle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimingChecker::earliest`].
    pub fn issue_at_earliest(
        &mut self,
        command: MemoryCommand,
        not_before: Cycles,
    ) -> Result<Cycles, MemoryError> {
        let at = self.earliest(command, not_before)?;
        self.apply(command, at)?;
        Ok(at)
    }

    /// Validates that issuing `command` at `at` is legal, then applies
    /// it. Used to replay and audit externally produced traces.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::TimingViolation`] when `at` precedes the
    /// earliest legal cycle, plus the addressing errors of
    /// [`TimingChecker::earliest`].
    pub fn check_and_apply(
        &mut self,
        command: MemoryCommand,
        at: Cycles,
    ) -> Result<(), MemoryError> {
        let earliest = self.earliest(command, self.last_issue)?;
        if at < earliest {
            return Err(MemoryError::TimingViolation {
                command,
                issued: at,
                earliest,
                constraint: constraint_name(command),
            });
        }
        self.apply(command, at)
    }

    fn apply(&mut self, command: MemoryCommand, at: Cycles) -> Result<(), MemoryError> {
        let t = self.timing;
        self.last_issue = self.last_issue.max(at);
        match command {
            MemoryCommand::Activate { bank, row } => {
                let b = self.bank_mut(bank)?;
                b.open_row = Some(row);
                b.rcd_ready = at + t.t_rcd;
                self.act_history.push_back(at);
                while self.act_history.len() > FAW_ACTIVATIONS {
                    self.act_history.pop_front();
                }
            }
            MemoryCommand::Precharge { bank } => {
                let b = self.bank_mut(bank)?;
                b.open_row = None;
                b.act_ready = at + t.t_rp;
            }
            MemoryCommand::Read { .. } | MemoryCommand::Write { .. } => {
                self.bus_free_at = at + t.t_cl + t.t_burst;
            }
            MemoryCommand::CopyQ { start } => {
                self.bus_free_at = at + t.t_cl;
                if start {
                    self.threshold_ready = Some(at + t.t_cl + t.t_ax_th);
                }
            }
            MemoryCommand::ReadP => {
                self.bus_free_at = at + t.t_cl + t.t_burst;
                self.threshold_ready = None;
            }
        }
        Ok(())
    }

    fn bank(&self, bank: usize) -> Result<&BankState, MemoryError> {
        self.banks.get(bank).ok_or(MemoryError::AddressOutOfRange {
            what: "bank",
            index: bank,
            bound: self.banks.len(),
        })
    }

    fn bank_mut(&mut self, bank: usize) -> Result<&mut BankState, MemoryError> {
        let bound = self.banks.len();
        self.banks
            .get_mut(bank)
            .ok_or(MemoryError::AddressOutOfRange {
                what: "bank",
                index: bank,
                bound,
            })
    }
}

fn constraint_name(command: MemoryCommand) -> &'static str {
    match command {
        MemoryCommand::Activate { .. } => "tRRD/tFAW/tRP",
        MemoryCommand::Precharge { .. } => "ordering",
        MemoryCommand::Read { .. } | MemoryCommand::Write { .. } => "tRCD/bus",
        MemoryCommand::CopyQ { .. } => "tCL bus occupancy",
        MemoryCommand::ReadP => "tAxTh",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> TimingChecker {
        TimingChecker::new(4, TimingParams::default()).unwrap()
    }

    #[test]
    fn read_requires_open_row() {
        let mut tc = checker();
        let err = tc
            .issue_at_earliest(MemoryCommand::Read { bank: 0, slot: 0 }, Cycles::ZERO)
            .unwrap_err();
        assert_eq!(err, MemoryError::RowNotOpen { bank: 0 });
    }

    #[test]
    fn activate_then_read_honours_trcd() {
        let mut tc = checker();
        let t = TimingParams::default();
        let act = tc
            .issue_at_earliest(MemoryCommand::Activate { bank: 1, row: 9 }, Cycles::ZERO)
            .unwrap();
        let rd = tc
            .issue_at_earliest(MemoryCommand::Read { bank: 1, slot: 2 }, act)
            .unwrap();
        assert!(rd >= act + t.t_rcd);
        assert_eq!(tc.open_row(1), Some(9));
    }

    #[test]
    fn back_to_back_activates_honour_trrd_and_tfaw() {
        let mut tc = checker();
        let t = TimingParams::default();
        let mut acts = Vec::new();
        for bank in 0..4 {
            let at = tc
                .issue_at_earliest(MemoryCommand::Activate { bank, row: 0 }, Cycles::ZERO)
                .unwrap();
            acts.push(at);
        }
        for w in acts.windows(2) {
            assert!(w[1] >= w[0] + t.t_rrd, "tRRD violated: {:?}", acts);
        }
        // A fifth activate must wait out the tFAW window. Reuse bank 0
        // after precharging it.
        tc.issue_at_earliest(MemoryCommand::Precharge { bank: 0 }, acts[3])
            .unwrap();
        let fifth = tc
            .issue_at_earliest(MemoryCommand::Activate { bank: 0, row: 1 }, acts[3])
            .unwrap();
        assert!(fifth >= acts[0] + t.t_faw, "tFAW violated");
    }

    #[test]
    fn precharge_then_activate_honours_trp() {
        let mut tc = checker();
        let t = TimingParams::default();
        let act = tc
            .issue_at_earliest(MemoryCommand::Activate { bank: 0, row: 0 }, Cycles::ZERO)
            .unwrap();
        let pre = tc
            .issue_at_earliest(MemoryCommand::Precharge { bank: 0 }, act + Cycles::new(5))
            .unwrap();
        let act2 = tc
            .issue_at_earliest(MemoryCommand::Activate { bank: 0, row: 1 }, pre)
            .unwrap();
        assert!(act2 >= pre + t.t_rp);
        assert_eq!(tc.open_row(0), Some(1));
    }

    #[test]
    fn reads_serialize_on_the_data_bus() {
        let mut tc = checker();
        let t = TimingParams::default();
        tc.issue_at_earliest(MemoryCommand::Activate { bank: 0, row: 0 }, Cycles::ZERO)
            .unwrap();
        tc.issue_at_earliest(MemoryCommand::Activate { bank: 1, row: 0 }, Cycles::ZERO)
            .unwrap();
        let r0 = tc
            .issue_at_earliest(MemoryCommand::Read { bank: 0, slot: 0 }, Cycles::ZERO)
            .unwrap();
        let r1 = tc
            .issue_at_earliest(MemoryCommand::Read { bank: 1, slot: 0 }, Cycles::ZERO)
            .unwrap();
        assert!(r1 >= r0 + t.t_burst, "data bursts must not overlap");
    }

    #[test]
    fn readp_requires_pending_thresholding() {
        let mut tc = checker();
        assert_eq!(
            tc.issue_at_earliest(MemoryCommand::ReadP, Cycles::ZERO)
                .unwrap_err(),
            MemoryError::NoThresholdingInFlight
        );
    }

    #[test]
    fn readp_waits_for_taxth_after_triggering_copyq() {
        let mut tc = checker();
        let t = TimingParams::default();
        let c0 = tc
            .issue_at_earliest(MemoryCommand::CopyQ { start: false }, Cycles::ZERO)
            .unwrap();
        let c1 = tc
            .issue_at_earliest(MemoryCommand::CopyQ { start: true }, c0)
            .unwrap();
        assert!(c1 >= c0 + t.t_cl, "consecutive CopyQ respect tCL");
        let rp = tc.issue_at_earliest(MemoryCommand::ReadP, c1).unwrap();
        assert!(
            rp >= c1 + t.t_cl + t.t_ax_th,
            "ReadP must wait for analog thresholding"
        );
        // The pending flag clears: another ReadP is illegal.
        assert!(tc.issue_at_earliest(MemoryCommand::ReadP, rp).is_err());
    }

    #[test]
    fn copyq_skips_row_timing() {
        // CopyQ works against an isolated buffer: legal at cycle 0 with
        // no activation anywhere.
        let mut tc = checker();
        let at = tc
            .issue_at_earliest(MemoryCommand::CopyQ { start: true }, Cycles::ZERO)
            .unwrap();
        assert_eq!(at, Cycles::ZERO);
    }

    #[test]
    fn replay_audit_accepts_generated_traces_and_rejects_early_issue() {
        let mut gen = checker();
        let mut trace = Vec::new();
        let act = gen
            .issue_at_earliest(MemoryCommand::Activate { bank: 0, row: 0 }, Cycles::ZERO)
            .unwrap();
        trace.push((MemoryCommand::Activate { bank: 0, row: 0 }, act));
        let rd = gen
            .issue_at_earliest(MemoryCommand::Read { bank: 0, slot: 1 }, act)
            .unwrap();
        trace.push((MemoryCommand::Read { bank: 0, slot: 1 }, rd));

        let mut audit = checker();
        for &(cmd, at) in &trace {
            audit.check_and_apply(cmd, at).unwrap();
        }

        // Issuing the read one cycle early must be flagged.
        let mut audit2 = checker();
        audit2.check_and_apply(trace[0].0, trace[0].1).unwrap();
        let early = trace[1].1.saturating_sub(Cycles::new(1));
        let err = audit2.check_and_apply(trace[1].0, early).unwrap_err();
        assert!(matches!(err, MemoryError::TimingViolation { .. }));
    }

    #[test]
    fn invalid_construction() {
        assert!(TimingChecker::new(0, TimingParams::default()).is_err());
        let bad = TimingParams {
            t_rcd: Cycles::ZERO,
            ..TimingParams::default()
        };
        assert!(TimingChecker::new(2, bad).is_err());
    }
}
