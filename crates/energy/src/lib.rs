//! Energy, latency and area cost models for the SPRINT accelerator.
//!
//! This crate reproduces the cost-model layer of the SPRINT paper
//! (MICRO 2022): the per-operation energies of Table II, the hardware
//! configurations of Table I, the memory timing constraints of §V
//! (including the new `tAxTh` constraint for in-memory thresholding),
//! and the area/floorplan model of Fig. 14 and Table III.
//!
//! The paper's own evaluation methodology multiplies *operation counts*
//! gathered by a performance simulator with post-layout unit energies;
//! the types here are the "unit energies" half of that methodology.
//!
//! # Example
//!
//! ```
//! use sprint_energy::{UnitEnergies, Category, EnergyBreakdown};
//!
//! let units = UnitEnergies::default();
//! let mut bd = EnergyBreakdown::new();
//! // Fetch 10 key vectors of 64 bytes each from ReRAM:
//! bd.charge(Category::ReramRead, units.reram_read_bits(10 * 64 * 8));
//! // And compute 10 64-tap dot products on the QK-PU:
//! bd.charge(Category::QkPu, units.qk_pu_dot_product * 10.0);
//! assert!(bd.total().as_pj() > 0.0);
//! ```

mod area;
mod breakdown;
mod energy;
mod timing;
mod units;

pub use area::{dennard_scale, AreaModel, ComponentArea};
pub use breakdown::{Category, EnergyBreakdown};
pub use energy::Energy;
pub use timing::{Cycles, TimingParams, DEFAULT_CLOCK_HZ};
pub use units::{AdcCostModel, UnitEnergies};
