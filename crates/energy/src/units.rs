//! Per-operation unit energies (Table II of the paper) and the ADC cost
//! model discussed in §III.

use serde::{Deserialize, Serialize};

use crate::Energy;

/// Post-layout unit energies of the major SPRINT microarchitectural units.
///
/// Values are taken verbatim from Table II of the paper (65 nm TSMC,
/// 1 GHz post-layout simulation) and from the §VII prose:
///
/// | Unit | Energy |
/// |---|---|
/// | QK-PU / V-PU dot product (8-bit, 64-tap) | 192.56 pJ |
/// | Key/Value buffer access (4 banks × 128-bit) | 256 pJ |
/// | Softmax (2 LUT accesses + multiply + division) | 89.8 pJ |
/// | Analog comparators (128 columns) | 5.34 pJ |
/// | In-memory computation (64 rows × 128 columns) | 833.6 pJ |
/// | ReRAM access (512 bits) | write 12 492.8 pJ / read 1 587.2 pJ |
///
/// The ReRAM per-bit costs (3.1 pJ/bit read, 24.4 pJ/bit write) and the
/// 0.10 pJ/MAC in-memory dot-product cost (including DAC) appear in the
/// §VII methodology text and are consistent with the table.
///
/// # Example
///
/// ```
/// use sprint_energy::UnitEnergies;
///
/// let u = UnitEnergies::default();
/// // One full 64x128 in-memory op plus its comparator bank:
/// let per_query = u.in_memory_computation + u.analog_comparator_bank;
/// assert!(per_query.as_pj() < u.reram_read_bits(128 * 64 * 8).as_pj());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitEnergies {
    /// One 8-bit, 64-tap dot product on the QK-PU or V-PU: 192.56 pJ.
    pub qk_pu_dot_product: Energy,
    /// One K/V buffer access: 4 banks with 128-bit access per bank
    /// (512 bits total): 256 pJ.
    pub kv_buffer_access: Energy,
    /// One softmax evaluation: 2 LUT accesses + multiply + division: 89.8 pJ.
    pub softmax: Energy,
    /// One firing of the 128-column analog comparator bank: 5.34 pJ
    /// (41 fJ per comparator, per §VII).
    pub analog_comparator_bank: Energy,
    /// One in-memory vector-matrix operation over a 64-row × 128-column
    /// crossbar, including digital-to-analog conversion: 833.6 pJ
    /// (0.10 pJ/MAC at 65 nm, per Cai et al.).
    pub in_memory_computation: Energy,
    /// ReRAM standard read of 512 bits: 1587.2 pJ (3.1 pJ/bit).
    pub reram_read_512b: Energy,
    /// ReRAM standard write of 512 bits: 12 492.8 pJ (24.4 pJ/bit).
    pub reram_write_512b: Energy,
    /// Single analog comparator: 41 fJ.
    pub analog_comparator: Energy,
    /// In-memory MAC including DAC: 0.10 pJ.
    pub in_memory_mac: Energy,
}

impl Default for UnitEnergies {
    fn default() -> Self {
        UnitEnergies {
            qk_pu_dot_product: Energy::from_pj(192.56),
            kv_buffer_access: Energy::from_pj(256.0),
            softmax: Energy::from_pj(89.8),
            analog_comparator_bank: Energy::from_pj(5.34),
            in_memory_computation: Energy::from_pj(833.6),
            reram_read_512b: Energy::from_pj(1587.2),
            reram_write_512b: Energy::from_pj(12492.8),
            analog_comparator: Energy::from_fj(41.0),
            in_memory_mac: Energy::from_pj(0.10),
        }
    }
}

impl UnitEnergies {
    /// Returns the energy of a ReRAM standard read of `bits` bits.
    ///
    /// Linearly scales the 512-bit access energy of Table II
    /// (3.1 pJ/bit); partial accesses still pay proportionally, matching
    /// the paper's per-bit accounting.
    pub fn reram_read_bits(&self, bits: u64) -> Energy {
        self.reram_read_512b * (bits as f64 / 512.0)
    }

    /// Returns the energy of a ReRAM standard write of `bits` bits.
    pub fn reram_write_bits(&self, bits: u64) -> Energy {
        self.reram_write_512b * (bits as f64 / 512.0)
    }

    /// Returns the energy of an on-chip K/V buffer access of `bits` bits.
    ///
    /// Scales the 512-bit (4 × 128-bit bank) access of Table II.
    pub fn buffer_access_bits(&self, bits: u64) -> Energy {
        self.kv_buffer_access * (bits as f64 / 512.0)
    }

    /// Returns the energy of an in-memory dot product over a crossbar
    /// region of `rows × cols` cells, including DAC.
    pub fn in_memory_op(&self, rows: usize, cols: usize) -> Energy {
        self.in_memory_mac * (rows as f64 * cols as f64)
    }

    /// Returns the energy of thresholding `cols` crossbar columns with
    /// analog comparators.
    pub fn comparator_bank(&self, cols: usize) -> Energy {
        self.analog_comparator * cols as f64
    }
}

/// Relative cost model of analog-to-digital converters, used for the
/// design-choice analysis in §III (challenge ② "ADC converter overhead").
///
/// The paper cites a 5-bit ADC as >20× the power and >30× the area of a
/// 1-bit ADC (implemented as a comparator). SPRINT's decision to threshold
/// in analog and emit 1-bit pruning flags rests on this asymmetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcCostModel {
    /// Power of a b-bit flash ADC relative to a 1-bit comparator,
    /// modelled as `2^b / 2` (doubling per bit), which reproduces the
    /// paper's ">20×" at 5 bits (2⁵/2 = 16 is the floor; calibrated
    /// multiplier below lifts it above 20).
    pub power_per_level: f64,
    /// Area of a b-bit flash ADC relative to a 1-bit comparator.
    pub area_per_level: f64,
}

impl Default for AdcCostModel {
    fn default() -> Self {
        // Flash ADCs need 2^b - 1 comparators plus an encoder. Calibrate
        // the per-level coefficients so that 5 bits lands at the paper's
        // cited >20x power and >30x area.
        AdcCostModel {
            power_per_level: 20.8 / 31.0,
            // 31.0 / 31.0: one comparator-area per level.
            area_per_level: 1.0,
        }
    }
}

impl AdcCostModel {
    /// Relative power of a `bits`-bit flash ADC vs a 1-bit comparator.
    ///
    /// A `bits`-bit flash ADC uses `2^bits - 1` comparator slices.
    pub fn relative_power(&self, bits: u32) -> f64 {
        let levels = (1u64 << bits) as f64 - 1.0;
        (levels * self.power_per_level).max(1.0)
    }

    /// Relative area of a `bits`-bit flash ADC vs a 1-bit comparator.
    pub fn relative_area(&self, bits: u32) -> f64 {
        let levels = (1u64 << bits) as f64 - 1.0;
        (levels * self.area_per_level).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_constants_match_paper() {
        let u = UnitEnergies::default();
        assert_eq!(u.qk_pu_dot_product.as_pj(), 192.56);
        assert_eq!(u.kv_buffer_access.as_pj(), 256.0);
        assert_eq!(u.softmax.as_pj(), 89.8);
        assert_eq!(u.analog_comparator_bank.as_pj(), 5.34);
        assert_eq!(u.in_memory_computation.as_pj(), 833.6);
        assert_eq!(u.reram_read_512b.as_pj(), 1587.2);
        assert_eq!(u.reram_write_512b.as_pj(), 12492.8);
    }

    #[test]
    fn per_bit_costs_match_prose() {
        let u = UnitEnergies::default();
        // 3.1 pJ/bit read and 24.4 pJ/bit write from section VII.
        assert!((u.reram_read_bits(1).as_pj() - 3.1).abs() < 0.01);
        assert!((u.reram_write_bits(1).as_pj() - 24.4).abs() < 0.01);
    }

    #[test]
    fn read_energy_scales_linearly() {
        let u = UnitEnergies::default();
        let one = u.reram_read_bits(512);
        let two = u.reram_read_bits(1024);
        assert!((two.as_pj() - 2.0 * one.as_pj()).abs() < 1e-9);
    }

    #[test]
    fn in_memory_op_matches_table_entry() {
        let u = UnitEnergies::default();
        // 64 x 128 at 0.10 pJ/MAC = 819.2 pJ; Table II reports 833.6 pJ
        // because of DAC overhead. Accept the table value as the op cost
        // and the per-MAC value for scaled regions.
        assert!(u.in_memory_op(64, 128).as_pj() <= u.in_memory_computation.as_pj());
        assert!((u.in_memory_op(64, 128).as_pj() - 819.2).abs() < 1e-9);
    }

    #[test]
    fn comparator_bank_matches_per_unit_cost() {
        let u = UnitEnergies::default();
        let bank = u.comparator_bank(128);
        // 128 * 41 fJ = 5.248 pJ, close to the 5.34 pJ table entry.
        assert!((bank.as_pj() - 5.248).abs() < 1e-9);
        assert!(bank.as_pj() <= u.analog_comparator_bank.as_pj());
    }

    #[test]
    fn adc_cost_ratios_match_cited_asymmetry() {
        let m = AdcCostModel::default();
        assert!(
            m.relative_power(5) > 20.0,
            "paper cites >20x power at 5 bits"
        );
        assert!(m.relative_area(5) > 30.0, "paper cites >30x area at 5 bits");
        assert_eq!(m.relative_power(1), 1.0);
        assert_eq!(m.relative_area(1), 1.0);
        // Monotone in bit count.
        for b in 1..8 {
            assert!(m.relative_power(b + 1) >= m.relative_power(b));
            assert!(m.relative_area(b + 1) >= m.relative_area(b));
        }
    }
}
