//! Area/floorplan model (Fig. 14, Table III) and Dennard scaling.

use serde::{Deserialize, Serialize};

/// Area of one named floorplan component, in mm² at 65 nm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentArea {
    /// Component name as it appears on the Fig. 14 floorplan.
    pub name: String,
    /// Silicon area in mm².
    pub area_mm2: f64,
}

/// Area model of a SPRINT on-chip accelerator plus its ReRAM in-memory
/// thresholding overhead.
///
/// Calibrated against two anchors from the paper:
///
/// * Fig. 14: the S-SPRINT layout occupies 1.18 × 0.8 mm² = 0.944 mm²
///   including 16 KB of SRAM, and the estimated ReRAM in-memory area is
///   about 6 % of that.
/// * Table III: M-SPRINT totals 1.9 mm² with the in-memory thresholding
///   area ("only 3 % of total") included.
///
/// # Example
///
/// ```
/// use sprint_energy::AreaModel;
///
/// let s = AreaModel::s_sprint();
/// assert!((s.total_mm2() - 0.944).abs() / 0.944 < 0.05);
/// let m = AreaModel::m_sprint();
/// assert!((m.total_mm2() - 1.9).abs() / 1.9 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Number of CORELETs (1, 2 or 4 for S/M/L).
    pub corelets: usize,
    /// Total on-chip K/V buffer capacity in KiB (16/32/64 for S/M/L).
    pub sram_kib: usize,
    /// ReRAM in-memory thresholding overhead in mm² (transposable array
    /// peripheral circuitry attributable to SPRINT).
    pub reram_overhead_mm2: f64,
}

/// Per-CORELET digital logic area at 65 nm, in mm² (QK-PU + V-PU +
/// softmax + control), derived from the S-SPRINT floorplan after
/// removing the SRAM macro and ReRAM overhead estimates.
const LOGIC_PER_CORELET_MM2: f64 = 0.52;

/// SRAM macro density at 65 nm, mm² per KiB (high-density single-port,
/// ARM memory compiler class), fitted to the same anchors.
const SRAM_MM2_PER_KIB: f64 = 0.0235;

impl AreaModel {
    /// The S-SPRINT floorplan: 1 CORELET, 16 KB SRAM (Fig. 14).
    pub fn s_sprint() -> Self {
        AreaModel {
            corelets: 1,
            sram_kib: 16,
            reram_overhead_mm2: 0.056,
        }
    }

    /// The M-SPRINT floorplan: 2 CORELETs, 32 KB SRAM (Table III: 1.9 mm²).
    pub fn m_sprint() -> Self {
        AreaModel {
            corelets: 2,
            sram_kib: 32,
            reram_overhead_mm2: 0.056,
        }
    }

    /// The L-SPRINT floorplan: 4 CORELETs, 64 KB SRAM.
    pub fn l_sprint() -> Self {
        AreaModel {
            corelets: 4,
            sram_kib: 64,
            reram_overhead_mm2: 0.056,
        }
    }

    /// Digital logic area (all CORELETs), mm².
    pub fn logic_mm2(&self) -> f64 {
        LOGIC_PER_CORELET_MM2 * self.corelets as f64
    }

    /// SRAM area, mm².
    pub fn sram_mm2(&self) -> f64 {
        SRAM_MM2_PER_KIB * self.sram_kib as f64
    }

    /// Total area including the ReRAM in-memory thresholding overhead.
    pub fn total_mm2(&self) -> f64 {
        self.logic_mm2() + self.sram_mm2() + self.reram_overhead_mm2
    }

    /// Fraction of total area attributable to the ReRAM overhead
    /// (~6 % for S-SPRINT per Fig. 14, ~3 % for M-SPRINT per Table III).
    pub fn reram_overhead_fraction(&self) -> f64 {
        self.reram_overhead_mm2 / self.total_mm2()
    }

    /// Itemized component list for floorplan reports.
    pub fn components(&self) -> Vec<ComponentArea> {
        vec![
            ComponentArea {
                name: format!("CORELET logic x{}", self.corelets),
                area_mm2: self.logic_mm2(),
            },
            ComponentArea {
                name: format!("K/V SRAM ({} KiB)", self.sram_kib),
                area_mm2: self.sram_mm2(),
            },
            ComponentArea {
                name: "ReRAM in-memory thresholding".to_string(),
                area_mm2: self.reram_overhead_mm2,
            },
        ]
    }
}

/// Dennard-scales a per-operation metric between process nodes.
///
/// The paper uses classic Dennard scaling \[37\] to compare 65 nm SPRINT
/// with the 40 nm A3/SpAtten designs: energy per operation scales with
/// the square of the feature-size ratio, so a *throughput-per-joule*
/// metric measured at `from_nm` is multiplied by `(from_nm / to_nm)²`
/// when projected to `to_nm`.
///
/// # Example
///
/// ```
/// use sprint_energy::dennard_scale;
///
/// // Paper: 902.7 GOPs/J at 65 nm becomes ~3873.5 at 45 nm-class.
/// let scaled = dennard_scale(902.7, 65.0, 31.4);
/// assert!(scaled > 3000.0);
/// ```
///
/// # Panics
///
/// Panics if either node size is not strictly positive.
pub fn dennard_scale(metric: f64, from_nm: f64, to_nm: f64) -> f64 {
    assert!(
        from_nm > 0.0 && to_nm > 0.0,
        "process nodes must be positive"
    );
    metric * (from_nm / to_nm).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_sprint_matches_fig14_envelope() {
        let s = AreaModel::s_sprint();
        let total = s.total_mm2();
        // Fig. 14: 1.18 mm x 0.8 mm = 0.944 mm^2.
        assert!((total - 0.944).abs() / 0.944 < 0.05, "got {total}");
        // "the area overhead takes only around 6% in S-SPRINT"
        let frac = s.reram_overhead_fraction();
        assert!(frac > 0.04 && frac < 0.08, "got {frac}");
    }

    #[test]
    fn m_sprint_matches_table3_area() {
        let m = AreaModel::m_sprint();
        assert!(
            (m.total_mm2() - 1.9).abs() / 1.9 < 0.05,
            "got {}",
            m.total_mm2()
        );
        // "in-memory thresholding ... takes only 3% out of total M-SPRINT area"
        let frac = m.reram_overhead_fraction();
        assert!(frac > 0.02 && frac < 0.045, "got {frac}");
    }

    #[test]
    fn area_grows_with_configuration() {
        let s = AreaModel::s_sprint().total_mm2();
        let m = AreaModel::m_sprint().total_mm2();
        let l = AreaModel::l_sprint().total_mm2();
        assert!(s < m && m < l);
    }

    #[test]
    fn components_sum_to_total() {
        for model in [
            AreaModel::s_sprint(),
            AreaModel::m_sprint(),
            AreaModel::l_sprint(),
        ] {
            let sum: f64 = model.components().iter().map(|c| c.area_mm2).sum();
            assert!((sum - model.total_mm2()).abs() < 1e-12);
        }
    }

    #[test]
    fn dennard_scaling_is_quadratic() {
        let x = dennard_scale(100.0, 65.0, 32.5);
        assert!((x - 400.0).abs() < 1e-9);
        // Identity when nodes match.
        assert_eq!(dennard_scale(7.0, 40.0, 40.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dennard_rejects_nonpositive_nodes() {
        dennard_scale(1.0, 0.0, 40.0);
    }
}
