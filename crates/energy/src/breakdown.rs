//! Energy accounting by microarchitectural category (Fig. 13).

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::Energy;

/// The eight energy categories of the paper's Fig. 13 breakdown.
///
/// Every joule spent by either the baseline design or SPRINT is attributed
/// to exactly one of these buckets, so that reductions can be reported as
/// ratios over identical category sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Standard ReRAM (main memory) reads of Q / K / V data.
    ReramRead,
    /// Standard ReRAM writes (storing embeddings, incl. K MSB/LSB split).
    ReramWrite,
    /// In-ReRAM pruning: analog dot products, comparators, 1-bit ADCs,
    /// CopyQ/ReadP transfers.
    InReramPruning,
    /// On-chip K/V/Q buffer reads.
    OnChipRead,
    /// On-chip K/V/Q buffer writes.
    OnChipWrite,
    /// QK-PU digital dot products (score recompute).
    QkPu,
    /// V-PU digital dot products (weighted-sum of values).
    VPu,
    /// Softmax unit (LUTs, multipliers, dividers).
    Softmax,
}

impl Category {
    /// All categories, in the order Fig. 13 stacks them.
    pub const ALL: [Category; 8] = [
        Category::ReramRead,
        Category::ReramWrite,
        Category::InReramPruning,
        Category::OnChipRead,
        Category::OnChipWrite,
        Category::QkPu,
        Category::VPu,
        Category::Softmax,
    ];

    /// A short, stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::ReramRead => "ReRAM Read",
            Category::ReramWrite => "ReRAM Write",
            Category::InReramPruning => "In-ReRAM Pruning",
            Category::OnChipRead => "On-Chip Read",
            Category::OnChipWrite => "On-Chip Write",
            Category::QkPu => "QK-PU",
            Category::VPu => "V-PU",
            Category::Softmax => "Softmax",
        }
    }

    fn index(self) -> usize {
        match self {
            Category::ReramRead => 0,
            Category::ReramWrite => 1,
            Category::InReramPruning => 2,
            Category::OnChipRead => 3,
            Category::OnChipWrite => 4,
            Category::QkPu => 5,
            Category::VPu => 6,
            Category::Softmax => 7,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An energy ledger keyed by [`Category`].
///
/// Backed by a fixed array so accumulation in simulator hot loops is
/// allocation-free.
///
/// # Example
///
/// ```
/// use sprint_energy::{Category, Energy, EnergyBreakdown};
///
/// let mut bd = EnergyBreakdown::new();
/// bd.charge(Category::QkPu, Energy::from_pj(192.56));
/// bd.charge(Category::Softmax, Energy::from_pj(89.8));
/// let total = bd.total();
/// assert!((total.as_pj() - 282.36).abs() < 1e-9);
/// let frac = bd.fraction(Category::QkPu);
/// assert!(frac > 0.6 && frac < 0.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    buckets: [Energy; 8],
}

impl EnergyBreakdown {
    /// Creates an empty breakdown (all categories zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (accumulates) `amount` of energy against `category`.
    pub fn charge(&mut self, category: Category, amount: Energy) {
        self.buckets[category.index()] += amount;
    }

    /// Returns the energy attributed to `category`.
    pub fn get(&self, category: Category) -> Energy {
        self.buckets[category.index()]
    }

    /// Returns the total over all categories.
    pub fn total(&self) -> Energy {
        self.buckets.iter().copied().sum()
    }

    /// Returns the fraction of the total attributed to `category`.
    ///
    /// Returns 0.0 when the total is zero.
    pub fn fraction(&self, category: Category) -> f64 {
        let total = self.total().as_pj();
        if total == 0.0 {
            0.0
        } else {
            self.get(category).as_pj() / total
        }
    }

    /// Returns the summed energy of the main-memory categories
    /// (ReRAM read + write), the numerator of Fig. 1.
    pub fn memory_access(&self) -> Energy {
        self.get(Category::ReramRead) + self.get(Category::ReramWrite)
    }

    /// Returns this breakdown with every bucket scaled by `factor`.
    ///
    /// Used to average per-layer breakdowns over a model.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        let mut out = *self;
        for b in &mut out.buckets {
            *b = *b * factor;
        }
        out
    }

    /// Iterates over `(category, energy)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, Energy)> + '_ {
        Category::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Returns each bucket normalized against an external reference total
    /// (Fig. 13 normalizes pruning-only and SPRINT stacks to the baseline
    /// total).
    pub fn normalized_to(&self, reference: Energy) -> Vec<(Category, f64)> {
        let denom = reference.as_pj();
        Category::ALL
            .iter()
            .map(|&c| {
                let f = if denom == 0.0 {
                    0.0
                } else {
                    self.get(c).as_pj() / denom
                };
                (c, f)
            })
            .collect()
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "total: {total}")?;
        for (c, e) in self.iter() {
            writeln!(
                f,
                "  {:<18} {:>14}  ({:5.1}%)",
                c.label(),
                e.to_string(),
                self.fraction(c) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        let mut bd = EnergyBreakdown::new();
        bd.charge(Category::ReramRead, Energy::from_pj(100.0));
        bd.charge(Category::ReramWrite, Energy::from_pj(50.0));
        bd.charge(Category::QkPu, Energy::from_pj(30.0));
        bd.charge(Category::Softmax, Energy::from_pj(20.0));
        bd
    }

    #[test]
    fn total_is_sum_of_categories() {
        let bd = sample();
        assert_eq!(bd.total().as_pj(), 200.0);
        let by_iter: f64 = bd.iter().map(|(_, e)| e.as_pj()).sum();
        assert_eq!(by_iter, 200.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let bd = sample();
        let s: f64 = Category::ALL.iter().map(|&c| bd.fraction(c)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_access_combines_reads_and_writes() {
        let bd = sample();
        assert_eq!(bd.memory_access().as_pj(), 150.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let bd = EnergyBreakdown::new();
        assert_eq!(bd.total(), Energy::ZERO);
        assert_eq!(bd.fraction(Category::QkPu), 0.0);
    }

    #[test]
    fn add_merges_bucketwise() {
        let merged = sample() + sample();
        assert_eq!(merged.total().as_pj(), 400.0);
        assert_eq!(merged.get(Category::QkPu).as_pj(), 60.0);
    }

    #[test]
    fn scaled_multiplies_every_bucket() {
        let bd = sample().scaled(0.5);
        assert_eq!(bd.total().as_pj(), 100.0);
        assert_eq!(bd.get(Category::ReramRead).as_pj(), 50.0);
    }

    #[test]
    fn normalized_to_uses_external_reference() {
        let bd = sample();
        let norm = bd.normalized_to(Energy::from_pj(400.0));
        let total: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((total - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_every_category() {
        let s = format!("{}", sample());
        for c in Category::ALL {
            assert!(s.contains(c.label()), "missing {c}");
        }
    }
}
