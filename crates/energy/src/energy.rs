//! The [`Energy`] newtype: a quantity of energy in picojoules.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A quantity of energy, stored in picojoules.
///
/// All unit energies in the SPRINT paper (Table II) are reported in
/// picojoules, so this newtype keeps every intermediate value in the same
/// unit and only converts for display. Negative energies are representable
/// (differences) but never produced by the cost model itself.
///
/// # Example
///
/// ```
/// use sprint_energy::Energy;
///
/// let read = Energy::from_pj(1587.2);
/// let write = Energy::from_pj(12492.8);
/// assert!(write > read);
/// assert_eq!((read + write).as_pj(), 1587.2 + 12492.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy value from femtojoules.
    pub fn from_fj(fj: f64) -> Self {
        Energy(fj * 1e-3)
    }

    /// Creates an energy value from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// Creates an energy value from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// Returns the value in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Returns the value in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the value in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the value in joules.
    pub fn as_joules(self) -> f64 {
        self.0 * 1e-12
    }

    /// Returns the ratio `self / other`.
    ///
    /// Used for reduction factors such as "19.6× energy reduction".
    /// Returns `f64::INFINITY` when `other` is zero and `self` is not.
    pub fn ratio_to(self, other: Energy) -> f64 {
        self.0 / other.0
    }

    /// Returns whether the value is a finite, non-negative quantity.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0.abs();
        if pj >= 1e6 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else if pj >= 1e3 {
            write!(f, "{:.3} nJ", self.as_nj())
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips_between_units() {
        assert_eq!(Energy::from_nj(1.0).as_pj(), 1000.0);
        assert_eq!(Energy::from_uj(1.0).as_nj(), 1000.0);
        assert!((Energy::from_fj(41.0).as_pj() - 0.041).abs() < 1e-12);
        assert!((Energy::from_pj(5.0).as_joules() - 5e-12).abs() < 1e-24);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(2.5);
        assert_eq!((a + b).as_pj(), 12.5);
        assert_eq!((a - b).as_pj(), 7.5);
        assert_eq!((a * 2.0).as_pj(), 20.0);
        assert_eq!((a * 3u64).as_pj(), 30.0);
        assert_eq!((a / 4.0).as_pj(), 2.5);
        let mut c = a;
        c += b;
        assert_eq!(c.as_pj(), 12.5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Energy = (1..=4).map(|i| Energy::from_pj(i as f64)).sum();
        assert_eq!(total.as_pj(), 10.0);
    }

    #[test]
    fn ratio_reports_reduction_factor() {
        let baseline = Energy::from_nj(19.6);
        let sprint = Energy::from_nj(1.0);
        assert!((baseline.ratio_to(sprint) - 19.6).abs() < 1e-9);
    }

    #[test]
    fn display_picks_reasonable_unit() {
        assert_eq!(format!("{}", Energy::from_pj(12.0)), "12.000 pJ");
        assert_eq!(format!("{}", Energy::from_pj(1587.2)), "1.587 nJ");
        assert_eq!(format!("{}", Energy::from_uj(2.0)), "2.000 uJ");
    }

    #[test]
    fn validity_flags_negative_and_nan() {
        assert!(Energy::from_pj(1.0).is_valid());
        assert!(Energy::ZERO.is_valid());
        assert!(!(Energy::from_pj(1.0) - Energy::from_pj(2.0)).is_valid());
        assert!(!Energy::from_pj(f64::NAN).is_valid());
    }
}
