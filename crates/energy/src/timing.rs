//! Clock-domain and memory timing parameters (§V of the paper).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// The SPRINT digital clock: 1 GHz (Table I, "@ 1 GHz").
pub const DEFAULT_CLOCK_HZ: f64 = 1.0e9;

/// A duration measured in clock cycles.
///
/// # Example
///
/// ```
/// use sprint_energy::{Cycles, DEFAULT_CLOCK_HZ};
///
/// let lat = Cycles::new(8);
/// assert_eq!(lat.as_u64(), 8);
/// assert!((lat.as_seconds(DEFAULT_CLOCK_HZ) - 8e-9).abs() < 1e-18);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts to seconds at the given clock frequency.
    pub fn as_seconds(self, clock_hz: f64) -> f64 {
        self.0 as f64 / clock_hz
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two cycle counts.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Memory timing constraints observed by the SPRINT memory controller.
///
/// The conventional constraints follow DDR-style semantics; `t_ax_th` is
/// the constraint the paper introduces between a `CopyQ` that starts
/// in-memory thresholding and the `ReadP` that collects the binary
/// pruning vector ("<8 cycles" per the paper's circuit simulations, §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Row-activate to column-access delay.
    pub t_rcd: Cycles,
    /// Row precharge time.
    pub t_rp: Cycles,
    /// Column-access (CAS) latency; also the data-bus occupancy of a
    /// `CopyQ` burst, which bypasses row activation.
    pub t_cl: Cycles,
    /// Minimum spacing between row activations to *different* banks.
    pub t_rrd: Cycles,
    /// Sliding window in which at most four activations may be issued
    /// (four-activation window).
    pub t_faw: Cycles,
    /// In-memory thresholding latency between `CopyQ` (start bit set)
    /// and the earliest legal `ReadP`.
    pub t_ax_th: Cycles,
    /// Data-burst length in cycles for a standard read/write.
    pub t_burst: Cycles,
}

impl Default for TimingParams {
    /// Conservative DDR-like defaults at the 1 GHz SPRINT clock, with the
    /// paper's `tAxTh = 8` bound.
    fn default() -> Self {
        TimingParams {
            t_rcd: Cycles::new(14),
            t_rp: Cycles::new(14),
            t_cl: Cycles::new(14),
            t_rrd: Cycles::new(4),
            t_faw: Cycles::new(20),
            t_ax_th: Cycles::new(8),
            t_burst: Cycles::new(4),
        }
    }
}

impl TimingParams {
    /// Latency of a row-buffer hit read: CAS + burst.
    pub fn hit_latency(&self) -> Cycles {
        self.t_cl + self.t_burst
    }

    /// Latency of a row-buffer miss read: precharge + activate + CAS + burst.
    pub fn miss_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.hit_latency()
    }

    /// Latency of a full in-memory thresholding round for one query:
    /// CopyQ bus occupancy + analog thresholding + ReadP (read-like).
    pub fn thresholding_latency(&self) -> Cycles {
        self.t_cl + self.t_ax_th + self.hit_latency()
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation:
    /// `t_faw >= t_rrd` (the four-activation window cannot be shorter
    /// than the activate-to-activate spacing) and all values non-zero
    /// except `t_ax_th` (which may be zero for an ideal-analog ablation).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_faw < self.t_rrd {
            return Err(format!(
                "t_faw ({}) must be >= t_rrd ({})",
                self.t_faw, self.t_rrd
            ));
        }
        for (name, v) in [
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_cl", self.t_cl),
            ("t_rrd", self.t_rrd),
            ("t_burst", self.t_burst),
        ] {
            if v == Cycles::ZERO {
                return Err(format!("{name} must be non-zero"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!((a - b).as_u64(), 6);
        assert_eq!((a * 3).as_u64(), 30);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = [a, b, b].into_iter().sum();
        assert_eq!(total.as_u64(), 18);
    }

    #[test]
    fn cycles_convert_to_seconds() {
        let c = Cycles::new(1000);
        assert!((c.as_seconds(DEFAULT_CLOCK_HZ) - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn default_params_are_valid() {
        let p = TimingParams::default();
        p.validate().expect("defaults must validate");
        assert_eq!(p.t_ax_th, Cycles::new(8), "paper: tAxTh < 8 cycles");
    }

    #[test]
    fn miss_latency_exceeds_hit_latency() {
        let p = TimingParams::default();
        assert!(p.miss_latency() > p.hit_latency());
    }

    #[test]
    fn thresholding_latency_includes_analog_phase() {
        let p = TimingParams::default();
        assert!(p.thresholding_latency() >= p.t_ax_th + p.hit_latency());
    }

    #[test]
    fn validation_rejects_inconsistent_windows() {
        let p = TimingParams {
            t_faw: Cycles::new(2),
            t_rrd: Cycles::new(4),
            ..TimingParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_core_timings() {
        let p = TimingParams {
            t_rcd: Cycles::ZERO,
            ..TimingParams::default()
        };
        assert!(p.validate().is_err());
    }
}
