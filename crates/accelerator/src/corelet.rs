//! One CORELET: QK-PU, softmax unit, V-PU and its K/V buffer (§VI).

use serde::{Deserialize, Serialize};

use sprint_energy::Cycles;

use crate::{AcceleratorError, KvBuffer};

/// Static configuration of one CORELET (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreletConfig {
    /// MAC lanes in the QK-PU and V-PU (1-D 64-way in the paper).
    pub mac_lanes: usize,
    /// Divider lanes in the softmax unit (2 in the paper).
    pub dividers: usize,
    /// K/V buffer capacity in vectors (per CORELET).
    pub kv_capacity: usize,
    /// Pipeline latency of one softmax division (cycles).
    pub divider_latency: Cycles,
}

impl Default for CoreletConfig {
    fn default() -> Self {
        CoreletConfig {
            mac_lanes: 64,
            dividers: 2,
            kv_capacity: 128,
            divider_latency: Cycles::new(8),
        }
    }
}

impl CoreletConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for zero lanes,
    /// dividers or capacity.
    pub fn validate(&self) -> Result<(), AcceleratorError> {
        for (name, v) in [
            ("mac_lanes", self.mac_lanes),
            ("dividers", self.dividers),
            ("kv_capacity", self.kv_capacity),
        ] {
            if v == 0 {
                return Err(AcceleratorError::InvalidConfig { name, value: v });
            }
        }
        Ok(())
    }

    /// Cycles to dot one `d`-element token through a 64-way MAC array.
    pub fn cycles_per_token(&self, d: usize) -> Cycles {
        Cycles::new(d.div_ceil(self.mac_lanes) as u64)
    }
}

/// Per-query stage timing of one CORELET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryTiming {
    /// QK-PU span including data-miss stalls.
    pub qk: Cycles,
    /// Softmax unit cycles (LUT lookups + pipelined divisions).
    pub softmax: Cycles,
    /// V-PU cycles.
    pub vpu: Cycles,
    /// Stall cycles contained in `qk` (waiting for fetched vectors
    /// after the rotating pointer ran out of resident work).
    pub stall: Cycles,
}

impl QueryTiming {
    /// The pipeline bottleneck stage: with queries streaming through
    /// the three-stage pipeline, throughput is set by the slowest
    /// stage (§VI "in a pipelined manner").
    pub fn bottleneck(&self) -> Cycles {
        self.qk.max(self.softmax).max(self.vpu)
    }

    /// Sum of all stages (the unpipelined latency of this query).
    pub fn total(&self) -> Cycles {
        self.qk + self.softmax + self.vpu
    }
}

/// One CORELET with its residency-tracking K/V buffer and counters.
///
/// # Example
///
/// ```
/// use sprint_accelerator::{Corelet, CoreletConfig};
/// use sprint_energy::Cycles;
///
/// # fn main() -> Result<(), sprint_accelerator::AcceleratorError> {
/// let mut c = Corelet::new(CoreletConfig::default())?;
/// let t = c.process_query(&[0, 4, 8], 64, (Cycles::new(40), Cycles::new(52)))?;
/// assert!(t.qk >= Cycles::new(3), "three tokens, one cycle each, plus stalls");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Corelet {
    config: CoreletConfig,
    buffer: KvBuffer,
    macs: u64,
    softmax_ops: u64,
    stall_cycles: Cycles,
    busy_cycles: Cycles,
}

impl Corelet {
    /// Creates a CORELET.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(config: CoreletConfig) -> Result<Self, AcceleratorError> {
        config.validate()?;
        Ok(Corelet {
            config,
            buffer: KvBuffer::new(config.kv_capacity)?,
            macs: 0,
            softmax_ops: 0,
            stall_cycles: Cycles::ZERO,
            busy_cycles: Cycles::ZERO,
        })
    }

    /// The configuration.
    pub fn config(&self) -> CoreletConfig {
        self.config
    }

    /// Residency buffer (read-only view).
    pub fn buffer(&self) -> &KvBuffer {
        &self.buffer
    }

    /// Total 64-way MAC operations issued.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Total softmax element operations.
    pub fn softmax_ops(&self) -> u64 {
        self.softmax_ops
    }

    /// Accumulated stall cycles.
    pub fn stall_cycles(&self) -> Cycles {
        self.stall_cycles
    }

    /// Accumulated busy cycles (bottleneck-stage time).
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Clears the buffer and starts a new head.
    pub fn start_new_head(&mut self) {
        self.buffer.clear();
    }

    /// Processes one query's assigned tokens.
    ///
    /// `fetch_window` is `(first_arrival, last_arrival)` for vectors
    /// that miss the buffer: the memory subsystem delivers misses
    /// evenly across the window. Tokens already resident are computed
    /// first (the rotating-pointer bypass: "the computations for the
    /// next available key vector can proceed until the data miss is
    /// handled").
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] if `d` is zero.
    pub fn process_query(
        &mut self,
        assigned: &[usize],
        d: usize,
        fetch_window: (Cycles, Cycles),
    ) -> Result<QueryTiming, AcceleratorError> {
        if d == 0 {
            return Err(AcceleratorError::InvalidConfig {
                name: "embedding d",
                value: 0,
            });
        }
        let n = assigned.len();
        if n == 0 {
            return Ok(QueryTiming::default());
        }
        let cpt = self.config.cycles_per_token(d);

        // Residency check: hits compute immediately, misses arrive
        // across the fetch window.
        let mut resident = 0usize;
        let mut misses = 0usize;
        for &token in assigned {
            if self.buffer.touch(token) {
                resident += 1;
            } else {
                misses += 1;
                self.buffer.insert(token);
            }
        }

        // Rotating-pointer schedule: consume resident tokens first,
        // then fetched tokens as they arrive.
        let (first, last) = fetch_window;
        let mut clock = Cycles::ZERO;
        for _ in 0..resident {
            clock += cpt;
        }
        if misses > 0 {
            let window = last.saturating_sub(first);
            let gap = Cycles::new(window.as_u64() / misses as u64);
            for m in 0..misses {
                let arrival = first + gap * m as u64;
                clock = clock.max(arrival);
                clock += cpt;
            }
        }
        let qk = clock;
        let pure_compute = cpt * n as u64;
        let stall = qk.saturating_sub(pure_compute);

        // Softmax: one LUT-pair lookup per token, divisions pipelined
        // over the divider lanes, plus the divider fill latency.
        let softmax = Cycles::new(n as u64)
            + Cycles::new(n.div_ceil(self.config.dividers) as u64)
            + self.config.divider_latency;
        // V-PU mirrors the QK-PU shape (no input stalls: by the time
        // probabilities exist, vectors are on chip).
        let vpu = pure_compute;

        self.macs += 2 * (n as u64) * d.div_ceil(self.config.mac_lanes) as u64;
        self.softmax_ops += n as u64;
        self.stall_cycles += stall;
        let timing = QueryTiming {
            qk,
            softmax,
            vpu,
            stall,
        };
        self.busy_cycles += timing.bottleneck();
        Ok(timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corelet(capacity: usize) -> Corelet {
        Corelet::new(CoreletConfig {
            kv_capacity: capacity,
            ..CoreletConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CoreletConfig {
            mac_lanes: 0,
            ..CoreletConfig::default()
        }
        .validate()
        .is_err());
        assert!(CoreletConfig::default().validate().is_ok());
    }

    #[test]
    fn cycles_per_token_rounds_up() {
        let c = CoreletConfig::default();
        assert_eq!(c.cycles_per_token(64), Cycles::new(1));
        assert_eq!(c.cycles_per_token(65), Cycles::new(2));
        assert_eq!(c.cycles_per_token(1), Cycles::new(1));
    }

    #[test]
    fn empty_query_is_free() {
        let mut c = corelet(8);
        let t = c
            .process_query(&[], 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        assert_eq!(t, QueryTiming::default());
    }

    #[test]
    fn cold_query_stalls_on_fetches() {
        let mut c = corelet(32);
        // 4 tokens, all misses, arriving between cycles 40 and 64.
        let t = c
            .process_query(&[0, 1, 2, 3], 64, (Cycles::new(40), Cycles::new(64)))
            .unwrap();
        assert!(t.stall > Cycles::ZERO, "cold misses must stall");
        assert!(t.qk >= Cycles::new(40));
    }

    #[test]
    fn warm_query_has_no_stall() {
        let mut c = corelet(32);
        c.process_query(&[0, 1, 2, 3], 64, (Cycles::new(40), Cycles::new(64)))
            .unwrap();
        let t = c
            .process_query(&[0, 1, 2, 3], 64, (Cycles::new(40), Cycles::new(64)))
            .unwrap();
        assert_eq!(t.stall, Cycles::ZERO, "resident tokens never stall");
        assert_eq!(t.qk, Cycles::new(4));
    }

    #[test]
    fn rotating_pointer_overlaps_compute_with_fetch() {
        let mut c = corelet(64);
        // Warm 30 tokens.
        let warm: Vec<usize> = (0..30).collect();
        c.process_query(&warm, 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        // Now 30 resident + 2 misses arriving at cycles 10 and 20:
        // the resident work (30 cycles) hides both arrivals entirely.
        let mut q: Vec<usize> = (0..30).collect();
        q.push(100);
        q.push(101);
        let t = c
            .process_query(&q, 64, (Cycles::new(10), Cycles::new(20)))
            .unwrap();
        assert_eq!(
            t.stall,
            Cycles::ZERO,
            "arrivals hidden behind resident work"
        );
        assert_eq!(t.qk, Cycles::new(32));
    }

    #[test]
    fn tiny_buffer_causes_capacity_misses() {
        let mut small = corelet(2);
        let mut large = corelet(64);
        let tokens: Vec<usize> = (0..16).collect();
        for c in [&mut small, &mut large] {
            c.process_query(&tokens, 64, (Cycles::new(10), Cycles::new(50)))
                .unwrap();
            c.process_query(&tokens, 64, (Cycles::new(10), Cycles::new(50)))
                .unwrap();
        }
        assert!(
            small.buffer().misses() > large.buffer().misses(),
            "capacity pressure must show up as misses"
        );
    }

    #[test]
    fn softmax_uses_divider_parallelism() {
        let mut c = corelet(64);
        let tokens: Vec<usize> = (0..8).collect();
        let t = c
            .process_query(&tokens, 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        // 8 lookups + ceil(8/2) divisions + fill latency 8.
        assert_eq!(t.softmax, Cycles::new(8 + 4 + 8));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = corelet(64);
        c.process_query(&[0, 1], 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        c.process_query(&[2, 3], 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        assert_eq!(c.macs(), 2 * 2 + 2 * 2, "qk + vpu macs per token");
        assert_eq!(c.softmax_ops(), 4);
        assert!(c.busy_cycles() > Cycles::ZERO);
    }

    #[test]
    fn new_head_clears_residency() {
        let mut c = corelet(8);
        c.process_query(&[0, 1], 64, (Cycles::ZERO, Cycles::ZERO))
            .unwrap();
        c.start_new_head();
        assert!(c.buffer().is_empty());
    }

    #[test]
    fn zero_embedding_is_rejected() {
        let mut c = corelet(8);
        assert!(c
            .process_query(&[0], 0, (Cycles::ZERO, Cycles::ZERO))
            .is_err());
    }
}
