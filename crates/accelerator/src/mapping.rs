//! Workload balancing across CORELETs (§VI, Fig. 8).
//!
//! Unpruned key indices cluster spatially (Fig. 2), so assigning
//! *contiguous blocks* of the sequence to CORELETs concentrates work on
//! whichever CORELET owns the active cluster. SPRINT instead
//! interleaves tokens: with `N` CORELETs, key `K_{N·n+i}` belongs to
//! CORELET `i` ("token-interleaving"), which spreads every cluster
//! evenly.

use serde::{Deserialize, Serialize};

/// How unpruned tokens map to CORELETs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Contiguous block per CORELET (the strawman of Fig. 8).
    Sequential,
    /// Round-robin token interleaving (SPRINT's scheme).
    Interleaved,
}

/// Assigns the kept key indices of one query to `corelets` work lists.
///
/// `seq_len` is the total sequence length, needed to size the
/// sequential blocks.
///
/// # Panics
///
/// Panics if `corelets == 0` or `seq_len == 0`.
///
/// # Example
///
/// ```
/// use sprint_accelerator::{assign_tokens, MappingPolicy};
///
/// let kept = vec![0, 1, 2, 3];
/// let a = assign_tokens(&kept, 2, MappingPolicy::Interleaved, 8);
/// assert_eq!(a[0], vec![0, 2]);
/// assert_eq!(a[1], vec![1, 3]);
/// let b = assign_tokens(&kept, 2, MappingPolicy::Sequential, 8);
/// assert_eq!(b[0], vec![0, 1, 2, 3]); // all in the first block of 4
/// assert!(b[1].is_empty());
/// ```
pub fn assign_tokens(
    kept: &[usize],
    corelets: usize,
    policy: MappingPolicy,
    seq_len: usize,
) -> Vec<Vec<usize>> {
    assert!(corelets > 0, "at least one CORELET");
    assert!(seq_len > 0, "sequence length must be non-zero");
    let mut out = vec![Vec::new(); corelets];
    match policy {
        MappingPolicy::Interleaved => {
            for &j in kept {
                out[j % corelets].push(j);
            }
        }
        MappingPolicy::Sequential => {
            let block = seq_len.div_ceil(corelets);
            for &j in kept {
                out[(j / block).min(corelets - 1)].push(j);
            }
        }
    }
    out
}

/// The imbalance ratio of one assignment: max over min assigned tokens
/// per CORELET (Fig. 8's metric; 1.0 is ideal balance).
///
/// CORELETs with zero tokens count as one token, mirroring the paper's
/// finite ratios on small models where some CORELETs idle.
pub fn imbalance_ratio(assignments: &[Vec<usize>]) -> f64 {
    if assignments.is_empty() {
        return 1.0;
    }
    let max = assignments.iter().map(Vec::len).max().unwrap_or(0);
    let min = assignments.iter().map(Vec::len).min().unwrap_or(0);
    if max == 0 {
        return 1.0;
    }
    max as f64 / min.max(1) as f64
}

/// Mean imbalance ratio over all queries of a head.
///
/// `kept_per_query` holds the kept key indices of each query; queries
/// with no kept keys are skipped (padded region).
pub fn mean_imbalance(
    kept_per_query: &[Vec<usize>],
    corelets: usize,
    policy: MappingPolicy,
    seq_len: usize,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for kept in kept_per_query {
        if kept.is_empty() {
            continue;
        }
        sum += imbalance_ratio(&assign_tokens(kept, corelets, policy, seq_len));
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interleaving_spreads_clusters() {
        // A 32-wide cluster in a 128 sequence over 4 CORELETs.
        let kept: Vec<usize> = (40..72).collect();
        let a = assign_tokens(&kept, 4, MappingPolicy::Interleaved, 128);
        assert!(a.iter().all(|v| v.len() == 8), "{a:?}");
        assert!((imbalance_ratio(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_concentrates_clusters() {
        let kept: Vec<usize> = (40..72).collect();
        let a = assign_tokens(&kept, 4, MappingPolicy::Sequential, 128);
        // Block size 32: the cluster spans blocks 1 and 2 unevenly.
        let ratio = imbalance_ratio(&a);
        assert!(ratio >= 3.0, "ratio={ratio} assignments={a:?}");
    }

    #[test]
    fn paper_interleaving_rule_k_4n_plus_i() {
        // "given total four available CORELETs, SPRINT process K_{4n+i}
        // in the i-th CORELET".
        let kept: Vec<usize> = (0..16).collect();
        let a = assign_tokens(&kept, 4, MappingPolicy::Interleaved, 16);
        for (i, list) in a.iter().enumerate() {
            assert!(list.iter().all(|&j| j % 4 == i));
        }
    }

    #[test]
    fn every_token_assigned_exactly_once() {
        let kept: Vec<usize> = vec![3, 17, 18, 19, 64, 100];
        for policy in [MappingPolicy::Sequential, MappingPolicy::Interleaved] {
            let a = assign_tokens(&kept, 3, policy, 128);
            let mut all: Vec<usize> = a.concat();
            all.sort_unstable();
            assert_eq!(all, kept, "{policy:?}");
        }
    }

    #[test]
    fn imbalance_handles_edge_cases() {
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[vec![], vec![]]), 1.0);
        // One CORELET idle: min clamps to 1.
        assert_eq!(imbalance_ratio(&[vec![1, 2, 3], vec![]]), 3.0);
    }

    #[test]
    fn mean_imbalance_skips_empty_queries() {
        // Both non-empty queries split evenly over 2 CORELETs; the
        // empty (padded) query must not drag the average.
        let queries = vec![vec![0, 1, 2, 3], vec![], vec![0, 1, 4, 5]];
        let m = mean_imbalance(&queries, 2, MappingPolicy::Interleaved, 8);
        assert!(
            (m - 1.0).abs() < 1e-9,
            "balanced queries average to 1, got {m}"
        );
    }

    #[test]
    fn interleaving_dominates_sequential_at_every_corelet_count() {
        // Fig. 8: at 2/4/8/16 CORELETs, interleaving stays near the
        // ideal ratio of 1 while the sequential mapping suffers badly
        // on a clustered mask.
        let kept: Vec<usize> = (100..160).collect();
        let seq_len = 512;
        for n in [2usize, 4, 8, 16] {
            let seq = imbalance_ratio(&assign_tokens(&kept, n, MappingPolicy::Sequential, seq_len));
            let int = imbalance_ratio(&assign_tokens(
                &kept,
                n,
                MappingPolicy::Interleaved,
                seq_len,
            ));
            assert!(
                int <= seq,
                "interleaving never worse: n={n} int={int} seq={seq}"
            );
            assert!(int <= 2.0, "interleaved ratio stays small: n={n} int={int}");
            assert!(
                seq >= 4.0,
                "sequential suffers on clusters: n={n} seq={seq}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_assignment_partitions_kept(
            kept_bits in proptest::collection::vec(proptest::bool::ANY, 1..256),
            corelets in 1usize..9,
            interleaved in proptest::bool::ANY,
        ) {
            let kept: Vec<usize> = kept_bits
                .iter().enumerate().filter_map(|(j, &b)| b.then_some(j)).collect();
            let policy = if interleaved { MappingPolicy::Interleaved } else { MappingPolicy::Sequential };
            let a = assign_tokens(&kept, corelets, policy, kept_bits.len());
            let mut all: Vec<usize> = a.concat();
            all.sort_unstable();
            prop_assert_eq!(all, kept);
            prop_assert!(imbalance_ratio(&a) >= 1.0);
        }
    }
}
