//! The SPRINT on-chip accelerator (§VI).
//!
//! Models the digital half of the paper: `N` CORELETs, each an
//! independent attention pipeline of a QK processing unit (1-D 64-way
//! 8×8-bit MAC), a softmax unit (12-bit inputs, two 64-entry LUTs, two
//! dividers) and a V processing unit, fed from banked K/V buffers
//! *without double buffering* and with a rotating-pointer bypass for
//! in-flight data misses.
//!
//! The pieces:
//!
//! * [`MappingPolicy`] / [`assign_tokens`] — sequential vs
//!   token-interleaved distribution of unpruned keys across CORELETs,
//!   and the imbalance statistics of Fig. 8;
//! * [`KvBuffer`] — the on-chip K/V buffer with LRU replacement and
//!   residency lookup (the per-CORELET "look-up-tables \[that\] record
//!   which key and value vectors are currently present on chip");
//! * [`Corelet`] — per-query stage timing (QK-PU, softmax, V-PU) with
//!   miss-stall modelling;
//! * [`HeadPipeline`] — multi-CORELET execution of a whole head, the
//!   worst-CORELET delay rule of §VII, and aggregate statistics.
//!
//! # Example
//!
//! ```
//! use sprint_accelerator::{assign_tokens, imbalance_ratio, MappingPolicy};
//!
//! // Clustered kept keys: interleaving balances, sequential does not.
//! let kept: Vec<usize> = (40..72).collect();
//! let seq = assign_tokens(&kept, 4, MappingPolicy::Sequential, 128);
//! let int = assign_tokens(&kept, 4, MappingPolicy::Interleaved, 128);
//! assert!(imbalance_ratio(&seq) > imbalance_ratio(&int));
//! ```

mod buffers;
mod corelet;
mod error;
mod mapping;
mod pipeline;

pub use buffers::{Eviction, KvBuffer};
pub use corelet::{Corelet, CoreletConfig, QueryTiming};
pub use error::AcceleratorError;
pub use mapping::{assign_tokens, imbalance_ratio, mean_imbalance, MappingPolicy};
pub use pipeline::{HeadPipeline, HeadStats, PipelineConfig};
