//! The crate error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the accelerator model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceleratorError {
    /// A configuration value was zero or out of range.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
    },
    /// Per-query inputs disagree on sequence length or count.
    LengthMismatch {
        /// What was compared.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
}

impl fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorError::InvalidConfig { name, value } => {
                write!(f, "invalid accelerator configuration: {name} = {value}")
            }
            AcceleratorError::LengthMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} has length {found}, expected {expected}"),
        }
    }
}

impl Error for AcceleratorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AcceleratorError>();
    }
}
