//! On-chip K/V buffers with residency tracking (§VI).
//!
//! SPRINT deliberately avoids double buffering ("to avoid the doubled
//! cost of memory capacity"); incoming vectors go to a small staging
//! buffer and replace a resident entry. Each CORELET keeps
//! look-up tables recording which key/value vectors are present; this
//! type models that lookup plus an LRU replacement policy over the
//! finite capacity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use crate::AcceleratorError;

/// What happened on an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Eviction {
    /// The key was already resident (refreshed its recency).
    AlreadyResident,
    /// Inserted into a free slot.
    Inserted,
    /// Inserted by evicting another key.
    Evicted(usize),
}

/// A finite K/V buffer tracking resident key indices with LRU
/// replacement.
///
/// # Example
///
/// ```
/// use sprint_accelerator::{Eviction, KvBuffer};
///
/// # fn main() -> Result<(), sprint_accelerator::AcceleratorError> {
/// let mut buf = KvBuffer::new(2)?;
/// assert_eq!(buf.insert(7), Eviction::Inserted);
/// assert_eq!(buf.insert(9), Eviction::Inserted);
/// assert_eq!(buf.insert(7), Eviction::AlreadyResident);
/// // 9 is now least recently used:
/// assert_eq!(buf.insert(11), Eviction::Evicted(9));
/// assert!(buf.contains(7) && buf.contains(11) && !buf.contains(9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvBuffer {
    capacity: usize,
    /// Key -> last-use stamp (the per-CORELET lookup table).
    /// Exact-LRU eviction picks the smallest stamp.
    stamps: HashMap<usize, u64>,
    /// Lazy min-heap of (stamp, key); stale entries are skipped at
    /// eviction time, keeping touches O(log n).
    #[serde(skip, default)]
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PartialEq for KvBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.stamps == other.stamps
            && self.hits == other.hits
            && self.misses == other.misses
            && self.evictions == other.evictions
    }
}

impl Eq for KvBuffer {}

impl KvBuffer {
    /// Creates a buffer holding at most `capacity` vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for zero capacity.
    pub fn new(capacity: usize) -> Result<Self, AcceleratorError> {
        if capacity == 0 {
            return Err(AcceleratorError::InvalidConfig {
                name: "buffer capacity",
                value: 0,
            });
        }
        Ok(KvBuffer {
            capacity,
            stamps: HashMap::new(),
            heap: BinaryHeap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    }

    /// Capacity in vectors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident vectors.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Whether `key` is resident (the lookup-table check).
    pub fn contains(&self, key: usize) -> bool {
        self.stamps.contains_key(&key)
    }

    /// Residency hits observed by [`KvBuffer::touch`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Residency misses observed by [`KvBuffer::touch`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Records a use of `key`: refreshes recency and counts hit/miss.
    /// Returns whether the key was resident.
    pub fn touch(&mut self, key: usize) -> bool {
        if self.contains(key) {
            self.refresh(key);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts `key`, evicting the LRU entry if full.
    pub fn insert(&mut self, key: usize) -> Eviction {
        if self.contains(key) {
            self.refresh(key);
            return Eviction::AlreadyResident;
        }
        if self.stamps.len() < self.capacity {
            self.refresh(key);
            return Eviction::Inserted;
        }
        // Pop lazily until a live (stamp-matching) entry surfaces.
        let victim = loop {
            let Reverse((stamp, key)) = self
                .heap
                .pop()
                .expect("full buffer retains at least one live heap entry");
            if self.stamps.get(&key) == Some(&stamp) {
                break key;
            }
        };
        self.stamps.remove(&victim);
        self.refresh(key);
        self.evictions += 1;
        Eviction::Evicted(victim)
    }

    /// Empties the buffer (new attention head).
    pub fn clear(&mut self) {
        self.stamps.clear();
        self.heap.clear();
    }

    fn refresh(&mut self, key: usize) {
        self.clock += 1;
        self.stamps.insert(key, self.clock);
        self.heap.push(Reverse((self.clock, key)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_rejects_zero_capacity() {
        assert!(KvBuffer::new(0).is_err());
    }

    #[test]
    fn inserts_up_to_capacity_without_eviction() {
        let mut buf = KvBuffer::new(3).unwrap();
        assert_eq!(buf.insert(1), Eviction::Inserted);
        assert_eq!(buf.insert(2), Eviction::Inserted);
        assert_eq!(buf.insert(3), Eviction::Inserted);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.evictions(), 0);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut buf = KvBuffer::new(2).unwrap();
        buf.insert(1);
        buf.insert(2);
        buf.touch(1); // 2 becomes LRU
        assert_eq!(buf.insert(3), Eviction::Evicted(2));
    }

    #[test]
    fn touch_counts_hits_and_misses() {
        let mut buf = KvBuffer::new(2).unwrap();
        buf.insert(5);
        assert!(buf.touch(5));
        assert!(!buf.touch(6));
        assert_eq!(buf.hits(), 1);
        assert_eq!(buf.misses(), 1);
    }

    #[test]
    fn clear_empties_residency() {
        let mut buf = KvBuffer::new(2).unwrap();
        buf.insert(1);
        buf.clear();
        assert!(buf.is_empty());
        assert!(!buf.contains(1));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut buf = KvBuffer::new(2).unwrap();
        buf.insert(1);
        buf.insert(2);
        assert_eq!(buf.insert(1), Eviction::AlreadyResident);
        assert_eq!(buf.len(), 2);
        // 2 is LRU now.
        assert_eq!(buf.insert(3), Eviction::Evicted(2));
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(
            keys in proptest::collection::vec(0usize..32, 0..200),
            cap in 1usize..16,
        ) {
            let mut buf = KvBuffer::new(cap).unwrap();
            for k in keys {
                buf.insert(k);
                prop_assert!(buf.len() <= cap);
            }
        }

        #[test]
        fn prop_recent_window_is_resident(
            keys in proptest::collection::vec(0usize..64, 1..100),
            cap in 1usize..8,
        ) {
            let mut buf = KvBuffer::new(cap).unwrap();
            for k in &keys {
                buf.insert(*k);
            }
            // The last `cap` *distinct* keys must be resident.
            let mut seen = Vec::new();
            for k in keys.iter().rev() {
                if !seen.contains(k) {
                    seen.push(*k);
                }
                if seen.len() == cap {
                    break;
                }
            }
            for k in seen {
                prop_assert!(buf.contains(k), "recently used {k} evicted");
            }
        }
    }
}
