//! Whole-head execution across CORELETs (§VI/§VII).
//!
//! One query at a time is broadcast to every CORELET; each CORELET
//! processes its token-interleaved share of the unpruned keys, and the
//! per-query delay is the **worst CORELET's** bottleneck-stage time
//! ("we report the delay of each self-attention layer as the
//! worst-case delay across the N CORELETs").

use serde::{Deserialize, Serialize};

use sprint_energy::Cycles;

use crate::{assign_tokens, AcceleratorError, Corelet, CoreletConfig, MappingPolicy};

/// Configuration of a multi-CORELET head pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of CORELETs (1/2/4 for S/M/L-SPRINT).
    pub corelets: usize,
    /// Per-CORELET configuration.
    pub corelet: CoreletConfig,
    /// Token-to-CORELET mapping policy.
    pub policy: MappingPolicy,
    /// Cycles from issuing a fetch to the first vector landing
    /// (thresholding handshake + first read).
    pub fetch_first_latency: Cycles,
    /// Additional cycles per further fetched vector (bandwidth bound).
    pub fetch_per_vector: Cycles,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            corelets: 2,
            corelet: CoreletConfig::default(),
            policy: MappingPolicy::Interleaved,
            fetch_first_latency: Cycles::new(48),
            fetch_per_vector: Cycles::new(4),
        }
    }
}

impl PipelineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for zero CORELETs
    /// plus per-CORELET validation errors.
    pub fn validate(&self) -> Result<(), AcceleratorError> {
        if self.corelets == 0 {
            return Err(AcceleratorError::InvalidConfig {
                name: "corelets",
                value: 0,
            });
        }
        self.corelet.validate()
    }
}

/// Aggregate statistics of one head execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadStats {
    /// Per-query worst-CORELET bottleneck cycles.
    pub query_cycles: Vec<Cycles>,
    /// Total head delay (sum of per-query worst-CORELET cycles).
    pub total_cycles: Cycles,
    /// Total stall cycles across CORELETs.
    pub stall_cycles: Cycles,
    /// Total 64-way MAC operations.
    pub macs: u64,
    /// Total softmax element operations.
    pub softmax_ops: u64,
    /// K/V buffer misses (fetches from main memory).
    pub buffer_misses: u64,
    /// K/V buffer hits (spatial-locality reuse).
    pub buffer_hits: u64,
}

impl HeadStats {
    /// Fraction of token touches served from on-chip buffers.
    pub fn hit_rate(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_misses;
        if total == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / total as f64
        }
    }
}

/// Executes attention heads over a set of CORELETs.
///
/// # Example
///
/// ```
/// use sprint_accelerator::{HeadPipeline, PipelineConfig};
///
/// # fn main() -> Result<(), sprint_accelerator::AcceleratorError> {
/// let mut pipe = HeadPipeline::new(PipelineConfig::default())?;
/// let kept: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3]; 8];
/// let stats = pipe.run_head(&kept, 16, 64)?;
/// assert_eq!(stats.query_cycles.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HeadPipeline {
    config: PipelineConfig,
    corelets: Vec<Corelet>,
}

impl HeadPipeline {
    /// Creates the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(config: PipelineConfig) -> Result<Self, AcceleratorError> {
        config.validate()?;
        let corelets = (0..config.corelets)
            .map(|_| Corelet::new(config.corelet))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HeadPipeline { config, corelets })
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Read access to the CORELETs (buffer states, counters).
    pub fn corelets(&self) -> &[Corelet] {
        &self.corelets
    }

    /// Runs one head: `kept_per_query[i]` lists the unpruned key
    /// indices of query `i`; `seq_len` is the full sequence length;
    /// `d` the embedding size.
    ///
    /// # Errors
    ///
    /// Propagates per-CORELET errors.
    pub fn run_head(
        &mut self,
        kept_per_query: &[Vec<usize>],
        seq_len: usize,
        d: usize,
    ) -> Result<HeadStats, AcceleratorError> {
        if seq_len == 0 {
            return Err(AcceleratorError::InvalidConfig {
                name: "seq_len",
                value: 0,
            });
        }
        for c in &mut self.corelets {
            c.start_new_head();
        }
        let hits_before: u64 = self.corelets.iter().map(|c| c.buffer().hits()).sum();
        let misses_before: u64 = self.corelets.iter().map(|c| c.buffer().misses()).sum();
        let stalls_before: Cycles = self.corelets.iter().map(Corelet::stall_cycles).sum();
        let macs_before: u64 = self.corelets.iter().map(Corelet::macs).sum();
        let softmax_before: u64 = self.corelets.iter().map(Corelet::softmax_ops).sum();

        let mut query_cycles = Vec::with_capacity(kept_per_query.len());
        let mut total = Cycles::ZERO;
        for kept in kept_per_query {
            if kept.is_empty() {
                // Padded query: skipped by the 2-D sequence reduction.
                query_cycles.push(Cycles::ZERO);
                continue;
            }
            let assignment = assign_tokens(kept, self.config.corelets, self.config.policy, seq_len);
            let mut worst = Cycles::ZERO;
            for (corelet, tokens) in self.corelets.iter_mut().zip(&assignment) {
                // Estimate this CORELET's fetch window from its own
                // miss count (peek residency without counting).
                let miss_estimate = tokens
                    .iter()
                    .filter(|&&t| !corelet.buffer().contains(t))
                    .count() as u64;
                let first = self.config.fetch_first_latency;
                let last = first + self.config.fetch_per_vector * miss_estimate;
                let timing = corelet.process_query(tokens, d, (first, last))?;
                worst = worst.max(timing.bottleneck());
            }
            query_cycles.push(worst);
            total += worst;
        }

        let hits: u64 = self.corelets.iter().map(|c| c.buffer().hits()).sum();
        let misses: u64 = self.corelets.iter().map(|c| c.buffer().misses()).sum();
        let stalls: Cycles = self.corelets.iter().map(Corelet::stall_cycles).sum();
        let macs: u64 = self.corelets.iter().map(Corelet::macs).sum();
        let softmax: u64 = self.corelets.iter().map(Corelet::softmax_ops).sum();
        Ok(HeadStats {
            query_cycles,
            total_cycles: total,
            stall_cycles: stalls.saturating_sub(stalls_before),
            macs: macs - macs_before,
            softmax_ops: softmax - softmax_before,
            buffer_misses: misses - misses_before,
            buffer_hits: hits - hits_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered masks drifting slowly — the Fig. 2 structure.
    fn clustered_masks(queries: usize, seq_len: usize, cluster: usize) -> Vec<Vec<usize>> {
        (0..queries)
            .map(|i| {
                let start = (i * 2) % (seq_len - cluster);
                (start..start + cluster).collect()
            })
            .collect()
    }

    fn config(corelets: usize, policy: MappingPolicy, capacity: usize) -> PipelineConfig {
        PipelineConfig {
            corelets,
            policy,
            corelet: CoreletConfig {
                kv_capacity: capacity,
                ..CoreletConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn validation_rejects_zero_corelets() {
        assert!(HeadPipeline::new(config(0, MappingPolicy::Interleaved, 8)).is_err());
    }

    #[test]
    fn total_is_sum_of_query_worst_cases() {
        let mut pipe = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 64)).unwrap();
        let masks = clustered_masks(6, 64, 16);
        let stats = pipe.run_head(&masks, 64, 64).unwrap();
        let sum: Cycles = stats.query_cycles.iter().copied().sum();
        assert_eq!(stats.total_cycles, sum);
    }

    #[test]
    fn interleaving_beats_sequential_on_clustered_masks() {
        let masks = clustered_masks(16, 128, 24);
        let mut seq = HeadPipeline::new(config(4, MappingPolicy::Sequential, 64)).unwrap();
        let mut int = HeadPipeline::new(config(4, MappingPolicy::Interleaved, 64)).unwrap();
        let seq_stats = seq.run_head(&masks, 128, 64).unwrap();
        let int_stats = int.run_head(&masks, 128, 64).unwrap();
        assert!(
            int_stats.total_cycles < seq_stats.total_cycles,
            "interleaved {} vs sequential {}",
            int_stats.total_cycles,
            seq_stats.total_cycles
        );
    }

    #[test]
    fn spatial_locality_turns_into_buffer_hits() {
        let mut pipe = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 128)).unwrap();
        let masks = clustered_masks(32, 128, 24);
        let stats = pipe.run_head(&masks, 128, 64).unwrap();
        assert!(
            stats.hit_rate() > 0.7,
            "slow-drifting clusters should mostly hit: {}",
            stats.hit_rate()
        );
    }

    #[test]
    fn smaller_buffers_lower_hit_rate_and_raise_stalls() {
        let masks = clustered_masks(32, 256, 48);
        let mut big = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 256)).unwrap();
        let mut small = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 8)).unwrap();
        let big_stats = big.run_head(&masks, 256, 64).unwrap();
        let small_stats = small.run_head(&masks, 256, 64).unwrap();
        assert!(small_stats.hit_rate() < big_stats.hit_rate());
        assert!(small_stats.stall_cycles >= big_stats.stall_cycles);
        assert!(small_stats.total_cycles >= big_stats.total_cycles);
    }

    #[test]
    fn padded_queries_cost_nothing() {
        let mut pipe = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 64)).unwrap();
        let mut masks = clustered_masks(4, 64, 8);
        masks.push(Vec::new());
        masks.push(Vec::new());
        let stats = pipe.run_head(&masks, 64, 64).unwrap();
        assert_eq!(stats.query_cycles[4], Cycles::ZERO);
        assert_eq!(stats.query_cycles[5], Cycles::ZERO);
    }

    #[test]
    fn more_corelets_do_not_slow_a_head_down() {
        let masks = clustered_masks(16, 256, 64);
        let mut one = HeadPipeline::new(config(1, MappingPolicy::Interleaved, 256)).unwrap();
        let mut four = HeadPipeline::new(config(4, MappingPolicy::Interleaved, 64)).unwrap();
        let s1 = one.run_head(&masks, 256, 64).unwrap();
        let s4 = four.run_head(&masks, 256, 64).unwrap();
        assert!(
            s4.total_cycles <= s1.total_cycles,
            "4 CORELETs {} vs 1 CORELET {}",
            s4.total_cycles,
            s1.total_cycles
        );
    }

    #[test]
    fn run_head_resets_buffers_between_heads() {
        let mut pipe = HeadPipeline::new(config(2, MappingPolicy::Interleaved, 64)).unwrap();
        let masks = clustered_masks(8, 64, 16);
        let a = pipe.run_head(&masks, 64, 64).unwrap();
        let b = pipe.run_head(&masks, 64, 64).unwrap();
        assert_eq!(
            a.buffer_misses, b.buffer_misses,
            "identical heads behave identically after reset"
        );
    }

    #[test]
    fn zero_seq_len_is_rejected() {
        let mut pipe = HeadPipeline::new(config(1, MappingPolicy::Interleaved, 8)).unwrap();
        assert!(pipe.run_head(&[], 0, 64).is_err());
    }
}
