//! Counting-simulator dominance property (ISSUE 1 satellite): on every
//! Table I configuration, SPRINT execution must never cost more cycles
//! or energy than the baseline, across a seeded grid of synthetic head
//! profiles.

use sprint_core::counting::simulate_head;
use sprint_core::{ExecutionMode, HeadProfile, SprintConfig};

#[test]
fn sprint_never_exceeds_baseline_cycles_or_energy() {
    let configs = [
        ("S", SprintConfig::small()),
        ("M", SprintConfig::medium()),
        ("L", SprintConfig::large()),
    ];
    for (name, cfg) in &configs {
        for &seq in &[64usize, 128, 384, 1024] {
            for &keep in &[0.1f64, 0.25, 0.45] {
                for &overlap in &[0.5f64, 0.85] {
                    for seed in 0..4u64 {
                        let live = (seq * 3) / 4;
                        let profile = HeadProfile::synthetic(seq, live, keep, overlap, seed);
                        let base = simulate_head(&profile, cfg, ExecutionMode::Baseline);
                        let sprint = simulate_head(&profile, cfg, ExecutionMode::Sprint);
                        assert!(
                            sprint.cycles <= base.cycles,
                            "{name}-SPRINT seq={seq} keep={keep} overlap={overlap} seed={seed}: \
                             sprint {} cycles > baseline {}",
                            sprint.cycles,
                            base.cycles
                        );
                        assert!(
                            sprint.energy.total() <= base.energy.total(),
                            "{name}-SPRINT seq={seq} keep={keep} overlap={overlap} seed={seed}: \
                             sprint {:?} energy > baseline {:?}",
                            sprint.energy.total(),
                            base.energy.total()
                        );
                    }
                }
            }
        }
    }
}
